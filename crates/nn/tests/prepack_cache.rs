//! Prepack-cache lifecycle: hits and misses are journaled deterministically,
//! optimizer steps and checkpoint loads invalidate, and a warm steady-state
//! loop performs zero `pack_b` work.
//!
//! Lives in its own integration binary so the global obs registry and the
//! process-wide pack counters are not polluted by unrelated tests running
//! in parallel; the assertions here are ordered within single test fns.

use ad::Tape;
use nn::{Linear, Optimizer, Params, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Tensor;

fn model(seed: u64) -> (Params, Linear) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = Params::new();
    let fc = Linear::new(&mut params, &mut rng, "fc", 6, 4);
    (params, fc)
}

fn forward_value(params: &Params, fc: &Linear, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let bound = params.bind(&tape);
    fc.forward(&bound, tape.leaf(x.clone())).value()
}

/// One test fn so every obs assertion sees only its own counter traffic.
#[test]
fn prepack_cache_lifecycle() {
    let (mut params, fc) = model(11);
    let x = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.25 - 1.5).collect(), &[2, 6]);

    // --- cold bind journals one miss per eligible (rank-2) param ---
    obs::enable(false);
    obs::reset();
    let y0 = forward_value(&params, &fc, &x);
    obs::flush_local();
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter("tensor/prepack_misses"),
        1,
        "one rank-2 weight"
    );
    assert_eq!(snap.counter("tensor/prepack_hits"), 0);

    // --- warm binds journal hits, no further misses, identical bits ---
    obs::reset();
    for _ in 0..3 {
        let y = forward_value(&params, &fc, &x);
        for (a, b) in y.data().iter().zip(y0.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    obs::flush_local();
    let snap = obs::snapshot();
    assert_eq!(snap.counter("tensor/prepack_misses"), 0);
    assert_eq!(snap.counter("tensor/prepack_hits"), 3);

    // --- a warm timestep loop performs zero pack_b work ---
    {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let before = tensor::pack_b_calls();
        for _ in 0..8 {
            let _ = fc.forward(&bound, tape.leaf(x.clone()));
        }
        assert_eq!(
            tensor::pack_b_calls(),
            before,
            "warm prepacked forwards must not re-pack B panels"
        );
    }

    // --- an optimizer step invalidates: next bind re-packs and the ---
    // --- forward sees the stepped weights ---
    obs::reset();
    let grads: Vec<Tensor> = params.iter().map(|(_, t)| Tensor::ones(t.dims())).collect();
    Sgd::new(0.5, 0.0).step(&mut params, &grads);
    let y1 = forward_value(&params, &fc, &x);
    obs::flush_local();
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter("tensor/prepack_misses"),
        1,
        "optimizer step must invalidate the weight slot"
    );
    let w = params.get(fc.weight()).clone();
    let want = x.matmul(&w).add_bias(params.get(fc.bias()));
    for (a, b) in y1.data().iter().zip(want.data()) {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "stale panels after optimizer step"
        );
    }

    // --- a checkpoint round-trip starts cold: loaded weights re-pack ---
    let dir = std::env::temp_dir().join("spiking_armor_prepack_cache_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("ckpt.json");
    params.save_json(&path).unwrap();
    let loaded = Params::load_json(&path).unwrap();
    obs::reset();
    let y2 = forward_value(&loaded, &fc, &x);
    obs::flush_local();
    let snap = obs::snapshot();
    assert_eq!(
        snap.counter("tensor/prepack_misses"),
        1,
        "checkpoint load must start with an empty cache"
    );
    for (a, b) in y2.data().iter().zip(y1.data()) {
        assert_eq!(a.to_bits(), b.to_bits(), "loaded weights must round-trip");
    }
    obs::disable();
}
