//! The flat parameter store shared by all models.
//!
//! Weights live *outside* the autodiff tape as plain tensors; every forward
//! pass binds them onto a fresh [`Tape`](ad::Tape) as leaves. After
//! `backward`, the optimizer reads one gradient per parameter through the
//! same binding. This keeps tapes short-lived and models free of interior
//! mutability.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

use ad::{Grads, Tape, Var};
use serde::{Deserialize, Serialize};
use tensor::{PrepackedB, PrepackedConvW, Tensor};

/// Identifier of one tensor inside a [`Params`] store.
///
/// `ParamId`s are handed out by [`Params::register`] and stay valid for the
/// lifetime of the store (parameters are never removed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(usize);

/// A named collection of trainable tensors.
///
/// # Example
///
/// ```
/// use nn::Params;
/// use tensor::Tensor;
///
/// let mut params = Params::new();
/// let w = params.register("w", Tensor::zeros(&[2, 2]));
/// assert_eq!(params.get(w).dims(), &[2, 2]);
/// assert_eq!(params.name(w), "w");
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Params {
    tensors: Vec<Tensor>,
    names: Vec<String>,
    #[serde(default)]
    prepack: PrepackCache,
}

/// One cached prepacked-weight handle (see [`PrepackCache`]).
///
/// `Arc`-shared so every [`Params::bind`] in a forward pass — and every
/// replica thread holding the same store — reads the same packed panels.
#[derive(Debug, Clone)]
pub enum Prepacked {
    /// A rank-2 GEMM B operand (`Linear` weights, `[in, out]`).
    MatB(Arc<PrepackedB>),
    /// A rank-4 conv weight (`[O, C, KH, KW]`).
    ConvW(Arc<PrepackedConvW>),
}

/// Per-parameter cache of prepacked GEMM panels, keyed by parameter index.
///
/// * **Keying** — slot `i` caches the panels of `tensors[i]`; rank-2
///   parameters pack as [`PrepackedB`], rank-4 as [`PrepackedConvW`],
///   everything else (biases, scalars) is never packed.
/// * **Invalidation** — any [`Params::get_mut`] clears that parameter's
///   slot (the only mutation path: optimizer steps go through it), and
///   checkpoint loads / clones start with an empty cache. A stale handle
///   can therefore never outlive the weights it was packed from.
/// * **Determinism** — `tensor/prepack_hits` / `tensor/prepack_misses`
///   are journaled per eligible parameter per [`Params::bind`], inside
///   the cache lock, so the counts depend only on the bind/mutate
///   sequence — never on thread count.
///
/// The cache is transparent state: serialization writes a placeholder
/// null (checkpoints hold weights, not packing layouts) and
/// deserialization always starts empty.
#[derive(Default)]
pub struct PrepackCache {
    slots: Mutex<Vec<Option<Prepacked>>>,
}

impl PrepackCache {
    /// Looks up (or builds) the handle for every eligible parameter.
    /// Building happens under the lock so concurrent binds over a shared
    /// store journal exactly one miss per (re)build.
    fn bind_handles(&self, tensors: &[Tensor]) -> Vec<Option<Prepacked>> {
        let mut slots = self.slots.lock().expect("prepack cache poisoned");
        slots.resize_with(tensors.len(), || None);
        tensors
            .iter()
            .zip(slots.iter_mut())
            .map(|(t, slot)| {
                let rank = t.dims().len();
                if rank != 2 && rank != 4 {
                    return None;
                }
                if let Some(handle) = slot {
                    obs::counter_add("tensor/prepack_hits", 1);
                    return Some(handle.clone());
                }
                obs::counter_add("tensor/prepack_misses", 1);
                let built = if rank == 2 {
                    Prepacked::MatB(Arc::new(t.prepack_b()))
                } else {
                    Prepacked::ConvW(Arc::new(tensor::prepack_conv2d_weights(t)))
                };
                *slot = Some(built.clone());
                Some(built)
            })
            .collect()
    }

    fn invalidate(&self, index: usize) {
        let mut slots = self.slots.lock().expect("prepack cache poisoned");
        if let Some(slot) = slots.get_mut(index) {
            *slot = None;
        }
    }
}

impl fmt::Debug for PrepackCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slots = self.slots.lock().expect("prepack cache poisoned");
        let filled = slots.iter().filter(|s| s.is_some()).count();
        write!(f, "PrepackCache({filled}/{} packed)", slots.len())
    }
}

/// Cloning a store clones the weights, not the cache: packed panels are
/// derived state the next [`Params::bind`] rebuilds on demand.
impl Clone for PrepackCache {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Checkpoints hold weights, not packing layouts: serialize to a
/// placeholder null…
impl Serialize for PrepackCache {
    fn to_value(&self) -> serde::Value {
        serde::Value::Null
    }
}

/// …and deserialize to an empty cache regardless of what was written, so
/// a `--resume` load always re-packs from the freshly loaded weights.
impl Deserialize for PrepackCache {
    fn from_value(_: &serde::Value) -> Result<Self, serde::Error> {
        Ok(Self::default())
    }
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a tensor under `name` and returns its id.
    pub fn register(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.tensors.push(value);
        self.names.push(name.into());
        ParamId(self.tensors.len() - 1)
    }

    /// The current value of a parameter.
    pub fn get(&self, id: ParamId) -> &Tensor {
        &self.tensors[id.0]
    }

    /// Mutable access to a parameter (used by optimizers).
    ///
    /// Clears the parameter's prepacked-panel cache slot: handing out a
    /// mutable borrow is the only way weights change, so the next
    /// [`Params::bind`] re-packs from the updated values (and journals a
    /// `tensor/prepack_misses`).
    pub fn get_mut(&mut self, id: ParamId) -> &mut Tensor {
        self.prepack.invalidate(id.0);
        &mut self.tensors[id.0]
    }

    /// The name a parameter was registered under.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// `true` if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.tensors.iter().map(Tensor::len).sum()
    }

    /// Binds every parameter onto `tape` as a leaf, returning the per-pass
    /// variable handles plus the prepacked-panel handle of every eligible
    /// weight (built on first bind, reused until the weight mutates — see
    /// [`PrepackCache`]).
    pub fn bind<'t>(&self, tape: &'t Tape) -> BoundParams<'t> {
        BoundParams {
            vars: self.tensors.iter().map(|t| tape.leaf(t.clone())).collect(),
            handles: self.prepack.bind_handles(&self.tensors),
        }
    }

    /// Builds the prepacked-panel handle of every eligible weight without
    /// binding a tape — boot-time warm-up for serving replicas and attack
    /// loops, so their first forward already runs pack-free.
    pub fn warm_prepack(&self) {
        let _ = self.prepack.bind_handles(&self.tensors);
    }

    /// Iterates over `(id, tensor)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Tensor)> {
        self.tensors
            .iter()
            .enumerate()
            .map(|(i, t)| (ParamId(i), t))
    }

    /// A human-readable table of all parameters: name, shape and scalar
    /// count, with a total row — the classic model summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("parameter                shape            scalars\n");
        for (id, t) in self.iter() {
            let _ = writeln!(
                out,
                "{:<24} {:<16} {:>7}",
                self.name(id),
                t.shape().to_string(),
                t.len()
            );
        }
        let _ = write!(
            out,
            "total: {} parameters, {} scalars",
            self.len(),
            self.num_scalars()
        );
        out
    }

    /// Saves all parameters (names and values) as JSON — a trained model
    /// checkpoint.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be written.
    pub fn save_json(&self, path: &Path) -> io::Result<()> {
        let json = serde_json::to_string(self)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        fs::write(path, json)
    }

    /// Loads a checkpoint written by [`Params::save_json`].
    ///
    /// The caller is responsible for pairing the checkpoint with the model
    /// architecture it was trained for; [`Params::num_scalars`] and the
    /// registered names make mismatches easy to detect.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be read or parsed.
    pub fn load_json(path: &Path) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }
}

/// Per-forward-pass tape bindings of a [`Params`] store.
///
/// Produced by [`Params::bind`]; consumed by [`Model::forward`](crate::Model::forward)
/// implementations (to read weights) and by optimizers (to read gradients).
#[derive(Debug)]
pub struct BoundParams<'t> {
    vars: Vec<Var<'t>>,
    handles: Vec<Option<Prepacked>>,
}

impl<'t> BoundParams<'t> {
    /// The tape variable bound to parameter `id`.
    pub fn get(&self, id: ParamId) -> Var<'t> {
        self.vars[id.0]
    }

    /// The prepacked GEMM handle of a rank-2 weight, if cached at bind
    /// time. Layers fall back to the pack-per-call kernels on `None`.
    pub fn prepacked_mat(&self, id: ParamId) -> Option<&PrepackedB> {
        match self.handles.get(id.0)?.as_ref()? {
            Prepacked::MatB(pb) => Some(pb),
            Prepacked::ConvW(_) => None,
        }
    }

    /// The prepacked handle of a rank-4 conv weight, if cached at bind
    /// time.
    pub fn prepacked_conv(&self, id: ParamId) -> Option<&PrepackedConvW> {
        match self.handles.get(id.0)?.as_ref()? {
            Prepacked::ConvW(pw) => Some(pw),
            Prepacked::MatB(_) => None,
        }
    }

    /// Collects the gradient of every parameter from a backward pass,
    /// substituting zeros for parameters the loss does not touch.
    pub fn gradients(&self, grads: &Grads) -> Vec<Tensor> {
        self.vars
            .iter()
            .map(|v| grads.wrt_or_zero(*v, &v.dims()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut p = Params::new();
        let a = p.register("a", Tensor::zeros(&[3]));
        let b = p.register("b", Tensor::ones(&[2, 2]));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 7);
        assert_eq!(p.get(a).dims(), &[3]);
        assert_eq!(p.name(b), "b");
    }

    #[test]
    fn bind_creates_leaves_with_current_values() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::scalar(2.0));
        let tape = Tape::new();
        let bound = p.bind(&tape);
        assert_eq!(bound.get(w).value().item(), 2.0);
    }

    #[test]
    fn summary_lists_every_parameter_and_totals() {
        let mut p = Params::new();
        p.register("conv.w", Tensor::zeros(&[4, 1, 3, 3]));
        p.register("conv.b", Tensor::zeros(&[4]));
        let s = p.summary();
        assert!(s.contains("conv.w"));
        assert!(s.contains("[4, 1, 3, 3]"));
        assert!(s.contains("total: 2 parameters, 40 scalars"), "{s}");
    }

    #[test]
    fn checkpoint_round_trip() {
        let mut p = Params::new();
        p.register("layer.w", Tensor::from_vec(vec![1.5, -2.5], &[2]));
        p.register("layer.b", Tensor::scalar(0.25));
        let dir = std::env::temp_dir().join("spiking_armor_params_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.json");
        p.save_json(&path).unwrap();
        let q = Params::load_json(&path).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.name(ParamId(0)), "layer.w");
        assert_eq!(q.get(ParamId(0)).data(), &[1.5, -2.5]);
        assert_eq!(q.num_scalars(), 3);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("spiking_armor_params_test2");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        std::fs::write(&path, "{nope").unwrap();
        assert!(Params::load_json(&path).is_err());
    }

    #[test]
    fn gradients_align_with_param_order() {
        let mut p = Params::new();
        let w = p.register("w", Tensor::scalar(3.0));
        let unused = p.register("unused", Tensor::zeros(&[2]));
        let tape = Tape::new();
        let bound = p.bind(&tape);
        let loss = (bound.get(w) * bound.get(w)).sum();
        let grads = tape.backward(loss);
        let gs = bound.gradients(&grads);
        assert_eq!(gs[0].item(), 6.0);
        assert_eq!(gs[1].data(), &[0.0, 0.0]);
        let _ = unused;
    }
}
