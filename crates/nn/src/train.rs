//! Mini-batch training and evaluation loops.
//!
//! These loops are model-agnostic: the CNN baseline and the spiking networks
//! (whose BPTT happens inside their [`Model::forward`]) train through the
//! same code path, which keeps the paper's CNN-vs-SNN comparison honest.

use ad::Tape;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use crate::metrics;
use crate::model::Model;
use crate::optim::Optimizer;
use crate::params::Params;

/// Summary of one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochStats {
    /// Mean cross-entropy over all batches.
    pub mean_loss: f32,
    /// Training accuracy over the epoch (computed from the same forward
    /// passes used for the updates).
    pub accuracy: f32,
}

/// Extracts the samples at `indices` from a `[N, C, H, W]` image tensor and
/// its label slice.
///
/// # Panics
///
/// Panics if `images` is not rank 4, the label count differs from `N`, or
/// any index is out of range.
pub fn gather_batch(images: &Tensor, labels: &[usize], indices: &[usize]) -> (Tensor, Vec<usize>) {
    let mut batch = Tensor::zeros(&[1]);
    let mut batch_labels = Vec::with_capacity(indices.len());
    gather_batch_into(&mut batch, &mut batch_labels, images, labels, indices);
    (batch, batch_labels)
}

/// [`gather_batch`] into caller-owned buffers, so a loop over many
/// mini-batches reuses one allocation instead of building a fresh tensor
/// per batch.
///
/// `batch` is resized (grow-only via [`Tensor::resize_reusing`]) to
/// `[indices.len(), C, H, W]` and overwritten; `batch_labels` is cleared
/// and refilled. Loops that only *read* the batch (like [`evaluate`]) stop
/// allocating entirely once the buffer has seen the largest batch shape.
///
/// # Panics
///
/// As [`gather_batch`].
pub fn gather_batch_into(
    batch: &mut Tensor,
    batch_labels: &mut Vec<usize>,
    images: &Tensor,
    labels: &[usize],
    indices: &[usize],
) {
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "images must be [N, C, H, W], got {dims:?}");
    let n = dims[0];
    assert_eq!(labels.len(), n, "{} labels for {n} images", labels.len());
    let sample_len: usize = dims[1..].iter().product();
    batch.resize_reusing(&[indices.len(), dims[1], dims[2], dims[3]]);
    batch_labels.clear();
    for (slot, &i) in indices.iter().enumerate() {
        assert!(i < n, "sample index {i} out of range for {n} images");
        batch.data_mut()[slot * sample_len..(slot + 1) * sample_len]
            .copy_from_slice(&images.data()[i * sample_len..(i + 1) * sample_len]);
        batch_labels.push(labels[i]);
    }
}

/// Runs one epoch of shuffled mini-batch training and returns its stats.
///
/// # Panics
///
/// Panics if `batch_size` is zero or the data shapes are inconsistent (see
/// [`gather_batch`]).
pub fn train_epoch<M: Model, O: Optimizer, R: Rng>(
    model: &M,
    params: &mut Params,
    optimizer: &mut O,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    rng: &mut R,
) -> EpochStats {
    assert!(batch_size > 0, "batch_size must be positive");
    let _span = obs::span("train/epoch");
    let n = images.dims()[0];
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut total_loss = 0.0;
    let mut batches = 0usize;
    let mut correct = 0usize;
    for chunk in order.chunks(batch_size) {
        let (batch, batch_labels) = gather_batch(images, labels, chunk);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let input = tape.leaf(batch);
        let logits = model.forward(&tape, &bound, input);
        let loss = logits.cross_entropy(&batch_labels);
        total_loss += loss.value().item();
        correct += logits
            .value()
            .argmax_rows()
            .iter()
            .zip(&batch_labels)
            .filter(|(p, l)| p == l)
            .count();
        let grads = tape.backward(loss);
        let grad_tensors = bound.gradients(&grads);
        optimizer.step(params, &grad_tensors);
        batches += 1;
    }
    let stats = EpochStats {
        mean_loss: total_loss / batches.max(1) as f32,
        accuracy: correct as f32 / n as f32,
    };
    obs::counter_add("train/epochs", 1);
    obs::counter_add("train/batches", batches as u64);
    obs::observe(
        "train/epoch_loss",
        f64::from(stats.mean_loss),
        obs::LOSS_BOUNDS,
    );
    obs::observe(
        "train/epoch_accuracy",
        f64::from(stats.accuracy),
        obs::RATE_BOUNDS,
    );
    stats
}

/// Computes test accuracy in mini-batches (no gradient work).
///
/// # Panics
///
/// Panics if `batch_size` is zero or the shapes are inconsistent.
pub fn evaluate<M: Model>(
    model: &M,
    params: &Params,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> f32 {
    assert!(batch_size > 0, "batch_size must be positive");
    let n = images.dims()[0];
    let mut predictions = Vec::with_capacity(n);
    let all: Vec<usize> = (0..n).collect();
    // Evaluation only reads the batch, so one grow-only buffer serves every
    // chunk (the ragged tail shrinks the view, not the allocation).
    let mut batch = Tensor::zeros(&[1]);
    let mut batch_labels = Vec::with_capacity(batch_size);
    for chunk in all.chunks(batch_size) {
        gather_batch_into(&mut batch, &mut batch_labels, images, labels, chunk);
        predictions.extend(crate::model::predict(model, params, &batch));
    }
    obs::counter_add("eval/examples", n as u64);
    metrics::accuracy(&predictions, labels)
}

/// Configuration for the high-level [`fit`] loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitConfig {
    /// Maximum epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule (queried per epoch).
    pub schedule: crate::schedule::LrSchedule,
    /// Stop after this many epochs without validation improvement
    /// (`None` disables early stopping).
    pub patience: Option<usize>,
    /// Seed for epoch shuffling.
    pub seed: u64,
}

/// One epoch's record in a [`FitReport`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitEpoch {
    /// Training statistics.
    pub train: EpochStats,
    /// Validation accuracy after the epoch.
    pub val_accuracy: f32,
    /// Learning rate used for the epoch.
    pub lr: f32,
}

/// The outcome of [`fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct FitReport {
    /// Per-epoch history, in order.
    pub history: Vec<FitEpoch>,
    /// Best validation accuracy seen.
    pub best_val_accuracy: f32,
    /// Epoch index (0-based) of the best validation accuracy.
    pub best_epoch: usize,
}

impl FitReport {
    /// Number of epochs actually run (≤ `FitConfig::epochs` when early
    /// stopping triggered).
    pub fn epochs_run(&self) -> usize {
        self.history.len()
    }
}

/// High-level training: Adam + LR schedule + validation tracking + optional
/// early stopping, restoring the best-validation weights on return.
///
/// # Panics
///
/// Panics if `config.epochs` or `config.batch_size` is zero, or the data
/// shapes are inconsistent.
#[allow(clippy::too_many_arguments)]
pub fn fit<M: Model>(
    model: &M,
    params: &mut Params,
    train_images: &Tensor,
    train_labels: &[usize],
    val_images: &Tensor,
    val_labels: &[usize],
    config: &FitConfig,
) -> FitReport {
    assert!(config.epochs > 0, "epochs must be positive");
    let mut optimizer = crate::optim::Adam::new(config.schedule.lr_at(0));
    let mut rng = rand::rngs::StdRng::seed_from_u64(config.seed);
    let mut history = Vec::with_capacity(config.epochs);
    let mut best_val = f32::NEG_INFINITY;
    let mut best_epoch = 0usize;
    let mut best_params = params.clone();
    let mut since_best = 0usize;
    for epoch in 0..config.epochs {
        let lr = config.schedule.lr_at(epoch);
        optimizer.set_lr(lr);
        let train = train_epoch(
            model,
            params,
            &mut optimizer,
            train_images,
            train_labels,
            config.batch_size,
            &mut rng,
        );
        let val_accuracy = evaluate(model, params, val_images, val_labels, config.batch_size);
        history.push(FitEpoch {
            train,
            val_accuracy,
            lr,
        });
        if val_accuracy > best_val {
            best_val = val_accuracy;
            best_epoch = epoch;
            best_params = params.clone();
            since_best = 0;
        } else {
            since_best += 1;
            if let Some(patience) = config.patience {
                if since_best >= patience {
                    break;
                }
            }
        }
    }
    *params = best_params;
    FitReport {
        history,
        best_val_accuracy: best_val,
        best_epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::{Cnn, CnnConfig};
    use crate::optim::Adam;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A trivially separable two-class problem: class 0 images are dark,
    /// class 1 images are bright.
    fn toy_data(n: usize, hw: usize, rng: &mut StdRng) -> (Tensor, Vec<usize>) {
        let mut data = Vec::with_capacity(n * hw * hw);
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.1 } else { 0.9 };
            for _ in 0..hw * hw {
                data.push(base + rng.gen_range(-0.05..0.05));
            }
            labels.push(class);
        }
        (Tensor::from_vec(data, &[n, 1, hw, hw]), labels)
    }

    #[test]
    fn gather_batch_picks_requested_samples() {
        let images = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[4, 1, 1, 2]);
        let labels = vec![0, 1, 2, 3];
        let (b, l) = gather_batch(&images, &labels, &[3, 1]);
        assert_eq!(b.dims(), &[2, 1, 1, 2]);
        assert_eq!(b.data(), &[6.0, 7.0, 2.0, 3.0]);
        assert_eq!(l, vec![3, 1]);
    }

    #[test]
    fn gather_batch_into_reuses_buffers_across_shrink_and_grow() {
        let images = Tensor::from_vec((0..12).map(|v| v as f32).collect(), &[6, 1, 1, 2]);
        let labels = vec![0, 1, 2, 3, 4, 5];
        let mut batch = Tensor::zeros(&[1]);
        let mut batch_labels = Vec::new();
        // Grow, shrink (ragged tail), grow again: every fill must match the
        // allocating gather exactly, with stale data fully overwritten.
        for chunk in [&[0usize, 2, 4][..], &[5][..], &[1, 3, 5, 0][..]] {
            gather_batch_into(&mut batch, &mut batch_labels, &images, &labels, chunk);
            let (fresh, fresh_labels) = gather_batch(&images, &labels, chunk);
            assert_eq!(batch, fresh);
            assert_eq!(batch_labels, fresh_labels);
        }
    }

    #[test]
    fn training_learns_separable_problem() {
        let mut rng = StdRng::seed_from_u64(0);
        let (images, labels) = toy_data(32, 8, &mut rng);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 2));
        let mut opt = Adam::new(5e-3);
        let mut last = EpochStats {
            mean_loss: f32::INFINITY,
            accuracy: 0.0,
        };
        for _ in 0..8 {
            last = train_epoch(&cnn, &mut params, &mut opt, &images, &labels, 8, &mut rng);
        }
        assert!(last.accuracy > 0.9, "train accuracy {}", last.accuracy);
        let test_acc = evaluate(&cnn, &params, &images, &labels, 16);
        assert!(test_acc > 0.9, "test accuracy {test_acc}");
    }

    #[test]
    fn fit_restores_best_validation_weights_and_stops_early() {
        let mut rng = StdRng::seed_from_u64(3);
        let (images, labels) = toy_data(32, 6, &mut rng);
        let (val_images, val_labels) = toy_data(12, 6, &mut rng);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(6, 2));
        let cfg = FitConfig {
            epochs: 12,
            batch_size: 8,
            schedule: crate::schedule::LrSchedule::step(5e-3, 6, 0.5),
            patience: Some(4),
            seed: 7,
        };
        let report = fit(
            &cnn,
            &mut params,
            &images,
            &labels,
            &val_images,
            &val_labels,
            &cfg,
        );
        assert!(report.epochs_run() >= 1 && report.epochs_run() <= 12);
        assert!(
            report.best_val_accuracy > 0.8,
            "best val {}",
            report.best_val_accuracy
        );
        // The restored weights reproduce the best validation accuracy.
        let acc = evaluate(&cnn, &params, &val_images, &val_labels, 12);
        assert!((acc - report.best_val_accuracy).abs() < 1e-6);
        assert!(report.best_epoch < report.epochs_run());
        // The schedule was actually applied.
        assert_eq!(report.history[0].lr, 5e-3);
    }

    #[test]
    fn fit_early_stopping_bounds_epochs() {
        // patience 1 with an unlearnable (constant-label) problem stops fast.
        let mut rng = StdRng::seed_from_u64(4);
        let images = Tensor::full(&[8, 1, 6, 6], 0.5);
        let labels = vec![0usize; 8];
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(6, 2));
        let cfg = FitConfig {
            epochs: 50,
            batch_size: 8,
            schedule: crate::schedule::LrSchedule::constant(1e-3),
            patience: Some(1),
            seed: 1,
        };
        let report = fit(&cnn, &mut params, &images, &labels, &images, &labels, &cfg);
        assert!(report.epochs_run() < 50, "early stopping never triggered");
    }

    #[test]
    fn evaluate_batches_cover_all_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let (images, labels) = toy_data(10, 4, &mut rng);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(4, 2));
        // Batch size that does not divide n: the tail batch must be included.
        let acc = evaluate(&cnn, &params, &images, &labels, 3);
        assert!((0.0..=1.0).contains(&acc));
    }
}
