//! Loss functions beyond plain cross-entropy.

use ad::Var;
use tensor::Tensor;

/// Mean-squared error between a prediction and a constant target.
///
/// The target enters the tape as a leaf, so gradients flow only to the
/// prediction.
///
/// # Panics
///
/// Panics if the shapes differ.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use tensor::Tensor;
///
/// let tape = Tape::new();
/// let pred = tape.leaf(Tensor::from_vec(vec![1.0, 3.0], &[2]));
/// let loss = nn::losses::mse(pred, &Tensor::from_vec(vec![0.0, 1.0], &[2]));
/// assert_eq!(loss.value().item(), (1.0 + 4.0) / 2.0);
/// ```
pub fn mse<'t>(prediction: Var<'t>, target: &Tensor) -> Var<'t> {
    let t = prediction.tape().leaf(target.clone());
    let d = prediction - t;
    (d * d).mean()
}

/// Cross-entropy with label smoothing: the target distribution puts
/// `1 − smoothing` on the true class and spreads `smoothing` uniformly over
/// the rest. `smoothing = 0` reduces exactly to
/// [`Var::cross_entropy`].
///
/// # Panics
///
/// Panics if `logits` is not `[N, C]`, `targets.len() != N`, any target is
/// out of range, or `smoothing` is outside `[0, 1)`.
pub fn cross_entropy_smoothed<'t>(logits: Var<'t>, targets: &[usize], smoothing: f32) -> Var<'t> {
    assert!(
        (0.0..1.0).contains(&smoothing),
        "smoothing must be in [0, 1), got {smoothing}"
    );
    if smoothing == 0.0 {
        return logits.cross_entropy(targets);
    }
    let dims = logits.dims();
    let (n, c) = match dims.as_slice() {
        [n, c] => (*n, *c),
        d => panic!("cross_entropy_smoothed requires rank-2 logits, got {d:?}"),
    };
    assert_eq!(targets.len(), n, "{} targets for {n} rows", targets.len());
    // Smoothed one-hot targets as a constant.
    let off = smoothing / (c as f32 - 1.0).max(1.0);
    let mut dist = Tensor::full(&[n, c], off);
    for (i, &t) in targets.iter().enumerate() {
        assert!(t < c, "target {t} out of range for {c} classes");
        dist.data_mut()[i * c + t] = 1.0 - smoothing;
    }
    let logp = logits.log_softmax();
    let dist_var = logits.tape().leaf(dist);
    // −mean over rows of Σ_c q(c)·log p(c) = −sum/N.
    (logp * dist_var).sum().mul_scalar(-1.0 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad::Tape;

    #[test]
    fn mse_gradient_is_two_thirds_error() {
        let tape = Tape::new();
        let pred = tape.leaf(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]));
        let loss = mse(pred, &Tensor::from_vec(vec![0.0, 2.0, 5.0], &[3]));
        let grads = tape.backward(loss);
        // d/dp mean((p−t)²) = 2(p−t)/n
        let g = grads.wrt(pred).unwrap();
        assert!(g.allclose(
            &Tensor::from_vec(vec![2.0 / 3.0, 0.0, -4.0 / 3.0], &[3]),
            1e-6
        ));
    }

    #[test]
    fn zero_smoothing_matches_cross_entropy_exactly() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(
            vec![0.2, -0.4, 1.0, 0.5, 0.1, -0.9],
            &[2, 3],
        ));
        let a = cross_entropy_smoothed(logits, &[2, 0], 0.0).value().item();
        let tape2 = Tape::new();
        let logits2 = tape2.leaf(Tensor::from_vec(
            vec![0.2, -0.4, 1.0, 0.5, 0.1, -0.9],
            &[2, 3],
        ));
        let b = logits2.cross_entropy(&[2, 0]).value().item();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn smoothing_matches_hand_computed_mixture() {
        // Smoothed CE = (1−s−off)·CE_onehot + off·Σ_c(−logp_c) per row; check
        // against a direct computation.
        let data = vec![0.3f32, -0.2, 0.6];
        let s = 0.3;
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(data.clone(), &[1, 3]));
        let loss = cross_entropy_smoothed(logits, &[1], s).value().item();
        let logp = Tensor::from_vec(data, &[1, 3]).log_softmax_rows();
        let off = s / 2.0;
        let expected = -(off * logp.data()[0] + (1.0 - s) * logp.data()[1] + off * logp.data()[2]);
        assert!((loss - expected).abs() < 1e-6, "{loss} vs {expected}");
    }

    #[test]
    fn smoothed_loss_gradchecks() {
        ad::gradcheck::check(
            &|_, vars| cross_entropy_smoothed(vars[0], &[1, 2], 0.2),
            &[Tensor::from_vec(
                vec![0.1, 0.5, -0.3, 0.9, -0.6, 0.2],
                &[2, 3],
            )],
            1e-3,
            1e-2,
            1e-2,
        )
        .unwrap();
    }

    #[test]
    #[should_panic(expected = "smoothing must be in")]
    fn rejects_full_smoothing() {
        let tape = Tape::new();
        let logits = tape.leaf(Tensor::zeros(&[1, 2]));
        cross_entropy_smoothed(logits, &[0], 1.0);
    }
}
