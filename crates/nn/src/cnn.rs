//! The configurable convolutional classifier and its LeNet-5 preset —
//! the non-spiking baseline of the reproduced paper.

use ad::{Tape, Var};
use rand::Rng;
use tensor::conv::Conv2dSpec;

use crate::layers::{Conv2d, Linear};
use crate::model::Model;
use crate::params::{BoundParams, Params};

/// One convolutional block: conv → ReLU → optional average pooling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvBlockConfig {
    /// Output channels of the convolution.
    pub out_channels: usize,
    /// Square kernel extent.
    pub kernel: usize,
    /// Zero padding on every side.
    pub padding: usize,
    /// Average-pooling window (and stride) applied after the activation;
    /// `1` disables pooling.
    pub pool: usize,
}

/// Architecture of a [`Cnn`]: a stack of conv blocks followed by
/// fully-connected layers.
///
/// The same topology description is consumed by the spiking twin in the
/// `snn` crate, which is how the paper's "same number of layers and neurons
/// per layer" comparison is enforced structurally.
///
/// # Example
///
/// ```
/// use nn::CnnConfig;
///
/// let cfg = CnnConfig::lenet5(28, 10);
/// assert_eq!(cfg.conv_blocks.len(), 2);
/// assert_eq!(cfg.classes, 10);
/// assert!(cfg.flattened_len() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CnnConfig {
    /// Input channels (1 for grayscale digits).
    pub in_channels: usize,
    /// Input height = width (images are square in this workspace).
    pub in_hw: usize,
    /// Convolutional feature extractor.
    pub conv_blocks: Vec<ConvBlockConfig>,
    /// Hidden fully-connected widths (the final classes layer is implicit).
    pub fc_hidden: Vec<usize>,
    /// Number of output classes.
    pub classes: usize,
}

impl CnnConfig {
    /// Classic LeNet-5 (2 conv + 3 FC) for `hw × hw` grayscale inputs,
    /// as used by the paper's security study (§VI-A).
    pub fn lenet5(hw: usize, classes: usize) -> Self {
        Self {
            in_channels: 1,
            in_hw: hw,
            conv_blocks: vec![
                ConvBlockConfig {
                    out_channels: 6,
                    kernel: 5,
                    padding: 2,
                    pool: 2,
                },
                ConvBlockConfig {
                    out_channels: 16,
                    kernel: 5,
                    padding: 2,
                    pool: 2,
                },
            ],
            fc_hidden: vec![120, 84],
            classes,
        }
    }

    /// The paper's motivational 5-layer network (3 conv + 2 FC, §I-B).
    pub fn paper5(hw: usize, classes: usize) -> Self {
        Self {
            in_channels: 1,
            in_hw: hw,
            conv_blocks: vec![
                ConvBlockConfig {
                    out_channels: 8,
                    kernel: 3,
                    padding: 1,
                    pool: 2,
                },
                ConvBlockConfig {
                    out_channels: 16,
                    kernel: 3,
                    padding: 1,
                    pool: 2,
                },
                ConvBlockConfig {
                    out_channels: 32,
                    kernel: 3,
                    padding: 1,
                    pool: 1,
                },
            ],
            fc_hidden: vec![64],
            classes,
        }
    }

    /// A deliberately small topology for unit tests and CPU-scale grid
    /// exploration: one conv block and one hidden FC layer.
    pub fn tiny(hw: usize, classes: usize) -> Self {
        Self {
            in_channels: 1,
            in_hw: hw,
            conv_blocks: vec![ConvBlockConfig {
                out_channels: 4,
                kernel: 3,
                padding: 1,
                pool: 2,
            }],
            fc_hidden: vec![32],
            classes,
        }
    }

    /// Spatial extent after all conv blocks.
    ///
    /// # Panics
    ///
    /// Panics if some block's pooling window does not divide the extent it
    /// is applied to — i.e. the architecture is inconsistent with `in_hw`.
    pub fn final_hw(&self) -> usize {
        let mut hw = self.in_hw;
        for b in &self.conv_blocks {
            let spec = Conv2dSpec {
                stride: 1,
                padding: b.padding,
            };
            hw = spec.out_extent(hw, b.kernel);
            if b.pool > 1 {
                assert!(
                    hw.is_multiple_of(b.pool),
                    "pool {} does not divide extent {hw}; adjust CnnConfig",
                    b.pool
                );
                hw /= b.pool;
            }
        }
        hw
    }

    /// Flattened feature length entering the first FC layer.
    pub fn flattened_len(&self) -> usize {
        let hw = self.final_hw();
        let channels = self
            .conv_blocks
            .last()
            .map_or(self.in_channels, |b| b.out_channels);
        channels * hw * hw
    }
}

/// A convolutional classifier: conv blocks (conv → ReLU → pool) followed by
/// fully-connected layers with ReLU between them and raw logits at the end.
///
/// See [`CnnConfig::lenet5`] for the paper's baseline and the
/// [crate-level example](crate) for end-to-end usage.
#[derive(Debug, Clone)]
pub struct Cnn {
    convs: Vec<Conv2d>,
    fcs: Vec<Linear>,
    config: CnnConfig,
}

impl Cnn {
    /// Builds the network, registering all weights into `params`.
    ///
    /// # Panics
    ///
    /// Panics if the architecture is inconsistent (see
    /// [`CnnConfig::final_hw`]) or any layer size is zero.
    pub fn new<R: Rng>(params: &mut Params, rng: &mut R, config: &CnnConfig) -> Self {
        let mut convs = Vec::new();
        let mut in_c = config.in_channels;
        for (i, b) in config.conv_blocks.iter().enumerate() {
            convs.push(Conv2d::new(
                params,
                rng,
                &format!("conv{i}"),
                in_c,
                b.out_channels,
                b.kernel,
                Conv2dSpec {
                    stride: 1,
                    padding: b.padding,
                },
            ));
            in_c = b.out_channels;
        }
        let mut fcs = Vec::new();
        let mut in_f = config.flattened_len();
        for (i, &h) in config.fc_hidden.iter().enumerate() {
            fcs.push(Linear::new(params, rng, &format!("fc{i}"), in_f, h));
            in_f = h;
        }
        fcs.push(Linear::new(params, rng, "head", in_f, config.classes));
        Self {
            convs,
            fcs,
            config: config.clone(),
        }
    }

    /// The architecture this network was built from.
    pub fn config(&self) -> &CnnConfig {
        &self.config
    }
}

impl Model for Cnn {
    fn forward<'t>(&self, _tape: &'t Tape, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        let mut h = x;
        for (conv, block) in self.convs.iter().zip(&self.config.conv_blocks) {
            h = conv.forward(bound, h).relu();
            if block.pool > 1 {
                h = h.avg_pool2d(block.pool);
            }
        }
        let n = h.dims()[0];
        let mut h = h.reshape(&[n, self.config.flattened_len()]);
        let (last, hidden) = self.fcs.split_last().expect("Cnn always has a head layer");
        for fc in hidden {
            h = fc.forward(bound, h).relu();
        }
        last.forward(bound, h)
    }

    fn num_classes(&self) -> usize {
        self.config.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn lenet5_dimensions() {
        let cfg = CnnConfig::lenet5(28, 10);
        assert_eq!(cfg.final_hw(), 7);
        assert_eq!(cfg.flattened_len(), 16 * 7 * 7);
    }

    #[test]
    fn forward_produces_logits() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 10));
        let y = crate::logits(&cnn, &params, &Tensor::zeros(&[3, 1, 8, 8]));
        assert_eq!(y.dims(), &[3, 10]);
        assert!(!y.has_non_finite());
    }

    #[test]
    fn paper5_has_three_conv_blocks_and_two_fcs() {
        let cfg = CnnConfig::paper5(16, 10);
        assert_eq!(cfg.conv_blocks.len(), 3);
        // 1 hidden + 1 head = 2 FC layers, matching the paper's 3conv+2fc.
        assert_eq!(cfg.fc_hidden.len(), 1);
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &cfg);
        let y = crate::logits(&cnn, &params, &Tensor::zeros(&[1, 1, 16, 16]));
        assert_eq!(y.dims(), &[1, 10]);
    }

    #[test]
    fn gradients_reach_every_parameter() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
        let tape = ad::Tape::new();
        let bound = params.bind(&tape);
        let x = tape.leaf(tensor::init::uniform(&mut rng, &[2, 1, 8, 8], 0.0, 1.0));
        let loss = cnn.forward(&tape, &bound, x).cross_entropy(&[0, 3]);
        let grads = tape.backward(loss);
        for g in bound.gradients(&grads) {
            assert!(g.max_abs() > 0.0, "a parameter received no gradient");
        }
    }
}
