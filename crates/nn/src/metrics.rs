//! Classification metrics: accuracy and confusion matrices.

use tensor::Tensor;

/// Fraction of predictions matching the labels.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
///
/// # Example
///
/// ```
/// let acc = nn::metrics::accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]);
/// assert_eq!(acc, 0.75);
/// ```
pub fn accuracy(predictions: &[usize], labels: &[usize]) -> f32 {
    assert_eq!(
        predictions.len(),
        labels.len(),
        "{} predictions for {} labels",
        predictions.len(),
        labels.len()
    );
    assert!(
        !labels.is_empty(),
        "accuracy of an empty batch is undefined"
    );
    let correct = predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count();
    correct as f32 / labels.len() as f32
}

/// Accuracy computed directly from a `[N, C]` logits tensor.
///
/// # Panics
///
/// Panics under the same conditions as [`accuracy`], or if `logits` is not
/// rank 2.
pub fn accuracy_from_logits(logits: &Tensor, labels: &[usize]) -> f32 {
    accuracy(&logits.argmax_rows(), labels)
}

/// A `C × C` confusion matrix; entry `(true, predicted)` counts samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    classes: usize,
    counts: Vec<u32>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel prediction/label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any value is `>= classes`.
    pub fn new(classes: usize, predictions: &[usize], labels: &[usize]) -> Self {
        assert_eq!(predictions.len(), labels.len());
        let mut counts = vec![0u32; classes * classes];
        for (&p, &l) in predictions.iter().zip(labels) {
            assert!(p < classes && l < classes, "class out of range");
            counts[l * classes + p] += 1;
        }
        Self { classes, counts }
    }

    /// Count of samples with true class `label` predicted as `pred`.
    pub fn count(&self, label: usize, pred: usize) -> u32 {
        self.counts[label * self.classes + pred]
    }

    /// Number of classes.
    pub fn classes(&self) -> usize {
        self.classes
    }

    /// Per-class recall (`None` for classes with no samples).
    pub fn recall(&self, label: usize) -> Option<f32> {
        let row = &self.counts[label * self.classes..(label + 1) * self.classes];
        let total: u32 = row.iter().sum();
        (total > 0).then(|| row[label] as f32 / total as f32)
    }

    /// Overall accuracy implied by the matrix.
    pub fn accuracy(&self) -> f32 {
        let total: u32 = self.counts.iter().sum();
        let diag: u32 = (0..self.classes).map(|i| self.count(i, i)).sum();
        if total == 0 {
            0.0
        } else {
            diag as f32 / total as f32
        }
    }

    /// Per-class precision (`None` for classes never predicted).
    pub fn precision(&self, pred: usize) -> Option<f32> {
        let total: u32 = (0..self.classes).map(|l| self.count(l, pred)).sum();
        (total > 0).then(|| self.count(pred, pred) as f32 / total as f32)
    }

    /// Per-class F1 score (`None` when precision or recall is undefined or
    /// both are zero).
    pub fn f1(&self, class: usize) -> Option<f32> {
        let p = self.precision(class)?;
        let r = self.recall(class)?;
        if p + r == 0.0 {
            None
        } else {
            Some(2.0 * p * r / (p + r))
        }
    }

    /// Macro-averaged F1 over the classes where F1 is defined; `None` if it
    /// is defined for no class.
    pub fn macro_f1(&self) -> Option<f32> {
        let f1s: Vec<f32> = (0..self.classes).filter_map(|c| self.f1(c)).collect();
        if f1s.is_empty() {
            None
        } else {
            Some(f1s.iter().sum::<f32>() / f1s.len() as f32)
        }
    }
}

/// Top-`k` accuracy from a `[N, C]` logits tensor: a sample counts as
/// correct when its label is among the `k` highest-scoring classes.
///
/// # Panics
///
/// Panics if `logits` is not rank 2, `k` is zero or exceeds the class
/// count, or the label count does not match `N`.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let logits = Tensor::from_vec(vec![0.1, 0.9, 0.5], &[1, 3]);
/// assert_eq!(nn::metrics::top_k_accuracy(&logits, &[2], 1), 0.0);
/// assert_eq!(nn::metrics::top_k_accuracy(&logits, &[2], 2), 1.0);
/// ```
pub fn top_k_accuracy(logits: &Tensor, labels: &[usize], k: usize) -> f32 {
    let (n, c) = match logits.dims() {
        [n, c] => (*n, *c),
        d => panic!("top_k_accuracy requires rank-2 logits, got {d:?}"),
    };
    assert!(k > 0 && k <= c, "k must be in 1..={c}, got {k}");
    assert_eq!(labels.len(), n, "{} labels for {n} rows", labels.len());
    let mut correct = 0usize;
    for (row, &label) in logits.data().chunks(c).zip(labels) {
        let target = row[label];
        // Rank = number of classes scoring strictly higher than the label.
        let higher = row.iter().filter(|&&v| v > target).count();
        if higher < k {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[0], &[0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn accuracy_rejects_empty() {
        accuracy(&[], &[]);
    }

    #[test]
    fn accuracy_from_logits_argmaxes() {
        let logits = Tensor::from_vec(vec![0.1, 0.9, 0.8, 0.2], &[2, 2]);
        assert_eq!(accuracy_from_logits(&logits, &[1, 0]), 1.0);
        assert_eq!(accuracy_from_logits(&logits, &[0, 0]), 0.5);
    }

    #[test]
    fn confusion_matrix_counts_and_recall() {
        let m = ConfusionMatrix::new(3, &[0, 1, 1, 2], &[0, 1, 2, 2]);
        assert_eq!(m.count(0, 0), 1);
        assert_eq!(m.count(2, 1), 1);
        assert_eq!(m.count(2, 2), 1);
        assert_eq!(m.recall(2), Some(0.5));
        assert_eq!(m.recall(0), Some(1.0));
        assert_eq!(m.accuracy(), 0.75);
    }

    #[test]
    fn recall_of_absent_class_is_none() {
        let m = ConfusionMatrix::new(3, &[0], &[0]);
        assert_eq!(m.recall(1), None);
    }

    #[test]
    fn precision_recall_f1_hand_computed() {
        // preds:  0 0 1 1 1, labels: 0 1 1 1 0
        let m = ConfusionMatrix::new(2, &[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0]);
        // Class 1: predicted 3 times, correct 2 -> precision 2/3;
        // present 3 times, hit 2 -> recall 2/3; F1 = 2/3.
        assert!((m.precision(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.recall(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!((m.f1(1).unwrap() - 2.0 / 3.0).abs() < 1e-6);
        assert!(m.macro_f1().is_some());
    }

    #[test]
    fn precision_of_never_predicted_class_is_none() {
        let m = ConfusionMatrix::new(3, &[0, 0], &[0, 2]);
        assert_eq!(m.precision(1), None);
        assert_eq!(m.f1(1), None);
    }

    #[test]
    fn top_k_counts_rank_correctly() {
        let logits = Tensor::from_vec(
            vec![
                0.1, 0.9, 0.5, // label 2 is rank 2
                0.8, 0.1, 0.1, // label 0 is rank 1
            ],
            &[2, 3],
        );
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 1), 0.5);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 2), 1.0);
        assert_eq!(top_k_accuracy(&logits, &[2, 0], 3), 1.0);
    }

    #[test]
    #[should_panic(expected = "k must be in")]
    fn top_k_rejects_oversized_k() {
        top_k_accuracy(&Tensor::zeros(&[1, 2]), &[0], 3);
    }
}
