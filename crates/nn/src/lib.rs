//! Neural-network building blocks over the [`ad`] autodiff tape.
//!
//! This crate provides everything needed to train the *non-spiking* baseline
//! of the reproduced paper — a LeNet-5 convolutional network — and the shared
//! machinery the spiking crate builds on:
//!
//! * [`Params`] / [`ParamId`] — a flat store of named weight tensors that is
//!   bound to a fresh tape on every forward pass,
//! * layers ([`Linear`], [`Conv2d`]) with Kaiming initialization,
//! * [`Model`] — the forward-pass abstraction shared by CNNs and SNNs,
//! * [`Cnn`] — a configurable conv/FC stack with the [`CnnConfig::lenet5`]
//!   preset used throughout the paper,
//! * optimizers ([`Sgd`], [`Adam`]),
//! * a [`train`] loop and [`metrics`],
//! * [`AdversarialTarget`] — the white-box interface consumed by the
//!   `attacks` crate (logits + loss gradient with respect to the *input*).
//!
//! # Example
//!
//! ```
//! use nn::{Cnn, CnnConfig, Params};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 10));
//! let x = tensor::Tensor::zeros(&[2, 1, 8, 8]);
//! let logits = nn::logits(&cnn, &params, &x);
//! assert_eq!(logits.dims(), &[2, 10]);
//! ```

#![forbid(unsafe_code)]

mod cnn;
mod layers;
mod model;
mod optim;
mod params;
mod target;

pub mod losses;
pub mod metrics;
pub mod schedule;
pub mod train;

pub use cnn::{Cnn, CnnConfig, ConvBlockConfig};
pub use layers::{Conv2d, Linear};
pub use model::{logits, predict, Model};
pub use optim::{clip_global_norm, Adam, Optimizer, Sgd};
pub use params::{BoundParams, ParamId, Params, PrepackCache, Prepacked};
pub use target::{AdversarialTarget, Classifier};
