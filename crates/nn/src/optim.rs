//! First-order optimizers over a [`Params`] store.

use tensor::Tensor;

use crate::params::Params;

/// A gradient-based parameter update rule.
///
/// `grads[i]` must be the gradient of parameter `i` in registration order —
/// exactly what [`BoundParams::gradients`](crate::BoundParams::gradients)
/// returns.
pub trait Optimizer {
    /// Applies one update step in place.
    ///
    /// # Panics
    ///
    /// Implementations panic if `grads.len() != params.len()` or any
    /// gradient has the wrong shape.
    fn step(&mut self, params: &mut Params, grads: &[Tensor]);
}

/// Scales the gradient set so its *global* L2 norm does not exceed
/// `max_norm` (the usual stabiliser for surrogate-gradient BPTT, where
/// sharp surrogates occasionally produce gradient spikes).
///
/// Returns the pre-clipping global norm.
///
/// # Panics
///
/// Panics if `max_norm` is not positive.
///
/// # Example
///
/// ```
/// use nn::clip_global_norm;
/// use tensor::Tensor;
///
/// let mut grads = vec![Tensor::from_vec(vec![3.0, 4.0], &[2])];
/// let norm = clip_global_norm(&mut grads, 1.0);
/// assert_eq!(norm, 5.0);
/// assert!((grads[0].norm() - 1.0).abs() < 1e-6);
/// ```
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "max_norm must be positive, got {max_norm}");
    let total: f32 = grads
        .iter()
        .map(|g| g.data().iter().map(|v| v * v).sum::<f32>())
        .sum::<f32>()
        .sqrt();
    if total > max_norm {
        let scale = max_norm / total;
        for g in grads.iter_mut() {
            g.map_inplace(|v| v * scale);
        }
    }
    total
}

/// Stochastic gradient descent with classical momentum.
///
/// # Example
///
/// ```
/// use nn::{Optimizer, Params, Sgd};
/// use tensor::Tensor;
///
/// let mut params = Params::new();
/// let w = params.register("w", Tensor::scalar(1.0));
/// let mut opt = Sgd::new(0.5, 0.0);
/// opt.step(&mut params, &[Tensor::scalar(2.0)]);
/// assert_eq!(params.get(w).item(), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates SGD with learning rate `lr` and momentum factor `momentum`
    /// (`0.0` disables momentum).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `momentum` is outside `[0, 1)`.
    pub fn new(lr: f32, momentum: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!(
            (0.0..1.0).contains(&momentum),
            "momentum must be in [0, 1), got {momentum}"
        );
        Self {
            lr,
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &[Tensor]) {
        assert_eq!(
            grads.len(),
            params.len(),
            "got {} gradients for {} parameters",
            grads.len(),
            params.len()
        );
        if self.velocity.is_empty() && self.momentum > 0.0 {
            self.velocity = grads.iter().map(|g| Tensor::zeros(g.dims())).collect();
        }
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            if self.momentum > 0.0 {
                let v = &mut self.velocity[i];
                *v = v.mul_scalar(self.momentum).add(&grads[i]);
                params
                    .get_mut(id)
                    .add_scaled_inplace(&self.velocity[i].clone(), -self.lr);
            } else {
                params.get_mut(id).add_scaled_inplace(&grads[i], -self.lr);
            }
        }
    }
}

/// Adam ([Kingma & Ba, 2015]) with bias-corrected moment estimates — the
/// optimizer used for all experiments in this reproduction because the SNN
/// surrogate-gradient landscape trains poorly under plain SGD.
///
/// [Kingma & Ba, 2015]: https://arxiv.org/abs/1412.6980
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the canonical defaults `β₁ = 0.9`, `β₂ = 0.999`,
    /// `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Returns `self` with decoupled weight decay (AdamW): each step also
    /// shrinks every weight by `lr · weight_decay · w`.
    ///
    /// # Panics
    ///
    /// Panics if `weight_decay` is negative.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        assert!(
            weight_decay >= 0.0,
            "weight decay must be non-negative, got {weight_decay}"
        );
        self.weight_decay = weight_decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Replaces the learning rate (for schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        self.lr = lr;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &[Tensor]) {
        assert_eq!(
            grads.len(),
            params.len(),
            "got {} gradients for {} parameters",
            grads.len(),
            params.len()
        );
        if self.m.is_empty() {
            self.m = grads.iter().map(|g| Tensor::zeros(g.dims())).collect();
            self.v = grads.iter().map(|g| Tensor::zeros(g.dims())).collect();
        }
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<_> = params.iter().map(|(id, _)| id).collect();
        for (i, id) in ids.into_iter().enumerate() {
            let g = &grads[i];
            let m = &mut self.m[i];
            *m = m
                .mul_scalar(self.beta1)
                .add(&g.mul_scalar(1.0 - self.beta1));
            let v = &mut self.v[i];
            *v = v
                .mul_scalar(self.beta2)
                .add(&g.mul(g).mul_scalar(1.0 - self.beta2));
            let m_hat = self.m[i].mul_scalar(1.0 / bc1);
            let v_hat = self.v[i].mul_scalar(1.0 / bc2);
            let update = m_hat.zip_map(&v_hat, |mv, vv| mv / (vv.sqrt() + self.eps));
            let w = params.get_mut(id);
            if self.weight_decay > 0.0 {
                let decayed = w.mul_scalar(self.weight_decay);
                w.add_scaled_inplace(&decayed, -self.lr);
            }
            w.add_scaled_inplace(&update, -self.lr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quadratic_grad(params: &Params) -> Vec<Tensor> {
        // loss = Σ w² → grad = 2w
        params.iter().map(|(_, w)| w.mul_scalar(2.0)).collect()
    }

    #[test]
    fn sgd_descends_quadratic() {
        let mut params = Params::new();
        let w = params.register("w", Tensor::from_vec(vec![1.0, -2.0], &[2]));
        let mut opt = Sgd::new(0.1, 0.0);
        for _ in 0..50 {
            let g = quadratic_grad(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.get(w).max_abs() < 1e-3);
    }

    #[test]
    fn sgd_momentum_accelerates() {
        let run = |momentum: f32| {
            let mut params = Params::new();
            let w = params.register("w", Tensor::scalar(1.0));
            let mut opt = Sgd::new(0.01, momentum);
            for _ in 0..20 {
                let g = quadratic_grad(&params);
                opt.step(&mut params, &g);
            }
            params.get(w).item().abs()
        };
        assert!(run(0.9) < run(0.0));
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut params = Params::new();
        let w = params.register("w", Tensor::from_vec(vec![3.0, -1.5, 0.5], &[3]));
        let mut opt = Adam::new(0.1);
        for _ in 0..200 {
            let g = quadratic_grad(&params);
            opt.step(&mut params, &g);
        }
        assert!(params.get(w).max_abs() < 1e-2);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        Sgd::new(0.0, 0.0);
    }

    #[test]
    fn clip_leaves_small_gradients_untouched() {
        let mut grads = vec![Tensor::from_vec(vec![0.3, 0.4], &[2])];
        let norm = clip_global_norm(&mut grads, 1.0);
        assert!((norm - 0.5).abs() < 1e-6);
        assert_eq!(grads[0].data(), &[0.3, 0.4]);
    }

    #[test]
    fn clip_uses_global_norm_across_tensors() {
        let mut grads = vec![
            Tensor::from_vec(vec![3.0], &[1]),
            Tensor::from_vec(vec![4.0], &[1]),
        ];
        clip_global_norm(&mut grads, 1.0);
        // 3-4-5 triangle scaled to unit norm.
        assert!((grads[0].item() - 0.6).abs() < 1e-6);
        assert!((grads[1].item() - 0.8).abs() < 1e-6);
    }

    #[test]
    fn adamw_decays_weights_with_zero_gradient() {
        let mut params = Params::new();
        let w = params.register("w", Tensor::scalar(1.0));
        let mut opt = Adam::new(0.1).with_weight_decay(0.1);
        for _ in 0..10 {
            opt.step(&mut params, &[Tensor::scalar(0.0)]);
        }
        let v = params.get(w).item();
        assert!(v < 1.0 && v > 0.8, "decay should shrink the weight: {v}");
    }

    #[test]
    fn adam_set_lr_takes_effect() {
        let mut params = Params::new();
        params.register("w", Tensor::scalar(1.0));
        let mut opt = Adam::new(1e-9);
        opt.set_lr(0.5);
        assert_eq!(opt.lr(), 0.5);
    }

    #[test]
    #[should_panic(expected = "gradients for")]
    fn step_rejects_wrong_grad_count() {
        let mut params = Params::new();
        params.register("w", Tensor::scalar(0.0));
        Sgd::new(0.1, 0.0).step(&mut params, &[]);
    }
}
