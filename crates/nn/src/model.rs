//! The forward-pass abstraction shared by spiking and non-spiking networks.

use ad::{Tape, Var};
use tensor::Tensor;

use crate::params::{BoundParams, Params};

/// A differentiable classifier: maps a `[N, C, H, W]` image batch to
/// `[N, classes]` logits on a caller-provided tape.
///
/// Both the CNN baseline ([`Cnn`](crate::Cnn)) and the spiking networks in
/// the `snn` crate implement this trait, which is what lets the attack and
/// exploration code treat them uniformly.
pub trait Model {
    /// Records the forward pass of `x` on `x`'s tape and returns the logits.
    fn forward<'t>(&self, tape: &'t Tape, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t>;

    /// Number of output classes.
    fn num_classes(&self) -> usize;
}

/// Runs a forward pass on a throwaway tape and returns the logits tensor.
///
/// Convenience for inference; training and attacks build their own tapes so
/// they can call `backward`.
pub fn logits<M: Model>(model: &M, params: &Params, x: &Tensor) -> Tensor {
    let tape = Tape::new();
    let bound = params.bind(&tape);
    let input = tape.leaf(x.clone());
    model.forward(&tape, &bound, input).value()
}

/// Predicted class per sample.
pub fn predict<M: Model>(model: &M, params: &Params, x: &Tensor) -> Vec<usize> {
    logits(model, params, x).argmax_rows()
}
