//! The white-box attack interface.
//!
//! The paper's threat model (§IV) gives the adversary full access to the
//! victim network — architecture, weights and structural parameters — and
//! generates perturbations from the gradient of the loss *with respect to
//! the input*. [`AdversarialTarget`] is exactly that contract; the `attacks`
//! crate is written against it and never sees a concrete network type.

use ad::Tape;
use tensor::Tensor;

use crate::model::Model;
use crate::params::Params;

/// A classifier that exposes everything a white-box adversary needs.
pub trait AdversarialTarget {
    /// Number of output classes.
    fn num_classes(&self) -> usize;

    /// Raw logits for a `[N, C, H, W]` batch.
    fn logits(&self, x: &Tensor) -> Tensor;

    /// Cross-entropy loss of the batch and its gradient with respect to the
    /// input pixels — the quantity PGD ascends.
    fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor);

    /// Predicted class per sample (derived from [`AdversarialTarget::logits`]).
    fn predict(&self, x: &Tensor) -> Vec<usize> {
        self.logits(x).argmax_rows()
    }
}

/// Bundles a [`Model`] with its trained [`Params`] into a self-contained,
/// attackable classifier.
///
/// # Example
///
/// ```
/// use nn::{AdversarialTarget, Classifier, Cnn, CnnConfig, Params};
/// use rand::SeedableRng;
/// use tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut params = Params::new();
/// let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 10));
/// let clf = Classifier::new(cnn, params);
/// let x = Tensor::zeros(&[1, 1, 8, 8]);
/// let (loss, grad) = clf.loss_and_input_grad(&x, &[3]);
/// assert!(loss > 0.0);
/// assert_eq!(grad.dims(), x.dims());
/// ```
#[derive(Debug, Clone)]
pub struct Classifier<M> {
    model: M,
    params: Params,
}

impl<M: Model> Classifier<M> {
    /// Wraps a model and its parameter store.
    pub fn new(model: M, params: Params) -> Self {
        Self { model, params }
    }

    /// The wrapped model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// The wrapped parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Mutable access to the parameters (for training in place).
    pub fn params_mut(&mut self) -> &mut Params {
        &mut self.params
    }

    /// Splits the classifier back into model and parameters.
    pub fn into_parts(self) -> (M, Params) {
        (self.model, self.params)
    }

    /// Builds the prepacked GEMM panels for every eligible parameter now,
    /// so the first forward after boot performs zero packing work. Purely
    /// a warm-up: values are bitwise-identical whether or not it is called
    /// (the cache would otherwise fill on the first bind).
    pub fn warm_prepack(&self) {
        self.params.warm_prepack();
    }
}

impl<M: Model> AdversarialTarget for Classifier<M> {
    fn num_classes(&self) -> usize {
        self.model.num_classes()
    }

    fn logits(&self, x: &Tensor) -> Tensor {
        crate::model::logits(&self.model, &self.params, x)
    }

    fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let input = tape.leaf(x.clone());
        let logits = self.model.forward(&tape, &bound, input);
        let loss = logits.cross_entropy(labels);
        let loss_value = loss.value().item();
        let grads = tape.backward(loss);
        (loss_value, grads.wrt_or_zero(input, x.dims()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnn::{Cnn, CnnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_classifier(seed: u64) -> Classifier<Cnn> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
        Classifier::new(cnn, params)
    }

    #[test]
    fn input_gradient_has_input_shape_and_signal() {
        let clf = tiny_classifier(0);
        let mut rng = StdRng::seed_from_u64(1);
        let x = tensor::init::uniform(&mut rng, &[2, 1, 8, 8], 0.0, 1.0);
        let (loss, grad) = clf.loss_and_input_grad(&x, &[0, 1]);
        assert!(loss.is_finite() && loss > 0.0);
        assert_eq!(grad.dims(), x.dims());
        assert!(grad.max_abs() > 0.0, "white-box gradient must be non-zero");
    }

    #[test]
    fn predict_is_argmax_of_logits() {
        let clf = tiny_classifier(2);
        let mut rng = StdRng::seed_from_u64(3);
        let x = tensor::init::uniform(&mut rng, &[3, 1, 8, 8], 0.0, 1.0);
        assert_eq!(clf.predict(&x), clf.logits(&x).argmax_rows());
    }

    #[test]
    fn loss_grad_points_uphill() {
        // Stepping the input along +grad must not decrease the loss.
        let clf = tiny_classifier(4);
        let mut rng = StdRng::seed_from_u64(5);
        let x = tensor::init::uniform(&mut rng, &[1, 1, 8, 8], 0.2, 0.8);
        let labels = [2usize];
        let (loss0, grad) = clf.loss_and_input_grad(&x, &labels);
        let stepped = x.add(&grad.mul_scalar(1e-2));
        let (loss1, _) = clf.loss_and_input_grad(&stepped, &labels);
        assert!(
            loss1 >= loss0 - 1e-5,
            "ascending the gradient lowered the loss: {loss0} -> {loss1}"
        );
    }
}
