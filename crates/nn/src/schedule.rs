//! Learning-rate schedules.
//!
//! Schedules are plain functions of the epoch index; the training driver
//! queries [`LrSchedule::lr_at`] and pushes the value into the optimizer.
//! This keeps optimizers stateless with respect to time and makes schedules
//! trivially testable.

/// A learning-rate schedule over epochs.
///
/// # Example
///
/// ```
/// use nn::schedule::LrSchedule;
///
/// let sched = LrSchedule::step(0.1, 2, 0.5);
/// assert_eq!(sched.lr_at(0), 0.1);
/// assert_eq!(sched.lr_at(2), 0.05);
/// assert_eq!(sched.lr_at(4), 0.025);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// The same rate forever.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Multiply by `gamma` every `every` epochs.
    Step {
        /// Initial rate.
        lr: f32,
        /// Epochs between decays.
        every: usize,
        /// Multiplicative decay factor.
        gamma: f32,
    },
    /// Cosine annealing from `lr` down to `min_lr` over `total_epochs`.
    Cosine {
        /// Initial rate.
        lr: f32,
        /// Final rate.
        min_lr: f32,
        /// Horizon of the anneal.
        total_epochs: usize,
    },
}

impl LrSchedule {
    /// A constant schedule.
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not positive.
    pub fn constant(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        LrSchedule::Constant { lr }
    }

    /// A step-decay schedule.
    ///
    /// # Panics
    ///
    /// Panics if `lr` or `gamma` is not positive, or `every` is zero.
    pub fn step(lr: f32, every: usize, gamma: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive, got {lr}");
        assert!(every > 0, "decay interval must be positive");
        assert!(gamma > 0.0, "decay factor must be positive, got {gamma}");
        LrSchedule::Step { lr, every, gamma }
    }

    /// A cosine-annealing schedule.
    ///
    /// # Panics
    ///
    /// Panics if rates are not positive, `min_lr > lr`, or the horizon is
    /// zero.
    pub fn cosine(lr: f32, min_lr: f32, total_epochs: usize) -> Self {
        assert!(lr > 0.0 && min_lr > 0.0, "learning rates must be positive");
        assert!(min_lr <= lr, "min_lr {min_lr} exceeds initial lr {lr}");
        assert!(total_epochs > 0, "anneal horizon must be positive");
        LrSchedule::Cosine {
            lr,
            min_lr,
            total_epochs,
        }
    }

    /// The learning rate to use for `epoch` (0-based).
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Step { lr, every, gamma } => lr * gamma.powi((epoch / every) as i32),
            LrSchedule::Cosine {
                lr,
                min_lr,
                total_epochs,
            } => {
                let t = (epoch.min(total_epochs)) as f32 / total_epochs as f32;
                min_lr + 0.5 * (lr - min_lr) * (1.0 + (std::f32::consts::PI * t).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_never_changes() {
        let s = LrSchedule::constant(0.01);
        assert_eq!(s.lr_at(0), 0.01);
        assert_eq!(s.lr_at(1000), 0.01);
    }

    #[test]
    fn step_decays_at_boundaries() {
        let s = LrSchedule::step(1.0, 3, 0.1);
        assert_eq!(s.lr_at(0), 1.0);
        assert_eq!(s.lr_at(2), 1.0);
        assert!((s.lr_at(3) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(6) - 0.01).abs() < 1e-7);
    }

    #[test]
    fn cosine_is_monotone_decreasing_to_min() {
        let s = LrSchedule::cosine(0.1, 0.001, 10);
        let mut prev = f32::INFINITY;
        for e in 0..=10 {
            let lr = s.lr_at(e);
            assert!(lr <= prev + 1e-7, "cosine rose at epoch {e}");
            prev = lr;
        }
        assert!((s.lr_at(10) - 0.001).abs() < 1e-6);
        assert_eq!(s.lr_at(0), 0.1);
        // Past the horizon the schedule stays at the floor.
        assert!((s.lr_at(50) - 0.001).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "min_lr")]
    fn cosine_rejects_inverted_bounds() {
        LrSchedule::cosine(0.001, 0.1, 10);
    }
}
