//! Trainable layers: fully-connected and convolutional.

use ad::Var;
use rand::Rng;
use tensor::conv::Conv2dSpec;
use tensor::init;

use crate::params::{BoundParams, ParamId, Params};

/// A fully-connected layer `y = x·Wᵀ + b` over `[N, in_features]` inputs.
///
/// Weights are stored as `[in_features, out_features]` so the forward pass
/// is a single matmul without transposition.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use nn::{Linear, Params};
/// use rand::SeedableRng;
/// use tensor::Tensor;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut params = Params::new();
/// let fc = Linear::new(&mut params, &mut rng, "fc", 4, 3);
/// let tape = Tape::new();
/// let bound = params.bind(&tape);
/// let x = tape.leaf(Tensor::zeros(&[2, 4]));
/// assert_eq!(fc.forward(&bound, x).dims(), vec![2, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    in_features: usize,
    out_features: usize,
}

impl Linear {
    /// Registers Kaiming-initialized weights under `name.w` / `name.b`.
    ///
    /// # Panics
    ///
    /// Panics if either feature count is zero.
    pub fn new<R: Rng>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        in_features: usize,
        out_features: usize,
    ) -> Self {
        assert!(
            in_features > 0 && out_features > 0,
            "feature counts must be positive"
        );
        let w = params.register(
            format!("{name}.w"),
            init::kaiming_uniform(rng, &[in_features, out_features], in_features),
        );
        let b = params.register(format!("{name}.b"), tensor::Tensor::zeros(&[out_features]));
        Self {
            w,
            b,
            in_features,
            out_features,
        }
    }

    /// Applies the layer to a `[N, in_features]` batch.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `in_features` columns.
    pub fn forward<'t>(&self, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        let w = bound.get(self.w);
        let y = match bound.prepacked_mat(self.w) {
            Some(pb) => x.matmul_prepacked(w, pb),
            None => x.matmul(w),
        };
        y.add_bias(bound.get(self.b))
    }

    /// Applies the layer to a `[N, in_features]` batch whose rows are
    /// expected to be sparse (spike trains).
    ///
    /// Identical to [`Linear::forward`] for finite weights — the product
    /// switches to an event-driven gather when the input is sparse enough
    /// (see [`tensor::event`]) and falls back to the dense kernel
    /// otherwise, so dense inputs pay only a density scan.
    ///
    /// # Panics
    ///
    /// Panics if `x` does not have `in_features` columns.
    pub fn forward_events<'t>(&self, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        let w = bound.get(self.w);
        let y = match bound.prepacked_mat(self.w) {
            Some(pb) => x.matmul_events_prepacked(w, pb),
            None => x.matmul_events(w),
        };
        y.add_bias(bound.get(self.b))
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The weight parameter id (`[in, out]`).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// The bias parameter id (`[out]`).
    pub fn bias(&self) -> ParamId {
        self.b
    }
}

/// A 2-D convolution layer over `[N, C, H, W]` feature maps.
#[derive(Debug, Clone)]
pub struct Conv2d {
    w: ParamId,
    b: ParamId,
    in_channels: usize,
    out_channels: usize,
    kernel: usize,
    spec: Conv2dSpec,
}

impl Conv2d {
    /// Registers Kaiming-initialized kernels under `name.w` / `name.b`.
    ///
    /// # Panics
    ///
    /// Panics if any of the structural sizes is zero.
    pub fn new<R: Rng>(
        params: &mut Params,
        rng: &mut R,
        name: &str,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        spec: Conv2dSpec,
    ) -> Self {
        assert!(
            in_channels > 0 && out_channels > 0 && kernel > 0,
            "conv sizes must be positive"
        );
        let fan_in = in_channels * kernel * kernel;
        let w = params.register(
            format!("{name}.w"),
            init::kaiming_uniform(rng, &[out_channels, in_channels, kernel, kernel], fan_in),
        );
        let b = params.register(format!("{name}.b"), tensor::Tensor::zeros(&[out_channels]));
        Self {
            w,
            b,
            in_channels,
            out_channels,
            kernel,
            spec,
        }
    }

    /// Applies the convolution to a `[N, in_channels, H, W]` batch.
    ///
    /// # Panics
    ///
    /// Panics on channel or extent mismatches (see [`tensor::conv::conv2d`]).
    pub fn forward<'t>(&self, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        let w = bound.get(self.w);
        let y = match bound.prepacked_conv(self.w) {
            Some(pw) => x.conv2d_prepacked(w, pw, self.spec),
            None => x.conv2d(w, self.spec),
        };
        y.add_bias(bound.get(self.b))
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.in_channels
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }

    /// Square kernel extent.
    pub fn kernel(&self) -> usize {
        self.kernel
    }

    /// Stride/padding specification.
    pub fn spec(&self) -> Conv2dSpec {
        self.spec
    }

    /// The kernel parameter id (`[out, in, k, k]`).
    pub fn weight(&self) -> ParamId {
        self.w
    }

    /// The bias parameter id (`[out]`).
    pub fn bias(&self) -> ParamId {
        self.b
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad::Tape;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tensor::Tensor;

    #[test]
    fn linear_shapes_and_bias() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut params = Params::new();
        let fc = Linear::new(&mut params, &mut rng, "fc", 3, 2);
        // Zero input -> output equals bias (zeros at init).
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let y = fc.forward(&bound, tape.leaf(Tensor::zeros(&[4, 3])));
        assert_eq!(y.dims(), vec![4, 2]);
        assert_eq!(y.value().data(), &[0.0; 8]);
    }

    #[test]
    fn linear_trains_toward_target() {
        // One SGD step moves the loss down on a tiny regression problem.
        let mut rng = StdRng::seed_from_u64(1);
        let mut params = Params::new();
        let fc = Linear::new(&mut params, &mut rng, "fc", 2, 1);
        let x = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2]);
        let loss_at = |params: &Params| {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let y = fc.forward(&bound, tape.leaf(x.clone()));
            let target = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[2, 1]));
            let d = y - target;
            (d * d).mean().value().item()
        };
        let before = loss_at(&params);
        // Manual SGD step.
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let y = fc.forward(&bound, tape.leaf(x.clone()));
        let target = tape.leaf(Tensor::from_vec(vec![1.0, -1.0], &[2, 1]));
        let d = y - target;
        let grads = tape.backward((d * d).mean());
        for ((id, _), g) in params.clone().iter().zip(bound.gradients(&grads)) {
            params.get_mut(id).add_scaled_inplace(&g, -0.1);
        }
        assert!(loss_at(&params) < before);
    }

    #[test]
    fn conv_layer_output_extent() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut params = Params::new();
        let conv = Conv2d::new(
            &mut params,
            &mut rng,
            "c1",
            1,
            4,
            3,
            Conv2dSpec {
                stride: 1,
                padding: 1,
            },
        );
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let y = conv.forward(&bound, tape.leaf(Tensor::zeros(&[2, 1, 8, 8])));
        assert_eq!(y.dims(), vec![2, 4, 8, 8]);
        assert_eq!(conv.out_channels(), 4);
    }

    /// The prepack cache must be invisible in values: forwards through a
    /// cold cache, a warm cache, and a just-invalidated cache all match
    /// the pack-per-call product bitwise — and a mutation through
    /// `get_mut` is always visible to the next forward.
    #[test]
    fn prepacked_forward_uses_fresh_weights_after_mutation() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut params = Params::new();
        let fc = Linear::new(&mut params, &mut rng, "fc", 5, 4);
        let x = Tensor::from_vec((0..15).map(|i| (i as f32) * 0.3 - 2.0).collect(), &[3, 5]);
        let check = |params: &Params| {
            let want = x
                .matmul(params.get(fc.weight()))
                .add_bias(params.get(fc.bias()));
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let y = fc.forward(&bound, tape.leaf(x.clone()));
            for (a, b) in y.value().data().iter().zip(want.data()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        };
        check(&params); // cold cache: builds
        check(&params); // warm cache: reuses
        params.get_mut(fc.weight()).data_mut()[2] += 1.5;
        check(&params); // invalidated: must see the fresh weight
        check(&params); // rebuilt: warm again
    }

    #[test]
    fn param_names_are_qualified() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut params = Params::new();
        let fc = Linear::new(&mut params, &mut rng, "head", 2, 2);
        assert_eq!(params.name(fc.weight()), "head.w");
        assert_eq!(params.name(fc.bias()), "head.b");
    }
}
