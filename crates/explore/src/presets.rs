//! Ready-made experiment configurations, one per paper figure.
//!
//! The paper's experiments ran LeNet-5 on 28×28 MNIST with `T` up to 80 on
//! a Tesla P100. The default presets here reproduce the same *protocol* at
//! CPU scale (smaller images, an MLP/tiny-CNN topology, shorter windows and
//! test subsets); [`paper_scale`] carries the original dimensions and runs
//! unchanged on bigger hardware. `DESIGN.md` §2 documents the substitution.

use snn::{Decoder, Encoder, NeuronModel, ResetMode, SurrogateShape};

use crate::config::{ExperimentConfig, Topology};
use crate::grid::GridSpec;

/// Standard deviation used to normalise MNIST pixels in the PyTorch/Norse
/// stack the paper builds on.
///
/// The paper's ε axis lives in *normalised* units: its PGD perturbs images
/// whose pixels were scaled by `1/0.3081`, so a paper budget of ε = 1.5
/// corresponds to `1.5 × 0.3081 ≈ 0.46` on this workspace's raw `[0, 1]`
/// pixel scale. All presets attack in pixel scale; use
/// [`paper_eps_to_pixel`] / [`pixel_eps_to_paper`] to convert axes when
/// comparing against the paper's figures.
pub const MNIST_STD: f32 = 0.3081;

/// Converts a noise budget from the paper's normalised axis to `[0, 1]`
/// pixel scale.
pub fn paper_eps_to_pixel(eps: f32) -> f32 {
    eps * MNIST_STD
}

/// Converts a `[0, 1]`-scale budget back to the paper's normalised axis.
pub fn pixel_eps_to_paper(eps: f32) -> f32 {
    eps / MNIST_STD
}

/// The paper's ε axis for the curve figures (Figs. 1 and 9 sweep the budget
/// from 0 to 1.5), in the paper's normalised units.
pub fn paper_epsilon_axis() -> Vec<f32> {
    vec![0.0, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5]
}

/// The ε sweep used by the curve figures, converted to pixel scale.
pub fn epsilon_sweep() -> Vec<f32> {
    paper_epsilon_axis()
        .into_iter()
        .map(paper_eps_to_pixel)
        .collect()
}

/// The two heat-map budgets of Figs. 7 and 8 (paper ε ∈ {1, 1.5}), in pixel
/// scale.
pub fn heatmap_epsilons() -> Vec<f32> {
    vec![paper_eps_to_pixel(1.0), paper_eps_to_pixel(1.5)]
}

/// A seconds-scale configuration for unit and integration tests: 12×12
/// SynthDigits, a one-hidden-layer spiking MLP, sixteen epochs.
///
/// Uses a gentle surrogate slope (`α = 10`) so every structural point the
/// tests rely on trains reliably; the figure presets use Norse's default
/// `α = 100` as the paper did.
pub fn quick() -> ExperimentConfig {
    ExperimentConfig {
        image_hw: 12,
        train_per_class: 32,
        test_per_class: 8,
        topology: Topology::Mlp { hidden: vec![32] },
        epochs: 16,
        batch_size: 40,
        learning_rate: 1e-2,
        attack_samples: 20,
        pgd_steps: 5,
        accuracy_threshold: 0.7,
        seed: 42,
        beta: 0.9,
        alpha: 10.0,
        reset: ResetMode::Subtract,
        encoder: Encoder::constant_current(),
        decoder: Decoder::MaxMembrane,
        surrogate: SurrogateShape::FastSigmoid,
        neuron: NeuronModel::Lif,
        mnist_dir: None,
        threads: 0,
    }
}

/// The smallest configuration that still exercises the full pipeline: 8×8
/// SynthDigits, a 16-unit spiking MLP, four epochs. Trains in well under a
/// second — meant for sub-second smoke paths (`spiking-armor serve
/// --preset tiny`, process-spawning CLI tests, the serve crate's
/// batching-invariance matrix), where even [`quick`] is too slow to boot
/// repeatedly.
pub fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        image_hw: 8,
        train_per_class: 8,
        test_per_class: 2,
        topology: Topology::Mlp { hidden: vec![16] },
        epochs: 4,
        batch_size: 20,
        learning_rate: 1e-2,
        attack_samples: 4,
        pgd_steps: 3,
        accuracy_threshold: 0.0,
        seed: 42,
        beta: 0.9,
        alpha: 10.0,
        reset: ResetMode::Subtract,
        encoder: Encoder::constant_current(),
        decoder: Decoder::MaxMembrane,
        surrogate: SurrogateShape::FastSigmoid,
        neuron: NeuronModel::Lif,
        mnist_dir: None,
        threads: 0,
    }
}

/// A sub-second `(V_th, T)` grid over the [`tiny`] configuration: four
/// cells, one ε. Used by the distributed-grid smoke path (`spiking-armor
/// grid-worker --preset tiny`) and the cross-process fault-injection
/// suite, where each cell must train in a fraction of a second.
pub fn tiny_grid() -> (ExperimentConfig, GridSpec, Vec<f32>) {
    (tiny(), GridSpec::new(vec![0.5, 1.5], vec![2, 3]), vec![0.1])
}

/// Fig. 1 — motivational CNN-vs-SNN sweep: a small conv topology shared by
/// both networks, PGD budgets from [`epsilon_sweep`].
pub fn fig1() -> (ExperimentConfig, Vec<f32>) {
    let config = ExperimentConfig {
        image_hw: 12,
        train_per_class: 32,
        test_per_class: 8,
        topology: Topology::TinyCnn,
        epochs: 16,
        batch_size: 40,
        learning_rate: 1e-2,
        attack_samples: 40,
        pgd_steps: 10,
        accuracy_threshold: 0.7,
        seed: 7,
        beta: 0.9,
        alpha: 100.0,
        reset: ResetMode::Subtract,
        encoder: Encoder::constant_current(),
        decoder: Decoder::MaxMembrane,
        surrogate: SurrogateShape::FastSigmoid,
        neuron: NeuronModel::Lif,
        mnist_dir: None,
        threads: 0,
    };
    (config, epsilon_sweep())
}

/// The default structural point used for the SNN side of Fig. 1, scaled
/// from the paper's `(1, 64)` to the preset's window range.
pub fn fig1_structural() -> snn::StructuralParams {
    snn::StructuralParams::new(1.0, 8)
}

/// Figs. 6–8 — the learnability and attacked-accuracy heat maps: a
/// `10 × 6` grid of `(V_th, T)` combinations (thresholds exactly as in the
/// paper; windows scaled from `{16..80}` to `{4..24}`).
pub fn heatmap_grid() -> (ExperimentConfig, GridSpec, Vec<f32>) {
    let config = ExperimentConfig {
        image_hw: 12,
        train_per_class: 32,
        test_per_class: 10,
        topology: Topology::TinyCnn,
        epochs: 16,
        batch_size: 40,
        learning_rate: 1e-2,
        attack_samples: 30,
        pgd_steps: 5,
        accuracy_threshold: 0.7,
        seed: 11,
        beta: 0.9,
        alpha: 100.0,
        reset: ResetMode::Subtract,
        encoder: Encoder::constant_current(),
        decoder: Decoder::MaxMembrane,
        surrogate: SurrogateShape::FastSigmoid,
        neuron: NeuronModel::Lif,
        mnist_dir: None,
        threads: 0,
    };
    let grid = GridSpec::new(GridSpec::paper_v_ths(), vec![4, 8, 12, 16, 20, 24]);
    (config, grid, heatmap_epsilons())
}

/// Fig. 9 — robustness curves of selected combinations against the CNN:
/// shares the heat-map configuration so combinations can be picked straight
/// from the Fig. 6–8 grid, with the full ε sweep.
pub fn fig9() -> (ExperimentConfig, Vec<f32>) {
    let (config, _, _) = heatmap_grid();
    (config, epsilon_sweep())
}

/// The paper-scale configuration: 28×28 images, LeNet-5, the original
/// `V_th ∈ {0.25..2.5}` × `T ∈ {16..80}` grid and 1000 samples per class.
///
/// This is hours of CPU work — it is exported for completeness and for GPU-
/// class machines, and is exercised only by `#[ignore]`d tests.
pub fn paper_scale() -> (ExperimentConfig, GridSpec, Vec<f32>) {
    let config = ExperimentConfig {
        image_hw: 28,
        train_per_class: 1000,
        test_per_class: 100,
        topology: Topology::Lenet5,
        epochs: 10,
        batch_size: 64,
        learning_rate: 1e-3,
        attack_samples: 1000,
        pgd_steps: 40,
        accuracy_threshold: 0.7,
        seed: 1,
        beta: 0.9,
        alpha: 100.0,
        reset: ResetMode::Subtract,
        encoder: Encoder::constant_current(),
        decoder: Decoder::MaxMembrane,
        surrogate: SurrogateShape::FastSigmoid,
        neuron: NeuronModel::Lif,
        mnist_dir: None,
        threads: 0,
    };
    let grid = GridSpec::new(
        GridSpec::paper_v_ths(),
        vec![16, 24, 32, 40, 48, 56, 64, 72, 80],
    );
    (config, grid, heatmap_epsilons())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_preset_validates() {
        quick().validate();
        tiny().validate();
        tiny_grid().0.validate();
        fig1().0.validate();
        heatmap_grid().0.validate();
        fig9().0.validate();
        paper_scale().0.validate();
    }

    #[test]
    fn heatmap_grid_matches_paper_axes_scaled() {
        let (_, grid, eps) = heatmap_grid();
        assert_eq!(grid.v_ths(), GridSpec::paper_v_ths().as_slice());
        assert_eq!(grid.len(), 60);
        assert_eq!(eps.len(), 2);
        assert!((pixel_eps_to_paper(eps[0]) - 1.0).abs() < 1e-5);
        assert!((pixel_eps_to_paper(eps[1]) - 1.5).abs() < 1e-5);
    }

    #[test]
    fn paper_scale_uses_original_dimensions() {
        let (cfg, grid, _) = paper_scale();
        assert_eq!(cfg.image_hw, 28);
        assert!(matches!(cfg.topology, Topology::Lenet5));
        assert!(grid.windows().contains(&64), "paper default T=64 in grid");
        assert!(grid.windows().contains(&80));
    }

    #[test]
    fn epsilon_sweep_starts_clean_and_reaches_strong_noise() {
        let eps = epsilon_sweep();
        assert_eq!(eps[0], 0.0);
        assert!((eps.last().unwrap() - 1.5 * MNIST_STD).abs() < 1e-6);
        assert!(eps.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn epsilon_scale_round_trips() {
        for e in [0.25f32, 1.0, 1.5] {
            let back = pixel_eps_to_paper(paper_eps_to_pixel(e));
            assert!((back - e).abs() < 1e-6);
        }
    }
}
