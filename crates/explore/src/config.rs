//! Experiment configuration shared by every figure reproduction.

use serde::{Deserialize, Serialize};

use nn::CnnConfig;
use snn::{Decoder, Encoder, NeuronModel, ResetMode, SnnConfig, StructuralParams, SurrogateShape};

/// The synaptic topology used by both the CNN baseline and its spiking twin.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Topology {
    /// Fully-connected stack with the given hidden widths (cheapest; used
    /// by the scaled grid presets).
    Mlp {
        /// Hidden layer widths.
        hidden: Vec<usize>,
    },
    /// One small conv block + one hidden FC layer.
    TinyCnn,
    /// Classic LeNet-5 (2 conv + 3 FC) — the paper's §VI architecture.
    Lenet5,
    /// The paper's motivational 5-layer network (3 conv + 2 FC, §I-B).
    Paper5,
}

impl Topology {
    /// Materialises the topology as a [`CnnConfig`] for `hw × hw` inputs.
    ///
    /// An MLP is a `CnnConfig` with no conv blocks: the image is flattened
    /// directly into the first FC layer, so the CNN/SNN builders need no
    /// special case.
    pub fn cnn_config(&self, hw: usize, classes: usize) -> CnnConfig {
        match self {
            Topology::Mlp { hidden } => CnnConfig {
                in_channels: 1,
                in_hw: hw,
                conv_blocks: Vec::new(),
                fc_hidden: hidden.clone(),
                classes,
            },
            Topology::TinyCnn => CnnConfig::tiny(hw, classes),
            Topology::Lenet5 => CnnConfig::lenet5(hw, classes),
            Topology::Paper5 => CnnConfig::paper5(hw, classes),
        }
    }
}

/// Everything that defines one experiment run except the structural
/// parameters being explored.
///
/// Presets for every paper figure live in [`presets`](crate::presets); the
/// fields are public so ablations can tweak a preset in place.
///
/// # Example
///
/// ```
/// use explore::{ExperimentConfig, Topology};
///
/// let mut cfg = explore::presets::quick();
/// cfg.epochs = 1; // cheaper variant of the preset
/// assert!(matches!(cfg.topology, Topology::Mlp { .. }));
/// assert_eq!(cfg.accuracy_threshold, 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Image height = width.
    pub image_hw: usize,
    /// Training samples generated per digit class.
    pub train_per_class: usize,
    /// Test samples generated per digit class.
    pub test_per_class: usize,
    /// Synaptic topology shared by CNN and SNN.
    pub topology: Topology,
    /// Training epochs per model.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Number of test samples each attack evaluation uses (the paper's
    /// Algorithm 1 browses a fixed test set `D`).
    pub attack_samples: usize,
    /// PGD iteration count.
    pub pgd_steps: usize,
    /// Learnability threshold `A_th` (paper: 0.70).
    pub accuracy_threshold: f32,
    /// Master seed; every derived RNG is seeded from this.
    pub seed: u64,
    /// Membrane decay β of all LIF layers.
    pub beta: f32,
    /// SuperSpike surrogate slope α.
    pub alpha: f32,
    /// LIF reset semantics.
    pub reset: ResetMode,
    /// Input encoder.
    pub encoder: Encoder,
    /// Output decoder.
    pub decoder: Decoder,
    /// Surrogate derivative shape.
    #[serde(default)]
    pub surrogate: SurrogateShape,
    /// Neuron model of every spiking layer.
    #[serde(default)]
    pub neuron: NeuronModel,
    /// When set, load real MNIST IDX files from this directory instead of
    /// generating SynthDigits (the paper's actual dataset; see
    /// [`dataset::mnist`]). Images are used at their native 28×28 — the
    /// configuration's `image_hw` must match.
    #[serde(default)]
    pub mnist_dir: Option<String>,
    /// Worker threads for the parallel execution paths (grid cells, per-ε
    /// attack sweeps, batched evaluation). `0` means "all available cores".
    /// Every parallel path is deterministic, so this knob changes wall-clock
    /// time only, never results (see `DESIGN.md`, threading model).
    #[serde(default)]
    pub threads: usize,
}

impl ExperimentConfig {
    /// The SNN configuration at a given structural point, inheriting this
    /// experiment's neuron-model settings.
    pub fn snn_config(&self, structural: StructuralParams) -> SnnConfig {
        SnnConfig {
            structural,
            beta: self.beta,
            alpha: self.alpha,
            reset: self.reset,
            encoder: self.encoder,
            decoder: self.decoder,
            readout_beta: self.beta,
            surrogate: self.surrogate,
            neuron: self.neuron,
        }
    }

    /// The shared topology materialised for this experiment's image size.
    pub fn cnn_config(&self) -> CnnConfig {
        self.topology.cnn_config(self.image_hw, 10)
    }

    /// The resolved worker-thread count: [`ExperimentConfig::threads`], with
    /// `0` mapped to the number of available cores.
    pub fn effective_threads(&self) -> usize {
        tensor::parallel::resolve(self.threads)
    }

    /// Validates internal consistency (positive sizes, threshold in range).
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message on the first violated constraint.
    pub fn validate(&self) {
        assert!(self.image_hw >= 6, "image_hw must be at least 6");
        assert!(self.train_per_class > 0, "train_per_class must be positive");
        assert!(self.test_per_class > 0, "test_per_class must be positive");
        assert!(self.epochs > 0, "epochs must be positive");
        assert!(self.batch_size > 0, "batch_size must be positive");
        assert!(self.learning_rate > 0.0, "learning_rate must be positive");
        assert!(self.attack_samples > 0, "attack_samples must be positive");
        assert!(self.pgd_steps > 0, "pgd_steps must be positive");
        assert!(
            (0.0..=1.0).contains(&self.accuracy_threshold),
            "accuracy_threshold must be in [0, 1]"
        );
        // Materialising the topology validates pooling divisibility.
        let _ = self.cnn_config().flattened_len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_topology_has_no_conv_blocks() {
        let t = Topology::Mlp { hidden: vec![32] };
        let cfg = t.cnn_config(10, 10);
        assert!(cfg.conv_blocks.is_empty());
        assert_eq!(cfg.flattened_len(), 100);
        assert_eq!(cfg.final_hw(), 10);
    }

    #[test]
    fn lenet_topology_matches_preset() {
        let t = Topology::Lenet5;
        assert_eq!(t.cnn_config(28, 10), nn::CnnConfig::lenet5(28, 10));
    }

    #[test]
    fn quick_preset_validates() {
        crate::presets::quick().validate();
    }

    #[test]
    #[should_panic(expected = "epochs must be positive")]
    fn validate_catches_zero_epochs() {
        let mut cfg = crate::presets::quick();
        cfg.epochs = 0;
        cfg.validate();
    }

    #[test]
    fn experiment_config_serde_round_trip() {
        let cfg = crate::presets::heatmap_grid().0;
        let json = serde_json::to_string(&cfg).unwrap();
        let back: ExperimentConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
    }

    #[test]
    fn old_configs_without_new_fields_deserialize_with_defaults() {
        // A config JSON from before the surrogate/neuron/mnist_dir fields
        // existed must still load (serde defaults).
        let json = r#"{
            "image_hw": 12, "train_per_class": 8, "test_per_class": 4,
            "topology": {"Mlp": {"hidden": [16]}},
            "epochs": 2, "batch_size": 8, "learning_rate": 0.01,
            "attack_samples": 4, "pgd_steps": 2, "accuracy_threshold": 0.5,
            "seed": 1, "beta": 0.9, "alpha": 10.0,
            "reset": "Subtract",
            "encoder": {"ConstantCurrent": {"gain": 1.0}},
            "decoder": "MaxMembrane"
        }"#;
        let cfg: ExperimentConfig = serde_json::from_str(json).unwrap();
        assert_eq!(cfg.surrogate, SurrogateShape::FastSigmoid);
        assert_eq!(cfg.neuron, NeuronModel::Lif);
        assert_eq!(cfg.mnist_dir, None);
        assert_eq!(cfg.threads, 0, "missing threads field defaults to auto");
        assert!(cfg.effective_threads() >= 1);
        cfg.validate();
    }

    #[test]
    fn snn_config_inherits_neuron_settings() {
        let mut cfg = crate::presets::quick();
        cfg.alpha = 25.0;
        let sc = cfg.snn_config(StructuralParams::new(1.5, 12));
        assert_eq!(sc.alpha, 25.0);
        assert_eq!(sc.structural.v_th, 1.5);
        assert_eq!(sc.structural.time_window, 12);
    }
}
