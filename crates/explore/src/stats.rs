//! Multi-seed repetition: mean ± standard deviation of the exploration
//! metrics across independently seeded data generations and trainings.
//!
//! Single-seed robustness numbers at small scale are noisy; this module
//! quantifies that noise so shape claims (who wins, where the crossover
//! falls) can be checked against error bars instead of point estimates.

use serde::{Deserialize, Serialize};

use snn::StructuralParams;

use crate::algorithm::explore_one;
use crate::config::ExperimentConfig;
use crate::pipeline::prepare_data;

/// Mean and standard deviation of one measured quantity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanStd {
    /// Sample mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
}

impl MeanStd {
    /// Computes mean/std of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f32]) -> Self {
        assert!(!values.is_empty(), "mean of an empty sample");
        let mean = values.iter().sum::<f32>() / values.len() as f32;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / values.len() as f32;
        Self {
            mean,
            std: var.sqrt(),
        }
    }
}

impl std::fmt::Display for MeanStd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.3} ± {:.3}", self.mean, self.std)
    }
}

/// Aggregated exploration of one structural point across seeds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepeatedOutcome {
    /// The explored structural point.
    pub structural: StructuralParams,
    /// Number of independent repetitions.
    pub repetitions: usize,
    /// Clean accuracy statistics.
    pub clean_accuracy: MeanStd,
    /// Fraction of repetitions meeting the learnability threshold.
    pub learnable_fraction: f32,
    /// Per-ε robustness statistics (over the repetitions that were
    /// learnable; empty if none was).
    pub robustness: Vec<(f32, MeanStd)>,
}

/// Runs [`explore_one`] `repetitions` times with independent seeds (data
/// generation *and* training both re-seeded) and aggregates.
///
/// # Panics
///
/// Panics if `repetitions` is zero.
pub fn explore_repeated(
    config: &ExperimentConfig,
    structural: StructuralParams,
    epsilons: &[f32],
    repetitions: usize,
) -> RepeatedOutcome {
    assert!(repetitions > 0, "need at least one repetition");
    let mut cleans = Vec::with_capacity(repetitions);
    let mut learnable = 0usize;
    let mut per_eps: Vec<Vec<f32>> = vec![Vec::new(); epsilons.len()];
    for rep in 0..repetitions {
        let mut cfg = config.clone();
        cfg.seed = config
            .seed
            .wrapping_add((rep as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let data = prepare_data(&cfg);
        let outcome = explore_one(&cfg, &data, structural, epsilons);
        cleans.push(outcome.clean_accuracy);
        if outcome.learnable {
            learnable += 1;
            for (slot, &(_, r)) in per_eps.iter_mut().zip(&outcome.robustness) {
                slot.push(r);
            }
        }
    }
    let robustness = epsilons
        .iter()
        .zip(per_eps)
        .filter(|(_, rs)| !rs.is_empty())
        .map(|(&e, rs)| (e, MeanStd::of(&rs)))
        .collect();
    RepeatedOutcome {
        structural,
        repetitions,
        clean_accuracy: MeanStd::of(&cleans),
        learnable_fraction: learnable as f32 / repetitions as f32,
        robustness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn mean_std_hand_computed() {
        let s = MeanStd::of(&[1.0, 2.0, 3.0]);
        assert!((s.mean - 2.0).abs() < 1e-6);
        assert!((s.std - (2.0f32 / 3.0).sqrt()).abs() < 1e-6);
        assert_eq!(MeanStd::of(&[5.0]).std, 0.0);
        assert_eq!(format!("{}", MeanStd::of(&[5.0])), "5.000 ± 0.000");
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn mean_std_rejects_empty() {
        MeanStd::of(&[]);
    }

    #[test]
    fn repeated_exploration_aggregates_across_seeds() {
        let mut cfg = presets::quick();
        cfg.epochs = 3;
        cfg.train_per_class = 12;
        cfg.attack_samples = 8;
        cfg.pgd_steps = 2;
        cfg.accuracy_threshold = 0.15;
        let eps = [presets::paper_eps_to_pixel(0.5)];
        let out = explore_repeated(&cfg, StructuralParams::new(1.0, 4), &eps, 3);
        assert_eq!(out.repetitions, 3);
        assert!((0.0..=1.0).contains(&out.clean_accuracy.mean));
        assert!((0.0..=1.0).contains(&out.learnable_fraction));
        if out.learnable_fraction > 0.0 {
            assert_eq!(out.robustness.len(), 1);
        }
        // Independent seeds actually vary the measurement.
        assert!(
            out.clean_accuracy.std > 0.0 || out.clean_accuracy.mean == 1.0,
            "three re-seeded trainings should not coincide unless saturated"
        );
    }
}
