//! The `(V_th, T)` grid runner — the outer loops of Algorithm 1, executed in
//! parallel across worker threads.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

use snn::StructuralParams;
use store::RunStore;

use crate::algorithm::{explore_one_stored, ExplorationOutcome};
use crate::config::ExperimentConfig;
use crate::pipeline::SplitData;

/// The exploration grid: every `(V_th, T)` cross product member is trained
/// and attacked.
///
/// # Example
///
/// ```
/// use explore::GridSpec;
///
/// let grid = GridSpec::new(vec![0.5, 1.0], vec![8, 16]);
/// assert_eq!(grid.cells().count(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridSpec {
    v_ths: Vec<f32>,
    windows: Vec<usize>,
}

impl GridSpec {
    /// Creates a grid from the two axes.
    ///
    /// # Panics
    ///
    /// Panics if either axis is empty, unsorted, or contains invalid values
    /// (non-positive thresholds or zero windows).
    pub fn new(v_ths: Vec<f32>, windows: Vec<usize>) -> Self {
        assert!(
            !v_ths.is_empty() && !windows.is_empty(),
            "grid axes must be non-empty"
        );
        assert!(
            v_ths.iter().zip(v_ths.iter().skip(1)).all(|(a, b)| a < b),
            "thresholds must be strictly increasing"
        );
        assert!(
            windows
                .iter()
                .zip(windows.iter().skip(1))
                .all(|(a, b)| a < b),
            "time windows must be strictly increasing"
        );
        assert!(
            v_ths.iter().all(|&v| v > 0.0),
            "thresholds must be positive"
        );
        assert!(windows.iter().all(|&t| t > 0), "windows must be positive");
        Self { v_ths, windows }
    }

    /// The paper's threshold axis, `V_th ∈ {0.25, 0.5, …, 2.5}`.
    pub fn paper_v_ths() -> Vec<f32> {
        (1..=10).map(|i| i as f32 * 0.25).collect()
    }

    /// The threshold axis values.
    pub fn v_ths(&self) -> &[f32] {
        &self.v_ths
    }

    /// The time-window axis values.
    pub fn windows(&self) -> &[usize] {
        &self.windows
    }

    /// Iterates the cross product in row-major `(window, v_th)` order.
    pub fn cells(&self) -> impl Iterator<Item = StructuralParams> + '_ {
        self.windows
            .iter()
            .flat_map(move |&t| self.v_ths.iter().map(move |&v| StructuralParams::new(v, t)))
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.v_ths.len() * self.windows.len()
    }

    /// `true` for a grid with no cells (unconstructible via [`GridSpec::new`]).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// All per-cell outcomes of a grid exploration, in the order produced by
/// [`GridSpec::cells`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GridResult {
    /// The grid that was explored.
    pub spec: GridSpec,
    /// The ε sweep every learnable cell was attacked with.
    pub epsilons: Vec<f32>,
    /// One outcome per cell, aligned with [`GridSpec::cells`].
    pub outcomes: Vec<ExplorationOutcome>,
}

impl GridResult {
    /// The outcome at a specific structural point, if it is in the grid.
    pub fn outcome_at(&self, v_th: f32, window: usize) -> Option<&ExplorationOutcome> {
        self.outcomes
            .iter()
            .find(|o| (o.structural.v_th - v_th).abs() < 1e-6 && o.structural.time_window == window)
    }

    /// Fraction of cells that met the learnability threshold.
    pub fn learnable_fraction(&self) -> f32 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().filter(|o| o.learnable).count() as f32 / self.outcomes.len() as f32
    }

    /// The learnable cell with the highest robustness at the largest ε
    /// (the "sweet spot" of the paper's §VI-C), if any cell is learnable.
    pub fn sweet_spot(&self) -> Option<&ExplorationOutcome> {
        self.outcomes.iter().filter(|o| o.learnable).max_by(|a, b| {
            let ra = a.final_robustness().unwrap_or(0.0);
            let rb = b.final_robustness().unwrap_or(0.0);
            ra.total_cmp(&rb)
        })
    }

    /// The learnable cell with the *lowest* robustness at the largest ε —
    /// the counterexample to unconditional inherent robustness.
    pub fn worst_learnable(&self) -> Option<&ExplorationOutcome> {
        self.outcomes.iter().filter(|o| o.learnable).min_by(|a, b| {
            let ra = a.final_robustness().unwrap_or(0.0);
            let rb = b.final_robustness().unwrap_or(0.0);
            ra.total_cmp(&rb)
        })
    }
}

/// Runs Algorithm 1 over the whole grid, using `threads` worker threads
/// (cells are independent trainings, so this scales linearly).
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_grid(
    config: &ExperimentConfig,
    data: &SplitData,
    spec: &GridSpec,
    epsilons: &[f32],
    threads: usize,
) -> GridResult {
    run_grid_stored(config, data, spec, epsilons, threads, None)
}

/// Like [`run_grid`], but durable: with a run store every completed cell is
/// checkpointed (trained weights, clean accuracy, per-ε robustness), and a
/// restarted run loads completed cells from the store instead of retraining
/// them. A resumed grid is bitwise-identical to an uninterrupted one.
///
/// # Panics
///
/// Panics if `threads` is zero or a worker thread panics.
pub fn run_grid_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    spec: &GridSpec,
    epsilons: &[f32],
    threads: usize,
    store: Option<&RunStore>,
) -> GridResult {
    assert!(threads > 0, "need at least one worker thread");
    // Cells are the coarsest unit of work: while several run concurrently,
    // the per-cell ε sweep stays serial so thread counts don't multiply.
    // `threads` stays out of the per-cell seeding, so this cannot change
    // results either way.
    let config = &ExperimentConfig {
        threads: if threads > 1 { 1 } else { config.threads },
        ..config.clone()
    };
    let cells: Vec<StructuralParams> = spec.cells().collect();
    let next = AtomicUsize::new(0);
    let done = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<ExplorationOutcome>>> = Mutex::new(vec![None; cells.len()]);
    crossbeam::scope(|scope| {
        for _ in 0..threads.min(cells.len()) {
            scope.spawn(|_| loop {
                let idx = next.fetch_add(1, Ordering::Relaxed);
                let Some(&cell) = cells.get(idx) else { break };
                let outcome = explore_one_stored(config, data, cell, epsilons, store);
                // Publish the per-cell artifact so a later `grid-reduce`
                // (or a distributed worker joining this run) sees the cell
                // as complete. Best-effort like every journal write: the
                // in-memory result below is the source of truth here.
                if let Some(s) = store {
                    let key = crate::runs::cell_key(cell);
                    if !s.cell_completed(&key) {
                        match crate::reduce::encode_outcome(&outcome)
                            .and_then(|json| s.save_cell_outcome(&key, &json))
                        {
                            Ok(()) => {}
                            Err(e) => {
                                eprintln!("warning: could not publish outcome for {key}: {e}");
                            }
                        }
                    }
                }
                // Completion order is scheduling-dependent, so this may only
                // ever reach stderr — never an artifact.
                let finished = done.fetch_add(1, Ordering::Relaxed) + 1;
                obs::progress_with(|| {
                    format!(
                        "grid: cell {finished}/{} done (v_th={}, T={}, clean={:.3})",
                        cells.len(),
                        cell.v_th,
                        cell.time_window,
                        outcome.clean_accuracy,
                    )
                });
                // A poisoned lock means a sibling worker panicked; the slot
                // write is still sound (panics never tear a `Vec` element).
                let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(slot) = slots.get_mut(idx) {
                    *slot = Some(outcome);
                }
            });
        }
    })
    // armor-lint: allow(no-panic-in-io) -- worker panics must abort the grid, not truncate it
    .expect("a grid worker thread panicked");
    let outcomes: Vec<ExplorationOutcome> = results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .flatten()
        .collect();
    assert_eq!(
        outcomes.len(),
        cells.len(),
        "every cell is visited exactly once"
    );
    GridResult {
        spec: spec.clone(),
        epsilons: epsilons.to_vec(),
        outcomes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_data;
    use crate::presets;

    #[test]
    fn cells_enumerate_cross_product_row_major() {
        let g = GridSpec::new(vec![0.5, 1.0], vec![4, 8]);
        let cells: Vec<_> = g.cells().collect();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[0], StructuralParams::new(0.5, 4));
        assert_eq!(cells[1], StructuralParams::new(1.0, 4));
        assert_eq!(cells[2], StructuralParams::new(0.5, 8));
    }

    #[test]
    fn paper_threshold_axis() {
        let v = GridSpec::paper_v_ths();
        assert_eq!(v.len(), 10);
        assert_eq!(v[0], 0.25);
        assert_eq!(v[9], 2.5);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_axis() {
        GridSpec::new(vec![1.0, 0.5], vec![4]);
    }

    #[test]
    fn parallel_grid_matches_grid_shape_and_is_deterministic() {
        let mut cfg = presets::quick();
        cfg.epochs = 1;
        cfg.attack_samples = 8;
        let data = prepare_data(&cfg);
        let spec = GridSpec::new(vec![0.5, 2.0], vec![4]);
        let eps = [0.5];
        let a = run_grid(&cfg, &data, &spec, &eps, 2);
        let b = run_grid(&cfg, &data, &spec, &eps, 1);
        assert_eq!(a.outcomes.len(), 2);
        // Thread count must not change results (per-cell seeding).
        assert_eq!(a, b);
        assert!(a.outcome_at(0.5, 4).is_some());
        assert!(a.outcome_at(9.9, 4).is_none());
    }
}

#[cfg(test)]
mod outcome_query_tests {
    use super::*;
    use crate::algorithm::ExplorationOutcome;

    #[test]
    fn learnable_fraction_counts_correctly() {
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4, 8]);
        let outcomes: Vec<ExplorationOutcome> = spec
            .cells()
            .enumerate()
            .map(|(i, sp)| ExplorationOutcome {
                structural: sp,
                clean_accuracy: 0.5,
                learnable: i % 2 == 0,
                robustness: vec![],
            })
            .collect();
        let grid = GridResult {
            spec,
            epsilons: vec![],
            outcomes,
        };
        assert_eq!(grid.learnable_fraction(), 0.5);
        // No attacked cells: extremes still resolve among learnable cells
        // (final robustness defaults to 0 for ranking purposes).
        assert!(grid.sweet_spot().is_some());
    }
}
