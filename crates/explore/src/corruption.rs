//! Corruption-robustness study: the non-adversarial control condition.
//!
//! The paper attributes robustness variation to structural parameters under
//! *gradient-crafted* attacks. This study measures the same trained
//! networks under common corruptions (noise, contrast loss, salt & pepper,
//! occlusion); comparing the two separates "robust to anything" from
//! "robust to adversaries specifically".

use serde::{Deserialize, Serialize};

use dataset::corrupt::Corruption;
use snn::StructuralParams;

use crate::config::ExperimentConfig;
use store::RunStore;

use crate::pipeline::{train_snn_stored, SplitData};

/// Accuracy under one corruption at one severity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionEntry {
    /// Corruption label (see [`Corruption::name`]).
    pub corruption: String,
    /// Severity in `[0, 1]`.
    pub severity: f32,
    /// Accuracy on the corrupted test subset.
    pub accuracy: f32,
}

/// The corruption sweep of one trained structural point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorruptionStudy {
    /// The structural point that was trained.
    pub structural: StructuralParams,
    /// Accuracy on the uncorrupted test subset.
    pub clean_accuracy: f32,
    /// One entry per (corruption, severity) pair, corruption-major.
    pub entries: Vec<CorruptionEntry>,
}

impl CorruptionStudy {
    /// Mean accuracy across all entries — a single-number corruption
    /// robustness score.
    pub fn mean_corrupted_accuracy(&self) -> f32 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.accuracy).sum::<f32>() / self.entries.len() as f32
    }

    /// The accuracy for a specific corruption/severity, if evaluated.
    pub fn accuracy_at(&self, corruption: &str, severity: f32) -> Option<f32> {
        self.entries
            .iter()
            .find(|e| e.corruption == corruption && (e.severity - severity).abs() < 1e-6)
            .map(|e| e.accuracy)
    }
}

/// The standard corruption suite (fixed seeds for reproducibility).
pub fn standard_corruptions() -> Vec<Corruption> {
    vec![
        Corruption::GaussianNoise { seed: 101 },
        Corruption::ContrastLoss,
        Corruption::SaltPepper { seed: 102 },
        Corruption::Occlusion { seed: 103 },
    ]
}

/// Trains an SNN at `structural` and sweeps the standard corruption suite
/// across `severities` on the attack subset.
///
/// # Panics
///
/// Panics if `severities` is empty or contains values outside `[0, 1]`.
pub fn corruption_robustness(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    severities: &[f32],
) -> CorruptionStudy {
    corruption_robustness_stored(config, data, structural, severities, None)
}

/// Like [`corruption_robustness`], but the training goes through the run
/// store's training cache.
pub fn corruption_robustness_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    severities: &[f32],
    store: Option<&RunStore>,
) -> CorruptionStudy {
    assert!(!severities.is_empty(), "need at least one severity");
    let trained = train_snn_stored(config, data, structural, store);
    let subset = data.test.subset(config.attack_samples);
    let clean_accuracy = nn::train::evaluate(
        trained.classifier.model(),
        trained.classifier.params(),
        subset.images(),
        subset.labels(),
        config.batch_size,
    );
    let mut entries = Vec::new();
    for corruption in standard_corruptions() {
        for &severity in severities {
            let corrupted = corruption.apply_dataset(&subset, severity);
            let accuracy = nn::train::evaluate(
                trained.classifier.model(),
                trained.classifier.params(),
                corrupted.images(),
                corrupted.labels(),
                config.batch_size,
            );
            entries.push(CorruptionEntry {
                corruption: corruption.name().to_string(),
                severity,
                accuracy,
            });
        }
    }
    CorruptionStudy {
        structural,
        clean_accuracy,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_data;
    use crate::presets;

    #[test]
    fn study_covers_suite_times_severities() {
        let mut cfg = presets::quick();
        cfg.epochs = 4;
        cfg.attack_samples = 10;
        let data = prepare_data(&cfg);
        let study = corruption_robustness(&cfg, &data, StructuralParams::new(1.0, 4), &[0.2, 0.6]);
        assert_eq!(study.entries.len(), 4 * 2);
        assert!(study.accuracy_at("contrast_loss", 0.2).is_some());
        assert!(study.accuracy_at("contrast_loss", 0.9).is_none());
        assert!((0.0..=1.0).contains(&study.mean_corrupted_accuracy()));
    }

    #[test]
    fn heavier_corruption_does_not_help_on_average() {
        let mut cfg = presets::quick();
        cfg.epochs = 6;
        cfg.attack_samples = 20;
        let data = prepare_data(&cfg);
        let study = corruption_robustness(&cfg, &data, StructuralParams::new(1.0, 6), &[0.1, 0.8]);
        let mild: f32 = study
            .entries
            .iter()
            .filter(|e| (e.severity - 0.1).abs() < 1e-6)
            .map(|e| e.accuracy)
            .sum();
        let severe: f32 = study
            .entries
            .iter()
            .filter(|e| (e.severity - 0.8).abs() < 1e-6)
            .map(|e| e.accuracy)
            .sum();
        assert!(
            severe <= mild + 0.2,
            "severe corruption should not outperform mild: {severe} vs {mild}"
        );
    }
}
