//! The grid reducer: merges per-cell `outcome.json` artifacts into one
//! [`GridResult`], bitwise-identical to the single-process grid.
//!
//! # Determinism contract
//!
//! The reducer never computes anything — it only reassembles. Identity with
//! the single-process path holds because every link preserves bits:
//!
//! 1. Each worker computes its cell with the same `*_stored` functions the
//!    single-process grid uses, and those are thread-count- and
//!    schedule-invariant (per-cell / per-ε seeding).
//! 2. [`encode_outcome`] serialises floats in Rust's shortest-round-trip
//!    form, and decoding parses them back to the exact same bit patterns,
//!    so `outcome.json` is a lossless envelope.
//! 3. [`reduce_grid`] visits cells in [`GridSpec::cells`] order — the same
//!    order the single-process grid emits — so the assembled `outcomes`
//!    vector is positionally identical.
//!
//! `spiking-armor grid-reduce --verify` checks the whole chain end to end
//! by recomputing the grid through the (pure-cache) single-process path
//! and comparing serialised bytes.

use std::fmt;

use store::{Event, RunStore, StoreError};

use crate::algorithm::ExplorationOutcome;
use crate::grid::{GridResult, GridSpec};
use crate::runs;

/// Why a reduce could not produce a grid result.
#[derive(Debug)]
pub enum ReduceError {
    /// Some cells have not published an outcome yet — workers are still
    /// running (or crashed and nobody resumed their cells).
    Incomplete {
        /// Cell keys without a published outcome, in grid order.
        missing: Vec<String>,
    },
    /// A published outcome could not be read.
    Store(StoreError),
    /// A published outcome could not be decoded.
    Corrupt {
        /// The offending cell key.
        cell: String,
        /// Decoder diagnostics.
        why: String,
    },
    /// A published outcome decodes but contradicts the grid (wrong
    /// structural point, or a robustness sweep that does not match the ε
    /// sweep) — the artifact belongs to a different run definition.
    Mismatch {
        /// The offending cell key.
        cell: String,
        /// What disagreed.
        why: String,
    },
}

impl fmt::Display for ReduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReduceError::Incomplete { missing } => write!(
                f,
                "grid is incomplete: {} cell(s) without a published outcome (first: {})",
                missing.len(),
                missing.first().map(String::as_str).unwrap_or("?")
            ),
            ReduceError::Store(e) => write!(f, "cannot read a cell outcome: {e}"),
            ReduceError::Corrupt { cell, why } => {
                write!(f, "cell {cell} outcome is corrupt: {why}")
            }
            ReduceError::Mismatch { cell, why } => {
                write!(f, "cell {cell} outcome contradicts the grid: {why}")
            }
        }
    }
}

impl std::error::Error for ReduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReduceError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for ReduceError {
    fn from(e: StoreError) -> Self {
        ReduceError::Store(e)
    }
}

/// Serialises one cell outcome for its `outcome.json` artifact. The single
/// encoder shared by every publisher (grid worker and single-process grid),
/// so artifacts are byte-identical no matter who wrote them.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] if serialisation fails (cannot happen
/// for well-formed outcomes).
pub fn encode_outcome(outcome: &ExplorationOutcome) -> Result<String, StoreError> {
    serde_json::to_string_pretty(outcome)
        .map(|mut s| {
            s.push('\n');
            s
        })
        .map_err(|e| StoreError::Corrupt(format!("cannot serialise cell outcome: {e}")))
}

/// Decodes one `outcome.json` artifact. Lossless inverse of
/// [`encode_outcome`]: float round-trips are bit-exact.
///
/// # Errors
///
/// Returns the decoder diagnostics if the JSON is torn or mistyped.
pub fn decode_outcome(json: &str) -> Result<ExplorationOutcome, String> {
    serde_json::from_str(json).map_err(|e| e.to_string())
}

/// Merges every completed cell of `spec` into a [`GridResult`] and journals
/// the reduction.
///
/// # Errors
///
/// Returns [`ReduceError::Incomplete`] while any cell lacks a published
/// outcome, and the other [`ReduceError`] variants on damaged or mismatched
/// artifacts.
pub fn reduce_grid(
    store: &RunStore,
    spec: &GridSpec,
    epsilons: &[f32],
) -> Result<GridResult, ReduceError> {
    let mut outcomes = Vec::with_capacity(spec.len());
    let mut missing = Vec::new();
    for cell in spec.cells() {
        let key = runs::cell_key(cell);
        let Some(json) = store.load_cell_outcome(&key)? else {
            missing.push(key);
            continue;
        };
        let outcome = decode_outcome(&json).map_err(|why| ReduceError::Corrupt {
            cell: key.clone(),
            why,
        })?;
        if outcome.structural.v_th.to_bits() != cell.v_th.to_bits()
            || outcome.structural.time_window != cell.time_window
        {
            return Err(ReduceError::Mismatch {
                cell: key,
                why: format!(
                    "artifact is for (v_th={}, T={}), cell is (v_th={}, T={})",
                    outcome.structural.v_th,
                    outcome.structural.time_window,
                    cell.v_th,
                    cell.time_window
                ),
            });
        }
        if outcome.learnable {
            let sweep_ok = outcome.robustness.len() == epsilons.len()
                && outcome
                    .robustness
                    .iter()
                    .zip(epsilons)
                    .all(|((e, _), want)| e.to_bits() == want.to_bits());
            if !sweep_ok {
                return Err(ReduceError::Mismatch {
                    cell: key,
                    why: format!(
                        "artifact sweeps ε {:?}, run sweeps ε {:?}",
                        outcome
                            .robustness
                            .iter()
                            .map(|&(e, _)| e)
                            .collect::<Vec<_>>(),
                        epsilons
                    ),
                });
            }
        }
        outcomes.push(outcome);
    }
    if !missing.is_empty() {
        return Err(ReduceError::Incomplete { missing });
    }
    store.log(&Event::GridReduced {
        cells: outcomes.len(),
        pid: std::process::id(),
    });
    Ok(GridResult {
        spec: spec.clone(),
        epsilons: epsilons.to_vec(),
        outcomes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn::StructuralParams;

    fn outcome(v: f32, t: usize, eps: &[f32]) -> ExplorationOutcome {
        ExplorationOutcome {
            structural: StructuralParams::new(v, t),
            clean_accuracy: 0.8125,
            learnable: true,
            robustness: eps.iter().map(|&e| (e, 0.5)).collect(),
        }
    }

    #[test]
    fn outcome_json_round_trips_bit_exactly() {
        // Values with no short decimal form — the round-trip must come back
        // to the exact same bit patterns.
        let o = ExplorationOutcome {
            structural: StructuralParams::new(std::f32::consts::PI, 7),
            clean_accuracy: 0.1f32 + 0.2f32,
            learnable: true,
            robustness: vec![(0.1, 1.0 / 3.0), (0.3, 2.0 / 7.0)],
        };
        let json = encode_outcome(&o).unwrap();
        let back = decode_outcome(&json).unwrap();
        assert_eq!(back, o);
        // And the encoding itself is stable (encode ∘ decode ∘ encode).
        assert_eq!(encode_outcome(&back).unwrap(), json);
    }

    #[test]
    fn reduce_assembles_cells_in_grid_order() {
        let root = std::env::temp_dir().join("explore_reduce_order_test");
        let _ = std::fs::remove_dir_all(&root);
        let fp = store::Fingerprint::builder().section("t", b"r").finish();
        let opened = RunStore::open_shared(&root, &fp, "{}").unwrap();
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4, 8]);
        let eps = [0.1f32];
        // Publish out of order; the reducer must still assemble row-major.
        for cell in spec.cells().collect::<Vec<_>>().into_iter().rev() {
            let key = runs::cell_key(cell);
            let json = encode_outcome(&outcome(cell.v_th, cell.time_window, &eps)).unwrap();
            opened.store.save_cell_outcome(&key, &json).unwrap();
        }
        let grid = reduce_grid(&opened.store, &spec, &eps).unwrap();
        let cells: Vec<_> = spec.cells().collect();
        assert_eq!(grid.outcomes.len(), cells.len());
        for (o, c) in grid.outcomes.iter().zip(&cells) {
            assert_eq!(o.structural, *c);
        }
    }

    #[test]
    fn missing_cells_make_the_reduce_incomplete() {
        let root = std::env::temp_dir().join("explore_reduce_incomplete_test");
        let _ = std::fs::remove_dir_all(&root);
        let fp = store::Fingerprint::builder().section("t", b"i").finish();
        let opened = RunStore::open_shared(&root, &fp, "{}").unwrap();
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4]);
        let eps = [0.1f32];
        let done = StructuralParams::new(0.5, 4);
        opened
            .store
            .save_cell_outcome(
                &runs::cell_key(done),
                &encode_outcome(&outcome(0.5, 4, &eps)).unwrap(),
            )
            .unwrap();
        match reduce_grid(&opened.store, &spec, &eps) {
            Err(ReduceError::Incomplete { missing }) => {
                assert_eq!(missing, [runs::cell_key(StructuralParams::new(1.0, 4))]);
            }
            other => panic!("expected Incomplete, got {other:?}"),
        }
    }

    #[test]
    fn mismatched_artifacts_are_refused() {
        let root = std::env::temp_dir().join("explore_reduce_mismatch_test");
        let _ = std::fs::remove_dir_all(&root);
        let fp = store::Fingerprint::builder().section("t", b"m").finish();
        let opened = RunStore::open_shared(&root, &fp, "{}").unwrap();
        let spec = GridSpec::new(vec![0.5], vec![4]);
        let key = runs::cell_key(StructuralParams::new(0.5, 4));
        // Wrong structural point under the right key.
        opened
            .store
            .save_cell_outcome(&key, &encode_outcome(&outcome(1.0, 4, &[0.1])).unwrap())
            .unwrap();
        assert!(matches!(
            reduce_grid(&opened.store, &spec, &[0.1]),
            Err(ReduceError::Mismatch { .. })
        ));
        // Right point, wrong ε sweep.
        opened
            .store
            .save_cell_outcome(&key, &encode_outcome(&outcome(0.5, 4, &[0.9])).unwrap())
            .unwrap();
        assert!(matches!(
            reduce_grid(&opened.store, &spec, &[0.1]),
            Err(ReduceError::Mismatch { .. })
        ));
        // Torn JSON.
        opened.store.save_cell_outcome(&key, "{\"stru").unwrap();
        assert!(matches!(
            reduce_grid(&opened.store, &spec, &[0.1]),
            Err(ReduceError::Corrupt { .. })
        ));
    }
}
