//! Run-store integration: fingerprinting experiments and opening their
//! durable run directories.
//!
//! Every experiment that wants resumability opens a [`store::RunStore`]
//! through [`open`]. The run directory is keyed by a deterministic
//! fingerprint over the *complete* definition of the run:
//!
//! * the command name (two different figures never share a directory),
//! * the full [`ExperimentConfig`] (serialised as JSON — Rust's float
//!   formatting is shortest-round-trip, so distinct configs always
//!   serialise distinctly),
//! * the [`GridSpec`] when the run explores a grid,
//! * the ε sweep, hashed by exact IEEE-754 bit patterns,
//! * the checkpoint format version (mixed in by
//!   [`Fingerprint::builder`]).
//!
//! Changing any of these changes the fingerprint and therefore the
//! directory — stale checkpoints can never leak into a differently
//! configured run. The same facts are written to `manifest.json` inside
//! the run directory, and re-opening verifies the manifest byte-for-byte.

use std::path::Path;

use snn::StructuralParams;
use store::{Fingerprint, OpenedRun, RunStore, StoreError};

use crate::config::ExperimentConfig;
use crate::grid::GridSpec;

/// Subdirectory of the output directory holding all run directories.
pub const RUNS_SUBDIR: &str = "runs";

/// The store key of one `(V_th, T)` cell: the exact `V_th` bit pattern plus
/// the window, so distinct-but-close thresholds never collide.
///
/// # Example
///
/// ```
/// use snn::StructuralParams;
///
/// let key = explore::runs::cell_key(StructuralParams::new(1.0, 6));
/// assert_eq!(key, "v3f800000-t6");
/// ```
pub fn cell_key(structural: StructuralParams) -> String {
    format!(
        "v{:08x}-t{}",
        structural.v_th.to_bits(),
        structural.time_window
    )
}

/// The ε sweep rendered as comma-separated IEEE-754 bit patterns — the
/// exact (collision-free) form used both in the fingerprint and in the
/// manifest.
pub fn epsilon_bits(epsilons: &[f32]) -> String {
    epsilons
        .iter()
        .map(|e| format!("{:08x}", e.to_bits()))
        .collect::<Vec<_>>()
        .join(",")
}

fn serialize<T: serde::Serialize>(what: &str, value: &T) -> Result<String, StoreError> {
    serde_json::to_string(value)
        .map_err(|e| StoreError::Corrupt(format!("cannot serialise {what}: {e}")))
}

/// The config as it participates in fingerprint and manifest: the worker
/// thread count is normalised away, because every parallel path is
/// deterministic — a 4-thread run may resume a 1-thread run and vice versa.
fn canonical_config(config: &ExperimentConfig) -> ExperimentConfig {
    ExperimentConfig {
        threads: 0,
        ..config.clone()
    }
}

/// Computes the run fingerprint for `command` with the given inputs.
///
/// # Errors
///
/// Returns a [`StoreError`] if an input cannot be serialised.
pub fn fingerprint(
    command: &str,
    config: &ExperimentConfig,
    spec: Option<&GridSpec>,
    epsilons: &[f32],
) -> Result<Fingerprint, StoreError> {
    let config_json = serialize("the experiment config", &canonical_config(config))?;
    let spec_json = match spec {
        Some(s) => serialize("the grid spec", s)?,
        None => "null".to_string(),
    };
    Ok(Fingerprint::builder()
        .section("command", command.as_bytes())
        .section("config", config_json.as_bytes())
        .section("spec", spec_json.as_bytes())
        .section("epsilons", epsilon_bits(epsilons).as_bytes())
        .finish())
}

/// Opens (or resumes) the run store for `command` under
/// `<out_dir>/runs/`. See the module docs for the fingerprinting rule;
/// `resume = false` clears any previous state for this exact experiment,
/// `resume = true` reuses it as a cache.
///
/// # Errors
///
/// Returns a [`StoreError`] if the directory cannot be prepared or holds a
/// conflicting manifest.
pub fn open(
    out_dir: &Path,
    command: &str,
    config: &ExperimentConfig,
    spec: Option<&GridSpec>,
    epsilons: &[f32],
    resume: bool,
) -> Result<OpenedRun, StoreError> {
    let fp = fingerprint(command, config, spec, epsilons)?;
    let manifest = manifest_json(command, &fp, config, spec, epsilons)?;
    RunStore::open(&out_dir.join(RUNS_SUBDIR), &fp, &manifest, resume)
}

/// Opens the run store for `command` as a *shared* grid-worker handle:
/// same fingerprint and byte-identical manifest as [`open`], but no
/// single-writer lock — any number of `grid-worker` processes may hold
/// one, coordinating per cell through leases. A shared open never clears
/// existing state (workers are always additive); delete the run directory
/// to start a grid from scratch.
///
/// # Errors
///
/// Returns a [`StoreError`] if the directory cannot be prepared, holds a
/// conflicting manifest, or a live exclusive writer owns it.
pub fn open_grid(
    out_dir: &Path,
    command: &str,
    config: &ExperimentConfig,
    spec: &GridSpec,
    epsilons: &[f32],
) -> Result<OpenedRun, StoreError> {
    let fp = fingerprint(command, config, Some(spec), epsilons)?;
    let manifest = manifest_json(command, &fp, config, Some(spec), epsilons)?;
    RunStore::open_shared(&out_dir.join(RUNS_SUBDIR), &fp, &manifest)
}

/// The byte-deterministic run manifest. Hand-assembled so a given run
/// definition always renders identically (re-opening compares it
/// byte-for-byte, and exclusive and shared opens must agree).
fn manifest_json(
    command: &str,
    fp: &Fingerprint,
    config: &ExperimentConfig,
    spec: Option<&GridSpec>,
    epsilons: &[f32],
) -> Result<String, StoreError> {
    let config_json = serialize("the experiment config", &canonical_config(config))?;
    let spec_json = match spec {
        Some(s) => serialize("the grid spec", s)?,
        None => "null".to_string(),
    };
    let epsilons_json = serialize("the epsilon sweep", &epsilons.to_vec())?;
    Ok(format!(
        "{{\n  \"command\": \"{command}\",\n  \"fingerprint\": \"{fp}\",\n  \"format_version\": {version},\n  \"config\": {config_json},\n  \"spec\": {spec_json},\n  \"epsilons\": {epsilons_json},\n  \"epsilon_bits\": \"{bits}\"\n}}\n",
        version = store::FORMAT_VERSION,
        bits = epsilon_bits(epsilons),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn fingerprint_is_deterministic_and_sensitive() {
        let cfg = presets::quick();
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4]);
        let eps = [0.1f32, 0.2];
        let base = fingerprint("heatmap", &cfg, Some(&spec), &eps).unwrap();
        assert_eq!(
            base,
            fingerprint("heatmap", &cfg, Some(&spec), &eps).unwrap()
        );
        // Command, config, spec, and ε sweep all key the fingerprint.
        assert_ne!(base, fingerprint("fig9", &cfg, Some(&spec), &eps).unwrap());
        let mut tweaked = cfg.clone();
        tweaked.seed += 1;
        assert_ne!(
            base,
            fingerprint("heatmap", &tweaked, Some(&spec), &eps).unwrap()
        );
        assert_ne!(base, fingerprint("heatmap", &cfg, None, &eps).unwrap());
        assert_ne!(
            base,
            fingerprint("heatmap", &cfg, Some(&spec), &[0.1]).unwrap()
        );
    }

    #[test]
    fn thread_count_never_changes_the_fingerprint() {
        // Every parallel path is deterministic (PR 1), so `--threads` must
        // not key the cache: a 4-thread run resumes a 1-thread run.
        let mut cfg = presets::quick();
        let eps = [0.1f32];
        cfg.threads = 1;
        let one = fingerprint("fig1", &cfg, None, &eps).unwrap();
        cfg.threads = 4;
        assert_eq!(one, fingerprint("fig1", &cfg, None, &eps).unwrap());
    }

    #[test]
    fn epsilon_bits_are_exact_and_ordered() {
        assert_eq!(epsilon_bits(&[1.0, 0.5]), "3f800000,3f000000");
        assert_ne!(epsilon_bits(&[0.1]), epsilon_bits(&[0.1000001]));
    }

    #[test]
    fn open_resume_round_trip() {
        let out = std::env::temp_dir().join("explore_runs_open_test");
        let _ = std::fs::remove_dir_all(&out);
        let cfg = presets::quick();
        let eps = [0.25f32];
        let first = open(&out, "fig1", &cfg, None, &eps, false).unwrap();
        assert!(!first.resumed);
        drop(first);
        let second = open(&out, "fig1", &cfg, None, &eps, true).unwrap();
        assert!(second.resumed);
        // The run directory is single-writer: while `second` holds it, a
        // concurrent open is refused with the typed lock error.
        assert!(matches!(
            open(&out, "fig1", &cfg, None, &eps, true),
            Err(store::StoreError::Locked { .. })
        ));
        drop(second);
        // A fresh (non-resume) open starts over.
        let third = open(&out, "fig1", &cfg, None, &eps, false).unwrap();
        assert!(!third.resumed);
    }

    #[test]
    fn grid_open_shares_the_exclusive_run_directory() {
        let out = std::env::temp_dir().join("explore_runs_open_grid_test");
        let _ = std::fs::remove_dir_all(&out);
        let cfg = presets::quick();
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4]);
        let eps = [0.25f32];
        // Seed the directory through the exclusive path, then join it with
        // two shared worker handles: same fingerprint, same manifest bytes.
        let seeded = open(&out, "heatmap", &cfg, Some(&spec), &eps, false).unwrap();
        let dir = seeded.store.dir().to_path_buf();
        drop(seeded);
        let a = open_grid(&out, "heatmap", &cfg, &spec, &eps).unwrap();
        let b = open_grid(&out, "heatmap", &cfg, &spec, &eps).unwrap();
        assert!(a.resumed && b.resumed, "workers join the seeded manifest");
        assert_eq!(a.store.dir(), dir);
        assert!(a.store.is_shared() && b.store.is_shared());
    }
}
