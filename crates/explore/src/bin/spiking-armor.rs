//! Command-line driver for the paper's experiments.
//!
//! ```text
//! spiking-armor fig1                  # CNN vs SNN PGD sweep (Fig. 1)
//! spiking-armor heatmap [--full]      # (V_th, T) heat maps (Figs. 6-8)
//! spiking-armor fig9                  # robustness curves vs CNN (Fig. 9)
//! spiking-armor finetune              # structural fine-tuning (§VI-C)
//! spiking-armor transfer              # CNN->SNN transfer study
//! spiking-armor activity              # firing-rate analysis across V_th
//! ```
//!
//! Every command accepts `--threads N` (0 = all cores) to set the worker
//! count for the command's dominant parallel level — grid cells for the
//! heat maps, ε sweeps for the curve figures, tensor kernels elsewhere.
//! All parallel paths are deterministic: `--threads` changes wall-clock
//! time, never the artefacts.
//!
//! All artefacts (CSV/JSON) are written under `target/figures/`.

use std::fs;
use std::path::Path;
use std::process::ExitCode;

use explore::curves::{CurveSet, RobustnessCurve};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{
    algorithm, corruption, grid, mismatch, pipeline, presets, report, transfer, GridSpec,
};
use snn::StructuralParams;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map(String::as_str);
    let threads = match parse_threads(&args) {
        Ok(t) => t,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let out_dir = Path::new("target/figures");
    fs::create_dir_all(out_dir).expect("create target/figures");
    match command {
        Some("fig1") => fig1(threads),
        Some("heatmap") => heatmap(args.iter().any(|a| a == "--full"), out_dir, threads),
        Some("fig9") => fig9(threads),
        Some("finetune") => finetune(threads),
        Some("transfer") => transfer_study(threads),
        Some("activity") => activity(threads),
        Some("corruptions") => corruptions(threads),
        Some("defense") => defense_study(threads),
        _ => {
            eprintln!(
                "usage: spiking-armor <fig1|heatmap [--full]|fig9|finetune|transfer|activity|corruptions|defense> [--threads N]"
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Extracts `--threads N` from the argument list (`None` when absent, so
/// each preset's own `threads` field applies).
fn parse_threads(args: &[String]) -> Result<Option<usize>, String> {
    let Some(pos) = args.iter().position(|a| a == "--threads") else {
        return Ok(None);
    };
    let value = args
        .get(pos + 1)
        .ok_or("--threads needs a value (0 = all cores)")?;
    value
        .parse::<usize>()
        .map(Some)
        .map_err(|_| format!("--threads expects a non-negative integer, got {value:?}"))
}

/// Applies a `--threads` override to a preset configuration.
fn apply_threads(config: &mut explore::ExperimentConfig, threads: Option<usize>) {
    if let Some(t) = threads {
        config.threads = t;
    }
}

/// Routes the thread budget into the tensor kernels for commands whose only
/// parallelism is batch-level conv/elementwise work (no grid or ε sweep).
fn enable_kernel_threads(config: &explore::ExperimentConfig) {
    tensor::parallel::set_max_threads(config.effective_threads());
}

fn to_paper_axis(points: Vec<(f32, f32)>) -> Vec<(f32, f32)> {
    points
        .into_iter()
        .map(|(e, a)| (presets::pixel_eps_to_paper(e), a))
        .collect()
}

fn fig1(threads: Option<usize>) {
    let (mut config, epsilons) = presets::fig1();
    apply_threads(&mut config, threads);
    let data = pipeline::prepare_data(&config);
    let cnn = pipeline::train_cnn(&config, &data);
    let snn = pipeline::train_snn(&config, &data, presets::fig1_structural());
    let mut set = CurveSet::new();
    set.push(RobustnessCurve::new(
        "CNN",
        to_paper_axis(algorithm::sweep_attack(
            &config,
            &data,
            &cnn.classifier,
            &epsilons,
        )),
    ));
    set.push(RobustnessCurve::new(
        format!("SNN {}", presets::fig1_structural()),
        to_paper_axis(algorithm::sweep_attack(
            &config,
            &data,
            &snn.classifier,
            &epsilons,
        )),
    ));
    println!("{}", set.render_table());
}

fn heatmap(full: bool, out_dir: &Path, threads: Option<usize>) {
    let (mut config, full_spec, epsilons) = presets::heatmap_grid();
    apply_threads(&mut config, threads);
    let spec = if full {
        full_spec
    } else {
        GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24])
    };
    let data = pipeline::prepare_data(&config);
    let result = grid::run_grid(&config, &data, &spec, &epsilons, config.effective_threads());
    report::save_json(&result, &out_dir.join("heatmap_grid.json")).expect("write grid json");
    fs::write(
        out_dir.join("summary.md"),
        report::markdown_summary(&result),
    )
    .expect("write markdown summary");
    for (name, kind) in [
        ("fig6_clean", HeatmapKind::CleanAccuracy),
        (
            "fig7_eps1.0",
            HeatmapKind::AttackedAccuracy { eps: epsilons[0] },
        ),
        (
            "fig8_eps1.5",
            HeatmapKind::AttackedAccuracy { eps: epsilons[1] },
        ),
    ] {
        let map = Heatmap::from_grid(&result, kind);
        println!("{}", map.render_ascii());
        fs::write(out_dir.join(format!("{name}.csv")), map.to_csv()).expect("write csv");
    }
}

fn fig9(threads: Option<usize>) {
    let (mut config, epsilons) = presets::fig9();
    apply_threads(&mut config, threads);
    let data = pipeline::prepare_data(&config);
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24]);
    let coarse = grid::run_grid(
        &config,
        &data,
        &spec,
        &presets::heatmap_epsilons(),
        config.effective_threads(),
    );
    let mut picks = Vec::new();
    if let Some(s) = coarse.sweet_spot() {
        picks.push(s.structural);
    }
    if let Some(w) = coarse.worst_learnable() {
        if !picks.contains(&w.structural) {
            picks.push(w.structural);
        }
    }
    let mut set = CurveSet::new();
    for sp in picks {
        let trained = pipeline::train_snn(&config, &data, sp);
        set.push(RobustnessCurve::new(
            format!("SNN {sp}"),
            to_paper_axis(algorithm::sweep_attack(
                &config,
                &data,
                &trained.classifier,
                &epsilons,
            )),
        ));
    }
    let cnn = pipeline::train_cnn(&config, &data);
    set.push(RobustnessCurve::new(
        "CNN",
        to_paper_axis(algorithm::sweep_attack(
            &config,
            &data,
            &cnn.classifier,
            &epsilons,
        )),
    ));
    println!("{}", set.render_table());
}

fn finetune(threads: Option<usize>) {
    let mut config = presets::quick();
    apply_threads(&mut config, threads);
    enable_kernel_threads(&config);
    let data = pipeline::prepare_data(&config);
    let center = StructuralParams::new(1.0, 6);
    let candidates = mismatch::neighbourhood(center, 0.25, 2);
    let eps = vec![
        presets::paper_eps_to_pixel(0.5),
        presets::paper_eps_to_pixel(1.0),
    ];
    let result = mismatch::fine_tune_structural(&config, &data, center, &candidates, &eps);
    println!(
        "trained at {} (clean {:.1}%); deployment candidates:",
        result.trained_at,
        result.trained_accuracy * 100.0
    );
    for e in &result.entries {
        let rob: Vec<String> = e
            .robustness
            .iter()
            .map(|&(eps, r)| {
                format!(
                    "eps {:.2}: {:.0}%",
                    presets::pixel_eps_to_paper(eps),
                    r * 100.0
                )
            })
            .collect();
        println!(
            "  {}  clean {:.1}%  [{}]",
            e.eval_at,
            e.clean_accuracy * 100.0,
            rob.join(", ")
        );
    }
    if let Some(best) = result.best_deployment() {
        println!("best deployment point: {}", best.eval_at);
    }
}

fn transfer_study(threads: Option<usize>) {
    let mut config = presets::quick();
    apply_threads(&mut config, threads);
    enable_kernel_threads(&config);
    let data = pipeline::prepare_data(&config);
    let points = [
        StructuralParams::new(0.5, 4),
        StructuralParams::new(1.0, 6),
        StructuralParams::new(2.0, 8),
    ];
    let study =
        transfer::cnn_to_snn_transfer(&config, &data, &points, presets::paper_eps_to_pixel(1.0));
    println!(
        "CNN clean {:.1}%; PGD crafted on the CNN at paper-eps 1.0:",
        study.cnn_clean_accuracy * 100.0
    );
    for e in &study.entries {
        println!(
            "  SNN {}: clean {:.1}% -> transferred {:.1}% (source kept {:.1}%)",
            e.structural,
            e.snn_clean_accuracy * 100.0,
            e.transfer_accuracy * 100.0,
            e.source_accuracy * 100.0
        );
    }
}

fn activity(threads: Option<usize>) {
    let mut config = presets::quick();
    apply_threads(&mut config, threads);
    enable_kernel_threads(&config);
    let data = pipeline::prepare_data(&config);
    let x = data.test.subset(16);
    println!("firing rates of trained SNNs across thresholds (T = 6):");
    for v_th in [0.25f32, 0.5, 1.0, 1.5, 2.0, 2.5] {
        let trained = pipeline::train_snn(&config, &data, StructuralParams::new(v_th, 6));
        let (model, params) = trained.classifier.into_parts();
        let report = model.activity(&params, x.images());
        println!(
            "  Vth={v_th:<5} clean {:>5.1}%  overall rate {:.4}",
            trained.clean_accuracy * 100.0,
            report.overall_rate()
        );
    }
}

fn corruptions(threads: Option<usize>) {
    let mut config = presets::quick();
    apply_threads(&mut config, threads);
    enable_kernel_threads(&config);
    let data = pipeline::prepare_data(&config);
    let severities = [0.2f32, 0.4, 0.6];
    for sp in [
        StructuralParams::new(0.5, 4),
        StructuralParams::new(1.0, 6),
        StructuralParams::new(2.0, 8),
    ] {
        let study = corruption::corruption_robustness(&config, &data, sp, &severities);
        println!(
            "SNN {} clean {:.1}%  mean corrupted {:.1}%",
            study.structural,
            study.clean_accuracy * 100.0,
            study.mean_corrupted_accuracy() * 100.0
        );
        for e in &study.entries {
            println!(
                "    {:<15} severity {:.1}: {:.1}%",
                e.corruption,
                e.severity,
                e.accuracy * 100.0
            );
        }
    }
}

fn defense_study(threads: Option<usize>) {
    let mut config = presets::quick();
    apply_threads(&mut config, threads);
    config.accuracy_threshold = 0.3;
    let data = pipeline::prepare_data(&config);
    let sp = StructuralParams::new(1.0, 6);
    let eps = presets::paper_eps_to_pixel(0.5);
    println!("adversarial training at {sp} (train budget paper-eps 0.5):");
    let standard = pipeline::train_snn(&config, &data, sp);
    let defended = explore::defense::adversarial_train_snn(&config, &data, sp, eps);
    for (tag, trained) in [("standard", &standard), ("PGD-trained", &defended)] {
        let outcome = algorithm::explore_trained(
            &config,
            &data,
            sp,
            trained,
            &[eps, presets::paper_eps_to_pixel(1.0)],
        );
        println!(
            "  {tag:<12} clean {:.1}%  robustness {:?}",
            trained.clean_accuracy * 100.0,
            outcome
                .robustness
                .iter()
                .map(|&(e, r)| format!(
                    "paper-eps {:.2}: {:.0}%",
                    presets::pixel_eps_to_paper(e),
                    r * 100.0
                ))
                .collect::<Vec<_>>()
        );
    }
}
