//! Command-line driver for the paper's experiments.
//!
//! ```text
//! spiking-armor fig1                  # CNN vs SNN PGD sweep (Fig. 1)
//! spiking-armor heatmap [--full]      # (V_th, T) heat maps (Figs. 6-8)
//! spiking-armor fig9                  # robustness curves vs CNN (Fig. 9)
//! spiking-armor finetune             # structural fine-tuning (§VI-C)
//! spiking-armor transfer              # CNN->SNN transfer study
//! spiking-armor activity              # firing-rate analysis across V_th
//! spiking-armor corruptions           # non-adversarial control condition
//! spiking-armor defense               # PGD adversarial training study
//! spiking-armor serve                 # batched robustness-scoring service
//! spiking-armor grid-worker           # join a distributed heatmap grid
//! spiking-armor grid-reduce [--verify]  # merge completed cells to grid.json
//! ```
//!
//! `serve` boots a TCP service (newline-framed JSON, see DESIGN.md §13)
//! that classifies and PGD-certifies images over a trained checkpoint. Its
//! own flags: `--addr HOST:PORT` (default `127.0.0.1:7878`, port 0 picks a
//! free port), `--vth V --window T` (structural point, default `(1, 6)`),
//! `--replicas N` model workers, `--max-batch N` / `--max-wait-ms MS`
//! micro-batching, and `--queue-capacity N` admission control. Unlike the
//! batch commands, `serve` *hard-fails* when the run store cannot open: a
//! scoring service exists to answer from its checkpoints, so there is no
//! degraded mode.
//!
//! `grid-worker` and `grid-reduce` distribute the heatmap grid across N
//! independent OS processes sharing one fingerprinted run directory (see
//! DESIGN.md §16): each worker claims incomplete cells through per-cell
//! leases, computes them with the same cached pipeline as `heatmap`, and
//! publishes per-cell `outcome.json` artifacts; the reducer merges the
//! completed cells into `grid.json`, bitwise-identical to the
//! single-process grid. Their own flags: `--preset quick|tiny` (which grid
//! definition to run; also valid for `serve`), `--full` (the paper-sized
//! grid, shared with `heatmap`), `--ttl-ms MS` / `--heartbeat-ms MS`
//! (lease lifetime tuning), `--pause-at CHECKPOINT` (fault-injection
//! freeze, worker only), and `--verify` (reduce only: recompute through
//! the pure-cache single-process path and require byte equality). A
//! worker is always additive (`--resume` semantics are implied); delete
//! the run directory to start a grid over. Like `serve`, both hard-fail
//! when the store cannot open — distributed coordination *is* the store.
//!
//! Shared flags, accepted by every command:
//!
//! * `--threads N` — worker count for the command's dominant parallel
//!   level (0 = all cores). At the kernel level this now also shards the
//!   blocked GEMM behind `matmul` (large matrix products split by output
//!   rows), not just conv batch rows. All parallel paths are
//!   deterministic: `--threads` changes wall-clock time, never the
//!   artefacts.
//! * `--out-dir DIR` — where artefacts and run checkpoints are written
//!   (default `target/figures/`).
//! * `--resume` — reuse the checkpoints of a previous identically
//!   configured run under `--out-dir` instead of starting over. Cells and
//!   attack sweeps already completed are loaded from the run store; the
//!   final artefacts are bitwise-identical to an uninterrupted run.
//! * `--metrics` — record counters/histograms/phase spans (see
//!   DESIGN.md §11) and write a versioned `metrics.json` into the run
//!   directory (or `--out-dir` when no run store opened), plus periodic
//!   progress lines on stderr. Everything except the trailing `"timing"`
//!   section is bitwise-identical at every `--threads` setting.
//! * `--quiet` — with `--metrics`: keep recording and writing
//!   `metrics.json`, but suppress the stderr progress lines.
//!
//! Unknown flags are rejected with a usage error and a non-zero exit.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;

use explore::curves::{CurveSet, RobustnessCurve};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::serving::SnnScorer;
use explore::worker::{PauseAt, WorkerOptions};
use explore::{
    algorithm, corruption, grid, mismatch, pipeline, presets, report, runs, transfer,
    ExperimentConfig, GridSpec,
};
use serve::{ServeOptions, Server};
use snn::StructuralParams;
use store::RunStore;

const USAGE: &str = "usage: spiking-armor <fig1|heatmap [--full]|fig9|finetune|transfer|activity|corruptions|defense|serve|grid-worker|grid-reduce> \
[--threads N] [--out-dir DIR] [--resume] [--metrics [--quiet]] \
[serve/grid: --preset quick|tiny] \
[serve only: --addr HOST:PORT --vth V --window T --replicas N --max-batch N --max-wait-ms MS --queue-capacity N] \
[grid only: --full --ttl-ms MS --heartbeat-ms MS --pause-at after-lease|mid-cell|before-complete|after-artifact --verify]";

/// Parsed command line: one command plus the flags shared by every command.
#[derive(Debug)]
struct Cli {
    command: String,
    /// `heatmap` and the grid commands: run the paper-sized grid instead of
    /// the quick one.
    full: bool,
    /// `--threads` override (`None` keeps each preset's own setting).
    threads: Option<usize>,
    /// Artefact/checkpoint directory (`--out-dir`, default `target/figures`).
    out_dir: PathBuf,
    /// Reuse a previous identically-configured run's checkpoints.
    resume: bool,
    /// Record metrics and write `metrics.json` (`--metrics`).
    metrics: bool,
    /// With `--metrics`: suppress the stderr progress lines (`--quiet`).
    quiet: bool,
    /// Experiment preset (`--preset`, serve and grid commands only).
    preset: String,
    /// `serve` only: endpoint, batching, and model-point options.
    serve: ServeFlags,
    /// `grid-worker` / `grid-reduce` only: lease tuning and verification.
    grid: GridFlags,
}

/// Options meaningful only for the `serve` command; any of them appearing
/// with another command is a usage error (same policy as `--full`).
#[derive(Debug)]
struct ServeFlags {
    /// Listen endpoint (`--addr`); port 0 binds a free port.
    addr: String,
    /// Upper bound on one micro-batch (`--max-batch`).
    max_batch: usize,
    /// How long the batcher lingers for co-travellers (`--max-wait-ms`).
    max_wait_ms: u64,
    /// Model replica worker count (`--replicas`).
    replicas: usize,
    /// Admission-control queue bound (`--queue-capacity`).
    queue_capacity: usize,
    /// Structural point served: spiking threshold (`--vth`) …
    v_th: f32,
    /// … and time window (`--window`).
    window: usize,
}

impl Default for ServeFlags {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            max_batch: 16,
            max_wait_ms: 2,
            replicas: 1,
            queue_capacity: 64,
            v_th: 1.0,
            window: 6,
        }
    }
}

/// Options meaningful only for `grid-worker` / `grid-reduce`; any of them
/// appearing with another command is a usage error.
#[derive(Debug)]
struct GridFlags {
    /// Lease time-to-live in milliseconds (`--ttl-ms`).
    ttl_ms: u64,
    /// Heartbeat period in milliseconds (`--heartbeat-ms`).
    heartbeat_ms: u64,
    /// Fault-injection freeze point (`--pause-at`, worker only).
    pause_at: Option<PauseAt>,
    /// Recompute through the single-process path and require byte equality
    /// (`--verify`, reduce only).
    verify: bool,
}

impl Default for GridFlags {
    fn default() -> Self {
        let defaults = WorkerOptions::default();
        Self {
            ttl_ms: defaults.ttl_millis,
            heartbeat_ms: defaults.heartbeat_millis,
            pause_at: None,
            verify: false,
        }
    }
}

/// Parses the argument list strictly: every flag must be known, `--full`
/// is only meaningful for `heatmap` and the grid commands, and anything
/// unrecognised is an error (so a typo like `--theads` can never be
/// silently ignored).
fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut command: Option<String> = None;
    let mut full = false;
    let mut threads = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut metrics = false;
    let mut quiet = false;
    let mut serve = ServeFlags::default();
    let mut grid = GridFlags::default();
    let mut preset = "quick".to_string();
    // The first serve-only flag seen, for the "--addr is only valid for
    // serve"-style rejection once the command is known. Likewise for the
    // grid-only and serve-or-grid flags.
    let mut serve_flag: Option<&'static str> = None;
    let mut grid_flag: Option<&'static str> = None;
    let mut preset_flag = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--resume" => resume = true,
            "--metrics" => metrics = true,
            "--quiet" => quiet = true,
            "--verify" => {
                grid_flag.get_or_insert("--verify");
                grid.verify = true;
            }
            "--ttl-ms" => {
                grid.ttl_ms = positive_flag(&mut it, "--ttl-ms", &mut grid_flag)? as u64;
            }
            "--heartbeat-ms" => {
                grid.heartbeat_ms =
                    positive_flag(&mut it, "--heartbeat-ms", &mut grid_flag)? as u64;
            }
            "--pause-at" => {
                grid_flag.get_or_insert("--pause-at");
                let value = flag_value(&mut it, "--pause-at", "a checkpoint name")?;
                grid.pause_at = Some(PauseAt::parse(value).ok_or_else(|| {
                    format!(
                        "--pause-at expects one of {}, got {value:?}\n{USAGE}",
                        PauseAt::ALL.map(PauseAt::name).join("|")
                    )
                })?);
            }
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--threads needs a value (0 = all cores)\n{USAGE}"))?;
                threads = Some(value.parse::<usize>().map_err(|_| {
                    format!("--threads expects a non-negative integer, got {value:?}\n{USAGE}")
                })?);
            }
            "--out-dir" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("--out-dir needs a directory path\n{USAGE}"))?;
                out_dir = Some(PathBuf::from(value));
            }
            "--addr" => {
                serve_flag.get_or_insert("--addr");
                serve.addr = flag_value(&mut it, "--addr", "a HOST:PORT endpoint")?.clone();
            }
            "--preset" => {
                preset_flag = true;
                let value = flag_value(&mut it, "--preset", "quick or tiny")?;
                if value != "quick" && value != "tiny" {
                    return Err(format!(
                        "--preset expects quick or tiny, got {value:?}\n{USAGE}"
                    ));
                }
                preset = value.clone();
            }
            "--vth" => {
                serve_flag.get_or_insert("--vth");
                let value = flag_value(&mut it, "--vth", "a positive threshold")?;
                let v = value
                    .parse::<f32>()
                    .ok()
                    .filter(|v| v.is_finite() && *v > 0.0);
                serve.v_th = v.ok_or_else(|| {
                    format!("--vth expects a finite positive number, got {value:?}\n{USAGE}")
                })?;
            }
            "--window" => {
                serve.window = positive_flag(&mut it, "--window", &mut serve_flag)?;
            }
            "--replicas" => {
                serve.replicas = positive_flag(&mut it, "--replicas", &mut serve_flag)?;
            }
            "--max-batch" => {
                serve.max_batch = positive_flag(&mut it, "--max-batch", &mut serve_flag)?;
            }
            "--queue-capacity" => {
                serve.queue_capacity = positive_flag(&mut it, "--queue-capacity", &mut serve_flag)?;
            }
            "--max-wait-ms" => {
                serve_flag.get_or_insert("--max-wait-ms");
                let value = flag_value(&mut it, "--max-wait-ms", "milliseconds")?;
                serve.max_wait_ms = value.parse::<u64>().map_err(|_| {
                    format!("--max-wait-ms expects a non-negative integer, got {value:?}\n{USAGE}")
                })?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unrecognized flag {other:?}\n{USAGE}"));
            }
            other => {
                if command.is_some() {
                    return Err(format!("unexpected argument {other:?}\n{USAGE}"));
                }
                command = Some(other.to_string());
            }
        }
    }
    let command = command.ok_or_else(|| USAGE.to_string())?;
    let is_grid = matches!(command.as_str(), "grid-worker" | "grid-reduce");
    if full && command != "heatmap" && !is_grid {
        return Err(format!(
            "--full is only valid for the heatmap and grid commands\n{USAGE}"
        ));
    }
    if quiet && !metrics {
        return Err(format!(
            "--quiet only silences the progress lines of --metrics\n{USAGE}"
        ));
    }
    if let Some(flag) = serve_flag {
        if command != "serve" {
            return Err(format!(
                "{flag} is only valid for the serve command\n{USAGE}"
            ));
        }
    }
    if let Some(flag) = grid_flag {
        if !is_grid {
            return Err(format!(
                "{flag} is only valid for the grid-worker and grid-reduce commands\n{USAGE}"
            ));
        }
    }
    if preset_flag && command != "serve" && !is_grid {
        return Err(format!(
            "--preset is only valid for the serve and grid commands\n{USAGE}"
        ));
    }
    if grid.pause_at.is_some() && command != "grid-worker" {
        return Err(format!(
            "--pause-at is only valid for the grid-worker command\n{USAGE}"
        ));
    }
    if grid.verify && command != "grid-reduce" {
        return Err(format!(
            "--verify is only valid for the grid-reduce command\n{USAGE}"
        ));
    }
    Ok(Cli {
        command,
        full,
        threads,
        out_dir: out_dir.unwrap_or_else(|| PathBuf::from("target/figures")),
        resume,
        metrics,
        quiet,
        preset,
        serve,
        grid,
    })
}

/// The mandatory value of `flag`, or a usage error naming what was missing.
fn flag_value<'a>(
    it: &mut std::slice::Iter<'a, String>,
    flag: &str,
    what: &str,
) -> Result<&'a String, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value ({what})\n{USAGE}"))
}

/// Parses a command-scoped flag that must be a positive integer (a zero
/// batch, window, replica count, queue, or lease TTL would deadlock or
/// panic downstream). Records the flag in `scope_flag` so the caller can
/// reject it once the command is known.
fn positive_flag(
    it: &mut std::slice::Iter<'_, String>,
    flag: &'static str,
    scope_flag: &mut Option<&'static str>,
) -> Result<usize, String> {
    scope_flag.get_or_insert(flag);
    let value = flag_value(it, flag, "a positive integer")?;
    value
        .parse::<usize>()
        .ok()
        .filter(|n| *n > 0)
        .ok_or_else(|| format!("{flag} expects a positive integer, got {value:?}\n{USAGE}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse_cli(&args) {
        Ok(cli) => cli,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = fs::create_dir_all(&cli.out_dir) {
        eprintln!(
            "error: cannot create output directory {}: {e}",
            cli.out_dir.display()
        );
        return ExitCode::FAILURE;
    }
    if cli.metrics {
        obs::enable(!cli.quiet);
    }
    let run_dir = match cli.command.as_str() {
        "fig1" => fig1(&cli),
        "heatmap" => heatmap(&cli),
        "fig9" => fig9(&cli),
        "finetune" => finetune(&cli),
        "transfer" => transfer_study(&cli),
        "activity" => activity(&cli),
        "corruptions" => corruptions(&cli),
        "defense" => defense_study(&cli),
        // `serve` and the grid commands hard-fail: no store, no service
        // (see `serve_cmd` / `grid_worker`), and a failed bind is fatal too.
        "serve" => match serve_cmd(&cli) {
            Ok(run_dir) => run_dir,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
        "grid-worker" => match grid_worker(&cli) {
            Ok(run_dir) => run_dir,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
        "grid-reduce" => match grid_reduce(&cli) {
            Ok(run_dir) => run_dir,
            Err(msg) => {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
        },
        other => {
            eprintln!("unknown command {other:?}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    write_metrics(&cli, run_dir.as_deref());
    ExitCode::SUCCESS
}

/// Writes the `metrics.json` artifact after a `--metrics` command: into the
/// run directory when a store opened, otherwise straight under `--out-dir`.
/// A write failure is a warning — the science is already printed.
fn write_metrics(cli: &Cli, run_dir: Option<&Path>) {
    if !cli.metrics {
        return;
    }
    let path = run_dir.unwrap_or(&cli.out_dir).join("metrics.json");
    match obs::write_metrics(&path) {
        Ok(()) => println!("metrics: {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Applies a `--threads` override to a preset configuration.
fn apply_threads(config: &mut ExperimentConfig, threads: Option<usize>) {
    if let Some(t) = threads {
        config.threads = t;
    }
}

/// Routes the thread budget into the tensor kernels for commands whose only
/// parallelism is batch-level conv/elementwise work (no grid or ε sweep).
fn enable_kernel_threads(config: &ExperimentConfig) {
    tensor::parallel::set_max_threads(config.effective_threads());
}

/// Opens the run store for this command under `--out-dir`. A store failure
/// is downgraded to a warning — the experiment still runs, just without
/// checkpoints — so a read-only disk never blocks the science.
fn open_store(
    cli: &Cli,
    config: &ExperimentConfig,
    spec: Option<&GridSpec>,
    epsilons: &[f32],
) -> Option<RunStore> {
    match runs::open(
        &cli.out_dir,
        &cli.command,
        config,
        spec,
        epsilons,
        cli.resume,
    ) {
        Ok(opened) => {
            if opened.resumed {
                println!(
                    "resuming run {} (completed work is served from its checkpoints)",
                    opened.store.dir().display()
                );
            } else {
                println!("run directory: {}", opened.store.dir().display());
            }
            Some(opened.store)
        }
        Err(e) => {
            eprintln!("warning: cannot open the run store ({e}); running without checkpoints");
            None
        }
    }
}

fn to_paper_axis(points: Vec<(f32, f32)>) -> Vec<(f32, f32)> {
    points
        .into_iter()
        .map(|(e, a)| (presets::pixel_eps_to_paper(e), a))
        .collect()
}

fn fig1(cli: &Cli) -> Option<PathBuf> {
    let (mut config, epsilons) = presets::fig1();
    apply_threads(&mut config, cli.threads);
    let store = open_store(cli, &config, None, &epsilons);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let store = store.as_ref();
    let data = pipeline::prepare_data(&config);
    let cnn = pipeline::train_cnn_stored(&config, &data, store);
    let snn = pipeline::train_snn_stored(&config, &data, presets::fig1_structural(), store);
    let snn_key = runs::cell_key(presets::fig1_structural());
    let mut set = CurveSet::new();
    set.push(RobustnessCurve::new(
        "CNN",
        to_paper_axis(algorithm::sweep_attack_stored(
            &config,
            &data,
            &cnn.classifier,
            &epsilons,
            store.map(|s| (s, pipeline::CNN_BASELINE_KEY)),
        )),
    ));
    set.push(RobustnessCurve::new(
        format!("SNN {}", presets::fig1_structural()),
        to_paper_axis(algorithm::sweep_attack_stored(
            &config,
            &data,
            &snn.classifier,
            &epsilons,
            store.map(|s| (s, snn_key.as_str())),
        )),
    ));
    println!("{}", set.render_table());
    run_dir
}

fn heatmap(cli: &Cli) -> Option<PathBuf> {
    let (mut config, full_spec, epsilons) = presets::heatmap_grid();
    apply_threads(&mut config, cli.threads);
    let spec = if cli.full {
        full_spec
    } else {
        GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24])
    };
    let store = open_store(cli, &config, Some(&spec), &epsilons);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let data = pipeline::prepare_data(&config);
    let result = grid::run_grid_stored(
        &config,
        &data,
        &spec,
        &epsilons,
        config.effective_threads(),
        store.as_ref(),
    );
    save_artifact(&cli.out_dir.join("heatmap_grid.json"), || {
        report::save_json(&result, &cli.out_dir.join("heatmap_grid.json"))
    });
    save_artifact(&cli.out_dir.join("summary.md"), || {
        fs::write(
            cli.out_dir.join("summary.md"),
            report::markdown_summary(&result),
        )
    });
    let &[fig7_eps, fig8_eps] = epsilons.as_slice() else {
        eprintln!("error: the heat-map preset must supply exactly the Fig. 7 and Fig. 8 budgets");
        return run_dir;
    };
    for (name, kind) in [
        ("fig6_clean", HeatmapKind::CleanAccuracy),
        (
            "fig7_eps1.0",
            HeatmapKind::AttackedAccuracy { eps: fig7_eps },
        ),
        (
            "fig8_eps1.5",
            HeatmapKind::AttackedAccuracy { eps: fig8_eps },
        ),
    ] {
        let map = Heatmap::from_grid(&result, kind);
        println!("{}", map.render_ascii());
        let path = cli.out_dir.join(format!("{name}.csv"));
        save_artifact(&path, || fs::write(&path, map.to_csv()));
    }
    run_dir
}

/// Writes one figure artefact, downgrading failure to a warning: the
/// results are already printed and checkpointed, so a failed CSV write
/// should not kill the process.
fn save_artifact(path: &Path, write: impl FnOnce() -> std::io::Result<()>) {
    if let Err(e) = write() {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn fig9(cli: &Cli) -> Option<PathBuf> {
    let (mut config, epsilons) = presets::fig9();
    apply_threads(&mut config, cli.threads);
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24]);
    // The run is defined by both sweeps it performs: the coarse grid sweep
    // that picks the cells, and the fine curve sweep.
    let mut all_epsilons = presets::heatmap_epsilons();
    all_epsilons.extend_from_slice(&epsilons);
    let store = open_store(cli, &config, Some(&spec), &all_epsilons);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let store = store.as_ref();
    let data = pipeline::prepare_data(&config);
    let coarse = grid::run_grid_stored(
        &config,
        &data,
        &spec,
        &presets::heatmap_epsilons(),
        config.effective_threads(),
        store,
    );
    let mut picks = Vec::new();
    if let Some(s) = coarse.sweet_spot() {
        picks.push(s.structural);
    }
    if let Some(w) = coarse.worst_learnable() {
        if !picks.contains(&w.structural) {
            picks.push(w.structural);
        }
    }
    let mut set = CurveSet::new();
    for sp in picks {
        // The grid already trained this cell, so this is a cache hit on
        // resume *and* within a single run.
        let trained = pipeline::train_snn_stored(&config, &data, sp, store);
        let key = runs::cell_key(sp);
        set.push(RobustnessCurve::new(
            format!("SNN {sp}"),
            to_paper_axis(algorithm::sweep_attack_stored(
                &config,
                &data,
                &trained.classifier,
                &epsilons,
                store.map(|s| (s, key.as_str())),
            )),
        ));
    }
    let cnn = pipeline::train_cnn_stored(&config, &data, store);
    set.push(RobustnessCurve::new(
        "CNN",
        to_paper_axis(algorithm::sweep_attack_stored(
            &config,
            &data,
            &cnn.classifier,
            &epsilons,
            store.map(|s| (s, pipeline::CNN_BASELINE_KEY)),
        )),
    ));
    println!("{}", set.render_table());
    run_dir
}

fn finetune(cli: &Cli) -> Option<PathBuf> {
    let mut config = presets::quick();
    apply_threads(&mut config, cli.threads);
    enable_kernel_threads(&config);
    let eps = vec![
        presets::paper_eps_to_pixel(0.5),
        presets::paper_eps_to_pixel(1.0),
    ];
    let store = open_store(cli, &config, None, &eps);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let data = pipeline::prepare_data(&config);
    let center = StructuralParams::new(1.0, 6);
    let candidates = mismatch::neighbourhood(center, 0.25, 2);
    let result = mismatch::fine_tune_structural_stored(
        &config,
        &data,
        center,
        &candidates,
        &eps,
        store.as_ref(),
    );
    println!(
        "trained at {} (clean {:.1}%); deployment candidates:",
        result.trained_at,
        result.trained_accuracy * 100.0
    );
    for e in &result.entries {
        let rob: Vec<String> = e
            .robustness
            .iter()
            .map(|&(eps, r)| {
                format!(
                    "eps {:.2}: {:.0}%",
                    presets::pixel_eps_to_paper(eps),
                    r * 100.0
                )
            })
            .collect();
        println!(
            "  {}  clean {:.1}%  [{}]",
            e.eval_at,
            e.clean_accuracy * 100.0,
            rob.join(", ")
        );
    }
    if let Some(best) = result.best_deployment() {
        println!("best deployment point: {}", best.eval_at);
    }
    run_dir
}

fn transfer_study(cli: &Cli) -> Option<PathBuf> {
    let mut config = presets::quick();
    apply_threads(&mut config, cli.threads);
    enable_kernel_threads(&config);
    let epsilon = presets::paper_eps_to_pixel(1.0);
    let store = open_store(cli, &config, None, &[epsilon]);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let data = pipeline::prepare_data(&config);
    let points = [
        StructuralParams::new(0.5, 4),
        StructuralParams::new(1.0, 6),
        StructuralParams::new(2.0, 8),
    ];
    let study =
        transfer::cnn_to_snn_transfer_stored(&config, &data, &points, epsilon, store.as_ref());
    println!(
        "CNN clean {:.1}%; PGD crafted on the CNN at paper-eps 1.0:",
        study.cnn_clean_accuracy * 100.0
    );
    for e in &study.entries {
        println!(
            "  SNN {}: clean {:.1}% -> transferred {:.1}% (source kept {:.1}%)",
            e.structural,
            e.snn_clean_accuracy * 100.0,
            e.transfer_accuracy * 100.0,
            e.source_accuracy * 100.0
        );
    }
    run_dir
}

fn activity(cli: &Cli) -> Option<PathBuf> {
    let mut config = presets::quick();
    apply_threads(&mut config, cli.threads);
    enable_kernel_threads(&config);
    let store = open_store(cli, &config, None, &[]);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let data = pipeline::prepare_data(&config);
    let x = data.test.subset(16);
    println!("firing rates of trained SNNs across thresholds (T = 6):");
    for v_th in [0.25f32, 0.5, 1.0, 1.5, 2.0, 2.5] {
        let trained = pipeline::train_snn_stored(
            &config,
            &data,
            StructuralParams::new(v_th, 6),
            store.as_ref(),
        );
        let (model, params) = trained.classifier.into_parts();
        let report = model.activity(&params, x.images());
        println!(
            "  Vth={v_th:<5} clean {:>5.1}%  overall rate {:.4}",
            trained.clean_accuracy * 100.0,
            report.overall_rate()
        );
    }
    run_dir
}

fn corruptions(cli: &Cli) -> Option<PathBuf> {
    let mut config = presets::quick();
    apply_threads(&mut config, cli.threads);
    enable_kernel_threads(&config);
    // Severities do not key the run: only trainings are checkpointed, and
    // training is independent of the corruption sweep.
    let store = open_store(cli, &config, None, &[]);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let data = pipeline::prepare_data(&config);
    let severities = [0.2f32, 0.4, 0.6];
    for sp in [
        StructuralParams::new(0.5, 4),
        StructuralParams::new(1.0, 6),
        StructuralParams::new(2.0, 8),
    ] {
        let study = corruption::corruption_robustness_stored(
            &config,
            &data,
            sp,
            &severities,
            store.as_ref(),
        );
        println!(
            "SNN {} clean {:.1}%  mean corrupted {:.1}%",
            study.structural,
            study.clean_accuracy * 100.0,
            study.mean_corrupted_accuracy() * 100.0
        );
        for e in &study.entries {
            println!(
                "    {:<15} severity {:.1}: {:.1}%",
                e.corruption,
                e.severity,
                e.accuracy * 100.0
            );
        }
    }
    run_dir
}

fn defense_study(cli: &Cli) -> Option<PathBuf> {
    let mut config = presets::quick();
    apply_threads(&mut config, cli.threads);
    config.accuracy_threshold = 0.3;
    let sp = StructuralParams::new(1.0, 6);
    let eps = presets::paper_eps_to_pixel(0.5);
    let sweep = [eps, presets::paper_eps_to_pixel(1.0)];
    let store = open_store(cli, &config, None, &sweep);
    let run_dir = store.as_ref().map(|s| s.dir().to_path_buf());
    let store = store.as_ref();
    let data = pipeline::prepare_data(&config);
    println!("adversarial training at {sp} (train budget paper-eps 0.5):");
    let standard = pipeline::train_snn_stored(&config, &data, sp, store);
    let defended = explore::defense::adversarial_train_snn_stored(&config, &data, sp, eps, store);
    // Distinct attack-cache keys: same structural point, different weights.
    let standard_key = runs::cell_key(sp);
    let defended_key = format!("adv{:08x}-{}", eps.to_bits(), standard_key);
    for (tag, trained, key) in [
        ("standard", &standard, standard_key.as_str()),
        ("PGD-trained", &defended, defended_key.as_str()),
    ] {
        let outcome = algorithm::explore_trained_stored(
            &config,
            &data,
            sp,
            trained,
            &sweep,
            store.map(|s| (s, key)),
        );
        println!(
            "  {tag:<12} clean {:.1}%  robustness {:?}",
            trained.clean_accuracy * 100.0,
            outcome
                .robustness
                .iter()
                .map(|&(e, r)| format!(
                    "paper-eps {:.2}: {:.0}%",
                    presets::pixel_eps_to_paper(e),
                    r * 100.0
                ))
                .collect::<Vec<_>>()
        );
    }
    run_dir
}

/// The `serve` command: load-or-train the checkpoint, then serve classify
/// and certify requests until a shutdown frame arrives.
///
/// Store policy differs from every batch command on purpose: [`open_store`]
/// downgrades a store failure to a warning because a figure can still be
/// computed without checkpoints, but a scoring service exists *only* to
/// answer from its trained checkpoint — so here the same failure is fatal.
/// The store also holds the run-directory lock for the server's whole
/// lifetime, keeping concurrent writers out of the serving checkpoint.
fn serve_cmd(cli: &Cli) -> Result<Option<PathBuf>, String> {
    let flags = &cli.serve;
    let mut config = match cli.preset.as_str() {
        "tiny" => presets::tiny(),
        _ => presets::quick(),
    };
    apply_threads(&mut config, cli.threads);
    enable_kernel_threads(&config);
    // Flag validation already guaranteed v_th finite-positive, window >= 1.
    let sp = StructuralParams::new(flags.v_th, flags.window);
    // Resume unconditionally: re-serving an existing run directory must
    // reuse its checkpoint, not retrain. The ε axis is empty because
    // certify budgets arrive per request, not per run.
    let opened = runs::open(&cli.out_dir, "serve", &config, None, &[], true).map_err(|e| {
        format!("cannot open the run store ({e}); serve needs its checkpoint store to answer")
    })?;
    if opened.resumed {
        println!(
            "resuming run {} (the trained checkpoint is reused)",
            opened.store.dir().display()
        );
    } else {
        println!("run directory: {}", opened.store.dir().display());
    }
    let store = opened.store;
    let run_dir = store.dir().to_path_buf();
    let data = pipeline::prepare_data(&config);
    let trained = pipeline::train_snn_stored(&config, &data, sp, Some(&store));
    println!(
        "model ready at {sp}: clean accuracy {:.1}%",
        trained.clean_accuracy * 100.0
    );
    let scorer = SnnScorer::new(config, trained.classifier);
    let options = ServeOptions {
        addr: flags.addr.clone(),
        max_batch: flags.max_batch,
        max_wait: Duration::from_millis(flags.max_wait_ms),
        queue_capacity: flags.queue_capacity,
    };
    let server = Server::bind(&options, scorer.replicas(flags.replicas))
        .map_err(|e| format!("cannot start the server on {}: {e}", flags.addr))?;
    // check.sh and the CLI tests poll for this exact line to learn the
    // bound port (stdout is line-buffered, so it is visible immediately).
    println!("serving on {}", server.local_addr());
    let summary = server.run();
    println!(
        "served {} request(s) over {} connection(s); shut down cleanly",
        summary.answered, summary.connections
    );
    // The store (and with it the run-directory lock) lives until here.
    drop(store);
    Ok(Some(run_dir))
}

/// The grid definition both `grid-worker` and `grid-reduce` operate on.
///
/// Deliberately fingerprinted under the command name `"heatmap"`: with the
/// default preset the distributed workers cooperate on *the same* run
/// directory the single-process `heatmap` command uses, so `--resume`
/// heatmap runs and worker fleets are interchangeable. `--preset tiny`
/// selects the sub-second smoke grid (its config differs, so it lands in
/// its own fingerprinted directory).
fn grid_run_definition(cli: &Cli) -> (ExperimentConfig, GridSpec, Vec<f32>) {
    let (mut config, spec, epsilons) = if cli.preset == "tiny" {
        presets::tiny_grid()
    } else {
        let (config, full_spec, epsilons) = presets::heatmap_grid();
        let spec = if cli.full {
            full_spec
        } else {
            GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 12, 24])
        };
        (config, spec, epsilons)
    };
    apply_threads(&mut config, cli.threads);
    (config, spec, epsilons)
}

/// The command name grid runs are fingerprinted under (see
/// [`grid_run_definition`]).
const GRID_COMMAND: &str = "heatmap";

/// The `grid-worker` command: join the fingerprinted run directory with a
/// shared store handle and claim cells until the grid is complete.
///
/// Store policy matches `serve`, not the batch commands: distributed
/// coordination happens *through* the store, so failing to open it is
/// fatal. Resume semantics are implied — a worker is always additive.
fn grid_worker(cli: &Cli) -> Result<Option<PathBuf>, String> {
    let (config, spec, epsilons) = grid_run_definition(cli);
    enable_kernel_threads(&config);
    let opened =
        runs::open_grid(&cli.out_dir, GRID_COMMAND, &config, &spec, &epsilons).map_err(|e| {
            format!("cannot join the grid run ({e}); workers coordinate through the store")
        })?;
    let store = opened.store;
    let run_dir = store.dir().to_path_buf();
    println!(
        "worker {} joined grid run {} ({} cells)",
        std::process::id(),
        run_dir.display(),
        spec.len()
    );
    let data = pipeline::prepare_data(&config);
    let opts = WorkerOptions {
        ttl_millis: cli.grid.ttl_ms,
        heartbeat_millis: cli.grid.heartbeat_ms,
        pause_at: cli.grid.pause_at,
        ..WorkerOptions::default()
    };
    let report = explore::run_worker(&config, &data, &spec, &epsilons, &store, &opts)
        .map_err(|e| format!("worker failed: {e}"))?;
    println!(
        "worker {} done: {} cell(s) computed, {} abandoned, {} busy claim(s), {} idle wait(s)",
        std::process::id(),
        report.completed.len(),
        report.abandoned,
        report.busy,
        report.polls
    );
    Ok(Some(run_dir))
}

/// The `grid-reduce` command: merge the published per-cell outcomes into
/// `<out-dir>/grid.json`. With `--verify`, additionally recompute the grid
/// through the single-process path (pure cache hits against the same
/// checkpoints) and require byte equality — the end-to-end check of the
/// determinism contract in DESIGN.md §16.
fn grid_reduce(cli: &Cli) -> Result<Option<PathBuf>, String> {
    let (config, spec, epsilons) = grid_run_definition(cli);
    let opened = runs::open_grid(&cli.out_dir, GRID_COMMAND, &config, &spec, &epsilons)
        .map_err(|e| format!("cannot open the grid run ({e})"))?;
    let store = opened.store;
    let run_dir = store.dir().to_path_buf();
    let result = explore::reduce_grid(&store, &spec, &epsilons).map_err(|e| e.to_string())?;
    let path = cli.out_dir.join("grid.json");
    report::save_json(&result, &path)
        .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "reduced {} cell(s) into {}",
        result.outcomes.len(),
        path.display()
    );
    if cli.grid.verify {
        let data = pipeline::prepare_data(&config);
        let recomputed = grid::run_grid_stored(
            &config,
            &data,
            &spec,
            &epsilons,
            config.effective_threads(),
            Some(&store),
        );
        let reduced_json = serde_json::to_string_pretty(&result)
            .map_err(|e| format!("cannot serialise the reduced grid: {e}"))?;
        let recomputed_json = serde_json::to_string_pretty(&recomputed)
            .map_err(|e| format!("cannot serialise the recomputed grid: {e}"))?;
        if reduced_json != recomputed_json {
            return Err(
                "reduce guard FAILED: reduced grid differs from the single-process grid"
                    .to_string(),
            );
        }
        // check.sh greps this exact line as the bitwise-identity guard.
        println!(
            "reduce guard: ok ({} cells bitwise-identical to single-process grid)",
            result.outcomes.len()
        );
    }
    Ok(Some(run_dir))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(command: &str, out_dir: PathBuf) -> Cli {
        Cli {
            command: command.to_string(),
            full: false,
            threads: None,
            out_dir,
            resume: false,
            metrics: false,
            quiet: false,
            preset: "quick".to_string(),
            serve: ServeFlags::default(),
            grid: GridFlags::default(),
        }
    }

    /// Planting a *file* at `<out>/runs` makes every store open fail: the
    /// store cannot create its runs directory over it.
    fn broken_out_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spiking_armor_cli_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("runs"), b"not a directory").unwrap();
        dir
    }

    #[test]
    fn batch_commands_downgrade_a_broken_store_to_a_warning() {
        let out = broken_out_dir("batch_downgrade");
        let cli = cli("fig1", out.clone());
        let (config, epsilons) = presets::fig1();
        // The documented batch policy: the experiment still runs, just
        // without checkpoints.
        assert!(open_store(&cli, &config, None, &epsilons).is_none());
        let _ = fs::remove_dir_all(out);
    }

    #[test]
    fn serve_hard_fails_on_a_broken_store() {
        let out = broken_out_dir("serve_hard_fail");
        let mut cli = cli("serve", out.clone());
        cli.preset = "tiny".to_string();
        let err = serve_cmd(&cli).unwrap_err();
        assert!(
            err.contains("cannot open the run store"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(out);
    }

    #[test]
    fn serve_flags_parse_and_are_serve_only() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let cli = parse_cli(&args(
            "serve --addr 127.0.0.1:0 --preset tiny --vth 0.5 --window 4 \
             --replicas 2 --max-batch 8 --max-wait-ms 1 --queue-capacity 32",
        ))
        .unwrap();
        assert_eq!(cli.serve.addr, "127.0.0.1:0");
        assert_eq!(cli.preset, "tiny");
        assert_eq!(cli.serve.v_th, 0.5);
        assert_eq!(cli.serve.window, 4);
        assert_eq!(cli.serve.replicas, 2);
        assert_eq!(cli.serve.max_batch, 8);
        assert_eq!(cli.serve.max_wait_ms, 1);
        assert_eq!(cli.serve.queue_capacity, 32);

        // Serve-only flags are rejected elsewhere, like --full outside
        // heatmap; invalid values never reach StructuralParams::new.
        assert!(parse_cli(&args("fig1 --addr 127.0.0.1:0"))
            .unwrap_err()
            .contains("only valid for the serve command"));
        assert!(parse_cli(&args("serve --vth 0"))
            .unwrap_err()
            .contains("--vth"));
        assert!(parse_cli(&args("serve --vth nan"))
            .unwrap_err()
            .contains("--vth"));
        assert!(parse_cli(&args("serve --window 0"))
            .unwrap_err()
            .contains("--window"));
        assert!(parse_cli(&args("serve --preset huge"))
            .unwrap_err()
            .contains("--preset"));
    }

    #[test]
    fn grid_flags_parse_and_are_scoped_to_their_commands() {
        let args = |s: &str| -> Vec<String> { s.split(' ').map(String::from).collect() };
        let cli = parse_cli(&args(
            "grid-worker --preset tiny --ttl-ms 500 --heartbeat-ms 100 --pause-at mid-cell",
        ))
        .unwrap();
        assert_eq!(cli.preset, "tiny");
        assert_eq!(cli.grid.ttl_ms, 500);
        assert_eq!(cli.grid.heartbeat_ms, 100);
        assert_eq!(cli.grid.pause_at, Some(PauseAt::MidCell));
        let cli = parse_cli(&args("grid-reduce --preset tiny --verify")).unwrap();
        assert!(cli.grid.verify);
        // `--full` extends to the grid commands (the paper-sized grid is a
        // valid distributed target), but nowhere else new.
        assert!(parse_cli(&args("grid-worker --full")).is_ok());
        assert!(parse_cli(&args("fig1 --full")).is_err());

        // Scoping: grid flags are rejected elsewhere; `--pause-at` is
        // worker-only and `--verify` reduce-only; bad values never pass.
        assert!(parse_cli(&args("heatmap --ttl-ms 500"))
            .unwrap_err()
            .contains("grid-worker and grid-reduce"));
        assert!(parse_cli(&args("fig1 --preset tiny"))
            .unwrap_err()
            .contains("serve and grid"));
        assert!(parse_cli(&args("grid-reduce --pause-at mid-cell"))
            .unwrap_err()
            .contains("grid-worker"));
        assert!(parse_cli(&args("grid-worker --verify"))
            .unwrap_err()
            .contains("grid-reduce"));
        assert!(parse_cli(&args("grid-worker --ttl-ms 0"))
            .unwrap_err()
            .contains("--ttl-ms"));
        assert!(parse_cli(&args("grid-worker --pause-at nowhere"))
            .unwrap_err()
            .contains("--pause-at"));
    }

    #[test]
    fn grid_commands_hard_fail_on_a_broken_store() {
        let out = broken_out_dir("grid_hard_fail");
        let mut worker = cli("grid-worker", out.clone());
        worker.preset = "tiny".to_string();
        let err = grid_worker(&worker).unwrap_err();
        assert!(
            err.contains("cannot join the grid run"),
            "unexpected error: {err}"
        );
        let mut reduce = cli("grid-reduce", out.clone());
        reduce.preset = "tiny".to_string();
        let err = grid_reduce(&reduce).unwrap_err();
        assert!(
            err.contains("cannot open the grid run"),
            "unexpected error: {err}"
        );
        let _ = fs::remove_dir_all(out);
    }
}
