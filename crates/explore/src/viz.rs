//! SVG rendering of the paper's figures — dependency-free vector output
//! for heat maps and robustness curves, so the regenerated artefacts are
//! actual figures, not just tables.

use std::fmt::Write as _;

use crate::curves::CurveSet;
use crate::heatmap::{Heatmap, HeatmapKind};

const CELL: f32 = 44.0;
const MARGIN: f32 = 70.0;

/// Renders a heat map as a self-contained SVG document.
///
/// Cells are coloured on a cold→hot ramp over the map's own value range;
/// masked (non-learnable) cells are hatched gray. Returns valid SVG 1.1.
pub fn svg_heatmap(map: &Heatmap) -> String {
    let cols = map.v_ths().len();
    let rows = map.windows_desc().len();
    let width = MARGIN + cols as f32 * CELL + 20.0;
    let height = MARGIN + rows as f32 * CELL + 40.0;
    let lo = map.min_value().unwrap_or(0.0);
    let hi = map.max_value().unwrap_or(1.0);
    let title = match map.kind() {
        HeatmapKind::CleanAccuracy => "Clean accuracy over (Vth, T)".to_string(),
        HeatmapKind::AttackedAccuracy { eps } => {
            format!("Accuracy under PGD eps={eps:.3} over (Vth, T)")
        }
        HeatmapKind::Retention { eps } => {
            format!("Accuracy retained under PGD eps={eps:.3} over (Vth, T)")
        }
    };
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"#
    );
    let _ = write!(
        svg,
        r#"<text x="{}" y="22" font-family="sans-serif" font-size="14">{title}</text>"#,
        MARGIN
    );
    for (idx, (window, v_th, value)) in map.cells().enumerate() {
        let row = idx / cols;
        let col = idx % cols;
        let x = MARGIN + col as f32 * CELL;
        let y = MARGIN + row as f32 * CELL - 30.0;
        match value {
            Some(v) => {
                let (r, g, b) = ramp(v, lo, hi);
                let _ = write!(
                    svg,
                    r#"<rect x="{x}" y="{y}" width="{CELL}" height="{CELL}" fill="rgb({r},{g},{b})" stroke="white"/>"#
                );
                let _ = write!(
                    svg,
                    r#"<text x="{tx}" y="{ty}" font-family="sans-serif" font-size="10" text-anchor="middle" fill="black">{pct:.0}</text>"#,
                    tx = x + CELL / 2.0,
                    ty = y + CELL / 2.0 + 4.0,
                    pct = v * 100.0
                );
            }
            None => {
                let _ = write!(
                    svg,
                    r##"<rect x="{x}" y="{y}" width="{CELL}" height="{CELL}" fill="#d0d0d0" stroke="white"/><text x="{tx}" y="{ty}" font-family="sans-serif" font-size="10" text-anchor="middle" fill="#666">--</text>"##,
                    tx = x + CELL / 2.0,
                    ty = y + CELL / 2.0 + 4.0
                );
            }
        }
        // Axis labels on the first column / last row.
        if col == 0 {
            let _ = write!(
                svg,
                r#"<text x="{lx}" y="{ly}" font-family="sans-serif" font-size="11" text-anchor="end">T={window}</text>"#,
                lx = MARGIN - 6.0,
                ly = y + CELL / 2.0 + 4.0
            );
        }
        if row == rows - 1 {
            let _ = write!(
                svg,
                r#"<text x="{lx}" y="{ly}" font-family="sans-serif" font-size="11" text-anchor="middle">{v_th}</text>"#,
                lx = x + CELL / 2.0,
                ly = y + CELL + 16.0
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a curve set as a self-contained SVG line chart (accuracy in
/// percent on the y axis, ε on the x axis).
pub fn svg_curves(set: &CurveSet, title: &str) -> String {
    let (w, h) = (520.0f32, 340.0f32);
    let (left, bottom, top, right) = (60.0f32, 40.0f32, 30.0f32, 20.0f32);
    let plot_w = w - left - right;
    let plot_h = h - top - bottom;
    let x_max = set
        .curves()
        .iter()
        .flat_map(|c| c.points().iter().map(|&(e, _)| e))
        .fold(0.0f32, f32::max)
        .max(1e-6);
    let colors = [
        "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b",
    ];
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        svg,
        r#"<text x="{left}" y="20" font-family="sans-serif" font-size="14">{title}</text>"#
    );
    // Axes.
    let _ = write!(
        svg,
        r#"<line x1="{left}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{left}" y1="{top}" x2="{left}" y2="{y0}" stroke="black"/>"#,
        y0 = h - bottom,
        x1 = w - right
    );
    for tick in 0..=4 {
        let frac = tick as f32 / 4.0;
        let y = h - bottom - frac * plot_h;
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{ty}" font-family="sans-serif" font-size="10" text-anchor="end">{pct:.0}%</text>"#,
            x = left - 6.0,
            ty = y + 3.0,
            pct = frac * 100.0
        );
        let x = left + frac * plot_w;
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{ty}" font-family="sans-serif" font-size="10" text-anchor="middle">{val:.2}</text>"#,
            ty = h - bottom + 16.0,
            val = frac * x_max
        );
    }
    for (ci, curve) in set.curves().iter().enumerate() {
        let color = colors.get(ci % colors.len()).copied().unwrap_or("black");
        let points: Vec<String> = curve
            .points()
            .iter()
            .map(|&(e, a)| {
                let x = left + (e / x_max) * plot_w;
                let y = h - bottom - a.clamp(0.0, 1.0) * plot_h;
                format!("{x:.1},{y:.1}")
            })
            .collect();
        let _ = write!(
            svg,
            r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="2"/>"#,
            points.join(" ")
        );
        let _ = write!(
            svg,
            r#"<text x="{x}" y="{y}" font-family="sans-serif" font-size="11" fill="{color}">{label}</text>"#,
            x = left + 8.0,
            y = top + 14.0 + ci as f32 * 14.0,
            label = curve.label()
        );
    }
    svg.push_str("</svg>");
    svg
}

/// Renders a single-neuron membrane trajectory (from
/// [`snn::trace::simulate`]) as an SVG line plot with the threshold as a
/// dashed line and spikes as vertical ticks.
pub fn svg_membrane_trace(trace: &snn::trace::NeuronTrace, v_th: f32, title: &str) -> String {
    use std::fmt::Write as _;
    let (w, h) = (520.0f32, 240.0f32);
    let (left, bottom, top, right) = (50.0f32, 30.0f32, 28.0f32, 15.0f32);
    let plot_w = w - left - right;
    let plot_h = h - top - bottom;
    let steps = trace.membrane.len().max(1) as f32;
    let v_max = trace
        .membrane
        .iter()
        .copied()
        .fold(v_th, f32::max)
        .max(1e-6)
        * 1.1;
    let v_min = trace.membrane.iter().copied().fold(0.0f32, f32::min);
    let span = (v_max - v_min).max(1e-6);
    let to_xy = |t: usize, v: f32| {
        let x = left + (t as f32 / steps) * plot_w;
        let y = h - bottom - ((v - v_min) / span) * plot_h;
        (x, y)
    };
    let mut svg = String::new();
    let _ = write!(
        svg,
        r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}">"#
    );
    let _ = write!(
        svg,
        r#"<text x="{left}" y="18" font-family="sans-serif" font-size="13">{title}</text>"#
    );
    // Threshold line.
    let (_, ty) = to_xy(0, v_th);
    let _ = write!(
        svg,
        r#"<line x1="{left}" y1="{ty}" x2="{x2}" y2="{ty}" stroke="gray" stroke-dasharray="4 3"/>"#,
        x2 = w - right
    );
    // Membrane polyline.
    let points: Vec<String> = trace
        .membrane
        .iter()
        .enumerate()
        .map(|(t, &v)| {
            let (x, y) = to_xy(t, v);
            format!("{x:.1},{y:.1}")
        })
        .collect();
    let _ = write!(
        svg,
        r##"<polyline points="{}" fill="none" stroke="#1f77b4" stroke-width="1.5"/>"##,
        points.join(" ")
    );
    // Spike ticks.
    for (t, &spiked) in trace.spikes.iter().enumerate() {
        if spiked {
            let (x, _) = to_xy(t, 0.0);
            let _ = write!(
                svg,
                r##"<line x1="{x}" y1="{top}" x2="{x}" y2="{y2}" stroke="#d62728" stroke-width="1"/>"##,
                y2 = top + 10.0
            );
        }
    }
    svg.push_str("</svg>");
    svg
}

/// Cold→hot colour ramp over `[lo, hi]`.
fn ramp(v: f32, lo: f32, hi: f32) -> (u8, u8, u8) {
    let t = if hi > lo {
        ((v - lo) / (hi - lo)).clamp(0.0, 1.0)
    } else {
        0.5
    };
    // Blue (low) → yellow (mid) → red (high), roughly matching the paper's
    // colormap reading.
    if t < 0.5 {
        let u = t * 2.0;
        (
            (60.0 + 195.0 * u) as u8,
            (80.0 + 175.0 * u) as u8,
            (200.0 - 140.0 * u) as u8,
        )
    } else {
        let u = (t - 0.5) * 2.0;
        (255, (255.0 - 180.0 * u) as u8, (60.0 - 40.0 * u) as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::ExplorationOutcome;
    use crate::curves::RobustnessCurve;
    use crate::grid::{GridResult, GridSpec};

    fn grid() -> GridResult {
        let spec = GridSpec::new(vec![0.5, 1.0, 1.5], vec![4, 8]);
        let outcomes = spec
            .cells()
            .map(|sp| ExplorationOutcome {
                structural: sp,
                clean_accuracy: (sp.v_th / 2.0).min(1.0),
                learnable: sp.v_th < 1.4,
                robustness: if sp.v_th < 1.4 {
                    vec![(0.3, 0.4)]
                } else {
                    vec![]
                },
            })
            .collect();
        GridResult {
            spec,
            epsilons: vec![0.3],
            outcomes,
        }
    }

    #[test]
    fn heatmap_svg_has_one_rect_per_cell() {
        let map = Heatmap::from_grid(&grid(), HeatmapKind::CleanAccuracy);
        let svg = svg_heatmap(&map);
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<rect").count(), 6);
        assert!(svg.contains("T=8"));
        assert!(svg.contains("Clean accuracy"));
    }

    #[test]
    fn masked_cells_render_as_gray() {
        let map = Heatmap::from_grid(&grid(), HeatmapKind::AttackedAccuracy { eps: 0.3 });
        let svg = svg_heatmap(&map);
        // v_th = 1.5 cells are unlearnable in both rows.
        assert_eq!(svg.matches("#d0d0d0").count(), 2);
    }

    #[test]
    fn curves_svg_has_one_polyline_per_curve() {
        let mut set = CurveSet::new();
        set.push(RobustnessCurve::new("a", vec![(0.0, 0.9), (1.0, 0.5)]));
        set.push(RobustnessCurve::new("b", vec![(0.0, 0.8), (1.0, 0.1)]));
        let svg = svg_curves(&set, "Robustness");
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("Robustness"));
        assert!(svg.contains(">a<") && svg.contains(">b<"));
    }

    #[test]
    fn membrane_trace_svg_marks_spikes() {
        use snn::{trace, LifParams, NeuronModel};
        let t = trace::simulate(NeuronModel::Lif, LifParams::new(1.0), &[0.5; 20]);
        let svg = svg_membrane_trace(&t, 1.0, "LIF under constant drive");
        assert!(svg.starts_with("<svg") && svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 1);
        // One red tick per spike.
        assert_eq!(svg.matches("#d62728").count(), t.spike_count());
        assert!(svg.contains("stroke-dasharray"), "threshold line present");
    }

    #[test]
    fn ramp_endpoints_and_ordering() {
        let cold = ramp(0.0, 0.0, 1.0);
        let hot = ramp(1.0, 0.0, 1.0);
        assert!(cold.2 > cold.0, "low values are blue-ish: {cold:?}");
        assert_eq!(hot.0, 255, "high values are red-ish: {hot:?}");
        // Degenerate range does not panic or divide by zero.
        let mid = ramp(0.5, 0.5, 0.5);
        assert!(mid.0 > 0);
    }
}
