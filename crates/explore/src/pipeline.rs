//! Data preparation and model training helpers shared by every experiment.

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use dataset::synth::SynthDigits;
use dataset::Dataset;
use nn::{Adam, Classifier, Cnn, Params};
use snn::{SpikingCnn, StructuralParams};
use store::{CellMeta, Event, RunStore};

use crate::config::ExperimentConfig;
use crate::runs;

/// Train/test datasets generated for one experiment.
#[derive(Debug, Clone)]
pub struct SplitData {
    /// Training split.
    pub train: Dataset,
    /// Held-out test split (attacked by the security study).
    pub test: Dataset,
}

/// Prepares the train/test splits described by `config`.
///
/// By default this generates SynthDigits (train and test from different
/// generator seeds, so the test digits are genuinely unseen). When
/// `config.mnist_dir` is set, the real MNIST IDX files are loaded instead
/// and subsampled to the configured sizes — the paper's exact dataset.
///
/// # Panics
///
/// Panics if `mnist_dir` is set but the files are missing/malformed, or if
/// the MNIST image size does not match `config.image_hw`.
pub fn prepare_data(config: &ExperimentConfig) -> SplitData {
    config.validate();
    if let Some(dir) = &config.mnist_dir {
        let (train_full, test_full) = dataset::mnist::load_dir(std::path::Path::new(dir))
            // armor-lint: allow(no-panic-in-io) -- documented fail-fast on bad --mnist-dir input
            .unwrap_or_else(|e| panic!("failed to load MNIST from {dir}: {e}"));
        assert_eq!(
            train_full.hw(),
            config.image_hw,
            "MNIST is {0}x{0} but the configuration expects {1}x{1}",
            train_full.hw(),
            config.image_hw
        );
        let mut rng = StdRng::seed_from_u64(config.seed);
        let train = train_full
            .shuffled(&mut rng)
            .subset(config.train_per_class * 10);
        let test = test_full
            .shuffled(&mut rng)
            .subset(config.test_per_class * 10);
        return SplitData { train, test };
    }
    let train = SynthDigits::new(config.image_hw)
        .samples_per_class(config.train_per_class)
        .seed(config.seed)
        .generate();
    let test = SynthDigits::new(config.image_hw)
        .samples_per_class(config.test_per_class)
        .seed(config.seed.wrapping_add(0x5EED))
        .generate();
    SplitData { train, test }
}

/// A trained model with its measured clean test accuracy.
#[derive(Debug, Clone)]
pub struct Trained<M> {
    /// The attackable classifier (model + weights).
    pub classifier: Classifier<M>,
    /// Accuracy on the full test split after training.
    pub clean_accuracy: f32,
}

/// The deterministic training seed of one `(config, structural)` cell.
pub(crate) fn snn_cell_seed(config: &ExperimentConfig, structural: StructuralParams) -> u64 {
    config
        .seed
        .wrapping_add(u64::from(structural.v_th.to_bits()))
        .wrapping_add((structural.time_window as u64).wrapping_mul(0x9E37_79B9))
}

/// Initialises one cell's model, parameters, and the *continuing* RNG
/// stream (model init consumes the head of the stream; training epochs
/// must consume the rest, exactly as before checkpointing existed).
fn init_snn(
    config: &ExperimentConfig,
    structural: StructuralParams,
) -> (SpikingCnn, Params, StdRng) {
    let mut rng = StdRng::seed_from_u64(snn_cell_seed(config, structural));
    let mut params = Params::new();
    let model = SpikingCnn::new(
        &mut params,
        &mut rng,
        &config.cnn_config(),
        &config.snn_config(structural),
    );
    (model, params, rng)
}

fn init_cnn(config: &ExperimentConfig) -> (Cnn, Params, StdRng) {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0xC44));
    let mut params = Params::new();
    let model = Cnn::new(&mut params, &mut rng, &config.cnn_config());
    (model, params, rng)
}

/// Builds the untrained SNN skeleton for one cell — the same architecture,
/// parameter names, and initial weights that [`train_snn`] starts from.
/// Checkpoint loads validate against this skeleton before trusting cached
/// weights.
pub fn build_snn(config: &ExperimentConfig, structural: StructuralParams) -> (SpikingCnn, Params) {
    let (model, params, _) = init_snn(config, structural);
    (model, params)
}

/// Builds the untrained CNN-baseline skeleton (see [`build_snn`]).
pub fn build_cnn(config: &ExperimentConfig) -> (Cnn, Params) {
    let (model, params, _) = init_cnn(config);
    (model, params)
}

/// `true` when `loaded` can stand in for `expected`: same parameter count,
/// names, and shapes, in the same registration order.
pub fn params_compatible(expected: &Params, loaded: &Params) -> bool {
    expected.len() == loaded.len()
        && expected
            .iter()
            .zip(loaded.iter())
            .all(|((ia, ta), (ib, tb))| {
                expected.name(ia) == loaded.name(ib) && ta.dims() == tb.dims()
            })
}

/// Tries to serve a trained model from the run store. Returns `None` on a
/// cache miss; a damaged or architecturally incompatible checkpoint is
/// journalled as a [`Event::CacheError`] and treated as a miss (the caller
/// retrains), never trusted.
pub(crate) fn load_cached_model<M: nn::Model>(
    store: &RunStore,
    key: &str,
    skeleton: (M, Params),
) -> Option<Trained<M>> {
    let (model, expected) = skeleton;
    match store.load_trained(key) {
        Ok(Some((params, meta))) => {
            if params_compatible(&expected, &params) {
                obs::counter_add("grid/cells_cached", 1);
                store.log(&Event::CellCached {
                    cell: key.to_string(),
                    clean_accuracy: meta.clean_accuracy,
                });
                let classifier = Classifier::new(model, params);
                // Prebuild the GEMM panels: the caller's next move is an
                // attack sweep of repeated forwards over frozen weights.
                classifier.warm_prepack();
                Some(Trained {
                    classifier,
                    clean_accuracy: meta.clean_accuracy,
                })
            } else {
                store.log(&Event::CacheError {
                    cell: key.to_string(),
                    error: "checkpointed parameters do not match the model architecture".into(),
                });
                None
            }
        }
        Ok(None) => None,
        Err(e) => {
            store.log(&Event::CacheError {
                cell: key.to_string(),
                error: e.to_string(),
            });
            None
        }
    }
}

/// Checkpoints a freshly trained model and journals the training.
pub(crate) fn save_trained_model<M: nn::Model>(
    store: &RunStore,
    key: &str,
    config: &ExperimentConfig,
    trained: &Trained<M>,
    elapsed_millis: u64,
) {
    let meta = CellMeta {
        clean_accuracy: trained.clean_accuracy,
        learnable: trained.clean_accuracy >= config.accuracy_threshold,
    };
    if let Err(e) = store.save_trained(key, trained.classifier.params(), &meta) {
        eprintln!("warning: could not checkpoint cell {key}: {e}");
    }
    store.log(&Event::CellTrained {
        cell: key.to_string(),
        clean_accuracy: meta.clean_accuracy,
        learnable: meta.learnable,
        millis: elapsed_millis,
    });
}

/// Like [`train_snn`], but durable: when a run store is given, a completed
/// checkpoint for this cell is loaded instead of retraining, and a fresh
/// training is checkpointed for future resumes. Cached and fresh results
/// are bitwise-identical (the checkpoint format preserves exact bits).
pub fn train_snn_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    store: Option<&RunStore>,
) -> Trained<SpikingCnn> {
    let key = runs::cell_key(structural);
    if let Some(s) = store {
        if let Some(hit) = load_cached_model(s, &key, build_snn(config, structural)) {
            return hit;
        }
    }
    // armor-lint: allow(wallclock-purity, transitive-determinism) -- duration feeds the journal's millis field only, a deliberately wall-clock progress figure excluded from fingerprints
    let start = Instant::now();
    let trained = train_snn(config, data, structural);
    obs::counter_add("grid/cells_trained", 1);
    if let Some(s) = store {
        save_trained_model(
            s,
            &key,
            config,
            &trained,
            start.elapsed().as_millis() as u64,
        );
    }
    trained
}

/// The store key of the (single, structural-parameter-free) CNN baseline,
/// for both its training checkpoint and its attack-cache entries.
pub const CNN_BASELINE_KEY: &str = "cnn-baseline";

/// Like [`train_cnn`], but durable (see [`train_snn_stored`]).
pub fn train_cnn_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    store: Option<&RunStore>,
) -> Trained<Cnn> {
    if let Some(s) = store {
        if let Some(hit) = load_cached_model(s, CNN_BASELINE_KEY, build_cnn(config)) {
            return hit;
        }
    }
    // armor-lint: allow(wallclock-purity, transitive-determinism) -- duration feeds the journal's millis field only, a deliberately wall-clock progress figure excluded from fingerprints
    let start = Instant::now();
    let trained = train_cnn(config, data);
    obs::counter_add("grid/cells_trained", 1);
    if let Some(s) = store {
        save_trained_model(
            s,
            CNN_BASELINE_KEY,
            config,
            &trained,
            start.elapsed().as_millis() as u64,
        );
    }
    trained
}

/// Trains the spiking twin at the given structural point.
///
/// Each `(config, structural)` pair trains from its own deterministic seed,
/// so grid cells are independent and reproducible, matching the paper's
/// per-combination training (Algorithm 1, line 3).
pub fn train_snn(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
) -> Trained<SpikingCnn> {
    let (model, mut params, mut rng) = init_snn(config, structural);
    let mut opt = Adam::new(config.learning_rate);
    for _ in 0..config.epochs {
        nn::train::train_epoch(
            &model,
            &mut params,
            &mut opt,
            data.train.images(),
            data.train.labels(),
            config.batch_size,
            &mut rng,
        );
    }
    let clean_accuracy = nn::train::evaluate(
        &model,
        &params,
        data.test.images(),
        data.test.labels(),
        config.batch_size,
    );
    let classifier = Classifier::new(model, params);
    // Weights are frozen from here on; prepack once so the attack sweep's
    // repeated forwards all run pack-free.
    classifier.warm_prepack();
    Trained {
        classifier,
        clean_accuracy,
    }
}

/// Trains the non-spiking CNN baseline on the same data and topology.
pub fn train_cnn(config: &ExperimentConfig, data: &SplitData) -> Trained<Cnn> {
    let (model, mut params, mut rng) = init_cnn(config);
    let mut opt = Adam::new(config.learning_rate);
    for _ in 0..config.epochs {
        nn::train::train_epoch(
            &model,
            &mut params,
            &mut opt,
            data.train.images(),
            data.train.labels(),
            config.batch_size,
            &mut rng,
        );
    }
    let clean_accuracy = nn::train::evaluate(
        &model,
        &params,
        data.test.images(),
        data.test.labels(),
        config.batch_size,
    );
    let classifier = Classifier::new(model, params);
    classifier.warm_prepack();
    Trained {
        classifier,
        clean_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    /// Writes a minimal, valid MNIST IDX quartet into a temp directory.
    fn write_fake_mnist(dir: &std::path::Path, n_train: u32, n_test: u32, hw: u32) {
        use std::io::Write as _;
        std::fs::create_dir_all(dir).unwrap();
        let write_images = |name: &str, n: u32| {
            let mut f = std::fs::File::create(dir.join(name)).unwrap();
            f.write_all(&0x0000_0803u32.to_be_bytes()).unwrap();
            f.write_all(&n.to_be_bytes()).unwrap();
            f.write_all(&hw.to_be_bytes()).unwrap();
            f.write_all(&hw.to_be_bytes()).unwrap();
            f.write_all(&vec![128u8; (n * hw * hw) as usize]).unwrap();
        };
        let write_labels = |name: &str, n: u32| {
            let mut f = std::fs::File::create(dir.join(name)).unwrap();
            f.write_all(&0x0000_0801u32.to_be_bytes()).unwrap();
            f.write_all(&n.to_be_bytes()).unwrap();
            f.write_all(&(0..n).map(|i| (i % 10) as u8).collect::<Vec<_>>())
                .unwrap();
        };
        write_images("train-images-idx3-ubyte", n_train);
        write_labels("train-labels-idx1-ubyte", n_train);
        write_images("t10k-images-idx3-ubyte", n_test);
        write_labels("t10k-labels-idx1-ubyte", n_test);
    }

    #[test]
    fn mnist_dir_switches_the_data_source() {
        let dir = std::env::temp_dir().join("spiking_armor_mnist_pipeline");
        write_fake_mnist(&dir, 60, 20, 28);
        let mut cfg = presets::quick();
        cfg.image_hw = 28;
        cfg.train_per_class = 4; // -> 40 training samples
        cfg.test_per_class = 2; // -> 20 test samples
        cfg.mnist_dir = Some(dir.to_string_lossy().into_owned());
        let data = prepare_data(&cfg);
        assert_eq!(data.train.len(), 40);
        assert_eq!(data.test.len(), 20);
        assert_eq!(data.train.hw(), 28);
    }

    #[test]
    #[should_panic(expected = "failed to load MNIST")]
    fn missing_mnist_dir_panics_with_context() {
        let mut cfg = presets::quick();
        cfg.image_hw = 28;
        cfg.mnist_dir = Some("/nonexistent/mnist".into());
        prepare_data(&cfg);
    }

    #[test]
    fn data_splits_are_disjoint_generations() {
        let cfg = presets::quick();
        let data = prepare_data(&cfg);
        assert_eq!(data.train.classes(), 10);
        assert_ne!(
            data.train.images().data()[..64],
            data.test.images().data()[..64],
            "train and test must come from different generator seeds"
        );
    }

    #[test]
    fn snn_training_is_deterministic_per_cell() {
        let cfg = presets::quick();
        let data = prepare_data(&cfg);
        let sp = StructuralParams::new(0.5, 4);
        let a = train_snn(&cfg, &data, sp);
        let b = train_snn(&cfg, &data, sp);
        assert_eq!(a.clean_accuracy, b.clean_accuracy);
    }

    #[test]
    fn cnn_learns_synth_digits_above_threshold() {
        let cfg = presets::quick();
        let data = prepare_data(&cfg);
        let trained = train_cnn(&cfg, &data);
        assert!(
            trained.clean_accuracy >= cfg.accuracy_threshold,
            "CNN accuracy {} below threshold {}",
            trained.clean_accuracy,
            cfg.accuracy_threshold
        );
    }

    #[test]
    fn snn_learns_synth_digits_at_good_structural_point() {
        let cfg = presets::quick();
        let data = prepare_data(&cfg);
        let trained = train_snn(&cfg, &data, StructuralParams::new(1.0, 6));
        assert!(
            trained.clean_accuracy >= cfg.accuracy_threshold,
            "SNN accuracy {} below threshold {}",
            trained.clean_accuracy,
            cfg.accuracy_threshold
        );
    }
}
