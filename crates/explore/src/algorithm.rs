//! Algorithm 1 of the paper: per-combination robustness exploration.

use std::time::Instant;

use serde::{Deserialize, Serialize};

use attacks::{evaluate_attack, Pgd};
use nn::AdversarialTarget;
use snn::StructuralParams;
use store::{Event, RunStore};

use crate::config::ExperimentConfig;
use crate::pipeline::{train_snn_stored, SplitData, Trained};
use crate::runs;

/// The result of exploring one `(V_th, T)` combination — one execution of
/// the inner body of the paper's Algorithm 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExplorationOutcome {
    /// The structural point that was trained and attacked.
    pub structural: StructuralParams,
    /// Clean test accuracy after training.
    pub clean_accuracy: f32,
    /// Whether the clean accuracy met `A_th` (Algorithm 1, line 4); the
    /// security study only runs for learnable combinations.
    pub learnable: bool,
    /// `(ε, Robustness(ε))` pairs, one per requested noise budget. Empty if
    /// the combination was not learnable.
    pub robustness: Vec<(f32, f32)>,
}

impl ExplorationOutcome {
    /// The robustness at the largest evaluated ε, if any.
    pub fn final_robustness(&self) -> Option<f32> {
        self.robustness.last().map(|&(_, r)| r)
    }

    /// The robustness measured at noise budget `eps`, if it was evaluated.
    pub fn robustness_at(&self, eps: f32) -> Option<f32> {
        self.robustness
            .iter()
            .find(|(e, _)| (e - eps).abs() < 1e-6)
            .map(|&(_, r)| r)
    }
}

/// Trains an SNN at `structural` and measures its robustness across the
/// noise budgets — Algorithm 1, lines 3–16, for one `(i, j)` cell.
///
/// The PGD configuration follows the experiment config (`pgd_steps`
/// iterations, `α = 2.5·ε/steps`, random start seeded per ε); the attack
/// set is the first `attack_samples` of the test split, as in the paper's
/// fixed test set `D`.
pub fn explore_one(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    epsilons: &[f32],
) -> ExplorationOutcome {
    explore_one_stored(config, data, structural, epsilons, None)
}

/// Like [`explore_one`], but durable: with a run store, a cell whose
/// training checkpoint exists is loaded instead of retrained, attack
/// results already cached for this sweep are reused, and fresh work is
/// checkpointed as it completes. Results are bitwise-identical with and
/// without a store, resumed or not.
pub fn explore_one_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    epsilons: &[f32],
    store: Option<&RunStore>,
) -> ExplorationOutcome {
    let _span = obs::span("grid/cell");
    if let Some(s) = store {
        s.log(&Event::CellStarted {
            cell: runs::cell_key(structural),
        });
    }
    let trained = train_snn_stored(config, data, structural, store);
    let key = runs::cell_key(structural);
    explore_trained_stored(
        config,
        data,
        structural,
        &trained,
        epsilons,
        store.map(|s| (s, key.as_str())),
    )
}

/// Like [`explore_one`] but for an already-trained model, so callers doing
/// multiple sweeps (e.g. one per figure) train only once.
///
/// The per-ε evaluations are independent (each PGD instance is seeded from
/// `(config.seed, ε index)` and the batch content), so they run on up to
/// [`ExperimentConfig::effective_threads`] worker threads; results are
/// collected in ε order and identical for every thread count.
pub fn explore_trained<M: nn::Model + Sync>(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    trained: &Trained<M>,
    epsilons: &[f32],
) -> ExplorationOutcome {
    explore_trained_stored(config, data, structural, trained, epsilons, None)
}

/// Like [`explore_trained`], but the per-ε attack outcomes flow through the
/// run store's attack cache (which is separate from the training cache, so
/// extending the ε sweep reuses every trained model).
///
/// The caller chooses the cache key, because two differently-trained
/// networks can share a structural point (e.g. standard vs adversarially
/// trained) and must not share cache entries.
pub fn explore_trained_stored<M: nn::Model + Sync>(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    trained: &Trained<M>,
    epsilons: &[f32],
    store: Option<(&RunStore, &str)>,
) -> ExplorationOutcome {
    let learnable = trained.clean_accuracy >= config.accuracy_threshold;
    let mut robustness = Vec::new();
    if learnable {
        robustness = sweep_attack_stored(config, data, &trained.classifier, epsilons, store);
        obs::counter_add("grid/cells_completed", 1);
    } else {
        obs::counter_add("grid/cells_skipped", 1);
    }
    // Recorded here — on the sweep's *results* — rather than in the fresh
    // evaluation path, so robustness points served from the attack cache
    // count identically to freshly computed ones (resume convergence).
    obs::counter_add("sweep/robustness_points", robustness.len() as u64);
    for &(_, r) in &robustness {
        obs::observe("sweep/robustness", f64::from(r), obs::RATE_BOUNDS);
    }
    ExplorationOutcome {
        structural,
        clean_accuracy: trained.clean_accuracy,
        learnable,
        robustness,
    }
}

/// Measures an arbitrary classifier (e.g. the CNN baseline) across the same
/// ε sweep — used for the paper's Figs. 1 and 9 comparisons.
///
/// Budgets are swept on up to [`ExperimentConfig::effective_threads`] worker
/// threads (see [`explore_trained`] for why this cannot change results).
pub fn sweep_attack(
    config: &ExperimentConfig,
    data: &SplitData,
    target: &(dyn AdversarialTarget + Sync),
    epsilons: &[f32],
) -> Vec<(f32, f32)> {
    sweep_attack_stored(config, data, target, epsilons, None)
}

/// Like [`sweep_attack`], but each `(cell, ε)` outcome is served from and
/// saved to the run store's attack cache. Cache entries are keyed by the
/// sweep position *and* the exact ε bit pattern, because the PGD instance
/// is seeded per sweep position — appending a new ε hits the cache for the
/// unchanged prefix, while reordering the sweep misses it.
pub fn sweep_attack_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    target: &(dyn AdversarialTarget + Sync),
    epsilons: &[f32],
    store: Option<(&RunStore, &str)>,
) -> Vec<(f32, f32)> {
    let attack_set = data.test.subset(config.attack_samples);
    tensor::parallel::par_map_collect(epsilons.len(), config.effective_threads(), |k| {
        let _span = obs::span("sweep/epsilon");
        // armor-lint: allow(no-panic-in-io) -- par_map_collect yields k < epsilons.len() by contract
        let eps = epsilons[k];
        if let Some((s, cell)) = store {
            match s.load_attack(cell, k, eps) {
                Ok(Some(robustness)) => {
                    obs::counter_add("sweep/cache_hits", 1);
                    s.log(&Event::AttackCached {
                        cell: cell.to_string(),
                        eps,
                        robustness,
                    });
                    return (eps, robustness);
                }
                Ok(None) => {}
                Err(e) => s.log(&Event::CacheError {
                    cell: cell.to_string(),
                    error: e.to_string(),
                }),
            }
        }
        // armor-lint: allow(wallclock-purity, transitive-determinism) -- duration feeds the journal's millis field only, a deliberately wall-clock progress figure excluded from fingerprints
        let start = Instant::now();
        let outcome = evaluate_attack(
            target,
            &pgd_for(config, eps, k as u64),
            attack_set.images(),
            attack_set.labels(),
            config.batch_size,
        );
        let robustness = outcome.adversarial_accuracy;
        if let Some((s, cell)) = store {
            if let Err(e) = s.save_attack(cell, k, eps, robustness) {
                eprintln!("warning: could not cache attack result for {cell} at eps {eps}: {e}");
            }
            s.log(&Event::AttackEvaluated {
                cell: cell.to_string(),
                eps,
                robustness,
                millis: start.elapsed().as_millis() as u64,
            });
        }
        (eps, robustness)
    })
}

/// The PGD instance used at sweep position `salt` of a budget sweep — the
/// single place the attack convention (step schedule, random start, seed
/// derivation) is defined. `crate::serving` reuses it so online certify
/// verdicts follow exactly the offline sweep's convention.
pub(crate) fn pgd_for(config: &ExperimentConfig, eps: f32, salt: u64) -> Pgd {
    let steps = config.pgd_steps;
    let alpha = if eps == 0.0 {
        0.0
    } else {
        2.5 * eps / steps as f32
    };
    Pgd::new(eps, alpha, steps, true, config.seed.wrapping_add(salt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_data;
    use crate::presets;

    #[test]
    fn unlearnable_combination_skips_security_study() {
        let mut cfg = presets::quick();
        cfg.epochs = 1;
        // An absurd threshold silences the network; it cannot learn.
        let data = prepare_data(&cfg);
        let outcome = explore_one(&cfg, &data, StructuralParams::new(500.0, 2), &[0.5]);
        assert!(
            !outcome.learnable,
            "clean accuracy {}",
            outcome.clean_accuracy
        );
        assert!(outcome.robustness.is_empty());
        assert_eq!(outcome.final_robustness(), None);
    }

    #[test]
    fn epsilon_sweep_is_thread_count_invariant() {
        // The parallel ε sweep must reproduce the serial results exactly:
        // per-ε PGD seeds depend on (config.seed, ε index, batch content),
        // never on scheduling.
        let mut cfg = presets::quick();
        cfg.epochs = 1;
        cfg.attack_samples = 8;
        cfg.accuracy_threshold = 0.0; // always run the sweep
        let data = prepare_data(&cfg);
        let trained = crate::pipeline::train_snn(&cfg, &data, StructuralParams::new(1.0, 6));
        let eps = [0.05, 0.1, 0.2];
        cfg.threads = 1;
        let serial = explore_trained(&cfg, &data, StructuralParams::new(1.0, 6), &trained, &eps);
        for threads in [2, 4] {
            cfg.threads = threads;
            let parallel =
                explore_trained(&cfg, &data, StructuralParams::new(1.0, 6), &trained, &eps);
            assert_eq!(parallel, serial, "sweep differs at {threads} threads");
        }
    }

    #[test]
    fn learnable_combination_reports_monotone_eps_axis() {
        let cfg = presets::quick();
        let data = prepare_data(&cfg);
        let eps = [0.0, 0.5, 1.0];
        let outcome = explore_one(&cfg, &data, StructuralParams::new(1.0, 6), &eps);
        assert!(outcome.learnable);
        assert_eq!(outcome.robustness.len(), 3);
        // ε = 0 PGD is the identity: robustness equals accuracy on the
        // attacked subset (which may differ slightly from the full-test
        // clean accuracy).
        let r0 = outcome.robustness_at(0.0).unwrap();
        assert!(r0 >= cfg.accuracy_threshold - 0.2);
        // Larger ε can only help the attacker on average; allow small noise.
        let r_last = outcome.final_robustness().unwrap();
        assert!(
            r_last <= r0 + 0.1,
            "robustness rose with ε: {r0} -> {r_last}"
        );
    }
}
