//! Structural fine-tuning without retraining — the design step of the
//! paper's §VI-C ("we design trustworthy SNNs by fine-tuning their
//! structural parameters around the previously-found sweet spots").
//!
//! Because `V_th` and `T` are *inference-time* parameters of the dynamics
//! (not weights), a trained network can be re-evaluated at neighbouring
//! structural points without touching its synapses. This module measures
//! how clean accuracy and robustness move as the deployment point slides
//! away from the training point.

use serde::{Deserialize, Serialize};

use attacks::{evaluate_attack, Pgd};
use nn::Classifier;
use snn::StructuralParams;
use store::RunStore;

use crate::config::ExperimentConfig;
use crate::pipeline::{train_snn_stored, SplitData};

/// Clean and attacked accuracy of a trained network evaluated at one
/// (possibly different) structural point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchEntry {
    /// The structural point used at evaluation time.
    pub eval_at: StructuralParams,
    /// Clean accuracy at that point.
    pub clean_accuracy: f32,
    /// `(ε, robustness)` pairs at that point.
    pub robustness: Vec<(f32, f32)>,
}

/// The outcome of a structural fine-tuning sweep around one training point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MismatchResult {
    /// The structural point the weights were trained at.
    pub trained_at: StructuralParams,
    /// Clean accuracy at the training point itself.
    pub trained_accuracy: f32,
    /// One entry per candidate deployment point (the training point is
    /// included as its own entry).
    pub entries: Vec<MismatchEntry>,
}

impl MismatchResult {
    /// The candidate with the best robustness at the largest ε, if any
    /// entry was evaluated with attacks.
    pub fn best_deployment(&self) -> Option<&MismatchEntry> {
        self.entries
            .iter()
            .filter(|e| !e.robustness.is_empty())
            .max_by(|a, b| {
                let ra = a.robustness.last().map_or(0.0, |&(_, r)| r);
                let rb = b.robustness.last().map_or(0.0, |&(_, r)| r);
                ra.total_cmp(&rb)
            })
    }

    /// The entry evaluated at the training point, if present.
    pub fn at_training_point(&self) -> Option<&MismatchEntry> {
        self.entries.iter().find(|e| e.eval_at == self.trained_at)
    }
}

/// Trains once at `trained_at`, then evaluates the *same weights* at every
/// candidate structural point (clean accuracy + PGD robustness across
/// `epsilons`).
///
/// # Panics
///
/// Panics if `candidates` is empty or the configuration is invalid.
pub fn fine_tune_structural(
    config: &ExperimentConfig,
    data: &SplitData,
    trained_at: StructuralParams,
    candidates: &[StructuralParams],
    epsilons: &[f32],
) -> MismatchResult {
    fine_tune_structural_stored(config, data, trained_at, candidates, epsilons, None)
}

/// Like [`fine_tune_structural`], but the (single, expensive) training at
/// `trained_at` goes through the run store's training cache; the cheap
/// per-candidate re-evaluations always run.
pub fn fine_tune_structural_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    trained_at: StructuralParams,
    candidates: &[StructuralParams],
    epsilons: &[f32],
    store: Option<&RunStore>,
) -> MismatchResult {
    assert!(!candidates.is_empty(), "need at least one candidate point");
    let trained = train_snn_stored(config, data, trained_at, store);
    let (model, params) = trained.classifier.into_parts();
    let attack_set = data.test.subset(config.attack_samples);
    let mut entries = Vec::with_capacity(candidates.len());
    for &candidate in candidates {
        let mut deployed = model.clone();
        deployed.set_structural(candidate);
        let clean_accuracy = nn::train::evaluate(
            &deployed,
            &params,
            data.test.images(),
            data.test.labels(),
            config.batch_size,
        );
        let classifier = Classifier::new(deployed, params.clone());
        let mut robustness = Vec::with_capacity(epsilons.len());
        for (k, &eps) in epsilons.iter().enumerate() {
            let alpha = if eps == 0.0 {
                0.0
            } else {
                2.5 * eps / config.pgd_steps as f32
            };
            let attack = Pgd::new(
                eps,
                alpha,
                config.pgd_steps,
                true,
                config.seed.wrapping_add(k as u64),
            );
            let outcome = evaluate_attack(
                &classifier,
                &attack,
                attack_set.images(),
                attack_set.labels(),
                config.batch_size,
            );
            robustness.push((eps, outcome.adversarial_accuracy));
        }
        entries.push(MismatchEntry {
            eval_at: candidate,
            clean_accuracy,
            robustness,
        });
    }
    MismatchResult {
        trained_at,
        trained_accuracy: trained.clean_accuracy,
        entries,
    }
}

/// The four axis-aligned neighbours of `center` within the given axes —
/// the "around the sweet spot" candidate set of §VI-C, plus the centre
/// itself.
pub fn neighbourhood(
    center: StructuralParams,
    v_step: f32,
    t_step: usize,
) -> Vec<StructuralParams> {
    let mut out = vec![center];
    if center.v_th - v_step > 0.0 {
        out.push(StructuralParams::new(
            center.v_th - v_step,
            center.time_window,
        ));
    }
    out.push(StructuralParams::new(
        center.v_th + v_step,
        center.time_window,
    ));
    if center.time_window > t_step {
        out.push(StructuralParams::new(
            center.v_th,
            center.time_window - t_step,
        ));
    }
    out.push(StructuralParams::new(
        center.v_th,
        center.time_window + t_step,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_data;
    use crate::presets;

    #[test]
    fn neighbourhood_contains_centre_and_respects_bounds() {
        let n = neighbourhood(StructuralParams::new(0.25, 2), 0.5, 4);
        assert!(n.contains(&StructuralParams::new(0.25, 2)));
        // v − step and t − step would be invalid, so they are skipped.
        assert_eq!(n.len(), 3);
        let n = neighbourhood(StructuralParams::new(1.0, 8), 0.25, 2);
        assert_eq!(n.len(), 5);
    }

    #[test]
    fn fine_tuning_evaluates_every_candidate_without_retraining() {
        let mut cfg = presets::quick();
        cfg.epochs = 4;
        cfg.attack_samples = 10;
        cfg.pgd_steps = 3;
        let data = prepare_data(&cfg);
        let center = StructuralParams::new(1.0, 6);
        let candidates = vec![
            center,
            StructuralParams::new(1.0, 4),
            StructuralParams::new(1.5, 6),
        ];
        let eps = [presets::paper_eps_to_pixel(0.5)];
        let result = fine_tune_structural(&cfg, &data, center, &candidates, &eps);
        assert_eq!(result.entries.len(), 3);
        assert_eq!(result.trained_at, center);
        // The training point's entry reproduces the trained accuracy.
        let at_centre = result.at_training_point().unwrap();
        assert!((at_centre.clean_accuracy - result.trained_accuracy).abs() < 1e-6);
        // Every entry carries the full ε axis.
        assert!(result.entries.iter().all(|e| e.robustness.len() == 1));
        assert!(result.best_deployment().is_some());
    }

    #[test]
    fn mismatched_window_changes_accuracy() {
        let mut cfg = presets::quick();
        cfg.epochs = 6;
        let data = prepare_data(&cfg);
        let center = StructuralParams::new(1.0, 6);
        let far = StructuralParams::new(1.0, 1);
        let result = fine_tune_structural(&cfg, &data, center, &[center, far], &[]);
        let centre_acc = result.entries[0].clean_accuracy;
        let far_acc = result.entries[1].clean_accuracy;
        assert_ne!(
            centre_acc, far_acc,
            "deploying at T=1 should change accuracy vs T=6"
        );
    }
}
