//! CNN→SNN transfer-attack study.
//!
//! The paper's related work (its reference \[15\], Sharmin et al.) attacks a
//! non-spiking DNN and replays the crafted examples against SNNs. This
//! module runs that protocol across structural parameters, answering: does
//! the `(V_th, T)` dependence of robustness persist when the adversary
//! never touches the SNN's gradients?

use serde::{Deserialize, Serialize};

use attacks::{evaluate_transfer, Pgd, TransferOutcome};
use snn::StructuralParams;

use crate::config::ExperimentConfig;
use store::RunStore;

use crate::pipeline::{train_cnn_stored, train_snn_stored, SplitData};

/// Transfer outcome for one structural point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferEntry {
    /// The SNN's structural point.
    pub structural: StructuralParams,
    /// The SNN's clean accuracy.
    pub snn_clean_accuracy: f32,
    /// Victim (SNN) accuracy on CNN-crafted examples.
    pub transfer_accuracy: f32,
    /// Source (CNN) accuracy on the same examples.
    pub source_accuracy: f32,
}

/// The full CNN→SNN transfer study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TransferStudy {
    /// Noise budget used for crafting.
    pub epsilon: f32,
    /// CNN clean accuracy.
    pub cnn_clean_accuracy: f32,
    /// One entry per evaluated structural point.
    pub entries: Vec<TransferEntry>,
}

impl TransferStudy {
    /// The structural point whose SNN resisted the transferred examples
    /// best (highest transfer accuracy).
    pub fn most_resistant(&self) -> Option<&TransferEntry> {
        self.entries
            .iter()
            .max_by(|a, b| a.transfer_accuracy.total_cmp(&b.transfer_accuracy))
    }
}

/// Trains the CNN baseline once, crafts PGD examples against it at
/// `epsilon` (pixel scale), and measures each SNN's accuracy on them.
///
/// # Panics
///
/// Panics if `structurals` is empty or the configuration is invalid.
pub fn cnn_to_snn_transfer(
    config: &ExperimentConfig,
    data: &SplitData,
    structurals: &[StructuralParams],
    epsilon: f32,
) -> TransferStudy {
    cnn_to_snn_transfer_stored(config, data, structurals, epsilon, None)
}

/// Like [`cnn_to_snn_transfer`], but every training (the CNN source and
/// each SNN victim) goes through the run store's training cache.
pub fn cnn_to_snn_transfer_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    structurals: &[StructuralParams],
    epsilon: f32,
    store: Option<&RunStore>,
) -> TransferStudy {
    assert!(
        !structurals.is_empty(),
        "need at least one structural point"
    );
    let cnn = train_cnn_stored(config, data, store);
    let attack_set = data.test.subset(config.attack_samples);
    let alpha = if epsilon == 0.0 {
        0.0
    } else {
        2.5 * epsilon / config.pgd_steps as f32
    };
    let attack = Pgd::new(epsilon, alpha, config.pgd_steps, true, config.seed);
    let mut entries = Vec::with_capacity(structurals.len());
    for &sp in structurals {
        let snn = train_snn_stored(config, data, sp, store);
        let outcome: TransferOutcome = evaluate_transfer(
            &cnn.classifier,
            &snn.classifier,
            &attack,
            attack_set.images(),
            attack_set.labels(),
            config.batch_size,
        );
        entries.push(TransferEntry {
            structural: sp,
            snn_clean_accuracy: snn.clean_accuracy,
            transfer_accuracy: outcome.transfer_accuracy,
            source_accuracy: outcome.source_accuracy,
        });
    }
    TransferStudy {
        epsilon,
        cnn_clean_accuracy: cnn.clean_accuracy,
        entries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::prepare_data;
    use crate::presets;

    #[test]
    fn transfer_study_covers_all_points_and_is_bounded() {
        let mut cfg = presets::quick();
        cfg.epochs = 4;
        cfg.attack_samples = 10;
        cfg.pgd_steps = 3;
        let data = prepare_data(&cfg);
        let points = [StructuralParams::new(0.5, 4), StructuralParams::new(1.5, 6)];
        let study = cnn_to_snn_transfer(&cfg, &data, &points, presets::paper_eps_to_pixel(1.0));
        assert_eq!(study.entries.len(), 2);
        for e in &study.entries {
            assert!((0.0..=1.0).contains(&e.transfer_accuracy));
            assert!((0.0..=1.0).contains(&e.snn_clean_accuracy));
        }
        assert!(study.most_resistant().is_some());
        // Transferred (black-box) examples cannot be *stronger* against the
        // SNN than the white-box damage they do to their own source, in the
        // typical case; at minimum the fields must be consistent.
        assert!((0.0..=1.0).contains(&study.cnn_clean_accuracy));
    }

    #[test]
    fn zero_budget_transfer_is_harmless() {
        let mut cfg = presets::quick();
        cfg.epochs = 3;
        cfg.attack_samples = 8;
        let data = prepare_data(&cfg);
        let study = cnn_to_snn_transfer(&cfg, &data, &[StructuralParams::new(1.0, 4)], 0.0);
        let e = &study.entries[0];
        // With ε = 0 the "adversarial" samples are the clean ones.
        assert!((e.transfer_accuracy - accuracy_on_subset(&cfg, &data, e)).abs() < 1e-6);
    }

    fn accuracy_on_subset(
        cfg: &crate::ExperimentConfig,
        data: &crate::pipeline::SplitData,
        entry: &TransferEntry,
    ) -> f32 {
        // Recompute the SNN's accuracy on the attacked subset for ε = 0.
        let snn = crate::pipeline::train_snn(cfg, data, entry.structural);
        let subset = data.test.subset(cfg.attack_samples);
        nn::train::evaluate(
            snn.classifier.model(),
            snn.classifier.params(),
            subset.images(),
            subset.labels(),
            cfg.batch_size,
        )
    }
}
