//! Systematic exploration of SNN adversarial robustness across structural
//! parameters — the primary contribution of the reproduced paper.
//!
//! The paper asks (its §I-A): how do the spiking threshold `V_th` and the
//! time window `T` condition an SNN's robustness to white-box attacks? The
//! answer is produced by a two-stage methodology (its Fig. 5 / Algorithm 1),
//! implemented here as:
//!
//! 1. **Learnability study** — [`run_grid`](grid::run_grid) trains one SNN
//!    per `(V_th, T)` combination and filters out combinations whose clean
//!    accuracy misses the threshold `A_th` (paper: 70%).
//! 2. **Security study** — for every learnable combination,
//!    [`explore_one`](algorithm::explore_one) sweeps PGD noise budgets ε and
//!    records `Robustness(ε) = 1 − Adv/|D|`.
//!
//! The figure-level artefacts are then assembled from the grid:
//!
//! * [`heatmap::Heatmap`] — accuracy heat maps over `(V_th, T)`
//!   (paper Figs. 6–8),
//! * [`curves::RobustnessCurve`] — accuracy-vs-ε curves for
//!   selected combinations against the CNN baseline (paper Figs. 1 and 9),
//! * [`report::RobustnessClass`] — the high/medium/low
//!   classification of §VI-C.
//!
//! [`presets`] holds one ready-made [`ExperimentConfig`] per paper figure,
//! scaled to CPU budgets, plus [`presets::paper_scale`] with the paper's
//! original dimensions (28×28 LeNet-5, T up to 80).
//!
//! # Example
//!
//! Train one SNN at the paper's default structural point and measure its
//! robustness at ε = 0.5 (tiny preset, runs in seconds):
//!
//! ```
//! use explore::{algorithm, presets};
//! use snn::StructuralParams;
//!
//! let config = presets::quick();
//! let data = explore::pipeline::prepare_data(&config);
//! let outcome = algorithm::explore_one(
//!     &config,
//!     &data,
//!     StructuralParams::new(1.0, 6),
//!     &[0.5],
//! );
//! assert_eq!(outcome.robustness.len(), 1);
//! ```

#![forbid(unsafe_code)]

pub mod algorithm;
pub mod config;
pub mod corruption;
pub mod curves;
pub mod defense;
pub mod grid;
pub mod heatmap;
pub mod mismatch;
pub mod pipeline;
pub mod presets;
pub mod reduce;
pub mod report;
pub mod runs;
pub mod serving;
pub mod stats;
pub mod transfer;
pub mod viz;
pub mod worker;

pub use algorithm::ExplorationOutcome;
pub use config::{ExperimentConfig, Topology};
pub use corruption::CorruptionStudy;
pub use curves::RobustnessCurve;
pub use grid::{GridResult, GridSpec};
pub use heatmap::Heatmap;
pub use mismatch::MismatchResult;
pub use reduce::{reduce_grid, ReduceError};
pub use report::RobustnessClass;
pub use transfer::TransferStudy;
pub use worker::{run_worker, PauseAt, WorkerOptions, WorkerReport};
