//! The SNN-backed [`Scorer`]: what `spiking-armor serve` actually serves.
//!
//! `crates/serve` is model-agnostic; this module plugs the experiment stack
//! into it. One [`SnnScorer`] wraps a trained spiking classifier (usually
//! loaded from a run-store checkpoint) plus the [`ExperimentConfig`] whose
//! attack convention its certify sweeps must follow.
//!
//! # Determinism
//!
//! * `classify_batch` runs one batched forward; the tensor kernels'
//!   per-sample accumulation contract makes each row's logits independent
//!   of the other rows in the batch and of the thread count, so scores are
//!   bitwise batching-invariant.
//! * `certify` runs PGD per request on a batch of one. The attack's random
//!   start is seeded from `(config.seed, ε index, batch content)`; with a
//!   single-sample batch that seed depends only on the request itself, so
//!   the verdict cannot change with how unrelated requests were batched.
//!   (This is also why certify is *not* cross-request batched.)
//!
//! Both properties are enforced end-to-end by the serve crate's
//! `batch_invariance` test, which boots real servers over a scorer from
//! this module at several `(max_batch, replicas, threads)` settings.

use attacks::Attack;
use nn::{AdversarialTarget, Classifier};
use serve::{ClassifyOutcome, RobustnessPoint, Scorer};
use snn::SpikingCnn;
use tensor::Tensor;

use crate::algorithm::pgd_for;
use crate::config::ExperimentConfig;

/// A servable spiking classifier replica.
#[derive(Debug, Clone)]
pub struct SnnScorer {
    config: ExperimentConfig,
    classifier: Classifier<SpikingCnn>,
}

impl SnnScorer {
    /// Wraps a trained classifier with the experiment configuration that
    /// defines its input shape and attack convention.
    pub fn new(config: ExperimentConfig, classifier: Classifier<SpikingCnn>) -> Self {
        classifier.warm_prepack();
        Self { config, classifier }
    }

    /// `n` independent replicas of this scorer, boxed for
    /// [`serve::Server::bind`]. Replicas share nothing mutable, so each
    /// worker thread owns its model wholesale — including its own
    /// prepacked-weight cache, which is warmed here so the first request a
    /// replica serves already performs zero `pack_b` work.
    pub fn replicas(&self, n: usize) -> Vec<Box<dyn Scorer>> {
        (0..n.max(1))
            .map(|_| {
                let replica = self.clone();
                replica.classifier.warm_prepack();
                Box::new(replica) as Box<dyn Scorer>
            })
            .collect()
    }

    fn hw(&self) -> usize {
        self.config.image_hw
    }
}

impl Scorer for SnnScorer {
    fn input_len(&self) -> usize {
        self.hw() * self.hw()
    }

    fn num_classes(&self) -> usize {
        AdversarialTarget::num_classes(&self.classifier)
    }

    fn classify_batch(&mut self, inputs: &[&[f32]]) -> Vec<ClassifyOutcome> {
        let hw = self.hw();
        let n = inputs.len();
        if n == 0 {
            return Vec::new();
        }
        let mut flat = Vec::with_capacity(n * hw * hw);
        for pixels in inputs {
            flat.extend_from_slice(pixels);
        }
        let x = Tensor::from_vec(flat, &[n, 1, hw, hw]);
        let logits = self.classifier.logits(&x);
        // Labels come from the logits (the same source `predict` uses);
        // scores are the softmax of those logits, so `scores[label]` is the
        // distribution's maximum.
        let labels = logits.argmax_rows();
        let probs = logits.softmax_rows();
        let classes = AdversarialTarget::num_classes(&self.classifier);
        probs
            .data()
            .chunks(classes)
            .zip(labels)
            .map(|(row, label)| ClassifyOutcome {
                label: label as u32,
                confidence: row.get(label).copied().unwrap_or(0.0),
                scores: row.to_vec(),
            })
            .collect()
    }

    fn certify(
        &mut self,
        pixels: &[f32],
        clean: &ClassifyOutcome,
        epsilons: &[f32],
    ) -> Vec<RobustnessPoint> {
        let hw = self.hw();
        let x = Tensor::from_vec(pixels.to_vec(), &[1, 1, hw, hw]);
        let clean_label = clean.label as usize;
        epsilons
            .iter()
            .enumerate()
            .map(|(k, &eps)| {
                // Same convention as the offline sweep: position-salted
                // seed, α = 2.5·ε/steps. ε was validated finite and
                // non-negative at admission, so `pgd_for` cannot panic.
                let pgd = pgd_for(&self.config, eps, k as u64);
                let adv = pgd.perturb(&self.classifier, &x, &[clean_label]);
                let adv_logits = self.classifier.logits(&adv);
                let adv_label = adv_logits.argmax_rows().first().copied().unwrap_or(0);
                let adv_probs = adv_logits.softmax_rows();
                let adv_confidence = adv_probs.data().get(adv_label).copied().unwrap_or(0.0);
                RobustnessPoint {
                    eps,
                    robust: adv_label == clean_label,
                    adv_label: adv_label as u32,
                    adv_confidence,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline;
    use crate::presets;
    use snn::StructuralParams;

    /// An untrained (but deterministically initialised) scorer — model
    /// quality is irrelevant to the shape and determinism contracts.
    fn scorer() -> SnnScorer {
        let config = presets::tiny();
        let (model, params) = pipeline::build_snn(&config, StructuralParams::new(1.0, 4));
        SnnScorer::new(config, Classifier::new(model, params))
    }

    fn image(tag: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| (((i as u64).wrapping_mul(37) + tag * 11) % 256) as f32 / 255.0)
            .collect()
    }

    #[test]
    fn shapes_follow_the_config() {
        let s = scorer();
        assert_eq!(s.input_len(), 64);
        assert_eq!(Scorer::num_classes(&s), 10);
        assert_eq!(s.replicas(3).len(), 3);
        assert_eq!(s.replicas(0).len(), 1);
    }

    #[test]
    fn scores_are_a_softmax_distribution_with_label_at_the_max() {
        let mut s = scorer();
        let px = image(1, 64);
        let out = s.classify_batch(&[&px]).remove(0);
        assert_eq!(out.scores.len(), 10);
        let sum: f32 = out.scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5, "softmax sums to 1, got {sum}");
        let max = out.scores.iter().cloned().fold(f32::MIN, f32::max);
        assert_eq!(out.scores[out.label as usize], max);
        assert_eq!(out.confidence, max);
    }

    #[test]
    fn classification_is_bitwise_batch_invariant() {
        let mut s = scorer();
        let imgs: Vec<Vec<f32>> = (0..3).map(|t| image(t, 64)).collect();
        let refs: Vec<&[f32]> = imgs.iter().map(|v| v.as_slice()).collect();
        let batched = s.classify_batch(&refs);
        for (i, img) in imgs.iter().enumerate() {
            let single = s.classify_batch(&[img.as_slice()]).remove(0);
            let b = &batched[i];
            assert_eq!(single.label, b.label, "label differs for sample {i}");
            let sb: Vec<u32> = single.scores.iter().map(|v| v.to_bits()).collect();
            let bb: Vec<u32> = b.scores.iter().map(|v| v.to_bits()).collect();
            assert_eq!(sb, bb, "score bits differ for sample {i}");
        }
    }

    #[test]
    fn certify_is_deterministic_and_one_point_per_epsilon() {
        let mut s = scorer();
        let px = image(2, 64);
        let clean = s.classify_batch(&[&px]).remove(0);
        let eps = [0.0f32, 0.1, 0.3];
        let a = s.certify(&px, &clean, &eps);
        let b = s.certify(&px, &clean, &eps);
        assert_eq!(a.len(), 3);
        assert_eq!(a, b, "certify must be a pure function of the request");
        // ε = 0 is the identity attack: the clean label survives.
        assert!(a[0].robust);
        assert_eq!(a[0].adv_label, clean.label);
    }
}
