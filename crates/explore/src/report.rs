//! Robustness classification and experiment persistence.

use std::fs;
use std::io;
use std::path::Path;

use serde::{de::DeserializeOwned, Serialize};

use crate::algorithm::ExplorationOutcome;

/// The qualitative robustness classes of the paper's §VI-C
/// ("high / medium / low robustness" examples from Fig. 8).
///
/// Classification compares the accuracy retained at the largest attacked ε
/// against the clean accuracy: retaining ≥ 2/3 is high, ≥ 1/3 medium,
/// otherwise low.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, serde::Deserialize)]
pub enum RobustnessClass {
    /// Retains at least two thirds of its clean accuracy under the
    /// strongest evaluated attack.
    High,
    /// Retains between one and two thirds.
    Medium,
    /// Retains less than one third.
    Low,
}

impl RobustnessClass {
    /// Classifies an exploration outcome; `None` if the combination was not
    /// learnable or was never attacked.
    pub fn classify(outcome: &ExplorationOutcome) -> Option<Self> {
        if !outcome.learnable || outcome.clean_accuracy <= 0.0 {
            return None;
        }
        let retained = outcome.final_robustness()? / outcome.clean_accuracy;
        Some(if retained >= 2.0 / 3.0 {
            RobustnessClass::High
        } else if retained >= 1.0 / 3.0 {
            RobustnessClass::Medium
        } else {
            RobustnessClass::Low
        })
    }
}

/// One row of the summary's per-ε distribution table.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistributionRow {
    /// Smallest sampled value.
    pub min: f32,
    /// Upper median (index `len / 2` of the sorted sample) — the summary
    /// table's historical convention, so for an even-sized sample this is
    /// the larger of the two middle values.
    pub median: f32,
    /// Largest sampled value.
    pub max: f32,
}

/// Summarises a sample into min/median/max; `None` on an empty sample.
/// NaNs are ordered by `f32::total_cmp`, so they sort to the top rather
/// than poisoning the comparison.
pub fn distribution(values: &[f32]) -> Option<DistributionRow> {
    let mut sorted = values.to_vec();
    sorted.sort_by(f32::total_cmp);
    let (&min, &max) = (sorted.first()?, sorted.last()?);
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or(max);
    Some(DistributionRow { min, median, max })
}

/// Renders a full markdown summary of a grid exploration: learnability
/// statistics, the extreme cells, and the per-ε robustness distribution —
/// the narrative section of an experiment report, generated from data.
pub fn markdown_summary(grid: &crate::GridResult) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "# Robustness exploration summary\n");
    let _ = writeln!(
        out,
        "- grid: {} thresholds × {} windows = {} combinations",
        grid.spec.v_ths().len(),
        grid.spec.windows().len(),
        grid.spec.len()
    );
    let _ = writeln!(
        out,
        "- learnable: {:.0}% of combinations",
        grid.learnable_fraction() * 100.0
    );
    if let Some(sweet) = grid.sweet_spot() {
        let class = RobustnessClass::classify(sweet)
            .map_or("unclassified".to_string(), |c| format!("{c:?}"));
        let _ = writeln!(
            out,
            "- sweet spot: **{}** (clean {:.1}%, final robustness {:.1}%, class {class})",
            sweet.structural,
            sweet.clean_accuracy * 100.0,
            sweet.final_robustness().unwrap_or(0.0) * 100.0,
        );
    }
    if let Some(worst) = grid.worst_learnable() {
        let _ = writeln!(
            out,
            "- least robust learnable: **{}** (clean {:.1}%, final robustness {:.1}%)",
            worst.structural,
            worst.clean_accuracy * 100.0,
            worst.final_robustness().unwrap_or(0.0) * 100.0
        );
    }
    let _ = writeln!(out, "\n## Robustness distribution per ε\n");
    let _ = writeln!(out, "| ε | min | median | max |");
    let _ = writeln!(out, "|---|---|---|---|");
    for &eps in &grid.epsilons {
        let values: Vec<f32> = grid
            .outcomes
            .iter()
            .filter_map(|o| o.robustness_at(eps))
            .collect();
        let Some(row) = distribution(&values) else {
            continue;
        };
        let _ = writeln!(
            out,
            "| {eps:.3} | {:.1}% | {:.1}% | {:.1}% |",
            row.min * 100.0,
            row.median * 100.0,
            row.max * 100.0
        );
    }
    let _ = writeln!(out, "\n## Per-cell outcomes\n");
    let _ = writeln!(
        out,
        "| V_th | T | clean | learnable | final robustness | class |"
    );
    let _ = writeln!(out, "|---|---|---|---|---|---|");
    for o in &grid.outcomes {
        let _ = writeln!(
            out,
            "| {} | {} | {:.1}% | {} | {} | {} |",
            o.structural.v_th,
            o.structural.time_window,
            o.clean_accuracy * 100.0,
            if o.learnable { "yes" } else { "no" },
            o.final_robustness()
                .map_or("—".to_string(), |r| format!("{:.1}%", r * 100.0)),
            RobustnessClass::classify(o).map_or("—".to_string(), |c| format!("{c:?}")),
        );
    }
    out
}

/// Persists any serialisable experiment artefact (grid results, curve sets,
/// heat maps) as pretty-printed JSON.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be written.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Loads an artefact previously written by [`save_json`].
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be read or parsed.
pub fn load_json<T: DeserializeOwned>(path: &Path) -> io::Result<T> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use snn::StructuralParams;

    fn outcome(clean: f32, final_rob: Option<f32>, learnable: bool) -> ExplorationOutcome {
        ExplorationOutcome {
            structural: StructuralParams::new(1.0, 8),
            clean_accuracy: clean,
            learnable,
            robustness: final_rob.map(|r| vec![(1.5, r)]).unwrap_or_default(),
        }
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(
            RobustnessClass::classify(&outcome(0.9, Some(0.8), true)),
            Some(RobustnessClass::High)
        );
        assert_eq!(
            RobustnessClass::classify(&outcome(0.9, Some(0.45), true)),
            Some(RobustnessClass::Medium)
        );
        assert_eq!(
            RobustnessClass::classify(&outcome(0.9, Some(0.1), true)),
            Some(RobustnessClass::Low)
        );
    }

    #[test]
    fn unlearnable_or_unattacked_is_unclassified() {
        assert_eq!(RobustnessClass::classify(&outcome(0.2, None, false)), None);
        assert_eq!(RobustnessClass::classify(&outcome(0.9, None, true)), None);
    }

    #[test]
    fn markdown_summary_contains_extremes_and_tables() {
        use crate::grid::{GridResult, GridSpec};
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4]);
        let outcomes = spec
            .cells()
            .map(|sp| ExplorationOutcome {
                structural: sp,
                clean_accuracy: 0.9,
                learnable: true,
                robustness: vec![(0.3, if sp.v_th < 0.9 { 0.8 } else { 0.1 })],
            })
            .collect();
        let grid = GridResult {
            spec,
            epsilons: vec![0.3],
            outcomes,
        };
        let md = markdown_summary(&grid);
        assert!(md.contains("# Robustness exploration summary"));
        assert!(md.contains("sweet spot: **(Vth=0.5, T=4)**"), "{md}");
        assert!(md.contains("least robust learnable: **(Vth=1, T=4)**"));
        assert!(md.contains("| 0.300 | 10.0% | 80.0% | 80.0% |"), "{md}");
        // Per-cell table has one row per cell.
        assert_eq!(md.matches("| yes |").count(), 2);
    }

    #[test]
    fn distribution_of_empty_sample_is_none() {
        assert_eq!(distribution(&[]), None);
    }

    #[test]
    fn distribution_of_single_element_is_that_element() {
        let row = distribution(&[0.42]).unwrap();
        assert_eq!((row.min, row.median, row.max), (0.42, 0.42, 0.42));
    }

    #[test]
    fn distribution_of_all_equal_values_collapses() {
        let row = distribution(&[0.7, 0.7, 0.7, 0.7]).unwrap();
        assert_eq!((row.min, row.median, row.max), (0.7, 0.7, 0.7));
    }

    #[test]
    fn distribution_median_is_the_upper_median() {
        // Odd-sized: the true middle. Even-sized: the upper of the two
        // middles (index len / 2) — the table's historical convention.
        let odd = distribution(&[0.3, 0.1, 0.2]).unwrap();
        assert_eq!(odd.median, 0.2);
        let even = distribution(&[0.4, 0.1, 0.3, 0.2]).unwrap();
        assert_eq!((even.min, even.median, even.max), (0.1, 0.3, 0.4));
    }

    #[test]
    fn distribution_is_input_order_independent() {
        let a = distribution(&[0.9, 0.1, 0.5]).unwrap();
        let b = distribution(&[0.5, 0.9, 0.1]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn json_round_trip() {
        let dir = std::env::temp_dir().join("spiking_armor_report_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("outcome.json");
        let o = outcome(0.95, Some(0.7), true);
        save_json(&o, &path).unwrap();
        let back: ExplorationOutcome = load_json(&path).unwrap();
        assert_eq!(o, back);
    }

    #[test]
    fn load_rejects_garbage() {
        let dir = std::env::temp_dir().join("spiking_armor_report_test2");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.json");
        fs::write(&path, "not json").unwrap();
        assert!(load_json::<ExplorationOutcome>(&path).is_err());
    }
}
