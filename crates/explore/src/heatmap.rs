//! Accuracy heat maps over the `(V_th, T)` grid — paper Figs. 6, 7 and 8.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use crate::grid::GridResult;

/// Which quantity a heat map displays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HeatmapKind {
    /// Clean test accuracy (paper Fig. 6).
    CleanAccuracy,
    /// Accuracy under PGD at the given ε (paper Figs. 7 and 8).
    AttackedAccuracy {
        /// The noise budget whose robustness column is displayed.
        eps: f32,
    },
    /// Fraction of clean accuracy *retained* under PGD at the given ε —
    /// the quantity behind the paper's "loses only 6% of its initial
    /// accuracy" phrasing. `1.0` means no degradation.
    Retention {
        /// The noise budget whose retention is displayed.
        eps: f32,
    },
}

/// A dense `(window × v_th)` matrix of accuracies extracted from a
/// [`GridResult`], with rendering and CSV export.
///
/// Rows are time windows in *descending* order (largest `T` on top, matching
/// the paper's figures), columns are thresholds ascending.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Heatmap {
    kind: HeatmapKind,
    v_ths: Vec<f32>,
    windows_desc: Vec<usize>,
    /// Row-major `[window][v_th]`; `None` where the cell was not learnable
    /// and the requested quantity is an attacked accuracy.
    values: Vec<Option<f32>>,
}

impl Heatmap {
    /// Extracts a heat map from a grid result.
    ///
    /// For [`HeatmapKind::AttackedAccuracy`], non-learnable cells get `None`
    /// (the paper does not attack them); for clean accuracy every cell has
    /// a value.
    ///
    /// # Panics
    ///
    /// Panics if an attacked heat map requests an ε the grid never
    /// evaluated on any learnable cell.
    pub fn from_grid(grid: &GridResult, kind: HeatmapKind) -> Self {
        let v_ths = grid.spec.v_ths().to_vec();
        let mut windows_desc = grid.spec.windows().to_vec();
        windows_desc.reverse();
        let mut values = Vec::with_capacity(v_ths.len() * windows_desc.len());
        let mut eps_seen = false;
        for &t in &windows_desc {
            for &v in &v_ths {
                let outcome = grid
                    .outcome_at(v, t)
                    // armor-lint: allow(no-panic-in-io) -- a GridResult always covers its own spec
                    .expect("grid result covers its own spec");
                let value = match kind {
                    HeatmapKind::CleanAccuracy => Some(outcome.clean_accuracy),
                    HeatmapKind::AttackedAccuracy { eps } => {
                        let r = outcome.robustness_at(eps);
                        eps_seen |= r.is_some();
                        r
                    }
                    HeatmapKind::Retention { eps } => {
                        let r = outcome
                            .robustness_at(eps)
                            .filter(|_| outcome.clean_accuracy > 0.0)
                            .map(|r| r / outcome.clean_accuracy);
                        eps_seen |= r.is_some();
                        r
                    }
                };
                values.push(value);
            }
        }
        if let HeatmapKind::AttackedAccuracy { eps } | HeatmapKind::Retention { eps } = kind {
            assert!(
                eps_seen || values.iter().all(|v| v.is_none()),
                "no learnable grid cell was evaluated at eps {eps}"
            );
        }
        Self {
            kind,
            v_ths,
            windows_desc,
            values,
        }
    }

    /// The displayed quantity.
    pub fn kind(&self) -> HeatmapKind {
        self.kind
    }

    /// The threshold axis (ascending).
    pub fn v_ths(&self) -> &[f32] {
        &self.v_ths
    }

    /// The window axis as displayed (descending, largest `T` first).
    pub fn windows_desc(&self) -> &[usize] {
        &self.windows_desc
    }

    /// Iterates `(window, v_th, value)` in display order (row-major, top
    /// row first).
    pub fn cells(&self) -> impl Iterator<Item = (usize, f32, Option<f32>)> + '_ {
        self.windows_desc
            .iter()
            .enumerate()
            .flat_map(move |(row, &t)| {
                self.v_ths
                    .iter()
                    .enumerate()
                    .map(move |(col, &v)| (t, v, self.value_index(row, col)))
            })
    }

    /// The stored value at display coordinates `(row, col)`.
    fn value_index(&self, row: usize, col: usize) -> Option<f32> {
        self.values
            .get(row * self.v_ths.len() + col)
            .copied()
            .flatten()
    }

    /// The value at `(window, v_th)` if present.
    pub fn value_at(&self, v_th: f32, window: usize) -> Option<f32> {
        let col = self.v_ths.iter().position(|&v| (v - v_th).abs() < 1e-6)?;
        let row = self.windows_desc.iter().position(|&t| t == window)?;
        self.value_index(row, col)
    }

    /// The largest value in the map, if any cell has one.
    pub fn max_value(&self) -> Option<f32> {
        self.values.iter().flatten().copied().max_by(f32::total_cmp)
    }

    /// The smallest value in the map, if any cell has one.
    pub fn min_value(&self) -> Option<f32> {
        self.values.iter().flatten().copied().min_by(f32::total_cmp)
    }

    /// Renders the map as aligned ASCII with one row per time window
    /// (largest on top) and accuracies in percent; non-learnable cells show
    /// `--`.
    pub fn render_ascii(&self) -> String {
        let title = match self.kind {
            HeatmapKind::CleanAccuracy => "clean accuracy [%]".to_string(),
            HeatmapKind::AttackedAccuracy { eps } => {
                format!("accuracy under PGD eps={eps} [%]")
            }
            HeatmapKind::Retention { eps } => {
                format!("accuracy retained under PGD eps={eps} [%]")
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = write!(out, "{:>6} |", "T \\ Vth");
        for v in &self.v_ths {
            let _ = write!(out, "{v:>6.2}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(9 + 6 * self.v_ths.len()));
        for (row, &t) in self.windows_desc.iter().enumerate() {
            let _ = write!(out, "{t:>7} |");
            for col in 0..self.v_ths.len() {
                match self.value_index(row, col) {
                    Some(v) => {
                        let _ = write!(out, "{:>6.1}", v * 100.0);
                    }
                    None => {
                        let _ = write!(out, "{:>6}", "--");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises the map as CSV (`window,v_th,value`; missing cells have an
    /// empty value field), ready for external plotting.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_window,v_th,value\n");
        for (row, &t) in self.windows_desc.iter().enumerate() {
            for (col, &v) in self.v_ths.iter().enumerate() {
                match self.value_index(row, col) {
                    Some(val) => {
                        let _ = writeln!(out, "{t},{v},{val}");
                    }
                    None => {
                        let _ = writeln!(out, "{t},{v},");
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::ExplorationOutcome;
    use crate::grid::{GridResult, GridSpec};

    fn fake_grid() -> GridResult {
        let spec = GridSpec::new(vec![0.5, 1.0], vec![4, 8]);
        let outcomes = spec
            .cells()
            .map(|sp| {
                let learnable = sp.v_th < 0.9;
                ExplorationOutcome {
                    structural: sp,
                    clean_accuracy: 0.9 - sp.v_th * 0.1,
                    learnable,
                    robustness: if learnable {
                        vec![(1.0, 0.5 + sp.time_window as f32 / 100.0)]
                    } else {
                        vec![]
                    },
                }
            })
            .collect();
        GridResult {
            spec,
            epsilons: vec![1.0],
            outcomes,
        }
    }

    #[test]
    fn clean_heatmap_covers_every_cell() {
        let h = Heatmap::from_grid(&fake_grid(), HeatmapKind::CleanAccuracy);
        let v = h.value_at(0.5, 4).unwrap();
        assert!((v - 0.85).abs() < 1e-5);
        let v = h.value_at(1.0, 8).unwrap();
        assert!((v - 0.8).abs() < 1e-5);
        assert!(h.max_value().unwrap() > h.min_value().unwrap());
    }

    #[test]
    fn attacked_heatmap_masks_unlearnable_cells() {
        let h = Heatmap::from_grid(&fake_grid(), HeatmapKind::AttackedAccuracy { eps: 1.0 });
        let v = h.value_at(0.5, 8).unwrap();
        assert!((v - 0.58).abs() < 1e-5);
        assert_eq!(h.value_at(1.0, 8), None);
    }

    #[test]
    fn ascii_rendering_places_largest_window_first() {
        let h = Heatmap::from_grid(&fake_grid(), HeatmapKind::CleanAccuracy);
        let text = h.render_ascii();
        let row8 = text.lines().position(|l| l.trim_start().starts_with("8 |"));
        let row4 = text.lines().position(|l| l.trim_start().starts_with("4 |"));
        assert!(row8.unwrap() < row4.unwrap(), "{text}");
    }

    #[test]
    fn csv_has_header_and_all_cells() {
        let h = Heatmap::from_grid(&fake_grid(), HeatmapKind::AttackedAccuracy { eps: 1.0 });
        let csv = h.to_csv();
        assert!(csv.starts_with("time_window,v_th,value\n"));
        assert_eq!(csv.lines().count(), 1 + 4);
        // Unlearnable cell -> trailing empty field.
        assert!(csv.lines().any(|l| l.ends_with(',')), "{csv}");
    }

    #[test]
    fn missing_structural_point_is_none() {
        let h = Heatmap::from_grid(&fake_grid(), HeatmapKind::CleanAccuracy);
        assert_eq!(h.value_at(2.0, 4), None);
    }
}

#[cfg(test)]
mod edge_tests {
    use super::*;
    use crate::algorithm::ExplorationOutcome;
    use crate::grid::{GridResult, GridSpec};

    /// A grid where nothing is learnable: the attacked map is all-masked
    /// and must not panic (matches Algorithm 1 skipping everything).
    #[test]
    fn fully_unlearnable_grid_masks_everything() {
        let spec = GridSpec::new(vec![1.0, 2.0], vec![4]);
        let outcomes = spec
            .cells()
            .map(|sp| ExplorationOutcome {
                structural: sp,
                clean_accuracy: 0.1,
                learnable: false,
                robustness: vec![],
            })
            .collect();
        let grid = GridResult {
            spec,
            epsilons: vec![0.3],
            outcomes,
        };
        let map = Heatmap::from_grid(&grid, HeatmapKind::AttackedAccuracy { eps: 0.3 });
        assert_eq!(map.max_value(), None);
        assert_eq!(map.min_value(), None);
        assert!(map.render_ascii().contains("--"));
        assert!(grid.sweet_spot().is_none());
        assert!(grid.worst_learnable().is_none());
    }
}

#[cfg(test)]
mod retention_tests {
    use super::*;
    use crate::algorithm::ExplorationOutcome;
    use crate::grid::{GridResult, GridSpec};

    #[test]
    fn retention_divides_by_clean_accuracy() {
        let spec = GridSpec::new(vec![1.0], vec![4]);
        let outcomes = vec![ExplorationOutcome {
            structural: snn::StructuralParams::new(1.0, 4),
            clean_accuracy: 0.8,
            learnable: true,
            robustness: vec![(0.3, 0.4)],
        }];
        let grid = GridResult {
            spec,
            epsilons: vec![0.3],
            outcomes,
        };
        let map = Heatmap::from_grid(&grid, HeatmapKind::Retention { eps: 0.3 });
        let v = map.value_at(1.0, 4).unwrap();
        assert!((v - 0.5).abs() < 1e-6, "0.4 / 0.8 = 0.5, got {v}");
        assert!(map.render_ascii().contains("retained"));
    }
}
