//! The distributed grid worker loop: claim a cell, compute it, publish its
//! outcome, repeat until the whole grid is complete.
//!
//! Any number of `run_worker` processes (each holding a *shared*
//! [`RunStore`] handle from [`runs::open_grid`]) cooperate on one run
//! directory. Coordination is entirely through the store:
//!
//! * a cell with a published `outcome.json` is **complete** — skipped by
//!   everyone, forever;
//! * an incomplete cell is claimed through its per-cell lease
//!   ([`RunStore::claim_cell`]); a busy answer means a live peer has it;
//! * while computing, a heartbeat thread renews the lease so a slow cell
//!   is not reclaimed out from under a healthy worker;
//! * a worker SIGKILLed mid-cell leaves a stale lease (dead pid) that the
//!   next claimant reclaims — its partial checkpoints are either complete
//!   (and served as cache hits) or absent (and recomputed), never torn.
//!
//! Cells are computed with the same `*_stored` functions as the
//! single-process grid, so the reduced result is bitwise-identical to
//! [`run_grid_stored`](crate::grid::run_grid_stored)'s.

use std::io::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use snn::StructuralParams;
use store::{Event, RunStore, StoreError};

use crate::algorithm::explore_trained_stored;
use crate::config::ExperimentConfig;
use crate::grid::GridSpec;
use crate::pipeline::{train_snn_stored, SplitData};
use crate::reduce;
use crate::runs;

/// Fault-injection pause points, one per phase boundary of a cell's
/// lifecycle. A paused worker announces itself on stdout and then sleeps
/// forever (heartbeating all the while) until it is killed — this is how
/// the cross-process SIGKILL suite freezes a worker at an exact checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PauseAt {
    /// Right after the first successful cell claim, before any work.
    AfterLease,
    /// After training (checkpoint written), before the attack sweep.
    MidCell,
    /// After the attack sweep, before the outcome artifact is published.
    BeforeComplete,
    /// After the outcome artifact is published, before the lease releases.
    AfterArtifact,
}

impl PauseAt {
    /// The CLI spelling of every pause point, in lifecycle order.
    pub const ALL: [PauseAt; 4] = [
        PauseAt::AfterLease,
        PauseAt::MidCell,
        PauseAt::BeforeComplete,
        PauseAt::AfterArtifact,
    ];

    /// The CLI spelling of this pause point.
    pub fn name(self) -> &'static str {
        match self {
            PauseAt::AfterLease => "after-lease",
            PauseAt::MidCell => "mid-cell",
            PauseAt::BeforeComplete => "before-complete",
            PauseAt::AfterArtifact => "after-artifact",
        }
    }

    /// Parses a CLI spelling back into a pause point.
    pub fn parse(text: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|p| p.name() == text)
    }
}

/// Tuning knobs of one worker process.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Lease time-to-live: how long a claimed cell stays ours without a
    /// heartbeat before peers may reclaim it.
    pub ttl_millis: u64,
    /// Heartbeat period while computing a cell; must be well under
    /// [`Self::ttl_millis`] so a healthy worker never lapses.
    pub heartbeat_millis: u64,
    /// How long to sleep when every remaining cell is leased by peers.
    pub poll_millis: u64,
    /// Fault-injection hook: freeze at this checkpoint of the first
    /// computed cell (test harness only).
    pub pause_at: Option<PauseAt>,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        Self {
            ttl_millis: 30_000,
            heartbeat_millis: 10_000,
            poll_millis: 200,
            pause_at: None,
        }
    }
}

/// What one [`run_worker`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Cell keys this worker computed and published, in completion order.
    pub completed: Vec<String>,
    /// Cells abandoned because the lease was lost mid-compute (another
    /// worker reclaimed it after we stalled past our own deadline).
    pub abandoned: usize,
    /// Claim attempts answered "busy" (a live peer held the cell).
    pub busy: u64,
    /// Idle waits — rounds where every remaining cell was leased by peers.
    pub polls: u64,
}

/// How often the heartbeat thread wakes to check the stop flag; the actual
/// lease renewal happens every [`WorkerOptions::heartbeat_millis`].
const HEARTBEAT_TICK_MILLIS: u64 = 10;

/// Runs the worker loop until every cell of `spec` is complete.
///
/// Returns a [`WorkerReport`] describing this worker's share. The loop
/// terminates for every schedule: each round either completes a cell,
/// observes a peer's completion, or (when all remaining cells are leased
/// by live peers) sleeps briefly — and a dead peer's lease expires or is
/// reclaimed via its dead pid, so no cell can stay incomplete forever.
///
/// # Errors
///
/// Returns [`StoreError::Io`] when the store becomes unusable (lease or
/// artifact writes failing). Losing a lease mid-cell is NOT an error: the
/// cell is abandoned (counted in the report) and the loop moves on.
///
/// # Panics
///
/// Panics if training itself panics (propagated from the compute thread).
pub fn run_worker(
    config: &ExperimentConfig,
    data: &SplitData,
    spec: &GridSpec,
    epsilons: &[f32],
    store: &RunStore,
    opts: &WorkerOptions,
) -> Result<WorkerReport, StoreError> {
    let cells: Vec<StructuralParams> = spec.cells().collect();
    let mut report = WorkerReport::default();
    loop {
        let mut all_done = true;
        let mut progressed = false;
        for &cell in &cells {
            let key = runs::cell_key(cell);
            if store.cell_completed(&key) {
                continue;
            }
            all_done = false;
            let Some(lease) = store.claim_cell(&key, opts.ttl_millis)? else {
                report.busy += 1;
                obs::counter_add("worker/lease_busy", 1);
                continue;
            };
            obs::counter_add("worker/cells_claimed", 1);
            // Re-check under the lease: the previous holder may have
            // published between our completion check and the claim.
            if store.cell_completed(&key) {
                store.release_cell(lease);
                progressed = true;
                continue;
            }
            let published = compute_cell(config, data, cell, &key, epsilons, store, opts, lease)?;
            if published {
                obs::counter_add("worker/cells_completed", 1);
                report.completed.push(key);
            } else {
                report.abandoned += 1;
            }
            progressed = true;
        }
        if all_done {
            return Ok(report);
        }
        if !progressed {
            // Every remaining cell is leased by a live peer: wait for their
            // completions (or for their leases to go stale) and rescan.
            report.polls += 1;
            std::thread::sleep(Duration::from_millis(opts.poll_millis.max(1)));
        }
    }
}

/// Computes one claimed cell under a heartbeating lease. Returns whether
/// the outcome was published (`false` means the lease was lost and the
/// cell abandoned).
#[allow(clippy::too_many_arguments)] // internal: the worker loop's one call site
fn compute_cell(
    config: &ExperimentConfig,
    data: &SplitData,
    cell: StructuralParams,
    key: &str,
    epsilons: &[f32],
    store: &RunStore,
    opts: &WorkerOptions,
    lease: store::CellLease,
) -> Result<bool, StoreError> {
    let stop = AtomicBool::new(false);
    let lost = AtomicBool::new(false);
    let stop = &stop;
    let lost = &lost;
    std::thread::scope(|scope| {
        // The heartbeat thread OWNS the lease while the cell computes (no
        // shared lock around it) and hands it back through `join`.
        let heartbeat = scope.spawn(move || {
            let mut lease = lease;
            let mut since_renewal = 0u64;
            while !stop.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(HEARTBEAT_TICK_MILLIS));
                since_renewal += HEARTBEAT_TICK_MILLIS;
                if since_renewal < opts.heartbeat_millis.max(HEARTBEAT_TICK_MILLIS) {
                    continue;
                }
                since_renewal = 0;
                match store.heartbeat_cell(&mut lease, opts.ttl_millis) {
                    Ok(()) => {}
                    Err(StoreError::LeaseLost { .. }) => {
                        lost.store(true, Ordering::Release);
                        break;
                    }
                    // Transient I/O trouble: keep the work going and retry
                    // at the next period; the lease only lapses if this
                    // persists past the TTL.
                    Err(e) => eprintln!("warning: heartbeat for cell {key} failed: {e}"),
                }
            }
            lease
        });
        // Panic safety: if the compute below unwinds, this guard still
        // stops the heartbeat thread so `scope` can join it (otherwise the
        // unwind would deadlock waiting on an infinite heartbeat loop).
        struct StopGuard<'a>(&'a AtomicBool);
        impl Drop for StopGuard<'_> {
            fn drop(&mut self) {
                self.0.store(true, Ordering::Release);
            }
        }
        let stop_guard = StopGuard(stop);

        pause_if(opts, PauseAt::AfterLease, key);
        store.log(&Event::CellStarted {
            cell: key.to_string(),
        });
        let trained = train_snn_stored(config, data, cell, Some(store));
        pause_if(opts, PauseAt::MidCell, key);
        let outcome =
            explore_trained_stored(config, data, cell, &trained, epsilons, Some((store, key)));
        pause_if(opts, PauseAt::BeforeComplete, key);
        let published = if lost.load(Ordering::Acquire) {
            // Another worker owns the cell now; it will publish. Writing
            // ours too would be harmless (same bytes) but noisy.
            false
        } else {
            let json = reduce::encode_outcome(&outcome)?;
            store.save_cell_outcome(key, &json)?;
            true
        };
        pause_if(opts, PauseAt::AfterArtifact, key);

        drop(stop_guard);
        match heartbeat.join() {
            Ok(lease) => {
                if lost.load(Ordering::Acquire) {
                    // The lease belongs to its reclaimer; dropping our stale
                    // guard is a no-op (ownership-checked unlink).
                    drop(lease);
                } else {
                    store.release_cell(lease);
                }
            }
            // The heartbeat thread cannot panic, but if it somehow did the
            // lease file stays behind and expires like a crashed worker's.
            Err(_) => eprintln!("warning: heartbeat thread for cell {key} panicked"),
        }
        Ok(published)
    })
}

/// Freezes the worker at `at` if the options ask for it: announce on
/// stdout (the fault-injection harness watches for this line), then sleep
/// until killed. Heartbeats keep running, so the lease stays held until
/// SIGKILL makes the pid dead and a peer reclaims it.
fn pause_if(opts: &WorkerOptions, at: PauseAt, cell: &str) {
    if opts.pause_at != Some(at) {
        return;
    }
    println!(
        "worker paused at {} (cell {cell}, pid {})",
        at.name(),
        std::process::id()
    );
    let _ = std::io::stdout().flush();
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_points_parse_their_own_names() {
        for p in PauseAt::ALL {
            assert_eq!(PauseAt::parse(p.name()), Some(p));
        }
        assert_eq!(PauseAt::parse("nope"), None);
    }

    #[test]
    fn default_options_heartbeat_well_under_ttl() {
        let opts = WorkerOptions::default();
        assert!(opts.heartbeat_millis * 2 <= opts.ttl_millis);
    }
}
