//! Adversarial training and its composition with structural sweet spots.
//!
//! The paper studies *inherent* robustness from structural parameters; the
//! obvious follow-up (its "future work" direction) is whether the standard
//! *trained* defense — PGD adversarial training (Madry et al., 2018) —
//! stacks with a good `(V_th, T)` choice. This module trains SNNs on
//! PGD-perturbed batches and evaluates them with the shared Algorithm 1
//! machinery, so defended and undefended networks are directly comparable.

use rand::rngs::StdRng;
use rand::SeedableRng;

use std::time::Instant;

use ad::Tape;
use attacks::{Attack, Pgd};
use nn::{Adam, Classifier, Model, Optimizer, Params};
use snn::{SpikingCnn, StructuralParams};
use store::RunStore;

use crate::config::ExperimentConfig;
use crate::pipeline::{self, SplitData, Trained};
use crate::runs;

/// Trains the spiking twin with PGD adversarial training: every mini-batch
/// is perturbed against the *current* weights (budget `train_eps`, pixel
/// scale) before the gradient step.
///
/// Uses the same per-cell seeding as
/// [`train_snn`](crate::pipeline::train_snn), so a defended and an
/// undefended network at the same structural point start from identical
/// weights.
///
/// # Panics
///
/// Panics if `train_eps` is negative or the configuration is invalid.
pub fn adversarial_train_snn(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    train_eps: f32,
) -> Trained<SpikingCnn> {
    adversarial_train_snn_stored(config, data, structural, train_eps, None)
}

/// Like [`adversarial_train_snn`], but durable: the defended network is
/// checkpointed in the run store under a key that includes the training
/// budget, so it can never be confused with the standard training of the
/// same structural point.
pub fn adversarial_train_snn_stored(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    train_eps: f32,
    store: Option<&RunStore>,
) -> Trained<SpikingCnn> {
    let key = format!(
        "adv{:08x}-{}",
        train_eps.to_bits(),
        runs::cell_key(structural)
    );
    if let Some(s) = store {
        if let Some(hit) =
            pipeline::load_cached_model(s, &key, pipeline::build_snn(config, structural))
        {
            return hit;
        }
    }
    // armor-lint: allow(wallclock-purity, transitive-determinism) -- duration feeds the journal's millis field only, a deliberately wall-clock progress figure excluded from fingerprints
    let start = Instant::now();
    let trained = adversarial_train_raw(config, data, structural, train_eps);
    if let Some(s) = store {
        pipeline::save_trained_model(
            s,
            &key,
            config,
            &trained,
            start.elapsed().as_millis() as u64,
        );
    }
    trained
}

fn adversarial_train_raw(
    config: &ExperimentConfig,
    data: &SplitData,
    structural: StructuralParams,
    train_eps: f32,
) -> Trained<SpikingCnn> {
    assert!(train_eps >= 0.0, "training budget must be non-negative");
    config.validate();
    let cell_seed = config
        .seed
        .wrapping_add(u64::from(structural.v_th.to_bits()))
        .wrapping_add((structural.time_window as u64).wrapping_mul(0x9E37_79B9));
    let mut rng = StdRng::seed_from_u64(cell_seed);
    let mut params = Params::new();
    let model = SpikingCnn::new(
        &mut params,
        &mut rng,
        &config.cnn_config(),
        &config.snn_config(structural),
    );
    let mut opt = Adam::new(config.learning_rate);
    // A short inner PGD (half the evaluation steps) keeps the cost of the
    // inner maximisation bounded, as is standard for adversarial training.
    let inner_steps = (config.pgd_steps / 2).max(1);
    let attack = Pgd::new(
        train_eps,
        if train_eps == 0.0 {
            0.0
        } else {
            2.5 * train_eps / inner_steps as f32
        },
        inner_steps,
        true,
        config.seed,
    );
    let n = data.train.len();
    // Clean warm-up for the first third of the epochs: attacking a random
    // network produces meaningless perturbations and destabilises early
    // training (standard adversarial-training practice).
    let warmup = config.epochs / 3;
    for epoch in 0..config.epochs {
        let mut order: Vec<usize> = (0..n).collect();
        rand::seq::SliceRandom::shuffle(order.as_mut_slice(), &mut rng);
        for chunk in order.chunks(config.batch_size) {
            let (batch, labels) =
                nn::train::gather_batch(data.train.images(), data.train.labels(), chunk);
            let batch = if epoch >= warmup && train_eps > 0.0 {
                // Inner maximisation against the current weights.
                let victim = Classifier::new(model.clone(), params.clone());
                attack.perturb(&victim, &batch, &labels)
            } else {
                batch
            };
            // Outer minimisation on the (possibly perturbed) batch.
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let input = tape.leaf(batch);
            let loss = model.forward(&tape, &bound, input).cross_entropy(&labels);
            let grads = tape.backward(loss);
            let mut grad_tensors = bound.gradients(&grads);
            // Sharp surrogates occasionally spike the gradients on
            // adversarial batches; clip for stability.
            nn::clip_global_norm(&mut grad_tensors, 5.0);
            opt.step(&mut params, &grad_tensors);
        }
    }
    let clean_accuracy = nn::train::evaluate(
        &model,
        &params,
        data.test.images(),
        data.test.labels(),
        config.batch_size,
    );
    Trained {
        classifier: Classifier::new(model, params),
        clean_accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::explore_trained;
    use crate::pipeline::{prepare_data, train_snn};
    use crate::presets;

    #[test]
    fn zero_budget_adversarial_training_matches_standard_training() {
        let mut cfg = presets::quick();
        cfg.epochs = 3;
        cfg.train_per_class = 12;
        let data = prepare_data(&cfg);
        let sp = StructuralParams::new(1.0, 4);
        let defended = adversarial_train_snn(&cfg, &data, sp, 0.0);
        let standard = train_snn(&cfg, &data, sp);
        // ε = 0 PGD is the identity, same seeds, same batches: the runs
        // must coincide exactly.
        assert_eq!(defended.clean_accuracy, standard.clean_accuracy);
    }

    #[test]
    fn adversarial_training_improves_robustness_at_training_budget() {
        let mut cfg = presets::quick();
        cfg.epochs = 8;
        cfg.attack_samples = 20;
        cfg.pgd_steps = 5;
        cfg.accuracy_threshold = 0.3;
        let data = prepare_data(&cfg);
        let sp = StructuralParams::new(1.0, 6);
        let eps = presets::paper_eps_to_pixel(0.5);

        let standard = train_snn(&cfg, &data, sp);
        let defended = adversarial_train_snn(&cfg, &data, sp, eps);

        let rob = |t: &Trained<SpikingCnn>| {
            explore_trained(&cfg, &data, sp, t, &[eps])
                .robustness_at(eps)
                .unwrap_or(0.0)
        };
        let r_std = rob(&standard);
        let r_def = rob(&defended);
        assert!(
            r_def >= r_std,
            "adversarial training should not reduce robustness: {r_def} vs {r_std}"
        );
        assert!(
            r_def > 0.0,
            "a defended network must retain some accuracy at its training budget"
        );
    }
}
