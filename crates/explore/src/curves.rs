//! Robustness-vs-ε curves — paper Figs. 1 and 9.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

/// One accuracy-vs-noise-budget curve (one line of the paper's Fig. 9).
///
/// # Example
///
/// ```
/// use explore::RobustnessCurve;
///
/// let curve = RobustnessCurve::new("SNN (Vth=1, T=48)", vec![(0.0, 0.95), (1.0, 0.80)]);
/// assert_eq!(curve.at(1.0), Some(0.80));
/// assert!(curve.area() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RobustnessCurve {
    label: String,
    points: Vec<(f32, f32)>,
}

impl RobustnessCurve {
    /// Creates a labelled curve from `(ε, accuracy)` points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or the ε axis is not strictly increasing.
    pub fn new(label: impl Into<String>, points: Vec<(f32, f32)>) -> Self {
        assert!(!points.is_empty(), "a curve needs at least one point");
        assert!(
            points
                .iter()
                .zip(points.iter().skip(1))
                .all(|(a, b)| a.0 < b.0),
            "epsilon axis must be strictly increasing"
        );
        Self {
            label: label.into(),
            points,
        }
    }

    /// The curve label shown in reports.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The `(ε, accuracy)` points.
    pub fn points(&self) -> &[(f32, f32)] {
        &self.points
    }

    /// The accuracy at exactly ε (within float tolerance), if present.
    pub fn at(&self, eps: f32) -> Option<f32> {
        self.points
            .iter()
            .find(|(e, _)| (e - eps).abs() < 1e-6)
            .map(|&(_, a)| a)
    }

    /// Area under the curve by the trapezoid rule — a single-number
    /// robustness summary (higher is more robust across the sweep).
    pub fn area(&self) -> f32 {
        match self.points.as_slice() {
            [only] => only.1,
            pts => pts
                .iter()
                .zip(pts.iter().skip(1))
                .map(|(&(e0, a0), &(e1, a1))| 0.5 * (a1 + a0) * (e1 - e0))
                .sum(),
        }
    }

    /// The *critical budget*: the smallest ε at which accuracy falls to
    /// `fraction` of the curve's clean (ε-minimum) accuracy, linearly
    /// interpolated between measured points. `None` if the curve never
    /// drops that far.
    ///
    /// A single-number robustness summary: a higher critical ε means the
    /// attacker needs a larger budget to halve the model's accuracy.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `(0, 1]`.
    pub fn critical_eps(&self, fraction: f32) -> Option<f32> {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "fraction must be in (0, 1], got {fraction}"
        );
        let (&first, rest) = self.points.split_first()?;
        let target = first.1 * fraction;
        let mut prev = first;
        if prev.1 <= target {
            return Some(prev.0);
        }
        for &(e, a) in rest {
            if a <= target {
                // Linear interpolation between prev and (e, a).
                let (e0, a0) = prev;
                let t = if (a0 - a).abs() < 1e-12 {
                    1.0
                } else {
                    (a0 - target) / (a0 - a)
                };
                return Some(e0 + t * (e - e0));
            }
            prev = (e, a);
        }
        None
    }

    /// The largest accuracy advantage of `self` over `other` at any shared
    /// ε — the paper's "up to 85% higher robustness" statistic.
    pub fn max_advantage_over(&self, other: &RobustnessCurve) -> Option<f32> {
        let mut best: Option<f32> = None;
        for &(eps, acc) in &self.points {
            if let Some(other_acc) = other.at(eps) {
                let adv = acc - other_acc;
                best = Some(best.map_or(adv, |b: f32| b.max(adv)));
            }
        }
        best
    }
}

/// A set of curves sharing one ε axis, with table rendering and CSV export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct CurveSet {
    curves: Vec<RobustnessCurve>,
}

impl CurveSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a curve.
    pub fn push(&mut self, curve: RobustnessCurve) {
        self.curves.push(curve);
    }

    /// The contained curves.
    pub fn curves(&self) -> &[RobustnessCurve] {
        &self.curves
    }

    /// Renders an aligned table: one row per ε, one column per curve.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if self.curves.is_empty() {
            return out;
        }
        let _ = write!(out, "{:>6} |", "eps");
        for c in &self.curves {
            let _ = write!(out, " {:>24}", truncate(c.label(), 24));
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "{}", "-".repeat(8 + 26 * self.curves.len()));
        let mut epsilons: Vec<f32> = self
            .curves
            .iter()
            .flat_map(|c| c.points().iter().map(|&(e, _)| e))
            .collect();
        epsilons.sort_by(f32::total_cmp);
        epsilons.dedup_by(|a, b| (*a - *b).abs() < 1e-6);
        for eps in epsilons {
            let _ = write!(out, "{eps:>6.2} |");
            for c in &self.curves {
                match c.at(eps) {
                    Some(a) => {
                        let _ = write!(out, " {:>23.1}%", a * 100.0);
                    }
                    None => {
                        let _ = write!(out, " {:>24}", "--");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Serialises all curves as long-format CSV (`label,eps,accuracy`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("label,eps,accuracy\n");
        for c in &self.curves {
            for &(e, a) in c.points() {
                let _ = writeln!(out, "{},{e},{a}", c.label());
            }
        }
        out
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => s.get(..i).unwrap_or(s),
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unordered_axis() {
        RobustnessCurve::new("x", vec![(1.0, 0.5), (0.5, 0.4)]);
    }

    #[test]
    fn area_of_constant_curve() {
        let c = RobustnessCurve::new("c", vec![(0.0, 0.8), (1.0, 0.8), (2.0, 0.8)]);
        assert!((c.area() - 1.6).abs() < 1e-6);
    }

    #[test]
    fn critical_eps_interpolates_linearly() {
        let c = RobustnessCurve::new("c", vec![(0.0, 1.0), (1.0, 0.0)]);
        // Accuracy halves exactly at ε = 0.5 on this straight line.
        assert!((c.critical_eps(0.5).unwrap() - 0.5).abs() < 1e-6);
        assert!((c.critical_eps(0.25).unwrap() - 0.75).abs() < 1e-6);
    }

    #[test]
    fn critical_eps_none_when_curve_stays_high() {
        let c = RobustnessCurve::new("c", vec![(0.0, 0.9), (1.0, 0.8)]);
        assert_eq!(c.critical_eps(0.5), None);
        // But the degenerate fraction 1.0 is hit immediately.
        assert_eq!(c.critical_eps(1.0), Some(0.0));
    }

    #[test]
    fn more_robust_curve_has_larger_critical_eps() {
        let robust = RobustnessCurve::new("r", vec![(0.0, 1.0), (1.0, 0.8), (2.0, 0.1)]);
        let brittle = RobustnessCurve::new("b", vec![(0.0, 1.0), (1.0, 0.1), (2.0, 0.0)]);
        assert!(robust.critical_eps(0.5).unwrap() > brittle.critical_eps(0.5).unwrap());
    }

    #[test]
    fn max_advantage_matches_pointwise_gap() {
        let snn = RobustnessCurve::new("snn", vec![(0.0, 0.9), (1.0, 0.85), (1.5, 0.8)]);
        let cnn = RobustnessCurve::new("cnn", vec![(0.0, 0.95), (1.0, 0.3), (1.5, 0.05)]);
        let adv = snn.max_advantage_over(&cnn).unwrap();
        assert!((adv - 0.75).abs() < 1e-6);
    }

    #[test]
    fn advantage_is_none_without_shared_eps() {
        let a = RobustnessCurve::new("a", vec![(0.0, 1.0)]);
        let b = RobustnessCurve::new("b", vec![(0.5, 1.0)]);
        assert_eq!(a.max_advantage_over(&b), None);
    }

    #[test]
    fn table_renders_all_curves_and_epsilons() {
        let mut set = CurveSet::new();
        set.push(RobustnessCurve::new("snn", vec![(0.0, 0.9), (1.0, 0.8)]));
        set.push(RobustnessCurve::new("cnn", vec![(0.0, 0.95), (1.0, 0.2)]));
        let table = set.render_table();
        assert!(table.contains("snn"));
        assert!(table.contains("cnn"));
        assert!(table.contains("0.00"));
        assert!(table.contains("1.00"));
        assert!(table.contains("80.0%"));
    }

    #[test]
    fn csv_long_format() {
        let mut set = CurveSet::new();
        set.push(RobustnessCurve::new("m", vec![(0.0, 1.0)]));
        assert_eq!(set.to_csv(), "label,eps,accuracy\nm,0,1\n");
    }
}
