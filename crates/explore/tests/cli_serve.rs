//! End-to-end tests of `spiking-armor serve` as a real process: the store
//! hard-fail policy, and a full boot → classify → certify → shutdown round
//! trip over TCP.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_spiking-armor"))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spiking_armor_cli_serve_{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn serve_exits_nonzero_when_the_store_cannot_open() {
    let out = fresh_dir("broken_store");
    // A file where the runs directory must go breaks every store open.
    std::fs::write(out.join("runs"), b"not a directory").unwrap();
    let output = bin()
        .args(["serve", "--preset", "tiny", "--addr", "127.0.0.1:0"])
        .arg("--out-dir")
        .arg(&out)
        .output()
        .unwrap();
    assert!(
        !output.status.success(),
        "serve must hard-fail on a broken store"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("cannot open the run store"),
        "stderr: {stderr}"
    );
    let _ = std::fs::remove_dir_all(out);
}

/// Reads the child's stdout until the `serving on <addr>` line appears and
/// returns the bound address.
fn wait_for_addr(child: &mut Child) -> SocketAddr {
    let stdout = child.stdout.take().unwrap();
    let mut lines = BufReader::new(stdout).lines();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        assert!(Instant::now() < deadline, "server never announced its port");
        let line = lines.next().expect("server stdout closed early").unwrap();
        if let Some(rest) = line.strip_prefix("serving on ") {
            // Keep draining stdout in the background so the child never
            // blocks on a full pipe.
            std::thread::spawn(move || for _ in lines {});
            return rest.trim().parse().unwrap();
        }
    }
}

fn round_trip(addr: SocketAddr, frame: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(60)))
        .unwrap();
    stream.write_all(frame.as_bytes()).unwrap();
    stream.flush().unwrap();
    let mut line = String::new();
    BufReader::new(stream).read_line(&mut line).unwrap();
    line
}

#[test]
fn serve_round_trips_classify_and_certify_then_shuts_down() {
    let out = fresh_dir("round_trip");
    let mut child = bin()
        .args(["serve", "--preset", "tiny", "--addr", "127.0.0.1:0"])
        .args(["--max-batch", "4", "--replicas", "2"])
        .arg("--out-dir")
        .arg(&out)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let addr = wait_for_addr(&mut child);

    let info = round_trip(addr, "{\"id\": 1, \"kind\": \"info\"}\n");
    assert!(info.contains("\"ok\":true"), "info response: {info}");
    assert!(info.contains("\"input_len\":64"), "info response: {info}");

    let pixels: Vec<String> = (0..64).map(|i| format!("{}", i as f32 / 64.0)).collect();
    let pixels = pixels.join(", ");
    let classify = round_trip(
        addr,
        &format!("{{\"id\": 2, \"kind\": \"classify\", \"pixels\": [{pixels}]}}\n"),
    );
    assert!(classify.contains("\"ok\":true"), "classify: {classify}");
    assert!(classify.contains("\"label\""), "classify: {classify}");

    let certify = round_trip(
        addr,
        &format!(
            "{{\"id\": 3, \"kind\": \"certify\", \"pixels\": [{pixels}], \
             \"epsilons\": [0.0, 0.1]}}\n"
        ),
    );
    assert!(certify.contains("\"ok\":true"), "certify: {certify}");
    assert!(certify.contains("\"robustness\""), "certify: {certify}");
    // ε = 0 is the identity attack — always robust.
    assert!(certify.contains("\"robust\":true"), "certify: {certify}");

    let bye = round_trip(addr, "{\"id\": 4, \"kind\": \"shutdown\"}\n");
    assert!(bye.contains("\"ok\":true"), "shutdown ack: {bye}");

    let status = child.wait().unwrap();
    assert!(status.success(), "clean shutdown must exit 0");
    let mut stderr = String::new();
    child
        .stderr
        .take()
        .unwrap()
        .read_to_string(&mut stderr)
        .unwrap();
    assert!(
        !stderr.contains("panicked"),
        "server panicked somewhere: {stderr}"
    );
    let _ = std::fs::remove_dir_all(out);
}
