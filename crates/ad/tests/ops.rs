//! Per-operation correctness tests for the autodiff tape: each op's gradient
//! is checked against a hand-derived value and against finite differences.

use ad::{gradcheck, Tape};
use tensor::conv::Conv2dSpec;
use tensor::Tensor;

fn t(data: &[f32], dims: &[usize]) -> Tensor {
    Tensor::from_vec(data.to_vec(), dims)
}

#[test]
fn add_gradients_are_ones() {
    let tape = Tape::new();
    let a = tape.leaf(t(&[1.0, 2.0], &[2]));
    let b = tape.leaf(t(&[3.0, 4.0], &[2]));
    let grads = tape.backward((a + b).sum());
    assert_eq!(grads.wrt(a).unwrap().data(), &[1.0, 1.0]);
    assert_eq!(grads.wrt(b).unwrap().data(), &[1.0, 1.0]);
}

#[test]
fn sub_negates_rhs_gradient() {
    let tape = Tape::new();
    let a = tape.leaf(t(&[1.0], &[1]));
    let b = tape.leaf(t(&[2.0], &[1]));
    let grads = tape.backward((a - b).sum());
    assert_eq!(grads.wrt(a).unwrap().data(), &[1.0]);
    assert_eq!(grads.wrt(b).unwrap().data(), &[-1.0]);
}

#[test]
fn mul_routes_opposite_values() {
    let tape = Tape::new();
    let a = tape.leaf(t(&[2.0, 3.0], &[2]));
    let b = tape.leaf(t(&[5.0, 7.0], &[2]));
    let grads = tape.backward((a * b).sum());
    assert_eq!(grads.wrt(a).unwrap().data(), &[5.0, 7.0]);
    assert_eq!(grads.wrt(b).unwrap().data(), &[2.0, 3.0]);
}

#[test]
fn same_var_used_twice_accumulates() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[3.0], &[1]));
    // loss = x·x + x → d/dx = 2x + 1 = 7
    let grads = tape.backward(((x * x) + x).sum());
    assert_eq!(grads.wrt(x).unwrap().data(), &[7.0]);
}

#[test]
fn maximum_routes_to_larger_operand() {
    let tape = Tape::new();
    let a = tape.leaf(t(&[1.0, 5.0], &[2]));
    let b = tape.leaf(t(&[2.0, 4.0], &[2]));
    let grads = tape.backward(a.maximum(b).sum());
    assert_eq!(grads.wrt(a).unwrap().data(), &[0.0, 1.0]);
    assert_eq!(grads.wrt(b).unwrap().data(), &[1.0, 0.0]);
}

#[test]
fn scalar_ops_scale_gradient() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0, 2.0], &[2]));
    let grads = tape.backward(x.mul_scalar(3.0).add_scalar(10.0).sum());
    assert_eq!(grads.wrt(x).unwrap().data(), &[3.0, 3.0]);
}

#[test]
fn neg_flips_gradient() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0], &[1]));
    let grads = tape.backward((-x).sum());
    assert_eq!(grads.wrt(x).unwrap().data(), &[-1.0]);
}

#[test]
fn matmul_gradients_match_transpose_rule() {
    let tape = Tape::new();
    let a = tape.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
    let b = tape.leaf(t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]));
    let grads = tape.backward(a.matmul(b).sum());
    // dL/dA = ones · Bᵀ, dL/dB = Aᵀ · ones
    assert_eq!(grads.wrt(a).unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
    assert_eq!(grads.wrt(b).unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
}

#[test]
fn relu_masks_negative_inputs() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[-1.0, 2.0, 0.0], &[3]));
    let grads = tape.backward(x.relu().sum());
    assert_eq!(grads.wrt(x).unwrap().data(), &[0.0, 1.0, 0.0]);
}

#[test]
fn reshape_is_gradient_transparent() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]));
    let grads = tape.backward(x.reshape(&[4]).mul_scalar(2.0).sum());
    assert_eq!(grads.wrt(x).unwrap().dims(), &[2, 2]);
    assert_eq!(grads.wrt(x).unwrap().data(), &[2.0; 4]);
}

#[test]
fn mean_divides_by_count() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0, 2.0, 3.0, 4.0], &[4]));
    let grads = tape.backward(x.mean());
    assert_eq!(grads.wrt(x).unwrap().data(), &[0.25; 4]);
}

#[test]
fn add_bias_reduces_gradient_over_batch() {
    let tape = Tape::new();
    let x = tape.leaf(Tensor::zeros(&[3, 2]));
    let b = tape.leaf(t(&[1.0, 2.0], &[2]));
    let grads = tape.backward(x.add_bias(b).sum());
    assert_eq!(grads.wrt(b).unwrap().data(), &[3.0, 3.0]);
    assert_eq!(grads.wrt(x).unwrap().data(), &[1.0; 6]);
}

#[test]
fn cross_entropy_gradient_is_softmax_minus_onehot() {
    let tape = Tape::new();
    let logits = tape.leaf(t(&[1.0, 2.0, 3.0], &[1, 3]));
    let loss = tape.backward(logits.cross_entropy(&[2]));
    let g = loss.wrt(logits).unwrap();
    let p = t(&[1.0, 2.0, 3.0], &[1, 3]).softmax_rows();
    let expected = [p.data()[0], p.data()[1], p.data()[2] - 1.0];
    for (gv, ev) in g.data().iter().zip(expected) {
        assert!((gv - ev).abs() < 1e-5, "got {gv}, want {ev}");
    }
}

#[test]
fn conv_avgpool_pipeline_gradchecks() {
    let x = t(
        &(0..32)
            .map(|i| ((i % 7) as f32 - 3.0) * 0.25)
            .collect::<Vec<_>>(),
        &[1, 2, 4, 4],
    );
    let w = t(
        &(0..36)
            .map(|i| ((i % 5) as f32 - 2.0) * 0.3)
            .collect::<Vec<_>>(),
        &[2, 2, 3, 3],
    );
    gradcheck::check(
        &|_, vars| {
            // No ReLU here: its kink makes finite differences unreliable;
            // the ReLU derivative is checked separately with kink-safe input.
            vars[0]
                .conv2d(
                    vars[1],
                    Conv2dSpec {
                        stride: 1,
                        padding: 1,
                    },
                )
                .avg_pool2d(2)
                .sum()
        },
        &[x, w],
        1e-2,
        2e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn relu_gradchecks_away_from_kink() {
    // All magnitudes well above the 1e-3 probe so the kink is never crossed.
    let x = t(&[0.5, -0.7, 1.2, -2.0, 0.9, -0.4], &[6]);
    gradcheck::check(&|_, vars| vars[0].relu().sum(), &[x], 1e-3, 1e-2, 1e-2).unwrap();
}

#[test]
fn max_pool_gradchecks() {
    // Distinct values so the argmax is stable under ±eps perturbation.
    let x = t(
        &(0..16).map(|i| i as f32 * 0.37 - 2.0).collect::<Vec<_>>(),
        &[1, 1, 4, 4],
    );
    gradcheck::check(
        &|_, vars| vars[0].max_pool2d(2).sum(),
        &[x],
        1e-3,
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn log_softmax_nll_gradchecks() {
    let x = t(&[0.5, -1.0, 2.0, 0.1, 0.2, -0.3], &[2, 3]);
    gradcheck::check(
        &|_, vars| vars[0].cross_entropy(&[2, 0]),
        &[x],
        1e-3,
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn maximum_gradchecks_away_from_ties() {
    let a = t(&[1.0, -2.0, 0.5, 3.0], &[4]);
    let b = t(&[0.2, 2.0, -1.5, 0.0], &[4]);
    gradcheck::check(
        &|_, vars| vars[0].maximum(vars[1]).sum(),
        &[a, b],
        1e-3,
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn deep_chain_backward_terminates_and_is_exact() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0], &[1]));
    let mut y = x;
    for _ in 0..100 {
        y = y.mul_scalar(1.01);
    }
    let grads = tape.backward(y.sum());
    let expected = 1.01f32.powi(100);
    let got = grads.wrt(x).unwrap().item();
    assert!(
        (got - expected).abs() / expected < 1e-4,
        "{got} vs {expected}"
    );
}

#[test]
fn unused_leaf_has_no_gradient() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0], &[1]));
    let unused = tape.leaf(t(&[9.0], &[1]));
    let grads = tape.backward(x.sum());
    assert!(grads.wrt(unused).is_none());
    assert_eq!(grads.wrt_or_zero(unused, &[1]).data(), &[0.0]);
}

#[test]
fn custom_unary_uses_supplied_backward() {
    #[derive(Debug)]
    struct DoubleGrad;
    impl ad::CustomUnary for DoubleGrad {
        fn forward(&self, x: &Tensor) -> Tensor {
            x.clone()
        }
        fn backward(&self, _x: &Tensor, g: &Tensor) -> Tensor {
            g.mul_scalar(2.0)
        }
    }
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0, 2.0], &[2]));
    let grads = tape.backward(x.custom_unary(Box::new(DoubleGrad)).sum());
    assert_eq!(grads.wrt(x).unwrap().data(), &[2.0, 2.0]);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn small_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
        proptest::collection::vec(-2.0f32..2.0, n)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Sum of gradients through add equals gradient of each operand.
        #[test]
        fn add_is_linear(a in small_vals(6), b in small_vals(6)) {
            let tape = Tape::new();
            let va = tape.leaf(Tensor::from_vec(a, &[6]));
            let vb = tape.leaf(Tensor::from_vec(b, &[6]));
            let grads = tape.backward((va + vb).sum());
            prop_assert_eq!(grads.wrt(va).unwrap().data(), &[1.0f32; 6]);
            prop_assert_eq!(grads.wrt(vb).unwrap().data(), &[1.0f32; 6]);
        }

        /// Random elementwise expressions pass the finite-difference check.
        #[test]
        fn random_elementwise_gradchecks(a in small_vals(4), b in small_vals(4)) {
            gradcheck::check(
                &|_, vars| ((vars[0] * vars[1]) + vars[0].mul_scalar(0.5)).mean(),
                &[Tensor::from_vec(a, &[4]), Tensor::from_vec(b, &[4])],
                1e-2,
                2e-2,
                2e-2,
            ).unwrap();
        }

        /// Matmul gradients pass the finite-difference check.
        #[test]
        fn random_matmul_gradchecks(a in small_vals(6), b in small_vals(6)) {
            gradcheck::check(
                &|_, vars| vars[0].matmul(vars[1]).sum(),
                &[Tensor::from_vec(a, &[2, 3]), Tensor::from_vec(b, &[3, 2])],
                1e-2,
                2e-2,
                2e-2,
            ).unwrap();
        }

        /// Cross-entropy is non-negative and its gradient rows sum to ~0.
        #[test]
        fn cross_entropy_grad_rows_sum_to_zero(logits in small_vals(8)) {
            let tape = Tape::new();
            let x = tape.leaf(Tensor::from_vec(logits, &[2, 4]));
            let loss = x.cross_entropy(&[1, 3]);
            prop_assert!(loss.value().item() >= 0.0);
            let grads = tape.backward(loss);
            let g = grads.wrt(x).unwrap();
            for row in g.data().chunks(4) {
                let s: f32 = row.iter().sum();
                prop_assert!(s.abs() < 1e-5, "row sums to {}", s);
            }
        }
    }
}

#[test]
fn exp_gradient_is_output() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[0.0, 1.0, -1.0], &[3]));
    let grads = tape.backward(x.exp().sum());
    let g = grads.wrt(x).unwrap();
    for (gv, xv) in g.data().iter().zip([0.0f32, 1.0, -1.0]) {
        assert!((gv - xv.exp()).abs() < 1e-6);
    }
}

#[test]
fn ln_gradient_is_reciprocal() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[0.5, 2.0, 4.0], &[3]));
    let grads = tape.backward(x.ln().sum());
    assert!(grads
        .wrt(x)
        .unwrap()
        .allclose(&t(&[2.0, 0.5, 0.25], &[3]), 1e-6));
}

#[test]
fn sigmoid_and_tanh_gradcheck() {
    let x = t(&[-1.5, -0.3, 0.4, 2.0], &[4]);
    gradcheck::check(
        &|_, vars| vars[0].sigmoid().sum(),
        std::slice::from_ref(&x),
        1e-3,
        1e-2,
        1e-2,
    )
    .unwrap();
    gradcheck::check(&|_, vars| vars[0].tanh().sum(), &[x], 1e-3, 1e-2, 1e-2).unwrap();
}

#[test]
fn div_gradcheck() {
    let a = t(&[1.0, -2.0, 0.5], &[3]);
    let b = t(&[2.0, 4.0, -1.5], &[3]);
    gradcheck::check(
        &|_, vars| vars[0].div(vars[1]).sum(),
        &[a, b],
        1e-3,
        1e-2,
        2e-2,
    )
    .unwrap();
}

#[test]
fn sigmoid_saturates_sanely() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[50.0, -50.0], &[2]));
    let s = x.sigmoid();
    assert!((s.value().data()[0] - 1.0).abs() < 1e-6);
    assert!(s.value().data()[1].abs() < 1e-6);
    let grads = tape.backward(s.sum());
    // Saturated sigmoid has ~zero gradient but must stay finite.
    assert!(!grads.wrt(x).unwrap().has_non_finite());
}

#[test]
fn composite_exp_ln_identity_gradient() {
    // ln(exp(x)) = x, so the gradient must be exactly ~1.
    let tape = Tape::new();
    let x = tape.leaf(t(&[0.3, -0.7], &[2]));
    let grads = tape.backward(x.exp().ln().sum());
    assert!(grads.wrt(x).unwrap().allclose(&t(&[1.0, 1.0], &[2]), 1e-5));
}

#[test]
fn slice_channels_selects_and_routes_gradient() {
    let tape = Tape::new();
    // 1 sample, 3 channels of 2x1.
    let x = tape.leaf(t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 2, 1]));
    let mid = x.slice_channels(1, 2);
    assert_eq!(mid.dims(), vec![1, 1, 2, 1]);
    assert_eq!(mid.value().data(), &[3.0, 4.0]);
    let grads = tape.backward(mid.mul_scalar(2.0).sum());
    assert_eq!(
        grads.wrt(x).unwrap().data(),
        &[0.0, 0.0, 2.0, 2.0, 0.0, 0.0]
    );
}

#[test]
fn slice_channels_gradchecks() {
    let x = t(
        &(0..24).map(|i| (i as f32 * 0.13) - 1.0).collect::<Vec<_>>(),
        &[2, 3, 2, 2],
    );
    gradcheck::check(
        &|_, vars| vars[0].slice_channels(0, 2).sum(),
        &[x],
        1e-3,
        1e-2,
        1e-2,
    )
    .unwrap();
}

#[test]
fn grads_len_covers_whole_tape() {
    let tape = Tape::new();
    let x = tape.leaf(t(&[1.0], &[1]));
    let y = x.mul_scalar(2.0).sum();
    let grads = tape.backward(y);
    assert_eq!(grads.len(), tape.len());
    assert!(!grads.is_empty());
}

#[test]
fn backward_from_intermediate_node_ignores_later_ops() {
    // Differentiate from a mid-tape scalar: ops recorded after it must not
    // contribute gradients.
    let tape = Tape::new();
    let x = tape.leaf(t(&[2.0], &[1]));
    let mid = (x * x).sum(); // d/dx = 4
    let _later = mid.mul_scalar(100.0); // recorded but not differentiated
    let grads = tape.backward(mid);
    assert_eq!(grads.wrt(x).unwrap().item(), 4.0);
}

#[test]
fn diamond_graph_accumulates_both_paths() {
    // y = a*b + a*c where b, c derive from the same leaf: classic diamond.
    let tape = Tape::new();
    let a = tape.leaf(t(&[3.0], &[1]));
    let b = a.mul_scalar(2.0); // 2a
    let c = a.add_scalar(1.0); // a+1
    let y = ((a * b) + (a * c)).sum(); // 2a² + a² + a = 3a² + a
    let grads = tape.backward(y);
    // d/da = 6a + 1 = 19
    assert_eq!(grads.wrt(a).unwrap().item(), 19.0);
}
