//! The fused LIF tape ops ([`ad::Var::lif_step`]) must be **bitwise**
//! equivalent to the composed-op formulation they replaced — forward
//! values and every gradient, across reset modes, adaptation, and
//! multi-timestep unrolls with recurrent gradient flow.

use ad::{CustomUnary, Tape, Var};
use tensor::simd::LifKernelSpec;
use tensor::Tensor;

/// A surrogate spike function: Heaviside forward, `g / (1 + α|x|)²`
/// backward (the fast-sigmoid derivative used by SNN training).
#[derive(Debug)]
struct FastSigmoidSurrogate {
    alpha: f32,
}

impl CustomUnary for FastSigmoidSurrogate {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.map(|v| if v >= 0.0 { 1.0 } else { 0.0 })
    }
    fn backward(&self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        x.zip_map(grad_out, |v, g| {
            let d = 1.0 + self.alpha * v.abs();
            g / (d * d)
        })
    }
}

fn surrogate() -> Box<dyn CustomUnary> {
    Box::new(FastSigmoidSurrogate { alpha: 2.0 })
}

/// The exact op composition `lif_step` replaced.
fn legacy_step<'t>(
    input: Var<'t>,
    v: Var<'t>,
    adapt: Option<(Var<'t>, f32)>,
    spec: LifKernelSpec,
) -> (Var<'t>, Var<'t>) {
    let v_int = v.mul_scalar(spec.beta) + input;
    let centered = match adapt {
        Some((a, kappa)) => (v_int - a.mul_scalar(kappa)).add_scalar(-spec.v_th),
        None => v_int.add_scalar(-spec.v_th),
    };
    let spikes = centered.custom_unary(surrogate());
    let v_next = if spec.zero_reset {
        v_int - v_int * spikes
    } else {
        v_int - spikes.mul_scalar(spec.v_th)
    };
    (spikes, v_next)
}

fn stream_tensor(seed: u64, n: usize) -> Tensor {
    let data = (0..n as u64)
        .map(|i| {
            let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect();
    Tensor::from_vec(data, &[n])
}

fn assert_bits(a: &Tensor, b: &Tensor, context: &str) {
    assert_eq!(a.dims(), b.dims(), "{context}: shape");
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i}: {x} vs {y}"
        );
    }
}

/// Unrolls `steps` timesteps of both formulations on identical leaves,
/// takes a loss touching every spike train AND the final membrane (so
/// gradients flow through integrate, spike, and reset paths at once), and
/// demands bitwise-equal values and gradients.
fn check(steps: usize, spec: LifKernelSpec, with_adapt: bool) {
    let n = 23; // odd length: exercises the SIMD tail as well
    let run = |fused: bool| -> (Vec<Tensor>, Tensor, Vec<Tensor>) {
        let tape = Tape::new();
        let inputs: Vec<Var> = (0..steps)
            .map(|t| tape.leaf(stream_tensor(100 + t as u64, n)))
            .collect();
        let v0 = tape.leaf(stream_tensor(7, n));
        let a0 = tape.leaf(stream_tensor(8, n));
        let mut v = v0;
        let mut a = a0;
        let mut spike_vals = Vec::new();
        let mut loss_acc: Option<Var> = None;
        for (t, &input) in inputs.iter().enumerate() {
            let adapt = with_adapt.then_some((a, 0.4f32));
            let (spikes, v_next) = if fused {
                input.lif_step(v, adapt, spec, surrogate())
            } else {
                legacy_step(input, v, adapt, spec)
            };
            if with_adapt {
                a = a.mul_scalar(0.7) + spikes;
            }
            v = v_next;
            spike_vals.push(spikes.value());
            let term = spikes.mul_scalar(1.0 + t as f32).sum();
            loss_acc = Some(match loss_acc {
                Some(l) => l + term,
                None => term,
            });
        }
        let loss = loss_acc.unwrap() + v.sum();
        let grads = tape.backward(loss);
        let mut wanted: Vec<Tensor> = inputs
            .iter()
            .map(|x| grads.wrt(*x).unwrap().clone())
            .collect();
        wanted.push(grads.wrt(v0).unwrap().clone());
        if with_adapt {
            wanted.push(grads.wrt(a0).unwrap().clone());
        }
        (spike_vals, v.value(), wanted)
    };
    let (fused_spikes, fused_v, fused_grads) = run(true);
    let (legacy_spikes, legacy_v, legacy_grads) = run(false);
    let ctx = format!(
        "steps={steps} zero_reset={} adapt={with_adapt}",
        spec.zero_reset
    );
    for (t, (f, l)) in fused_spikes.iter().zip(&legacy_spikes).enumerate() {
        assert_bits(f, l, &format!("{ctx} spikes[{t}]"));
    }
    assert_bits(&fused_v, &legacy_v, &format!("{ctx} final v"));
    assert_eq!(fused_grads.len(), legacy_grads.len());
    for (i, (f, l)) in fused_grads.iter().zip(&legacy_grads).enumerate() {
        assert_bits(f, l, &format!("{ctx} grad[{i}]"));
    }
}

#[test]
fn fused_matches_legacy_subtract_reset() {
    check(
        4,
        LifKernelSpec {
            beta: 0.9,
            v_th: 1.0,
            zero_reset: false,
        },
        false,
    );
}

#[test]
fn fused_matches_legacy_zero_reset() {
    check(
        4,
        LifKernelSpec {
            beta: 0.85,
            v_th: 0.7,
            zero_reset: true,
        },
        false,
    );
}

#[test]
fn fused_matches_legacy_with_adaptation() {
    for zero_reset in [false, true] {
        check(
            3,
            LifKernelSpec {
                beta: 0.9,
                v_th: 1.0,
                zero_reset,
            },
            true,
        );
    }
}

#[test]
fn fused_records_three_nodes_per_step() {
    let tape = Tape::new();
    let input = tape.leaf(stream_tensor(1, 8));
    let v = tape.leaf(stream_tensor(2, 8));
    let spec = LifKernelSpec {
        beta: 0.9,
        v_th: 1.0,
        zero_reset: false,
    };
    let before = tape.len();
    let _ = input.lif_step(v, None, spec, surrogate());
    assert_eq!(tape.len() - before, 3, "integrate + spike + reset only");
    let stats = tape.stats();
    assert_eq!(stats.count_of("lif_integrate"), 1);
    assert_eq!(stats.count_of("lif_spike"), 1);
    assert_eq!(stats.count_of("lif_reset"), 1);
}

#[test]
fn matmul_events_forward_and_backward_match_matmul() {
    let spikes_data: Vec<f32> = (0..6 * 16)
        .map(|i| if i % 11 == 0 { 1.0 } else { 0.0 })
        .collect();
    let run = |events: bool| -> (Tensor, Tensor, Tensor) {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(spikes_data.clone(), &[6, 16]));
        let w = tape.leaf(stream_tensor(9, 16 * 4).reshape(&[16, 4]));
        let y = if events {
            x.matmul_events(w)
        } else {
            x.matmul(w)
        };
        let loss = y.sum();
        let grads = tape.backward(loss);
        (
            y.value(),
            grads.wrt(x).unwrap().clone(),
            grads.wrt(w).unwrap().clone(),
        )
    };
    let (ye, gxe, gwe) = run(true);
    let (yd, gxd, gwd) = run(false);
    assert_bits(&ye, &yd, "value");
    assert_bits(&gxe, &gxd, "grad x");
    assert_bits(&gwe, &gwd, "grad w");
}
