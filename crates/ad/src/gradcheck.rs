//! Finite-difference gradient verification.
//!
//! Every layer and every custom op in the workspace is validated against
//! central finite differences through this module; the `nn` and `snn` test
//! suites call [`check`] on their forward functions.

use std::error::Error;
use std::fmt;

use tensor::Tensor;

use crate::{Tape, Var};

/// A mismatch found by [`check`].
#[derive(Debug, Clone, PartialEq)]
pub struct GradcheckError {
    /// Index of the offending input tensor.
    pub input: usize,
    /// Flat element index within that input.
    pub element: usize,
    /// Analytic (backward-pass) derivative.
    pub analytic: f32,
    /// Central finite-difference estimate.
    pub numeric: f32,
}

impl fmt::Display for GradcheckError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gradient mismatch at input {} element {}: analytic {} vs numeric {}",
            self.input, self.element, self.analytic, self.numeric
        )
    }
}

impl Error for GradcheckError {}

/// Verifies the analytic gradients of a scalar-valued function against
/// central finite differences.
///
/// `f` receives a fresh tape and one leaf [`Var`] per input tensor and must
/// return a scalar variable on that tape. Each input element is perturbed by
/// `±eps`; the analytic gradient must match the central difference to within
/// `tol_abs + tol_rel · |numeric|`.
///
/// # Errors
///
/// Returns the first [`GradcheckError`] found, if any.
///
/// # Example
///
/// ```
/// use ad::gradcheck;
/// use tensor::Tensor;
///
/// # fn main() -> Result<(), gradcheck::GradcheckError> {
/// let x = Tensor::from_vec(vec![0.3, -0.7, 1.2], &[1, 3]);
/// gradcheck::check(&|_, vars| (vars[0] * vars[0]).sum(), &[x], 1e-3, 1e-2, 1e-2)?;
/// # Ok(())
/// # }
/// ```
pub fn check(
    f: &dyn for<'t> Fn(&'t Tape, &[Var<'t>]) -> Var<'t>,
    inputs: &[Tensor],
    eps: f32,
    tol_abs: f32,
    tol_rel: f32,
) -> Result<(), GradcheckError> {
    // Analytic gradients once.
    let tape = Tape::new();
    let vars: Vec<Var<'_>> = inputs.iter().map(|t| tape.leaf(t.clone())).collect();
    let loss = f(&tape, &vars);
    let grads = tape.backward(loss);
    let analytic: Vec<Tensor> = vars
        .iter()
        .zip(inputs)
        .map(|(v, t)| grads.wrt_or_zero(*v, t.dims()))
        .collect();

    let eval = |perturbed: &[Tensor]| -> f32 {
        let tape = Tape::new();
        let vars: Vec<Var<'_>> = perturbed.iter().map(|t| tape.leaf(t.clone())).collect();
        f(&tape, &vars).value().item()
    };

    for (i, input) in inputs.iter().enumerate() {
        for e in 0..input.len() {
            let mut plus = inputs.to_vec();
            plus[i].data_mut()[e] += eps;
            let mut minus = inputs.to_vec();
            minus[i].data_mut()[e] -= eps;
            let numeric = (eval(&plus) - eval(&minus)) / (2.0 * eps);
            let a = analytic[i].data()[e];
            if (a - numeric).abs() > tol_abs + tol_rel * numeric.abs() {
                return Err(GradcheckError {
                    input: i,
                    element: e,
                    analytic: a,
                    numeric,
                });
            }
        }
    }
    Ok(())
}
