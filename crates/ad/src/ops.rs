//! Differentiable operations: forward constructors on [`Var`] and the
//! reverse-mode `propagate` dispatcher.

use tensor::conv::{conv2d, conv2d_backward, Conv2dSpec};
use tensor::pool::{avg_pool2d, avg_pool2d_backward, max_pool2d, max_pool2d_backward};
use tensor::Tensor;

use crate::tape::{Node, Var};

/// A unary operation with a caller-supplied derivative.
///
/// This is the extension point used by the `snn` crate to implement spike
/// functions: the forward pass is a hard Heaviside step while the backward
/// pass substitutes a smooth *surrogate* derivative, exactly as done by
/// Norse/PyTorch SNN training and required for the white-box attacks of the
/// reproduced paper.
///
/// # Example
///
/// ```
/// use ad::{CustomUnary, Tape};
/// use tensor::Tensor;
///
/// /// y = x² with a deliberately scaled derivative 2x·10.
/// #[derive(Debug)]
/// struct ScaledSquare;
/// impl CustomUnary for ScaledSquare {
///     fn forward(&self, x: &Tensor) -> Tensor { x.mul(x) }
///     fn backward(&self, x: &Tensor, g: &Tensor) -> Tensor {
///         x.mul_scalar(20.0).mul(g)
///     }
/// }
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::scalar(3.0));
/// let y = x.custom_unary(Box::new(ScaledSquare)).sum();
/// let grads = tape.backward(y);
/// assert_eq!(grads.wrt(x).unwrap().item(), 60.0);
/// ```
pub trait CustomUnary: std::fmt::Debug {
    /// Computes the output value from the input value.
    fn forward(&self, x: &Tensor) -> Tensor;
    /// Computes `∂L/∂x` from the input value `x` and the output gradient
    /// `grad_out`; the result must have the shape of `x`.
    fn backward(&self, x: &Tensor, grad_out: &Tensor) -> Tensor;
}

impl Op {
    /// A short static label for diagnostics.
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Maximum(..) => "maximum",
            Op::Neg(..) => "neg",
            Op::MulScalar(..) => "mul_scalar",
            Op::AddScalar(..) => "add_scalar",
            Op::Matmul(..) => "matmul",
            Op::Conv2d { .. } => "conv2d",
            Op::AvgPool { .. } => "avg_pool2d",
            Op::MaxPool { .. } => "max_pool2d",
            Op::Relu(..) => "relu",
            Op::Exp(..) => "exp",
            Op::Ln(..) => "ln",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::Div(..) => "div",
            Op::AddBias { .. } => "add_bias",
            Op::Reshape(..) => "reshape",
            Op::SliceChannels { .. } => "slice_channels",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::LogSoftmax(..) => "log_softmax",
            Op::NllLoss { .. } => "nll_loss",
            Op::Custom { .. } => "custom",
            Op::LifIntegrate { .. } => "lif_integrate",
            Op::LifSpike { .. } => "lif_spike",
            Op::LifReset { .. } => "lif_reset",
        }
    }
}

pub(crate) enum Op {
    Leaf,
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Maximum(usize, usize),
    Neg(usize),
    MulScalar(usize, f32),
    AddScalar(usize),
    Matmul(usize, usize),
    Conv2d {
        x: usize,
        w: usize,
        spec: Conv2dSpec,
    },
    AvgPool {
        x: usize,
        k: usize,
    },
    MaxPool {
        x: usize,
        argmax: Vec<usize>,
    },
    Relu(usize),
    Exp(usize),
    Ln(usize),
    Sigmoid(usize),
    Tanh(usize),
    Div(usize, usize),
    AddBias {
        x: usize,
        b: usize,
    },
    Reshape(usize),
    SliceChannels {
        x: usize,
        start: usize,
        end: usize,
    },
    Sum(usize),
    Mean(usize),
    LogSoftmax(usize),
    NllLoss {
        logp: usize,
        targets: Vec<usize>,
    },
    Custom {
        x: usize,
        op: Box<dyn CustomUnary>,
    },
    /// Membrane integration `v_int = v·β + I` of one fused LIF step
    /// (see [`Var::lif_step`]).
    LifIntegrate {
        input: usize,
        v: usize,
        beta: f32,
    },
    /// Spike decision of one fused LIF step. The threshold-centered
    /// potential is stored *inside the op* (it is consumed only by the
    /// surrogate's backward, never by other nodes), and `op` supplies the
    /// surrogate derivative exactly as [`Op::Custom`] would.
    LifSpike {
        v_int: usize,
        /// Adaptation state id and coupling κ for ALIF; `None` for plain
        /// LIF.
        adapt: Option<(usize, f32)>,
        centered: Tensor,
        op: Box<dyn CustomUnary>,
    },
    /// Membrane reset of one fused LIF step: `v_int − spikes·V_th`
    /// (subtract) or `v_int − v_int·spikes` (zero).
    LifReset {
        v_int: usize,
        spikes: usize,
        v_th: f32,
        zero_reset: bool,
    },
}

impl<'t> Var<'t> {
    fn binary(self, other: Var<'t>, value: Tensor, op: Op) -> Var<'t> {
        self.assert_same_tape(&other);
        self.tape.push(value, op)
    }

    /// Elementwise maximum; gradients flow to the larger operand (ties go to
    /// `self`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or the tapes differ.
    pub fn maximum(self, other: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self
            .tape
            .with_values_of(self.id, other.id, |a, b| a.maximum(b));
        self.binary(other, value, Op::Maximum(self.id, other.id))
    }

    /// Multiplies every element by `s`.
    pub fn mul_scalar(self, s: f32) -> Var<'t> {
        let value = self.with_value(|v| v.mul_scalar(s));
        self.tape.push(value, Op::MulScalar(self.id, s))
    }

    /// Adds `s` to every element (gradient passes through unchanged).
    pub fn add_scalar(self, s: f32) -> Var<'t> {
        let value = self.with_value(|v| v.add_scalar(s));
        self.tape.push(value, Op::AddScalar(self.id))
    }

    /// Matrix product `[M, K] × [K, N]`.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or cross-tape operands.
    pub fn matmul(self, other: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self
            .tape
            .with_values_of(self.id, other.id, |a, b| a.matmul(b));
        self.binary(other, value, Op::Matmul(self.id, other.id))
    }

    /// 2-D convolution of `self` (`[N, C, H, W]`) with kernel `w`
    /// (`[O, C, KH, KW]`).
    ///
    /// # Panics
    ///
    /// Panics on any shape violation (see [`tensor::conv::conv2d`]).
    pub fn conv2d(self, w: Var<'t>, spec: Conv2dSpec) -> Var<'t> {
        self.assert_same_tape(&w);
        let value = self
            .tape
            .with_values_of(self.id, w.id, |x, k| conv2d(x, k, spec));
        self.binary(
            w,
            value,
            Op::Conv2d {
                x: self.id,
                w: w.id,
                spec,
            },
        )
    }

    /// Average pooling with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not divide the spatial extent.
    pub fn avg_pool2d(self, k: usize) -> Var<'t> {
        let value = self.with_value(|v| avg_pool2d(v, k));
        self.tape.push(value, Op::AvgPool { x: self.id, k })
    }

    /// Max pooling with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` does not divide the spatial extent.
    pub fn max_pool2d(self, k: usize) -> Var<'t> {
        let (value, argmax) = self.with_value(|v| max_pool2d(v, k));
        self.tape.push(value, Op::MaxPool { x: self.id, argmax })
    }

    /// Rectified linear unit.
    pub fn relu(self) -> Var<'t> {
        let value = self.with_value(|v| v.map(|x| x.max(0.0)));
        self.tape.push(value, Op::Relu(self.id))
    }

    /// Elementwise natural exponential.
    pub fn exp(self) -> Var<'t> {
        let value = self.with_value(Tensor::exp);
        self.tape.push(value, Op::Exp(self.id))
    }

    /// Elementwise natural logarithm. The input must be strictly positive
    /// for meaningful gradients; non-positive inputs produce `-inf`/NaN
    /// values exactly as `f32::ln` does.
    pub fn ln(self) -> Var<'t> {
        let value = self.with_value(Tensor::ln);
        self.tape.push(value, Op::Ln(self.id))
    }

    /// Elementwise logistic sigmoid `1 / (1 + e^{-x})`.
    pub fn sigmoid(self) -> Var<'t> {
        let value = self.with_value(|v| v.map(|x| 1.0 / (1.0 + (-x).exp())));
        self.tape.push(value, Op::Sigmoid(self.id))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(self) -> Var<'t> {
        let value = self.with_value(|v| v.map(f32::tanh));
        self.tape.push(value, Op::Tanh(self.id))
    }

    /// Elementwise quotient of two same-shape variables.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ or the tapes differ.
    #[allow(clippy::should_implement_trait)] // by-value taped op, not std::ops::Div
    pub fn div(self, other: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self.tape.with_values_of(self.id, other.id, |a, b| a.div(b));
        self.binary(other, value, Op::Div(self.id, other.id))
    }

    /// Adds a rank-1 bias to a `[N, C]` matrix or `[N, C, H, W]` map.
    ///
    /// # Panics
    ///
    /// Panics on the shape violations of [`Tensor::add_bias`].
    pub fn add_bias(self, b: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&b);
        let value = self
            .tape
            .with_values_of(self.id, b.id, |x, bias| x.add_bias(bias));
        self.binary(
            b,
            value,
            Op::AddBias {
                x: self.id,
                b: b.id,
            },
        )
    }

    /// Reshapes to `dims` (element count must match).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(self, dims: &[usize]) -> Var<'t> {
        let value = self.with_value(|v| v.reshape(dims));
        self.tape.push(value, Op::Reshape(self.id))
    }

    /// Extracts channels `[start, end)` of a `[N, C, H, W]` variable.
    /// Gradients flow back into the selected channels; the rest receive
    /// zero. This is how frame-replay encoding presents one frame of a
    /// multi-frame input per timestep.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not rank 4, `start >= end`, or `end`
    /// exceeds the channel count.
    pub fn slice_channels(self, start: usize, end: usize) -> Var<'t> {
        let out = self.with_value(|value| {
            let dims = value.dims();
            assert_eq!(
                dims.len(),
                4,
                "slice_channels needs [N, C, H, W], got {dims:?}"
            );
            assert!(start < end, "empty channel slice [{start}, {end})");
            assert!(
                end <= dims[1],
                "channel slice end {end} exceeds {}",
                dims[1]
            );
            let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
            let plane = h * w;
            let out_c = end - start;
            let mut out = Tensor::zeros(&[n, out_c, h, w]);
            for s in 0..n {
                let src = &value.data()[(s * c + start) * plane..(s * c + end) * plane];
                out.data_mut()[s * out_c * plane..(s + 1) * out_c * plane].copy_from_slice(src);
            }
            out
        });
        self.tape.push(
            out,
            Op::SliceChannels {
                x: self.id,
                start,
                end,
            },
        )
    }

    /// Sum of all elements, as a rank-0 scalar.
    pub fn sum(self) -> Var<'t> {
        let value = Tensor::scalar(self.with_value(Tensor::sum));
        self.tape.push(value, Op::Sum(self.id))
    }

    /// Mean of all elements, as a rank-0 scalar.
    pub fn mean(self) -> Var<'t> {
        let value = Tensor::scalar(self.with_value(Tensor::mean));
        self.tape.push(value, Op::Mean(self.id))
    }

    /// Row-wise log-softmax of a `[N, C]` logits matrix.
    ///
    /// # Panics
    ///
    /// Panics if the value is not rank 2.
    pub fn log_softmax(self) -> Var<'t> {
        let value = self.with_value(Tensor::log_softmax_rows);
        self.tape.push(value, Op::LogSoftmax(self.id))
    }

    /// Mean negative log-likelihood of `targets` under `self`, which must be
    /// a `[N, C]` matrix of *log-probabilities* (see [`Var::log_softmax`]).
    ///
    /// # Panics
    ///
    /// Panics if `targets.len() != N` or any target is `>= C`.
    pub fn nll_loss(self, targets: &[usize]) -> Var<'t> {
        let value = self.with_value(|logp| {
            let (n, c) = match logp.dims() {
                [n, c] => (*n, *c),
                d => panic!("nll_loss requires rank-2 log-probabilities, got {d:?}"),
            };
            assert_eq!(
                targets.len(),
                n,
                "nll_loss: {n} rows but {} targets",
                targets.len()
            );
            let mut acc = 0.0;
            for (i, &t) in targets.iter().enumerate() {
                assert!(t < c, "target {t} out of range for {c} classes");
                acc -= logp.data()[i * c + t];
            }
            Tensor::scalar(acc / n as f32)
        });
        self.tape.push(
            value,
            Op::NllLoss {
                logp: self.id,
                targets: targets.to_vec(),
            },
        )
    }

    /// Cross-entropy of raw logits against integer `targets`
    /// (`log_softmax` followed by [`Var::nll_loss`]).
    ///
    /// # Panics
    ///
    /// Same conditions as [`Var::nll_loss`].
    pub fn cross_entropy(self, targets: &[usize]) -> Var<'t> {
        self.log_softmax().nll_loss(targets)
    }

    /// Applies a [`CustomUnary`] operation (see the trait docs for an
    /// example). The op's `backward` defines the gradient.
    pub fn custom_unary(self, op: Box<dyn CustomUnary>) -> Var<'t> {
        let value = self.with_value(|v| op.forward(v));
        self.tape.push(value, Op::Custom { x: self.id, op })
    }

    /// Matrix product whose **forward** runs the event-driven spike GEMM
    /// ([`tensor::Tensor::matmul_events`]: dense blocked kernel above the
    /// measured-density crossover, sparse event gather below it). The
    /// recorded node is an ordinary [`Var::matmul`], so the backward pass
    /// is untouched — valid because the event forward is bitwise identical
    /// to the dense product whenever `other` (the weights) is finite.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or cross-tape operands.
    pub fn matmul_events(self, other: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self
            .tape
            .with_values_of(self.id, other.id, |a, b| a.matmul_events(b));
        self.binary(other, value, Op::Matmul(self.id, other.id))
    }

    /// [`Var::matmul`] whose forward consumes a prepacked weight handle
    /// ([`tensor::PrepackedB`], packed from `other`'s tensor): zero
    /// B-packing work per call, bitwise-identical value. The recorded node
    /// is an ordinary [`Var::matmul`], so the backward pass is untouched —
    /// backward runs once per training step (not per timestep), so
    /// prepacking it is deliberately out of scope.
    ///
    /// `other` must hold the same `[K, N]` weights `pb` was packed from;
    /// the caller (the layer cache, invalidated on every weight mutation)
    /// guarantees it.
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or cross-tape operands.
    pub fn matmul_prepacked(self, other: Var<'t>, pb: &tensor::PrepackedB) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self
            .tape
            .with_values_of(self.id, other.id, |a, _| a.matmul_prepacked(pb));
        self.binary(other, value, Op::Matmul(self.id, other.id))
    }

    /// [`Var::matmul_events`] with a prepacked handle for the
    /// dense-fallback side of the density switch (the sparse gather reads
    /// raw weight rows and needs no panels). Same recorded node and same
    /// weight-consistency contract as [`Var::matmul_prepacked`].
    ///
    /// # Panics
    ///
    /// Panics on rank/shape mismatch or cross-tape operands.
    pub fn matmul_events_prepacked(self, other: Var<'t>, pb: &tensor::PrepackedB) -> Var<'t> {
        self.assert_same_tape(&other);
        let value = self
            .tape
            .with_values_of(self.id, other.id, |a, b| a.matmul_events_prepacked(b, pb));
        self.binary(other, value, Op::Matmul(self.id, other.id))
    }

    /// [`Var::conv2d`] whose forward consumes prepacked conv weights
    /// ([`tensor::PrepackedConvW`], packed from `w`'s tensor): zero
    /// weight-packing work per call, bitwise-identical value, ordinary
    /// `Op::Conv2d` node so the backward pass is untouched.
    ///
    /// # Panics
    ///
    /// Panics on any shape violation (see [`tensor::conv::conv2d`]).
    pub fn conv2d_prepacked(
        self,
        w: Var<'t>,
        pw: &tensor::PrepackedConvW,
        spec: Conv2dSpec,
    ) -> Var<'t> {
        self.assert_same_tape(&w);
        let value = self
            .tape
            .with_values_of(self.id, w.id, |x, _| tensor::conv2d_prepacked(x, pw, spec));
        self.binary(
            w,
            value,
            Op::Conv2d {
                x: self.id,
                w: w.id,
                spec,
            },
        )
    }

    /// One fused LIF membrane update: integrates `self` (the synaptic
    /// drive) into membrane `v`, thresholds (optionally against an ALIF
    /// adaptation state `adapt = (a, κ)`), and resets — all in a single
    /// kernel sweep ([`tensor::simd::lif_step`]) recording three tape
    /// nodes instead of six. Returns `(spikes, v_next)`.
    ///
    /// `surrogate.backward` supplies the spike derivative; its `forward`
    /// must be the Heaviside step `centered ≥ 0 → 1` the kernel computes
    /// (the kernel's spike lane is recorded directly, `forward` is never
    /// called). Forward values and gradients are bitwise identical to the
    /// composed-op formulation this replaces — see `tests/lif_fused.rs`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch or cross-tape operands.
    pub fn lif_step(
        self,
        v: Var<'t>,
        adapt: Option<(Var<'t>, f32)>,
        spec: tensor::simd::LifKernelSpec,
        surrogate: Box<dyn CustomUnary>,
    ) -> (Var<'t>, Var<'t>) {
        self.assert_same_tape(&v);
        if let Some((a, _)) = &adapt {
            self.assert_same_tape(a);
        }
        let out = {
            let nodes = self.tape.nodes.borrow();
            tensor::simd::lif_step(
                &nodes[self.id].value,
                &nodes[v.id].value,
                adapt.as_ref().map(|(a, k)| (&nodes[a.id].value, *k)),
                spec,
            )
        };
        let v_int = self.tape.push(
            out.v_int,
            Op::LifIntegrate {
                input: self.id,
                v: v.id,
                beta: spec.beta,
            },
        );
        let spikes = self.tape.push(
            out.spikes,
            Op::LifSpike {
                v_int: v_int.id,
                adapt: adapt.map(|(a, k)| (a.id, k)),
                centered: out.centered,
                op: surrogate,
            },
        );
        let v_next = self.tape.push(
            out.v_next,
            Op::LifReset {
                v_int: v_int.id,
                spikes: spikes.id,
                v_th: spec.v_th,
                zero_reset: spec.zero_reset,
            },
        );
        (spikes, v_next)
    }
}

impl<'t> std::ops::Add for Var<'t> {
    type Output = Var<'t>;
    fn add(self, rhs: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&rhs);
        let value = self.tape.with_values_of(self.id, rhs.id, |a, b| a.add(b));
        self.binary(rhs, value, Op::Add(self.id, rhs.id))
    }
}

impl<'t> std::ops::Sub for Var<'t> {
    type Output = Var<'t>;
    fn sub(self, rhs: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&rhs);
        let value = self.tape.with_values_of(self.id, rhs.id, |a, b| a.sub(b));
        self.binary(rhs, value, Op::Sub(self.id, rhs.id))
    }
}

impl<'t> std::ops::Mul for Var<'t> {
    type Output = Var<'t>;
    fn mul(self, rhs: Var<'t>) -> Var<'t> {
        self.assert_same_tape(&rhs);
        let value = self.tape.with_values_of(self.id, rhs.id, |a, b| a.mul(b));
        self.binary(rhs, value, Op::Mul(self.id, rhs.id))
    }
}

impl<'t> std::ops::Neg for Var<'t> {
    type Output = Var<'t>;
    fn neg(self) -> Var<'t> {
        let value = self.with_value(Tensor::neg);
        self.tape.push(value, Op::Neg(self.id))
    }
}

fn accumulate(grads: &mut [Option<Tensor>], id: usize, delta: Tensor) {
    match &mut grads[id] {
        Some(g) => g.add_scaled_inplace(&delta, 1.0),
        slot @ None => *slot = Some(delta),
    }
}

/// Propagates the gradient `g` of node `id` to its parents.
pub(crate) fn propagate(nodes: &[Node], id: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
    match &nodes[id].op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            accumulate(grads, *a, g.clone());
            accumulate(grads, *b, g.clone());
        }
        Op::Sub(a, b) => {
            accumulate(grads, *a, g.clone());
            accumulate(grads, *b, g.neg());
        }
        Op::Mul(a, b) => {
            accumulate(grads, *a, g.mul(&nodes[*b].value));
            accumulate(grads, *b, g.mul(&nodes[*a].value));
        }
        Op::Maximum(a, b) => {
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            let lhs_wins = av.zip_map(bv, |x, y| if x >= y { 1.0 } else { 0.0 });
            accumulate(grads, *a, g.mul(&lhs_wins));
            accumulate(grads, *b, g.mul(&lhs_wins.map(|m| 1.0 - m)));
        }
        Op::Neg(a) => accumulate(grads, *a, g.neg()),
        Op::MulScalar(a, s) => accumulate(grads, *a, g.mul_scalar(*s)),
        Op::AddScalar(a) => accumulate(grads, *a, g.clone()),
        Op::Matmul(a, b) => {
            // ∂A = g·Bᵀ, ∂B = Aᵀ·g — the _nt/_tn kernels pack the transposed
            // operand directly instead of materialising the transpose.
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, g.matmul_nt(bv));
            accumulate(grads, *b, av.matmul_tn(g));
        }
        Op::Conv2d { x, w, spec } => {
            let (gx, gw) = conv2d_backward(&nodes[*x].value, &nodes[*w].value, g, *spec);
            accumulate(grads, *x, gx);
            accumulate(grads, *w, gw);
        }
        Op::AvgPool { x, k } => {
            let gx = avg_pool2d_backward(g, nodes[*x].value.dims(), *k);
            accumulate(grads, *x, gx);
        }
        Op::MaxPool { x, argmax } => {
            let gx = max_pool2d_backward(g, argmax, nodes[*x].value.dims());
            accumulate(grads, *x, gx);
        }
        Op::Relu(a) => {
            let gx = nodes[*a]
                .value
                .zip_map(g, |x, gv| if x > 0.0 { gv } else { 0.0 });
            accumulate(grads, *a, gx);
        }
        Op::Exp(a) => {
            // d/dx e^x = e^x = the recorded output.
            accumulate(grads, *a, nodes[id].value.mul(g));
        }
        Op::Ln(a) => {
            let gx = nodes[*a].value.zip_map(g, |x, gv| gv / x);
            accumulate(grads, *a, gx);
        }
        Op::Sigmoid(a) => {
            // d/dx σ = σ·(1−σ), with σ the recorded output.
            let gx = nodes[id].value.zip_map(g, |s, gv| gv * s * (1.0 - s));
            accumulate(grads, *a, gx);
        }
        Op::Tanh(a) => {
            let gx = nodes[id].value.zip_map(g, |t, gv| gv * (1.0 - t * t));
            accumulate(grads, *a, gx);
        }
        Op::Div(a, b) => {
            let (av, bv) = (&nodes[*a].value, &nodes[*b].value);
            accumulate(grads, *a, g.div(bv));
            let gb = g
                .zip_map(av, |gv, x| gv * x)
                .zip_map(bv, |n, d| -n / (d * d));
            accumulate(grads, *b, gb);
        }
        Op::AddBias { x, b } => {
            accumulate(grads, *x, g.clone());
            accumulate(grads, *b, g.reduce_to_bias());
        }
        Op::Reshape(a) => {
            accumulate(grads, *a, g.reshape(nodes[*a].value.dims()));
        }
        Op::SliceChannels { x, start, end } => {
            let dims = nodes[*x].value.dims();
            let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
            let plane = h * w;
            let out_c = end - start;
            let mut gx = Tensor::zeros(dims);
            for s in 0..n {
                let dst = &mut gx.data_mut()[(s * c + start) * plane..(s * c + end) * plane];
                dst.copy_from_slice(&g.data()[s * out_c * plane..(s + 1) * out_c * plane]);
            }
            accumulate(grads, *x, gx);
        }
        Op::Sum(a) => {
            let dims = nodes[*a].value.dims().to_vec();
            accumulate(grads, *a, Tensor::full(&dims, g.item()));
        }
        Op::Mean(a) => {
            let dims = nodes[*a].value.dims().to_vec();
            let n = nodes[*a].value.len() as f32;
            accumulate(grads, *a, Tensor::full(&dims, g.item() / n));
        }
        Op::LogSoftmax(a) => {
            // out = logp; p = exp(logp); gx = g − p · rowsum(g)
            let logp = &nodes[id].value;
            let c = logp.dims()[1];
            let mut gx = g.clone();
            let p = logp.exp();
            for (row_g, row_p) in gx.data_mut().chunks_mut(c).zip(p.data().chunks(c)) {
                let s: f32 = row_g.iter().sum();
                for (gv, &pv) in row_g.iter_mut().zip(row_p) {
                    *gv -= pv * s;
                }
            }
            accumulate(grads, *a, gx);
        }
        Op::NllLoss { logp, targets } => {
            let dims = nodes[*logp].value.dims().to_vec();
            let (n, c) = (dims[0], dims[1]);
            let mut gx = Tensor::zeros(&dims);
            let scale = -g.item() / n as f32;
            for (i, &t) in targets.iter().enumerate() {
                gx.data_mut()[i * c + t] = scale;
            }
            accumulate(grads, *logp, gx);
        }
        Op::Custom { x, op } => {
            let gx = op.backward(&nodes[*x].value, g);
            assert_eq!(
                gx.dims(),
                nodes[*x].value.dims(),
                "custom op {op:?} returned gradient of wrong shape"
            );
            accumulate(grads, *x, gx);
        }
        // The three fused-LIF arms replicate the exact accumulation values
        // AND order of the composed-op formulation they replaced, so
        // gradients are bitwise unchanged (proven in `tests/lif_fused.rs`).
        Op::LifIntegrate { input, v, beta } => {
            // v_int = v·β + I: the add fans g out unchanged, the
            // mul_scalar scales the membrane branch after g is fully
            // accumulated — same as the old Add→MulScalar chain.
            accumulate(grads, *input, g.clone());
            accumulate(grads, *v, g.mul_scalar(*beta));
        }
        Op::LifSpike {
            v_int,
            adapt,
            centered,
            op,
        } => {
            let gc = op.backward(centered, g);
            assert_eq!(
                gc.dims(),
                centered.dims(),
                "surrogate {op:?} returned gradient of wrong shape"
            );
            // centered = (v_int − a·κ) + (−V_th): the add_scalar passes gc
            // through; the subtraction sends gc to v_int and −gc·κ to the
            // adaptation state (old Sub→MulScalar chain order).
            if let Some((a, kappa)) = adapt {
                accumulate(grads, *v_int, gc.clone());
                accumulate(grads, *a, gc.neg().mul_scalar(*kappa));
            } else {
                accumulate(grads, *v_int, gc);
            }
        }
        Op::LifReset {
            v_int,
            spikes,
            v_th,
            zero_reset,
        } => {
            if *zero_reset {
                // v_next = v_int − v_int·spikes: old Sub then Mul order —
                // g to v_int, then −g routed through the product to both
                // factors.
                accumulate(grads, *v_int, g.clone());
                let gn = g.neg();
                accumulate(grads, *v_int, gn.mul(&nodes[*spikes].value));
                accumulate(grads, *spikes, gn.mul(&nodes[*v_int].value));
            } else {
                // v_next = v_int − spikes·V_th: old Sub then MulScalar.
                accumulate(grads, *v_int, g.clone());
                accumulate(grads, *spikes, g.neg().mul_scalar(*v_th));
            }
        }
    }
}
