//! The recording tape and its variable handles.

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use tensor::Tensor;

use crate::grads::Grads;
use crate::ops::Op;

static NEXT_TAPE_ID: AtomicU64 = AtomicU64::new(0);

pub(crate) struct Node {
    pub(crate) value: Tensor,
    pub(crate) op: Op,
}

/// A recording of a differentiable computation.
///
/// Every forward pass builds a fresh `Tape`; the tape owns the value of each
/// intermediate result and enough operation metadata to replay the
/// computation backwards. Tapes are intentionally cheap to create and drop —
/// the training loops in [`nn`](../nn/index.html) and
/// [`snn`](../snn/index.html) allocate one per batch.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use tensor::Tensor;
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::scalar(3.0));
/// let y = (x * x).sum(); // y = x², dy/dx = 2x = 6
/// let grads = tape.backward(y);
/// assert_eq!(grads.wrt(x).unwrap().item(), 6.0);
/// ```
pub struct Tape {
    pub(crate) nodes: RefCell<Vec<Node>>,
    id: u64,
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self {
            nodes: RefCell::new(Vec::new()),
            id: NEXT_TAPE_ID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Records `value` as an independent variable (a gradient sink).
    ///
    /// Leaves are the only nodes whose gradient callers usually read:
    /// network parameters and — for adversarial attacks — the input image.
    pub fn leaf(&self, value: Tensor) -> Var<'_> {
        self.push(value, Op::Leaf)
    }

    /// Number of recorded nodes (useful for memory diagnostics in BPTT).
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    pub(crate) fn push(&self, value: Tensor, op: Op) -> Var<'_> {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var {
            tape: self,
            id: nodes.len() - 1,
        }
    }

    pub(crate) fn value_of(&self, id: usize) -> Tensor {
        self.nodes.borrow()[id].value.clone()
    }

    pub(crate) fn with_value_of<R>(&self, id: usize, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[id].value)
    }

    pub(crate) fn with_values_of<R>(
        &self,
        a: usize,
        b: usize,
        f: impl FnOnce(&Tensor, &Tensor) -> R,
    ) -> R {
        let nodes = self.nodes.borrow();
        f(&nodes[a].value, &nodes[b].value)
    }

    /// Summarises the recording: node count, total stored elements (a proxy
    /// for memory) and per-op counts — the tool for diagnosing BPTT memory
    /// growth with long time windows.
    pub fn stats(&self) -> TapeStats {
        let nodes = self.nodes.borrow();
        let mut by_op: Vec<(&'static str, usize)> = Vec::new();
        let mut elements = 0usize;
        for node in nodes.iter() {
            elements += node.value.len();
            let name = node.op.name();
            match by_op.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => by_op.push((name, 1)),
            }
        }
        TapeStats {
            nodes: nodes.len(),
            value_elements: elements,
            by_op,
        }
    }

    /// Runs reverse-mode differentiation from the scalar `loss` and returns
    /// the gradient of `loss` with respect to every recorded variable.
    ///
    /// # Panics
    ///
    /// Panics if `loss` lives on a different tape or is not a one-element
    /// tensor.
    pub fn backward(&self, loss: Var<'_>) -> Grads {
        assert_eq!(
            loss.tape.id, self.id,
            "backward called with a variable from a different tape"
        );
        let nodes = self.nodes.borrow();
        assert_eq!(
            nodes[loss.id].value.len(),
            1,
            "backward requires a scalar loss, got shape {}",
            nodes[loss.id].value.shape()
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; nodes.len()];
        grads[loss.id] = Some(Tensor::ones(
            nodes[loss.id].value.dims().to_vec().as_slice(),
        ));
        for id in (0..=loss.id).rev() {
            let Some(g) = grads[id].take() else { continue };
            crate::ops::propagate(&nodes, id, &g, &mut grads);
            grads[id] = Some(g);
        }
        Grads::new(grads)
    }
}

impl fmt::Debug for Tape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tape")
            .field("id", &self.id)
            .field("nodes", &self.len())
            .finish()
    }
}

/// A summary of a tape's contents, from [`Tape::stats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapeStats {
    /// Number of recorded nodes.
    pub nodes: usize,
    /// Total `f32` elements stored in node values (4 bytes each).
    pub value_elements: usize,
    /// Node counts per operation kind, in first-seen order.
    pub by_op: Vec<(&'static str, usize)>,
}

impl TapeStats {
    /// The count of nodes with the given op name.
    pub fn count_of(&self, op: &str) -> usize {
        self.by_op
            .iter()
            .find(|(n, _)| *n == op)
            .map_or(0, |&(_, c)| c)
    }
}

/// A handle to one value recorded on a [`Tape`].
///
/// `Var` is `Copy`; arithmetic on vars records new nodes on the owning tape.
/// See the [crate-level example](crate) for typical usage.
#[derive(Clone, Copy)]
pub struct Var<'t> {
    pub(crate) tape: &'t Tape,
    pub(crate) id: usize,
}

impl<'t> Var<'t> {
    /// The tape this variable lives on.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// A clone of the recorded value.
    ///
    /// Copies the whole tensor; when a borrow suffices (summing, recording
    /// statistics, shape checks) prefer [`Var::with_value`], which is what
    /// keeps the SNN timestep loop free of per-step clones.
    pub fn value(&self) -> Tensor {
        self.tape.value_of(self.id)
    }

    /// Runs `f` on a borrow of the recorded value, without cloning it.
    ///
    /// `f` must not record new nodes on the same tape (the tape is borrowed
    /// for the duration of the call); compute derived scalars or copies
    /// inside and tape afterwards.
    ///
    /// # Example
    ///
    /// ```
    /// use ad::Tape;
    /// use tensor::Tensor;
    ///
    /// let tape = Tape::new();
    /// let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
    /// assert_eq!(x.with_value(|v| v.sum()), 3.0);
    /// ```
    pub fn with_value<R>(&self, f: impl FnOnce(&Tensor) -> R) -> R {
        self.tape.with_value_of(self.id, f)
    }

    /// The dimensions of the recorded value.
    pub fn dims(&self) -> Vec<usize> {
        self.tape.nodes.borrow()[self.id].value.dims().to_vec()
    }

    /// Position of this variable on the tape; [`Grads`] is indexed by it.
    pub fn id(&self) -> usize {
        self.id
    }

    pub(crate) fn assert_same_tape(&self, other: &Var<'_>) {
        assert_eq!(
            self.tape.id, other.tape.id,
            "variables belong to different tapes"
        );
    }
}

impl fmt::Debug for Var<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Var")
            .field("id", &self.id)
            .field("shape", &self.tape.nodes.borrow()[self.id].value.shape())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_round_trips_value() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[2]));
        assert_eq!(x.value().data(), &[1.0, 2.0]);
        assert_eq!(x.dims(), vec![2]);
        assert_eq!(tape.len(), 1);
    }

    #[test]
    fn stats_count_ops_and_elements() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[4]));
        let y = tape.leaf(Tensor::zeros(&[4]));
        let _ = (x + y).sum();
        let stats = tape.stats();
        assert_eq!(stats.nodes, 4);
        assert_eq!(stats.count_of("leaf"), 2);
        assert_eq!(stats.count_of("add"), 1);
        assert_eq!(stats.count_of("sum"), 1);
        assert_eq!(stats.count_of("matmul"), 0);
        assert_eq!(stats.value_elements, 4 + 4 + 4 + 1);
    }

    #[test]
    fn backward_of_leaf_is_ones() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::scalar(5.0));
        let grads = tape.backward(x);
        assert_eq!(grads.wrt(x).unwrap().item(), 1.0);
    }

    #[test]
    #[should_panic(expected = "scalar loss")]
    fn backward_rejects_non_scalar() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::zeros(&[2]));
        tape.backward(x);
    }

    #[test]
    #[should_panic(expected = "different tape")]
    fn cross_tape_mixing_is_rejected() {
        let t1 = Tape::new();
        let t2 = Tape::new();
        let a = t1.leaf(Tensor::scalar(1.0));
        let b = t2.leaf(Tensor::scalar(1.0));
        let _ = a + b;
    }
}
