//! The result of a backward pass.

use tensor::Tensor;

use crate::tape::Var;

/// Gradients of a scalar loss with respect to every node of a
/// [`Tape`](crate::Tape), produced by [`Tape::backward`](crate::Tape::backward).
///
/// Nodes that the loss does not depend on have no gradient; [`Grads::wrt`]
/// returns `None` for them.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use tensor::Tensor;
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::scalar(2.0));
/// let unused = tape.leaf(Tensor::scalar(9.0));
/// let loss = (x * x).sum();
/// let grads = tape.backward(loss);
/// assert_eq!(grads.wrt(x).unwrap().item(), 4.0);
/// assert!(grads.wrt(unused).is_none());
/// ```
#[derive(Debug)]
pub struct Grads {
    inner: Vec<Option<Tensor>>,
}

impl Grads {
    pub(crate) fn new(inner: Vec<Option<Tensor>>) -> Self {
        Self { inner }
    }

    /// The gradient with respect to `var`, if the loss depends on it.
    pub fn wrt(&self, var: Var<'_>) -> Option<&Tensor> {
        self.inner.get(var.id()).and_then(|g| g.as_ref())
    }

    /// Like [`Grads::wrt`] but returns a zero tensor of shape `dims` when the
    /// loss does not depend on `var` — convenient for optimizers that treat
    /// "no gradient" as "zero gradient".
    pub fn wrt_or_zero(&self, var: Var<'_>, dims: &[usize]) -> Tensor {
        self.wrt(var)
            .cloned()
            .unwrap_or_else(|| Tensor::zeros(dims))
    }

    /// Number of tape nodes covered by this gradient record.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// `true` if the tape was empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}
