//! Reverse-mode automatic differentiation for the `spiking-armor` workspace.
//!
//! A [`Tape`] records every operation performed on its [`Var`] handles. After
//! building a scalar loss, [`Tape::backward`] walks the recording in reverse
//! and returns the gradient of the loss with respect to every variable —
//! network weights for training, and the *input image* for white-box
//! adversarial attacks (the key requirement of the reproduced paper's threat
//! model).
//!
//! Spiking networks need one op that ordinary autodiff cannot express: the
//! Heaviside spike with a *surrogate* derivative. The [`CustomUnary`] trait
//! lets the `snn` crate register exactly that without this crate knowing
//! anything about neurons.
//!
//! # Example
//!
//! ```
//! use ad::Tape;
//! use tensor::Tensor;
//!
//! let tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2]));
//! let w = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], &[2, 1]));
//! let y = x.matmul(w).sum(); // y = 1·3 + 2·4 = 11
//! let grads = tape.backward(y);
//! assert_eq!(grads.wrt(x).unwrap().data(), &[3.0, 4.0]);
//! assert_eq!(grads.wrt(w).unwrap().data(), &[1.0, 2.0]);
//! ```

#![forbid(unsafe_code)]

mod grads;
mod ops;
mod tape;

pub mod gradcheck;

pub use grads::Grads;
pub use ops::CustomUnary;
pub use tape::{Tape, TapeStats, Var};
