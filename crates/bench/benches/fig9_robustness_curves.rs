//! Figure 9 bench: regenerates the selected-combination robustness curves
//! against the CNN baseline and times the full per-combination sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_scale, data_for, write_artefact};
use explore::curves::{CurveSet, RobustnessCurve};
use explore::{algorithm, grid, pipeline, presets, GridSpec};

fn fig9(c: &mut Criterion) {
    let (config, epsilons) = presets::fig9();
    let config = bench_scale(config);
    let data = data_for(&config);

    // Setup: locate sweet/worst combinations on a coarse grid, sweep them
    // and the CNN across the full ε axis, and emit the figure's series.
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 8, 16]);
    let coarse = grid::run_grid(&config, &data, &spec, &presets::heatmap_epsilons(), 2);
    let mut set = CurveSet::new();
    let mut picks = Vec::new();
    if let Some(sweet) = coarse.sweet_spot() {
        picks.push(("sweet spot", sweet.structural));
    }
    if let Some(worst) = coarse.worst_learnable() {
        if picks.iter().all(|(_, sp)| *sp != worst.structural) {
            picks.push(("worst learnable", worst.structural));
        }
    }
    for (tag, sp) in &picks {
        let trained = pipeline::train_snn(&config, &data, *sp);
        let sweep = algorithm::sweep_attack(&config, &data, &trained.classifier, &epsilons);
        set.push(RobustnessCurve::new(format!("SNN {sp} ({tag})"), sweep));
    }
    let cnn = pipeline::train_cnn(&config, &data);
    let cnn_sweep = algorithm::sweep_attack(&config, &data, &cnn.classifier, &epsilons);
    set.push(RobustnessCurve::new("CNN baseline", cnn_sweep));
    println!(
        "\n[fig9] robustness curves (pixel-scale eps):\n{}",
        set.render_table()
    );
    write_artefact("fig9_robustness_curves.csv", &set.to_csv());

    // Timing: the full Algorithm-1 exploration of one combination (train +
    // ε sweep), the unit of work Fig. 9 repeats per selected curve.
    let sp = picks
        .first()
        .map(|(_, sp)| *sp)
        .unwrap_or_else(|| snn::StructuralParams::new(1.0, 8));
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.bench_function("explore_one_combination", |b| {
        b.iter(|| algorithm::explore_one(&config, &data, sp, &epsilons))
    });
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
