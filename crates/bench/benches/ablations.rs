//! Ablation benches for the design choices called out in `DESIGN.md` §5:
//! surrogate slope α, reset semantics, input encoder and output decoder.
//!
//! Each ablation (a) regenerates a small accuracy/robustness comparison
//! table once during setup, and (b) times the training/inference cost of
//! each variant so the performance impact of the choice is measured, not
//! guessed.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_scale, data_for, write_artefact};
use explore::{algorithm, pipeline, presets};
use snn::{Decoder, Encoder, NeuronModel, ResetMode, StructuralParams, SurrogateShape};

fn ablation_config() -> explore::ExperimentConfig {
    bench_scale(presets::quick())
}

const ABLATION_POINT: f32 = 1.0;
const ABLATION_WINDOW: usize = 6;

fn summarize(
    tag: &str,
    config: &explore::ExperimentConfig,
    data: &explore::pipeline::SplitData,
) -> String {
    let sp = StructuralParams::new(ABLATION_POINT, ABLATION_WINDOW);
    let eps = presets::paper_eps_to_pixel(1.0);
    let outcome = algorithm::explore_one(config, data, sp, &[eps]);
    format!(
        "{tag},{:.3},{:.3}\n",
        outcome.clean_accuracy,
        outcome.final_robustness().unwrap_or(f32::NAN)
    )
}

fn ablations(c: &mut Criterion) {
    let base = ablation_config();
    let data = data_for(&base);
    let sp = StructuralParams::new(ABLATION_POINT, ABLATION_WINDOW);

    // --- Surrogate slope α -------------------------------------------------
    let mut table = String::from("variant,clean_accuracy,robustness_eps1\n");
    let mut group = c.benchmark_group("ablation_alpha");
    group.sample_size(10);
    for alpha in [10.0f32, 40.0, 100.0] {
        let mut cfg = base.clone();
        cfg.alpha = alpha;
        table.push_str(&summarize(&format!("alpha={alpha}"), &cfg, &data));
        group.bench_function(format!("train_alpha_{alpha}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    // --- Reset semantics ---------------------------------------------------
    let mut group = c.benchmark_group("ablation_reset");
    group.sample_size(10);
    for (name, reset) in [("subtract", ResetMode::Subtract), ("zero", ResetMode::Zero)] {
        let mut cfg = base.clone();
        cfg.reset = reset;
        table.push_str(&summarize(&format!("reset={name}"), &cfg, &data));
        group.bench_function(format!("train_reset_{name}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    // --- Input encoder -----------------------------------------------------
    let mut group = c.benchmark_group("ablation_encoder");
    group.sample_size(10);
    for (name, encoder) in [
        ("constant_current", Encoder::constant_current()),
        ("poisson", Encoder::poisson(5)),
    ] {
        let mut cfg = base.clone();
        cfg.encoder = encoder;
        table.push_str(&summarize(&format!("encoder={name}"), &cfg, &data));
        group.bench_function(format!("train_encoder_{name}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    // --- Output decoder ----------------------------------------------------
    let mut group = c.benchmark_group("ablation_decoder");
    group.sample_size(10);
    for (name, decoder) in [
        ("max_membrane", Decoder::MaxMembrane),
        ("mean_membrane", Decoder::MeanMembrane),
        ("spike_count", Decoder::SpikeCount),
    ] {
        let mut cfg = base.clone();
        cfg.decoder = decoder;
        table.push_str(&summarize(&format!("decoder={name}"), &cfg, &data));
        group.bench_function(format!("train_decoder_{name}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    // --- Surrogate derivative shape ------------------------------------
    let mut group = c.benchmark_group("ablation_surrogate");
    group.sample_size(10);
    for (name, shape) in [
        ("fast_sigmoid", SurrogateShape::FastSigmoid),
        ("atan", SurrogateShape::Atan),
        ("triangle", SurrogateShape::Triangle),
        ("rectangular", SurrogateShape::Rectangular),
    ] {
        let mut cfg = base.clone();
        cfg.surrogate = shape;
        table.push_str(&summarize(&format!("surrogate={name}"), &cfg, &data));
        group.bench_function(format!("train_surrogate_{name}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    // --- Neuron model ---------------------------------------------------
    let mut group = c.benchmark_group("ablation_neuron");
    group.sample_size(10);
    for (name, neuron) in [
        ("lif", NeuronModel::Lif),
        ("synaptic", NeuronModel::SynapticLif { gamma: 0.7 }),
        (
            "adaptive",
            NeuronModel::AdaptiveLif {
                rho: 0.9,
                kappa: 0.2,
            },
        ),
    ] {
        let mut cfg = base.clone();
        cfg.neuron = neuron;
        table.push_str(&summarize(&format!("neuron={name}"), &cfg, &data));
        group.bench_function(format!("train_neuron_{name}"), |b| {
            b.iter(|| pipeline::train_snn(&cfg, &data, sp))
        });
    }
    group.finish();

    println!("\n[ablations] variant,clean,robustness@eps1\n{table}");
    write_artefact("ablations.csv", &table);
}

criterion_group!(benches, ablations);
criterion_main!(benches);
