//! Microbenchmarks of the substrate layers: tensor kernels (naive vs
//! blocked GEMM, conv forward/backward), autodiff tape overhead, LIF
//! stepping, encoders and PGD iterations.
//!
//! Unlike the figure benches this target uses its own harness so it can
//! emit a machine-readable record of every measurement:
//!
//! * `cargo bench --bench micro` — full budgets; writes
//!   `BENCH_tensor.json` (op, shape, ns/iter, threads) to the workspace
//!   root, the committed before/after baseline for kernel work.
//! * `cargo bench --bench micro -- --smoke` — second-scale budgets and
//!   reduced shapes for CI; prints measurements but does not overwrite
//!   the committed baseline.
//!
//! Both modes end with two guards that **fail** the bench (non-zero exit):
//!
//! * allocation guard — every `*_into` kernel entry point (`matmul_into`,
//!   `conv2d_into`, `conv2d_backward_into`) is run against a warm
//!   [`Workspace`]; the workspace allocation counter must not move —
//!   steady-state hot loops must not allocate.
//! * obs guard — with metrics recording disabled, `obs::counter_add` /
//!   `obs::observe` must cost near-zero (one relaxed atomic load) and
//!   must leave the registry empty, so instrumented kernels run at full
//!   speed when `--metrics` is off.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use ad::Tape;
use attacks::Attack;
use nn::{AdversarialTarget, Classifier, Cnn, CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{Encoder, LifCell, LifParams};
use tensor::conv::{conv2d, conv2d_backward_into, conv2d_into, Conv2dSpec};
use tensor::workspace::{alloc_count, Workspace};
use tensor::Tensor;

/// One measurement destined for `BENCH_tensor.json`.
struct Record {
    op: &'static str,
    shape: String,
    ns_per_iter: f64,
    threads: usize,
}

struct Runner {
    smoke: bool,
    records: Vec<Record>,
}

impl Runner {
    fn budgets(&self) -> (Duration, Duration) {
        if self.smoke {
            (Duration::from_millis(20), Duration::from_millis(80))
        } else {
            (Duration::from_millis(300), Duration::from_millis(1500))
        }
    }

    /// Times `f` (warm-up then fixed measuring budget) and records the
    /// mean iteration time under `op`/`shape`/`threads`.
    fn bench<O, F: FnMut() -> O>(
        &mut self,
        op: &'static str,
        shape: &str,
        threads: usize,
        mut f: F,
    ) {
        tensor::parallel::set_max_threads(threads);
        let (warmup, measure) = self.budgets();
        let start = Instant::now();
        while start.elapsed() < warmup {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= measure {
                break;
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "  {op} [{shape}] x{threads}: {} ({iters} iters)",
            fmt_ns(ns)
        );
        self.records.push(Record {
            op,
            shape: shape.to_string(),
            ns_per_iter: ns,
            threads,
        });
        tensor::parallel::set_max_threads(1);
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"bench_tensor/v1\",\n");
        let _ = writeln!(
            out,
            "  \"mode\": \"{}\",",
            if self.smoke { "smoke" } else { "full" }
        );
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"op\": \"{}\", \"shape\": \"{}\", \"ns_per_iter\": {:.1}, \"threads\": {}}}{comma}",
                r.op, r.shape, r.ns_per_iter, r.threads
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn tensor_kernels(r: &mut Runner) {
    println!("\ngroup: tensor");
    let mut rng = StdRng::seed_from_u64(0);
    // The headline before/after pair: the naive triple loop the blocked
    // kernel replaced, on the acceptance shape (shrunk under --smoke).
    let side = if r.smoke { 96 } else { 256 };
    let shape = format!("{side}x{side}x{side}");
    let a = tensor::init::uniform(&mut rng, &[side, side], -1.0, 1.0);
    let b = tensor::init::uniform(&mut rng, &[side, side], -1.0, 1.0);
    r.bench("matmul_naive", &shape, 1, || a.matmul_naive(&b));
    r.bench("matmul_blocked", &shape, 1, || a.matmul(&b));
    // Row-sharded GEMM: honest numbers for whatever core count this
    // machine has (on one core this measures sharding overhead, not
    // speedup; determinism is asserted by the test suite either way).
    r.bench("matmul_blocked", &shape, 2, || a.matmul(&b));
    let a64 = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    let b64 = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    r.bench("matmul_blocked", "64x64x64", 1, || a64.matmul(&b64));

    let x = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[8, 8, 3, 3], -1.0, 1.0);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    r.bench("conv2d", "4x8x16x16_k3", 1, || conv2d(&x, &w, spec));
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    r.bench("conv2d_into", "4x8x16x16_k3", 1, || {
        conv2d_into(&mut out, &x, &w, spec, &mut ws);
    });
    let g = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let mut gx = Tensor::zeros(&[1]);
    let mut gw = Tensor::zeros(&[1]);
    r.bench("conv2d_backward_into", "4x8x16x16_k3", 1, || {
        conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    });

    let u = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
    let v = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
    r.bench("elementwise_add", "16384", 1, || u.add(&v));
}

fn autodiff_overhead(r: &mut Runner) {
    println!("\ngroup: autodiff");
    let mut rng = StdRng::seed_from_u64(1);
    let w1 = tensor::init::uniform(&mut rng, &[144, 64], -0.1, 0.1);
    let w2 = tensor::init::uniform(&mut rng, &[64, 10], -0.1, 0.1);
    let x = tensor::init::uniform(&mut rng, &[32, 144], 0.0, 1.0);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    r.bench("tape_mlp_forward_backward", "32x144x64x10", 1, || {
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let w1v = tape.leaf(w1.clone());
        let w2v = tape.leaf(w2.clone());
        let loss = xv.matmul(w1v).relu().matmul(w2v).cross_entropy(&labels);
        tape.backward(loss)
    });
}

fn lif_dynamics(r: &mut Runner) {
    println!("\ngroup: lif");
    let cell = LifCell::new(LifParams::new(1.0));
    let mut rng = StdRng::seed_from_u64(2);
    let input = tensor::init::uniform(&mut rng, &[32, 256], 0.0, 1.0);
    r.bench("lif_step_x16", "32x256", 1, || {
        let tape = Tape::new();
        let i = tape.leaf(input.clone());
        let mut v = tape.leaf(Tensor::zeros(&[32, 256]));
        let mut acc = None;
        for _ in 0..16 {
            let (s, vn) = cell.step(i, v);
            v = vn;
            acc = Some(match acc {
                None => s,
                Some(a) => a + s,
            });
        }
        acc.map(|a| a.value())
    });
    let enc = Encoder::poisson(7);
    let px = tensor::init::uniform(&mut rng, &[784], 0.0, 1.0);
    r.bench("encoder_poisson_x16", "784", 1, || {
        let tape = Tape::new();
        let xv = tape.leaf(px.clone());
        (0..16)
            .map(|t| enc.encode_step(xv, t).value().sum())
            .sum::<f32>()
    });
}

fn attack_iterations(r: &mut Runner) {
    println!("\ngroup: attacks");
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(12, 10));
    let clf = Classifier::new(cnn, params);
    let x = tensor::init::uniform(&mut rng, &[8, 1, 12, 12], 0.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    r.bench("input_grad", "batch8_12x12", 1, || {
        clf.loss_and_input_grad(&x, &labels)
    });
    let pgd = attacks::Pgd::standard(0.3);
    r.bench("pgd10", "batch8_12x12", 1, || {
        pgd.perturb(&clf, &x, &labels)
    });
}

/// Fails the bench if any `*_into` kernel entry point allocates from a
/// warm workspace: steady-state hot loops must be allocation-free.
fn alloc_guard() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(9);
    let a = tensor::init::uniform(&mut rng, &[48, 32], -1.0, 1.0);
    let b = tensor::init::uniform(&mut rng, &[32, 40], -1.0, 1.0);
    let x = tensor::init::uniform(&mut rng, &[2, 3, 10, 10], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[4, 3, 3, 3], -1.0, 1.0);
    let g = tensor::init::uniform(&mut rng, &[2, 4, 10, 10], -1.0, 1.0);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let mut ws = Workspace::new();
    let mut mm = Tensor::zeros(&[1]);
    let mut out = Tensor::zeros(&[1]);
    let mut gx = Tensor::zeros(&[1]);
    let mut gw = Tensor::zeros(&[1]);
    // Warm-up pass grows every buffer once.
    a.matmul_into(&b, &mut mm, &mut ws);
    conv2d_into(&mut out, &x, &w, spec, &mut ws);
    conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    let baseline = alloc_count();
    for _ in 0..5 {
        a.matmul_into(&b, &mut mm, &mut ws);
        conv2d_into(&mut out, &x, &w, spec, &mut ws);
        conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    }
    let after = alloc_count();
    if after != baseline {
        return Err(format!(
            "*_into kernels allocated from a warm workspace: \
             counter moved {baseline} -> {after}"
        ));
    }
    println!("\nalloc guard: ok (warm *_into kernels made 0 workspace allocations)");
    Ok(())
}

/// Fails the bench if *disabled* metrics recording does measurable work:
/// the contract is one relaxed atomic load per call site, so a build that
/// never passes `--metrics` must not pay for the instrumentation.
fn obs_guard() -> Result<(), String> {
    obs::disable();
    // Nothing may reach the registry while disabled.
    obs::counter_add("bench/guard", 1);
    obs::observe("bench/guard_h", 0.5, obs::RATE_BOUNDS);
    if !obs::snapshot().is_empty() {
        return Err("disabled obs recording still reached the registry".into());
    }
    // Budget: generous even for a cold branch predictor — a stray lock,
    // allocation, or thread-local registration shows up as microseconds.
    const ITERS: u64 = 2_000_000;
    const MAX_NS_PER_OP: f64 = 250.0;
    let start = Instant::now();
    for i in 0..ITERS {
        obs::counter_add("bench/guard", black_box(i));
        obs::observe("bench/guard_h", black_box(0.5), obs::RATE_BOUNDS);
    }
    let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    if ns > MAX_NS_PER_OP {
        return Err(format!(
            "disabled obs recording costs {ns:.1} ns per counter+observe pair \
             (budget {MAX_NS_PER_OP} ns): the disabled path must stay near-zero"
        ));
    }
    println!("obs guard: ok (disabled recording: {ns:.2} ns per counter+observe pair)");
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut runner = Runner {
        smoke,
        records: Vec::new(),
    };
    tensor_kernels(&mut runner);
    autodiff_overhead(&mut runner);
    lif_dynamics(&mut runner);
    attack_iterations(&mut runner);

    if let Err(msg) = alloc_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = obs_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }

    if smoke {
        println!("smoke mode: leaving committed BENCH_tensor.json untouched");
    } else {
        // cargo runs benches with the package directory as CWD; anchor the
        // baseline at the workspace root instead.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_tensor.json");
        std::fs::write(&path, runner.to_json()).expect("write BENCH_tensor.json");
        println!(
            "wrote {} ({} records)",
            path.display(),
            runner.records.len()
        );
    }
}
