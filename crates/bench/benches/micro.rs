//! Microbenchmarks of the substrate layers: tensor kernels, autodiff tape
//! overhead, LIF stepping, encoders and PGD iterations.

use criterion::{criterion_group, criterion_main, Criterion};

use ad::Tape;
use attacks::Attack;
use nn::{AdversarialTarget, Classifier, Cnn, CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{Encoder, LifCell, LifParams};
use tensor::conv::{conv2d, Conv2dSpec};
use tensor::Tensor;

fn tensor_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(0);
    let a = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    let b = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    let x = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[8, 8, 3, 3], -1.0, 1.0);
    let mut group = c.benchmark_group("tensor");
    group.bench_function("matmul_64x64", |bch| bch.iter(|| a.matmul(&b)));
    group.bench_function("conv2d_4x8x16x16_k3", |bch| {
        bch.iter(|| {
            conv2d(
                &x,
                &w,
                Conv2dSpec {
                    stride: 1,
                    padding: 1,
                },
            )
        })
    });
    group.bench_function("elementwise_add_16k", |bch| {
        let u = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
        let v = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
        bch.iter(|| u.add(&v))
    });
    group.finish();
}

fn autodiff_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("autodiff");
    group.bench_function("tape_mlp_forward_backward", |bch| {
        let mut rng = StdRng::seed_from_u64(1);
        let w1 = tensor::init::uniform(&mut rng, &[144, 64], -0.1, 0.1);
        let w2 = tensor::init::uniform(&mut rng, &[64, 10], -0.1, 0.1);
        let x = tensor::init::uniform(&mut rng, &[32, 144], 0.0, 1.0);
        let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
        bch.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            let w1v = tape.leaf(w1.clone());
            let w2v = tape.leaf(w2.clone());
            let loss = xv.matmul(w1v).relu().matmul(w2v).cross_entropy(&labels);
            tape.backward(loss)
        })
    });
    group.finish();
}

fn lif_dynamics(c: &mut Criterion) {
    let mut group = c.benchmark_group("lif");
    let cell = LifCell::new(LifParams::new(1.0));
    let mut rng = StdRng::seed_from_u64(2);
    let input = tensor::init::uniform(&mut rng, &[32, 256], 0.0, 1.0);
    group.bench_function("step_32x256_x16", |bch| {
        bch.iter(|| {
            let tape = Tape::new();
            let i = tape.leaf(input.clone());
            let mut v = tape.leaf(Tensor::zeros(&[32, 256]));
            let mut acc = None;
            for _ in 0..16 {
                let (s, vn) = cell.step(i, v);
                v = vn;
                acc = Some(match acc {
                    None => s,
                    Some(a) => a + s,
                });
            }
            acc.map(|a| a.value())
        })
    });
    group.bench_function("encoder_poisson_784_x16", |bch| {
        let enc = Encoder::poisson(7);
        let x = tensor::init::uniform(&mut rng, &[784], 0.0, 1.0);
        bch.iter(|| {
            let tape = Tape::new();
            let xv = tape.leaf(x.clone());
            (0..16)
                .map(|t| enc.encode_step(xv, t).value().sum())
                .sum::<f32>()
        })
    });
    group.finish();
}

fn attack_iterations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(12, 10));
    let clf = Classifier::new(cnn, params);
    let x = tensor::init::uniform(&mut rng, &[8, 1, 12, 12], 0.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let mut group = c.benchmark_group("attacks");
    group.bench_function("input_grad_batch8", |bch| {
        bch.iter(|| clf.loss_and_input_grad(&x, &labels))
    });
    group.bench_function("pgd10_batch8", |bch| {
        let pgd = attacks::Pgd::standard(0.3);
        bch.iter(|| pgd.perturb(&clf, &x, &labels))
    });
    group.finish();
}

criterion_group!(
    benches,
    tensor_kernels,
    autodiff_overhead,
    lif_dynamics,
    attack_iterations
);
criterion_main!(benches);
