//! Microbenchmarks of the substrate layers: tensor kernels (naive vs
//! blocked GEMM, conv forward/backward), autodiff tape overhead, LIF
//! stepping, encoders and PGD iterations.
//!
//! Unlike the figure benches this target uses its own harness so it can
//! emit a machine-readable record of every measurement:
//!
//! * `cargo bench --bench micro` — full budgets; writes
//!   `BENCH_tensor.json` (op, shape, ns/iter, threads) to the workspace
//!   root, the committed before/after baseline for kernel work.
//! * `cargo bench --bench micro -- --smoke` — second-scale budgets and
//!   reduced shapes for CI; prints measurements but does not overwrite
//!   the committed baseline.
//!
//! Both modes end with five guards that **fail** the bench (non-zero
//! exit):
//!
//! * allocation guard — every `*_into` kernel entry point (`matmul_into`,
//!   `matmul_events_into`, `conv2d_into`, `conv2d_backward_into`) is run
//!   against a warm [`Workspace`]; the workspace allocation counter must
//!   not move — steady-state hot loops must not allocate.
//! * LIF guard — the dispatched LIF kernel (SIMD where the CPU has it)
//!   and the forced-scalar kernel are both run on the same data and must
//!   agree bitwise, so the smoke bench exercises both code paths on
//!   every CI machine.
//! * conv-into guard — `conv2d_into` against a warm workspace must not be
//!   slower than the allocating `conv2d`, measured interleaved with a
//!   median-of-rounds ratio so measurement-order drift can neither fake
//!   nor hide a regression.
//! * spawn guard — a warm loop of prepacked layer forwards and pooled
//!   dispatches must spawn zero threads and pack zero weight panels: all
//!   setup cost is paid once, never per step.
//! * obs guard — with metrics recording disabled, `obs::counter_add` /
//!   `obs::observe` must cost near-zero (one relaxed atomic load) and
//!   must leave the registry empty, so instrumented kernels run at full
//!   speed when `--metrics` is off.

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::{Duration, Instant};

use ad::Tape;
use attacks::Attack;
use nn::{AdversarialTarget, Classifier, Cnn, CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{Encoder, LifCell, LifParams, Surrogate, SurrogateShape};
use tensor::conv::{conv2d, conv2d_backward_into, conv2d_into, Conv2dSpec};
use tensor::workspace::{alloc_count, Workspace};
use tensor::Tensor;

/// One measurement destined for `BENCH_tensor.json`.
struct Record {
    op: &'static str,
    shape: String,
    ns_per_iter: f64,
    threads: usize,
}

struct Runner {
    smoke: bool,
    records: Vec<Record>,
}

impl Runner {
    fn budgets(&self) -> (Duration, Duration) {
        if self.smoke {
            (Duration::from_millis(20), Duration::from_millis(80))
        } else {
            (Duration::from_millis(300), Duration::from_millis(1500))
        }
    }

    /// Times `f` (warm-up then fixed measuring budget) and records the
    /// mean iteration time under `op`/`shape`/`threads`.
    fn bench<O, F: FnMut() -> O>(
        &mut self,
        op: &'static str,
        shape: &str,
        threads: usize,
        mut f: F,
    ) {
        tensor::parallel::set_max_threads(threads);
        let (warmup, measure) = self.budgets();
        let start = Instant::now();
        while start.elapsed() < warmup {
            black_box(f());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= measure {
                break;
            }
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!(
            "  {op} [{shape}] x{threads}: {} ({iters} iters)",
            fmt_ns(ns)
        );
        self.records.push(Record {
            op,
            shape: shape.to_string(),
            ns_per_iter: ns,
            threads,
        });
        tensor::parallel::set_max_threads(1);
    }

    /// Times two closures in interleaved rounds (A B A B …) and records
    /// both. Sequential measurement of a matched pair lets machine drift
    /// (frequency scaling, cache pressure left by earlier groups) land
    /// entirely on whichever op runs second — the committed baseline once
    /// showed `conv2d_into` 9% *slower* than allocating `conv2d` purely
    /// from ordering. Interleaving spreads the drift over both sides.
    fn bench_pair<OA, OB>(
        &mut self,
        op_a: &'static str,
        op_b: &'static str,
        shape: &str,
        threads: usize,
        mut fa: impl FnMut() -> OA,
        mut fb: impl FnMut() -> OB,
    ) -> (f64, f64) {
        tensor::parallel::set_max_threads(threads);
        let (warmup, measure) = self.budgets();
        let start = Instant::now();
        while start.elapsed() < warmup {
            black_box(fa());
            black_box(fb());
        }
        let mut ns = [0u128; 2];
        let mut iters = [0u64; 2];
        let start = Instant::now();
        while start.elapsed() < measure * 2 {
            let t = Instant::now();
            black_box(fa());
            ns[0] += t.elapsed().as_nanos();
            iters[0] += 1;
            let t = Instant::now();
            black_box(fb());
            ns[1] += t.elapsed().as_nanos();
            iters[1] += 1;
        }
        let mut means = [0.0f64; 2];
        for (i, op) in [op_a, op_b].into_iter().enumerate() {
            means[i] = ns[i] as f64 / iters[i] as f64;
            println!(
                "  {op} [{shape}] x{threads}: {} ({} iters, interleaved)",
                fmt_ns(means[i]),
                iters[i]
            );
            self.records.push(Record {
                op,
                shape: shape.to_string(),
                ns_per_iter: means[i],
                threads,
            });
        }
        tensor::parallel::set_max_threads(1);
        (means[0], means[1])
    }

    fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"bench_tensor/v1\",\n");
        let _ = writeln!(
            out,
            "  \"mode\": \"{}\",",
            if self.smoke { "smoke" } else { "full" }
        );
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"op\": \"{}\", \"shape\": \"{}\", \"ns_per_iter\": {:.1}, \"threads\": {}}}{comma}",
                r.op, r.shape, r.ns_per_iter, r.threads
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn tensor_kernels(r: &mut Runner) {
    println!("\ngroup: tensor");
    let mut rng = StdRng::seed_from_u64(0);
    // The headline before/after pair: the naive triple loop the blocked
    // kernel replaced, on the acceptance shape (shrunk under --smoke).
    let side = if r.smoke { 96 } else { 256 };
    let shape = format!("{side}x{side}x{side}");
    let a = tensor::init::uniform(&mut rng, &[side, side], -1.0, 1.0);
    let b = tensor::init::uniform(&mut rng, &[side, side], -1.0, 1.0);
    r.bench("matmul_naive", &shape, 1, || a.matmul_naive(&b));
    r.bench("matmul_blocked", &shape, 1, || a.matmul(&b));
    // Row-sharded GEMM: honest numbers for whatever core count this
    // machine has (on one core this measures sharding overhead, not
    // speedup; determinism is asserted by the test suite either way).
    r.bench("matmul_blocked", &shape, 2, || a.matmul(&b));
    r.bench("matmul_blocked", &shape, 4, || a.matmul(&b));
    let a64 = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    let b64 = tensor::init::uniform(&mut rng, &[64, 64], -1.0, 1.0);
    r.bench("matmul_blocked", "64x64x64", 1, || a64.matmul(&b64));

    // The prepack before/after pair on the SNN timestep-loop shape
    // (skinny lhs, reused rhs): one record packing B every call, one
    // reusing panels packed once — the win the layer cache banks T times
    // per forward.
    let askinny = tensor::init::uniform(&mut rng, &[32, side], -1.0, 1.0);
    let pb = b.prepack_b();
    let pair_shape = format!("32x{side}x{side}");
    r.bench_pair(
        "matmul_blocked",
        "matmul_prepacked",
        &pair_shape,
        1,
        || askinny.matmul(&b),
        || askinny.matmul_prepacked(&pb),
    );

    let x = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[8, 8, 3, 3], -1.0, 1.0);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    r.bench_pair(
        "conv2d",
        "conv2d_into",
        "4x8x16x16_k3",
        1,
        || conv2d(&x, &w, spec),
        || conv2d_into(&mut out, &x, &w, spec, &mut ws),
    );
    let g = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let mut gx = Tensor::zeros(&[1]);
    let mut gw = Tensor::zeros(&[1]);
    r.bench("conv2d_backward_into", "4x8x16x16_k3", 1, || {
        conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    });

    let u = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
    let v = tensor::init::uniform(&mut rng, &[16384], -1.0, 1.0);
    r.bench("elementwise_add", "16384", 1, || u.add(&v));
}

/// A spike train of the given density: entries are 1.0 with probability
/// `density`, 0.0 otherwise (deterministic SplitMix64 stream).
fn spike_tensor(seed: u64, dims: &[usize], density: f64) -> Tensor {
    let len: usize = dims.iter().product();
    let cut = (density * 1000.0) as u64;
    let data = (0..len as u64)
        .map(|i| {
            let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            if z % 1000 < cut {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

/// Density sweep of the event-driven product against the dense kernel on
/// the same shape: locates the gather/dense crossover this machine sees
/// (`EVENT_DENSITY_CROSSOVER` is tuned from the committed full-mode run).
fn event_products(r: &mut Runner) {
    println!("\ngroup: event");
    let mut rng = StdRng::seed_from_u64(4);
    let (m, k, n) = if r.smoke {
        (16, 128, 128)
    } else {
        (32, 256, 256)
    };
    let w = tensor::init::uniform(&mut rng, &[k, n], -1.0, 1.0);
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    for density in [0.01f64, 0.05, 0.1, 0.25, 0.5, 1.0] {
        let a = spike_tensor(0xE0E0 + (density * 1000.0) as u64, &[m, k], density);
        let shape = format!("{m}x{k}x{n}_d{density}");
        r.bench("event_gemm", &shape, 1, || {
            a.matmul_events_into(&w, &mut out, &mut ws)
        });
    }
    // The dense kernel on the same shape: the event path's fall-back cost
    // and the bar the sparse gather has to clear.
    let a = spike_tensor(0xD0D0, &[m, k], 0.1);
    r.bench("event_gemm_dense_ref", &format!("{m}x{k}x{n}"), 1, || {
        a.matmul_into(&w, &mut out, &mut ws)
    });
}

fn autodiff_overhead(r: &mut Runner) {
    println!("\ngroup: autodiff");
    let mut rng = StdRng::seed_from_u64(1);
    let w1 = tensor::init::uniform(&mut rng, &[144, 64], -0.1, 0.1);
    let w2 = tensor::init::uniform(&mut rng, &[64, 10], -0.1, 0.1);
    let x = tensor::init::uniform(&mut rng, &[32, 144], 0.0, 1.0);
    let labels: Vec<usize> = (0..32).map(|i| i % 10).collect();
    r.bench("tape_mlp_forward_backward", "32x144x64x10", 1, || {
        let tape = Tape::new();
        let xv = tape.leaf(x.clone());
        let w1v = tape.leaf(w1.clone());
        let w2v = tape.leaf(w2.clone());
        let loss = xv.matmul(w1v).relu().matmul(w2v).cross_entropy(&labels);
        tape.backward(loss)
    });
}

fn lif_dynamics(r: &mut Runner) {
    println!("\ngroup: lif");
    let cell = LifCell::new(LifParams::new(1.0));
    let mut rng = StdRng::seed_from_u64(2);
    let input = tensor::init::uniform(&mut rng, &[32, 256], 0.0, 1.0);
    // Dispatched (SIMD where available), forced-scalar, and the composed
    // tape formulation the fused kernel replaced — the before/after trio.
    r.bench("lif_step_x16", "32x256", 1, || {
        let tape = Tape::new();
        let i = tape.leaf(input.clone());
        let mut v = tape.leaf(Tensor::zeros(&[32, 256]));
        let mut acc = None;
        for _ in 0..16 {
            let (s, vn) = cell.step(i, v);
            v = vn;
            acc = Some(match acc {
                None => s,
                Some(a) => a + s,
            });
        }
        acc.map(|a| a.value())
    });
    tensor::simd::set_force_scalar(true);
    r.bench("lif_step_scalar_x16", "32x256", 1, || {
        let tape = Tape::new();
        let i = tape.leaf(input.clone());
        let mut v = tape.leaf(Tensor::zeros(&[32, 256]));
        let mut acc = None;
        for _ in 0..16 {
            let (s, vn) = cell.step(i, v);
            v = vn;
            acc = Some(match acc {
                None => s,
                Some(a) => a + s,
            });
        }
        acc.map(|a| a.value())
    });
    tensor::simd::set_force_scalar(false);
    // The raw kernel without the tape: isolates fused-sweep cost from
    // node bookkeeping.
    let spec = LifParams::new(1.0).kernel_spec();
    r.bench("lif_kernel_x16", "32x256", 1, || {
        let mut v = Tensor::zeros(&[32, 256]);
        let mut fired = 0usize;
        for _ in 0..16 {
            let out = tensor::simd::lif_step(&input, &v, None, spec);
            v = out.v_next;
            fired += out.fired;
        }
        fired
    });
    r.bench("lif_step_legacy_x16", "32x256", 1, || {
        let tape = Tape::new();
        let i = tape.leaf(input.clone());
        let mut v = tape.leaf(Tensor::zeros(&[32, 256]));
        let mut acc = None;
        for _ in 0..16 {
            let v_int = v.mul_scalar(0.9) + i;
            let centered = v_int.add_scalar(-1.0);
            let spikes =
                centered.custom_unary(Box::new(Surrogate::new(SurrogateShape::FastSigmoid, 10.0)));
            v = v_int - spikes.mul_scalar(1.0);
            acc = Some(match acc {
                None => spikes,
                Some(a) => a + spikes,
            });
        }
        acc.map(|a| a.value())
    });
    let enc = Encoder::poisson(7);
    let px = tensor::init::uniform(&mut rng, &[784], 0.0, 1.0);
    r.bench("encoder_poisson_x16", "784", 1, || {
        let tape = Tape::new();
        let xv = tape.leaf(px.clone());
        (0..16)
            .map(|t| enc.encode_step(xv, t).value().sum())
            .sum::<f32>()
    });
}

fn attack_iterations(r: &mut Runner) {
    println!("\ngroup: attacks");
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(12, 10));
    let clf = Classifier::new(cnn, params);
    let x = tensor::init::uniform(&mut rng, &[8, 1, 12, 12], 0.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    r.bench("input_grad", "batch8_12x12", 1, || {
        clf.loss_and_input_grad(&x, &labels)
    });
    let pgd = attacks::Pgd::standard(0.3);
    r.bench("pgd10", "batch8_12x12", 1, || {
        pgd.perturb(&clf, &x, &labels)
    });
}

/// Fails the bench if any `*_into` kernel entry point allocates from a
/// warm workspace: steady-state hot loops must be allocation-free.
fn alloc_guard() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(9);
    let a = tensor::init::uniform(&mut rng, &[48, 32], -1.0, 1.0);
    let b = tensor::init::uniform(&mut rng, &[32, 40], -1.0, 1.0);
    let x = tensor::init::uniform(&mut rng, &[2, 3, 10, 10], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[4, 3, 3, 3], -1.0, 1.0);
    let g = tensor::init::uniform(&mut rng, &[2, 4, 10, 10], -1.0, 1.0);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let events = spike_tensor(0xA11C, &[48, 32], 0.05);
    let mut ws = Workspace::new();
    let mut mm = Tensor::zeros(&[1]);
    let mut ev = Tensor::zeros(&[1]);
    let mut out = Tensor::zeros(&[1]);
    let mut gx = Tensor::zeros(&[1]);
    let mut gw = Tensor::zeros(&[1]);
    // Warm-up pass grows every buffer once.
    a.matmul_into(&b, &mut mm, &mut ws);
    events.matmul_events_into(&b, &mut ev, &mut ws);
    conv2d_into(&mut out, &x, &w, spec, &mut ws);
    conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    let baseline = alloc_count();
    for _ in 0..5 {
        a.matmul_into(&b, &mut mm, &mut ws);
        events.matmul_events_into(&b, &mut ev, &mut ws);
        conv2d_into(&mut out, &x, &w, spec, &mut ws);
        conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    }
    let after = alloc_count();
    if after != baseline {
        return Err(format!(
            "*_into kernels allocated from a warm workspace: \
             counter moved {baseline} -> {after}"
        ));
    }
    println!("\nalloc guard: ok (warm *_into kernels made 0 workspace allocations)");
    Ok(())
}

/// Fails the bench if the dispatched LIF kernel (SIMD on capable CPUs)
/// and the forced-scalar kernel disagree on a single bit: every run of
/// the smoke bench exercises both code paths and their equivalence.
fn lif_guard() -> Result<(), String> {
    use tensor::simd::{lif_step, set_force_scalar, simd_available, LifKernelSpec};
    let mut rng = StdRng::seed_from_u64(11);
    // Odd length exercises the vector body and the scalar tail.
    let input = tensor::init::uniform(&mut rng, &[1031], -2.0, 2.0);
    let v = tensor::init::uniform(&mut rng, &[1031], -1.0, 2.0);
    let adapt = tensor::init::uniform(&mut rng, &[1031], 0.0, 1.0);
    for zero_reset in [false, true] {
        for with_adapt in [false, true] {
            let spec = LifKernelSpec {
                beta: 0.9,
                v_th: 1.0,
                zero_reset,
            };
            let adapt_arg = with_adapt.then_some((&adapt, 0.4f32));
            set_force_scalar(true);
            let scalar = lif_step(&input, &v, adapt_arg, spec);
            set_force_scalar(false);
            let dispatched = lif_step(&input, &v, adapt_arg, spec);
            for (name, s, d) in [
                ("v_int", &scalar.v_int, &dispatched.v_int),
                ("centered", &scalar.centered, &dispatched.centered),
                ("spikes", &scalar.spikes, &dispatched.spikes),
                ("v_next", &scalar.v_next, &dispatched.v_next),
            ] {
                for (i, (&x, &y)) in s.data().iter().zip(d.data()).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        return Err(format!(
                            "LIF kernels disagree: {name}[{i}] scalar={x} dispatched={y} \
                             (zero_reset={zero_reset}, adapt={with_adapt})"
                        ));
                    }
                }
            }
            if scalar.fired != dispatched.fired {
                return Err(format!(
                    "LIF kernels disagree on fired count: scalar={} dispatched={}",
                    scalar.fired, dispatched.fired
                ));
            }
        }
    }
    println!(
        "lif guard: ok (forced-scalar vs dispatched-{} bitwise identical, both reset modes, ±adaptation)",
        if simd_available() { "avx2" } else { "scalar" }
    );
    Ok(())
}

/// Fails the bench if the workspace-reusing `conv2d_into` is measurably
/// slower than the allocating `conv2d` it exists to beat. The committed
/// baseline once showed the reverse (198.8 µs vs 182.4 µs) purely from
/// sequential measurement order; this guard measures the pair in
/// interleaved rounds and takes the median-of-rounds ratio, so one
/// scheduling hiccup cannot fail the gate and ordering drift cannot hide
/// a real regression.
fn conv_into_guard() -> Result<(), String> {
    const ROUNDS: usize = 9;
    const ITERS: usize = 12;
    const TOLERANCE: f64 = 1.25;
    let mut rng = StdRng::seed_from_u64(13);
    let x = tensor::init::uniform(&mut rng, &[4, 8, 16, 16], -1.0, 1.0);
    let w = tensor::init::uniform(&mut rng, &[8, 8, 3, 3], -1.0, 1.0);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    // Warm both paths: allocator pools for one, workspace growth for the
    // other.
    for _ in 0..ITERS {
        black_box(conv2d(&x, &w, spec));
        conv2d_into(&mut out, &x, &w, spec, &mut ws);
    }
    let mut ratios = [0.0f64; ROUNDS];
    for ratio in &mut ratios {
        let t = Instant::now();
        for _ in 0..ITERS {
            black_box(conv2d(&x, &w, spec));
        }
        let alloc_ns = t.elapsed().as_nanos() as f64;
        let t = Instant::now();
        for _ in 0..ITERS {
            conv2d_into(&mut out, &x, &w, spec, &mut ws);
        }
        *ratio = t.elapsed().as_nanos() as f64 / alloc_ns;
    }
    ratios.sort_by(f64::total_cmp);
    let median = ratios[ROUNDS / 2];
    if median > TOLERANCE {
        return Err(format!(
            "conv2d_into runs at {median:.2}x the allocating conv2d (tolerance \
             {TOLERANCE}): the workspace path must not regress below its \
             allocating twin"
        ));
    }
    println!("conv-into guard: ok (conv2d_into / conv2d median ratio {median:.2}, interleaved)");
    Ok(())
}

/// Fails the bench if a warm forward loop does hidden setup work: the
/// worker pool must be persistent (no thread spawns after the first
/// dispatch) and the prepack cache must serve every steady-state bind
/// (no `pack_b` panel packing after the first forward).
fn spawn_guard() -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(17);
    let mut params = Params::new();
    let fc = nn::Linear::new(&mut params, &mut rng, "fc", 96, 64);
    let x = tensor::init::uniform(&mut rng, &[48, 96], -1.0, 1.0);
    // One "timestep loop": repeated prepacked forwards over one bind,
    // plus an explicitly pooled dispatch — covering both one-time costs
    // (panel packing, worker spawning) the steady state must not repeat.
    let step = |params: &Params| {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        for _ in 0..4 {
            black_box(fc.forward(&bound, tape.leaf(x.clone())).value());
        }
        black_box(tensor::parallel::par_map_collect(8, 2, |i| i * 2));
    };
    step(&params); // cold: packs the weight panels, spawns the pool workers
    let spawns = tensor::runtime::spawn_count();
    let packs = tensor::pack_b_calls();
    for _ in 0..6 {
        step(&params);
    }
    let spawn_delta = tensor::runtime::spawn_count() - spawns;
    let pack_delta = tensor::pack_b_calls() - packs;
    if spawn_delta != 0 || pack_delta != 0 {
        return Err(format!(
            "warm forwards did hidden setup work: {spawn_delta} thread spawns, \
             {pack_delta} pack_b calls (want 0 and 0)"
        ));
    }
    println!("spawn guard: ok (warm pooled forwards: 0 thread spawns, 0 pack_b calls)");
    Ok(())
}

/// Fails the bench if *disabled* metrics recording does measurable work:
/// the contract is one relaxed atomic load per call site, so a build that
/// never passes `--metrics` must not pay for the instrumentation.
fn obs_guard() -> Result<(), String> {
    obs::disable();
    // Nothing may reach the registry while disabled.
    obs::counter_add("bench/guard", 1);
    obs::observe("bench/guard_h", 0.5, obs::RATE_BOUNDS);
    if !obs::snapshot().is_empty() {
        return Err("disabled obs recording still reached the registry".into());
    }
    // Budget: generous even for a cold branch predictor — a stray lock,
    // allocation, or thread-local registration shows up as microseconds.
    const ITERS: u64 = 2_000_000;
    const MAX_NS_PER_OP: f64 = 250.0;
    let start = Instant::now();
    for i in 0..ITERS {
        obs::counter_add("bench/guard", black_box(i));
        obs::observe("bench/guard_h", black_box(0.5), obs::RATE_BOUNDS);
    }
    let ns = start.elapsed().as_nanos() as f64 / ITERS as f64;
    if ns > MAX_NS_PER_OP {
        return Err(format!(
            "disabled obs recording costs {ns:.1} ns per counter+observe pair \
             (budget {MAX_NS_PER_OP} ns): the disabled path must stay near-zero"
        ));
    }
    println!("obs guard: ok (disabled recording: {ns:.2} ns per counter+observe pair)");
    Ok(())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut runner = Runner {
        smoke,
        records: Vec::new(),
    };
    tensor_kernels(&mut runner);
    event_products(&mut runner);
    autodiff_overhead(&mut runner);
    lif_dynamics(&mut runner);
    attack_iterations(&mut runner);

    if let Err(msg) = alloc_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = lif_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = conv_into_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = spawn_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }
    if let Err(msg) = obs_guard() {
        eprintln!("FAILED: {msg}");
        std::process::exit(1);
    }

    if smoke {
        println!("smoke mode: leaving committed BENCH_tensor.json untouched");
    } else {
        // cargo runs benches with the package directory as CWD; anchor the
        // baseline at the workspace root instead.
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_tensor.json");
        std::fs::write(&path, runner.to_json()).expect("write BENCH_tensor.json");
        println!(
            "wrote {} ({} records)",
            path.display(),
            runner.records.len()
        );
    }
}
