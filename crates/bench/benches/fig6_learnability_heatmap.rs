//! Figure 6 bench: regenerates the clean-accuracy heat map over `(V_th, T)`
//! once during setup and times the per-cell training that fills it.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_scale, data_for, write_artefact};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{grid, pipeline, presets, GridSpec};
use snn::StructuralParams;

fn fig6(c: &mut Criterion) {
    let (config, _, epsilons) = presets::heatmap_grid();
    let config = bench_scale(config);
    let data = data_for(&config);

    // Setup: a reduced grid regenerates the figure's structure (the full
    // paper grid is produced by `cargo run --release --example heatmap -- --full`).
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 8, 16]);
    let result = grid::run_grid(&config, &data, &spec, &epsilons, 2);
    let map = Heatmap::from_grid(&result, HeatmapKind::CleanAccuracy);
    println!("\n[fig6] {}", map.render_ascii());
    write_artefact("fig6_learnability.csv", &map.to_csv());

    // Timing: one grid cell = one SNN training + learnability check.
    let mut group = c.benchmark_group("fig6");
    group.sample_size(10);
    group.bench_function("train_cell_short_window", |b| {
        b.iter(|| pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 4)))
    });
    group.bench_function("train_cell_long_window", |b| {
        b.iter(|| pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 16)))
    });
    group.bench_function("grid_2x2", |b| {
        let small = GridSpec::new(vec![0.5, 2.0], vec![4, 8]);
        b.iter(|| grid::run_grid(&config, &data, &small, &[], 2))
    });
    group.finish();
}

criterion_group!(benches, fig6);
criterion_main!(benches);
