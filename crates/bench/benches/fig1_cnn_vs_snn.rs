//! Figure 1 bench: regenerates the CNN-vs-SNN PGD sweep once during setup
//! and times the per-model attack sweep that produces each curve.

use criterion::{criterion_group, criterion_main, Criterion};

use bench::{bench_scale, data_for, write_artefact};
use explore::curves::{CurveSet, RobustnessCurve};
use explore::{algorithm, pipeline, presets};

fn fig1(c: &mut Criterion) {
    let (config, epsilons) = presets::fig1();
    let config = bench_scale(config);
    let data = data_for(&config);

    // Setup: regenerate the figure's two series once.
    let cnn = pipeline::train_cnn(&config, &data);
    let snn = pipeline::train_snn(&config, &data, presets::fig1_structural());
    let cnn_points = algorithm::sweep_attack(&config, &data, &cnn.classifier, &epsilons);
    let snn_points = algorithm::sweep_attack(&config, &data, &snn.classifier, &epsilons);
    let mut set = CurveSet::new();
    set.push(RobustnessCurve::new("CNN", cnn_points));
    set.push(RobustnessCurve::new(
        format!("SNN {}", presets::fig1_structural()),
        snn_points,
    ));
    println!(
        "\n[fig1] accuracy under PGD (pixel-scale eps):\n{}",
        set.render_table()
    );
    write_artefact("fig1_cnn_vs_snn.csv", &set.to_csv());

    // Timing: one full ε sweep per model family.
    let mut group = c.benchmark_group("fig1");
    group.sample_size(10);
    group.bench_function("pgd_sweep_cnn", |b| {
        b.iter(|| algorithm::sweep_attack(&config, &data, &cnn.classifier, &epsilons))
    });
    group.bench_function("pgd_sweep_snn", |b| {
        b.iter(|| algorithm::sweep_attack(&config, &data, &snn.classifier, &epsilons))
    });
    group.bench_function("train_cnn", |b| {
        b.iter(|| pipeline::train_cnn(&config, &data))
    });
    group.bench_function("train_snn", |b| {
        b.iter(|| pipeline::train_snn(&config, &data, presets::fig1_structural()))
    });
    group.finish();
}

criterion_group!(benches, fig1);
criterion_main!(benches);
