//! Figure 8 bench: regenerates the attacked-accuracy heat map at the
//! paper's ε = 1.5 and times the stronger-budget PGD evaluation, including
//! the cost scaling between the two heat-map budgets.

use criterion::{criterion_group, criterion_main, Criterion};

use attacks::{evaluate_attack, Pgd};
use bench::{bench_scale, data_for, write_artefact};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{grid, pipeline, presets, GridSpec};
use snn::StructuralParams;

fn fig8(c: &mut Criterion) {
    let (config, _, epsilons) = presets::heatmap_grid();
    let config = bench_scale(config);
    let data = data_for(&config);
    let eps15 = epsilons[1]; // paper ε = 1.5 in pixel scale

    // Setup: reduced grid, attacked map at ε = 1.5.
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 8, 16]);
    let result = grid::run_grid(&config, &data, &spec, &[eps15], 2);
    let map = Heatmap::from_grid(&result, HeatmapKind::AttackedAccuracy { eps: eps15 });
    println!("\n[fig8] {}", map.render_ascii());
    write_artefact("fig8_attacked_eps15.csv", &map.to_csv());

    // Timing: ε = 1.5 evaluation on cells with a short and a long window —
    // the time window dominates attack cost (every PGD step replays T
    // forward+backward passes).
    let short = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 4));
    let long = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 16));
    let attack_set = data.test.subset(config.attack_samples);
    let pgd = Pgd::new(
        eps15,
        2.5 * eps15 / config.pgd_steps as f32,
        config.pgd_steps,
        true,
        0,
    );
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.bench_function("attack_cell_eps15_T4", |b| {
        b.iter(|| {
            evaluate_attack(
                &short.classifier,
                &pgd,
                attack_set.images(),
                attack_set.labels(),
                config.batch_size,
            )
        })
    });
    group.bench_function("attack_cell_eps15_T16", |b| {
        b.iter(|| {
            evaluate_attack(
                &long.classifier,
                &pgd,
                attack_set.images(),
                attack_set.labels(),
                config.batch_size,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
