//! Parallel attack-evaluation bench: the same batched PGD evaluation at 1
//! vs 4 worker threads, plus a conv2d micro-bench at both thread counts.
//!
//! The parallel paths are deterministic (bitwise-identical outcomes for
//! every thread count — asserted during setup), so this bench isolates the
//! wall-clock effect of the `tensor::parallel` layer. On a single-core
//! machine the 4-thread numbers show scheduling overhead instead of
//! speedup; compare the reported timings against `nproc` before reading
//! them as a scaling result.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use attacks::{evaluate_attack, evaluate_attack_parallel, Pgd};
use bench::{bench_scale, data_for};
use explore::presets;
use snn::StructuralParams;
use tensor::conv::{conv2d, Conv2dSpec};
use tensor::Tensor;

fn parallel_eval(c: &mut Criterion) {
    let mut config = bench_scale(presets::quick());
    // Enough work for sharding to matter: more samples, small batches.
    config.attack_samples = 40;
    config.test_per_class = 8;
    config.batch_size = 4;
    let data = data_for(&config);
    let trained = explore::pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    let attack_set = data.test.subset(config.attack_samples);
    let attack = Pgd::standard(presets::paper_eps_to_pixel(1.0));

    // Setup assertion: sharding must not change the outcome.
    let serial = evaluate_attack(
        &trained.classifier,
        &attack,
        attack_set.images(),
        attack_set.labels(),
        config.batch_size,
    );
    for threads in [1usize, 2, 4] {
        let parallel = evaluate_attack_parallel(
            &trained.classifier,
            &attack,
            attack_set.images(),
            attack_set.labels(),
            config.batch_size,
            threads,
        );
        assert_eq!(
            parallel, serial,
            "parallel outcome diverged at {threads} threads"
        );
    }
    println!(
        "[bench setup] evaluate_attack_parallel bitwise-identical to serial at 1/2/4 threads \
         ({} samples, available cores: {})",
        serial.samples,
        std::thread::available_parallelism().map_or(1, usize::from),
    );

    let mut group = c.benchmark_group("parallel_eval");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_function(format!("pgd_eval_{threads}_threads"), |b| {
            b.iter(|| {
                evaluate_attack_parallel(
                    &trained.classifier,
                    &attack,
                    black_box(attack_set.images()),
                    attack_set.labels(),
                    config.batch_size,
                    threads,
                )
            })
        });
    }
    group.finish();

    // Conv micro-bench: batch-level parallelism inside one kernel call.
    let x = Tensor::from_vec(
        (0..32 * 16 * 16)
            .map(|i| ((i * 31 % 97) as f32) / 97.0)
            .collect(),
        &[32, 1, 16, 16],
    );
    let w = Tensor::from_vec(
        (0..8 * 3 * 3)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) * 0.1)
            .collect(),
        &[8, 1, 3, 3],
    );
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let mut group = c.benchmark_group("parallel_conv");
    group.sample_size(20);
    for threads in [1usize, 4] {
        group.bench_function(format!("conv2d_32x16x16_{threads}_threads"), |b| {
            tensor::parallel::set_max_threads(threads);
            b.iter(|| conv2d(black_box(&x), &w, spec))
        });
    }
    tensor::parallel::set_max_threads(1);
    group.finish();
}

criterion_group!(benches, parallel_eval);
criterion_main!(benches);
