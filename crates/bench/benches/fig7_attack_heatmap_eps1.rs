//! Figure 7 bench: regenerates the attacked-accuracy heat map at the
//! paper's ε = 1.0 and times the per-cell PGD evaluation that fills it.

use criterion::{criterion_group, criterion_main, Criterion};

use attacks::{evaluate_attack, Pgd};
use bench::{bench_scale, data_for, write_artefact};
use explore::heatmap::{Heatmap, HeatmapKind};
use explore::{grid, pipeline, presets, GridSpec};
use snn::StructuralParams;

fn fig7(c: &mut Criterion) {
    let (config, _, epsilons) = presets::heatmap_grid();
    let config = bench_scale(config);
    let data = data_for(&config);
    let eps1 = epsilons[0]; // paper ε = 1.0 in pixel scale

    // Setup: reduced grid, attacked map at ε = 1.0.
    let spec = GridSpec::new(vec![0.25, 1.0, 1.75, 2.5], vec![4, 8, 16]);
    let result = grid::run_grid(&config, &data, &spec, &[eps1], 2);
    let map = Heatmap::from_grid(&result, HeatmapKind::AttackedAccuracy { eps: eps1 });
    println!("\n[fig7] {}", map.render_ascii());
    write_artefact("fig7_attacked_eps1.csv", &map.to_csv());

    // Timing: the security-study inner loop for one pre-trained cell.
    let trained = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 8));
    let attack_set = data.test.subset(config.attack_samples);
    let pgd = Pgd::new(
        eps1,
        2.5 * eps1 / config.pgd_steps as f32,
        config.pgd_steps,
        true,
        0,
    );
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.bench_function("attack_cell_eps1", |b| {
        b.iter(|| {
            evaluate_attack(
                &trained.classifier,
                &pgd,
                attack_set.images(),
                attack_set.labels(),
                config.batch_size,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, fig7);
criterion_main!(benches);
