//! Attack-zoo bench: compares every implemented attack's strength (setup
//! table) and per-batch cost (timed) against the same trained SNN victim.

use criterion::{criterion_group, criterion_main, Criterion};

use attacks::{evaluate_attack, Attack, Fgsm, MomentumPgd, Pgd, PgdL2, TargetedPgd, UniformNoise};
use bench::{bench_scale, data_for, write_artefact};
use explore::{pipeline, presets};
use snn::StructuralParams;

fn attack_zoo(c: &mut Criterion) {
    let config = bench_scale(presets::quick());
    let data = data_for(&config);
    let trained = pipeline::train_snn(&config, &data, StructuralParams::new(1.0, 6));
    let attack_set = data.test.subset(config.attack_samples);
    let eps = presets::paper_eps_to_pixel(1.0);

    let attacks: Vec<(&str, Box<dyn Attack>)> = vec![
        ("fgsm", Box::new(Fgsm::new(eps))),
        ("pgd", Box::new(Pgd::standard(eps))),
        ("momentum_pgd", Box::new(MomentumPgd::standard(eps))),
        ("pgd_l2", Box::new(PgdL2::standard(eps))),
        ("random_noise", Box::new(UniformNoise::new(eps, 0))),
    ];

    // Setup: the strength comparison table.
    let mut table = String::from("attack,clean_accuracy,adversarial_accuracy\n");
    for (name, attack) in &attacks {
        let outcome = evaluate_attack(
            &trained.classifier,
            attack.as_ref(),
            attack_set.images(),
            attack_set.labels(),
            config.batch_size,
        );
        table.push_str(&format!(
            "{name},{:.3},{:.3}\n",
            outcome.clean_accuracy, outcome.adversarial_accuracy
        ));
    }
    // Targeted PGD success (not an `Attack`; reported separately).
    let targets: Vec<usize> = attack_set.labels().iter().map(|&l| (l + 1) % 10).collect();
    let targeted = TargetedPgd::standard(eps);
    table.push_str(&format!(
        "targeted_pgd_success,{:.3},\n",
        targeted.success_rate(&trained.classifier, attack_set.images(), &targets)
    ));
    println!("\n[attack zoo]\n{table}");
    write_artefact("attack_zoo.csv", &table);

    // Timing: cost per attack on one batch.
    let mut group = c.benchmark_group("attack_zoo");
    group.sample_size(10);
    for (name, attack) in &attacks {
        group.bench_function(*name, |b| {
            b.iter(|| {
                attack.perturb(
                    &trained.classifier,
                    attack_set.images(),
                    attack_set.labels(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, attack_zoo);
criterion_main!(benches);
