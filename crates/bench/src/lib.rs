//! Shared setup helpers for the benchmark harness.
//!
//! Every bench target regenerates its paper figure once during setup (the
//! series/heat map is printed to stdout and written under
//! `target/figures/`), then times the hot path that produces it. The
//! bench-time configurations are reduced versions of the
//! [`explore::presets`] so a full `cargo bench` stays in CPU-minutes; the
//! figure-faithful runs live in the `examples/` binaries and
//! `EXPERIMENTS.md` records their output.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use explore::{pipeline, ExperimentConfig};

/// Shrinks a preset configuration to bench scale: fewer epochs, fewer
/// samples, a permissive learnability gate (benches measure cost and shape,
/// not model quality).
pub fn bench_scale(mut config: ExperimentConfig) -> ExperimentConfig {
    config.epochs = 4;
    config.train_per_class = 12;
    config.test_per_class = 4;
    config.attack_samples = 10;
    config.pgd_steps = 3;
    config.accuracy_threshold = 0.15;
    config
}

/// Prepares the dataset for a (possibly shrunk) configuration.
pub fn data_for(config: &ExperimentConfig) -> pipeline::SplitData {
    pipeline::prepare_data(config)
}

/// The output directory for regenerated figure artefacts.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    fs::create_dir_all(&dir).expect("create target/figures");
    dir
}

/// Writes a regenerated artefact and echoes where it went.
pub fn write_artefact(name: &str, contents: &str) {
    let path = figures_dir().join(name);
    fs::write(&path, contents).expect("write figure artefact");
    println!("[bench setup] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_scale_is_cheaper_than_preset() {
        let preset = explore::presets::quick();
        let scaled = bench_scale(preset.clone());
        assert!(scaled.epochs < preset.epochs);
        assert!(scaled.train_per_class < preset.train_per_class);
        scaled.validate();
    }

    #[test]
    fn artefact_round_trip() {
        write_artefact("bench_lib_test.txt", "ok");
        let read = std::fs::read_to_string(figures_dir().join("bench_lib_test.txt")).unwrap();
        assert_eq!(read, "ok");
    }
}
