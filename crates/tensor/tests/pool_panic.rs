//! Directed panic-propagation tests for the persistent worker pool.
//!
//! A panic inside a `par_map_collect` worker must re-raise on the caller
//! with its payload intact (not a generic "a worker died"), and the pool
//! must stay fully serviceable afterwards — a scoring service survives a
//! poisoned input by answering it with an error, not by wedging every
//! subsequent dispatch.

use std::panic::{catch_unwind, AssertUnwindSafe};

use tensor::parallel::par_map_collect;

/// The panic payload crossing the pool must be the worker's own message.
#[test]
fn worker_panic_payload_reraises_on_the_caller() {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        par_map_collect(64, 4, |i| {
            assert!(i != 37, "input 37 is poisoned");
            i * 2
        })
    }));
    let payload = caught.expect_err("the worker panic must propagate");
    let message = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
        .expect("payload must be the original panic message");
    assert!(
        message.contains("input 37 is poisoned"),
        "payload was rewritten in transit: {message:?}"
    );
}

/// After a panicked job the pool answers the next dispatches correctly —
/// repeatedly, so a leaked guard or a stuck worker shows up as a hang or
/// a wrong result here.
#[test]
fn pool_stays_usable_after_repeated_worker_panics() {
    for round in 0..3 {
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map_collect(32, 4, |i| {
                assert!(i != 5, "round {round}: piece five exploded");
                i
            })
        }));
        assert!(caught.is_err(), "round {round}: panic must propagate");
        let out = par_map_collect(100, 4, |i| i * i);
        let expected: Vec<usize> = (0..100).map(|i| i * i).collect();
        assert_eq!(out, expected, "round {round}: pool gave wrong results");
    }
}
