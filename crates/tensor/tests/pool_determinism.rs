//! The persistent worker pool must be invisible in values: every kernel
//! routed through [`tensor::runtime::dispatch`] — dense GEMM, prepacked
//! GEMM, convolution, and the event-driven product — returns bitwise the
//! same bytes whether pieces run on pool workers or are forced onto the
//! caller's stack ([`tensor::runtime::set_force_serial`]), at every
//! `max_threads` setting.
//!
//! This holds by construction (fixed strided piece→executor assignment,
//! identical per-piece code on both paths) and is pinned here by proptest
//! over random shapes and value streams. The globals mutated below
//! (`max_threads`, `force_serial`) are exactly the knobs whose settings
//! must not matter, so concurrent tests flipping them cannot cause a
//! false failure.

use proptest::prelude::*;
use tensor::conv::{conv2d, Conv2dSpec};
use tensor::parallel::set_max_threads;
use tensor::runtime::set_force_serial;
use tensor::Tensor;

/// Deterministic SplitMix64 value stream.
fn stream_value(seed: u64, i: u64) -> f32 {
    let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
}

fn stream_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len as u64).map(|i| stream_value(seed, i)).collect();
    Tensor::from_vec(data, dims)
}

/// A spike train of roughly the given density over `dims`.
fn spike_tensor(seed: u64, dims: &[usize], density: f64) -> Tensor {
    let len: usize = dims.iter().product();
    let cut = (density * 1000.0) as u64;
    let data = (0..len as u64)
        .map(|i| {
            let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            if z % 1000 < cut {
                1.0
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

fn assert_bits(pooled: &Tensor, serial: &Tensor, context: &str) {
    assert_eq!(pooled.dims(), serial.dims(), "{context}: shape mismatch");
    for (i, (&x, &y)) in pooled.data().iter().zip(serial.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs: pooled={x}, serial={y}"
        );
    }
}

/// Runs `f` once forced-serial and once with the pool allowed, at each
/// thread setting, and asserts every result matches the serial baseline.
fn check_pool_vs_serial(context: &str, f: impl Fn() -> Tensor) {
    let before = tensor::parallel::max_threads();
    set_force_serial(true);
    set_max_threads(1);
    let baseline = f();
    set_force_serial(false);
    for threads in [1usize, 2, 4] {
        set_max_threads(threads);
        let pooled = f();
        assert_bits(&pooled, &baseline, &format!("{context} x{threads}"));
    }
    set_max_threads(before);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn matmul_is_pool_invariant(m in 1usize..24, k in 1usize..24, n in 1usize..24, seed in 0u64..(1u64 << 32)) {
        let a = stream_tensor(seed, &[m, k]);
        let b = stream_tensor(seed ^ 0xB0B0, &[k, n]);
        let pb = b.prepack_b();
        check_pool_vs_serial("matmul", || a.matmul(&b));
        check_pool_vs_serial("matmul_prepacked", || a.matmul_prepacked(&pb));
    }

    #[test]
    fn conv2d_is_pool_invariant(
        n in 1usize..3,
        c in 1usize..3,
        hw in 4usize..9,
        o in 1usize..4,
        seed in 0u64..(1u64 << 32),
    ) {
        let x = stream_tensor(seed, &[n, c, hw, hw]);
        let w = stream_tensor(seed ^ 0xC0C0, &[o, c, 3, 3]);
        let spec = Conv2dSpec { stride: 1, padding: 1 };
        let pw = tensor::prepack_conv2d_weights(&w);
        check_pool_vs_serial("conv2d", || conv2d(&x, &w, spec));
        check_pool_vs_serial("conv2d_prepacked", || {
            tensor::conv2d_prepacked(&x, &pw, spec)
        });
    }

    #[test]
    fn event_product_is_pool_invariant(
        m in 1usize..16,
        k in 8usize..32,
        n in 1usize..16,
        density in 0usize..4,
        seed in 0u64..(1u64 << 32),
    ) {
        // Densities straddling the gather/dense crossover: both event
        // paths must be pool-invariant.
        let d = [0.02, 0.1, 0.5, 0.95][density];
        let a = spike_tensor(seed, &[m, k], d);
        let b = stream_tensor(seed ^ 0xE0E0, &[k, n]);
        let pb = b.prepack_b();
        check_pool_vs_serial("matmul_events", || a.matmul_events(&b));
        check_pool_vs_serial("matmul_events_prepacked", || {
            a.matmul_events_prepacked(&b, &pb)
        });
    }
}
