//! Workspace reuse: `conv2d_into` driving one long-lived [`Workspace`]
//! through an arbitrary sequence of shapes must be bitwise identical to a
//! fresh [`conv2d`] per call — and must stop allocating once the arena has
//! seen the largest shape.

use proptest::prelude::*;
use tensor::conv::{conv2d, conv2d_backward, conv2d_backward_into, conv2d_into, Conv2dSpec};
use tensor::workspace::{alloc_count, Workspace};
use tensor::Tensor;

/// SplitMix64 stream for deterministic pseudo-random shapes and data.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn stream_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len as u64)
        .map(|i| (mix(seed, i) >> 40) as f32 / (1u64 << 24) as f32 * 2.0 - 1.0)
        .collect();
    Tensor::from_vec(data, dims)
}

/// A pseudo-random but valid conv problem: `(x, w, spec)` with the kernel
/// guaranteed to fit in the padded input.
fn conv_case(seed: u64, step: u64) -> (Tensor, Tensor, Conv2dSpec) {
    let s = |i: u64, range: u64, lo: u64| (mix(seed, step * 16 + i) % range + lo) as usize;
    let (n, c, o) = (s(0, 3, 1), s(1, 3, 1), s(2, 4, 1));
    let (kh, kw) = (s(3, 3, 1), s(4, 3, 1));
    let hw_min = kh.max(kw) as u64;
    let (h, w) = (s(5, 5, hw_min), s(6, 5, hw_min));
    let spec = Conv2dSpec {
        stride: s(7, 2, 1),
        padding: s(8, 2, 0),
    };
    let x = stream_tensor(seed ^ step, &[n, c, h, w]);
    let wt = stream_tensor(seed ^ step ^ 0xABCD, &[o, c, kh, kw]);
    (x, wt, spec)
}

fn assert_bitwise(a: &Tensor, b: &Tensor, context: &str) {
    assert_eq!(a.dims(), b.dims(), "{context}: shape mismatch");
    for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs: {x} vs {y}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// 100 mixed-shape forward calls through one reused workspace and one
    /// reused output tensor — shapes grow and shrink arbitrarily — each
    /// bitwise identical to a fresh `conv2d`.
    #[test]
    fn reused_workspace_matches_fresh_conv2d_across_100_shapes(
        seed in 0u64..(1u64 << 32),
    ) {
        let mut ws = Workspace::new();
        let mut out = Tensor::zeros(&[1]);
        for step in 0..100u64 {
            let (x, w, spec) = conv_case(seed, step);
            conv2d_into(&mut out, &x, &w, spec, &mut ws);
            let fresh = conv2d(&x, &w, spec);
            assert_bitwise(&out, &fresh, &format!("step {step}"));
        }
    }

    /// The same property for the backward pass (both gradients).
    #[test]
    fn reused_workspace_matches_fresh_conv2d_backward(
        seed in 0u64..(1u64 << 32),
    ) {
        let mut ws = Workspace::new();
        let mut gx = Tensor::zeros(&[1]);
        let mut gw = Tensor::zeros(&[1]);
        for step in 0..25u64 {
            let (x, w, spec) = conv_case(seed, step);
            let y = conv2d(&x, &w, spec);
            let g = stream_tensor(seed ^ 0x5EED ^ step, y.dims());
            conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
            let (fx, fw) = conv2d_backward(&x, &w, &g, spec);
            assert_bitwise(&gx, &fx, &format!("step {step} grad_x"));
            assert_bitwise(&gw, &fw, &format!("step {step} grad_w"));
        }
    }
}

/// Once the workspace has served a shape, repeating that shape allocates
/// nothing: the arena, the output tensor and the gradient tensors are all
/// grow-only and warm.
#[test]
fn warm_workspace_stops_allocating() {
    let x = stream_tensor(7, &[2, 3, 9, 9]);
    let w = stream_tensor(8, &[4, 3, 3, 3]);
    let spec = Conv2dSpec {
        stride: 1,
        padding: 1,
    };
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    conv2d_into(&mut out, &x, &w, spec, &mut ws); // warm-up growth
    let baseline = alloc_count();
    for _ in 0..10 {
        conv2d_into(&mut out, &x, &w, spec, &mut ws);
    }
    assert_eq!(
        alloc_count(),
        baseline,
        "steady-state conv2d_into grew the workspace arena"
    );

    // Backward likewise, including its grad_w staging buffer.
    let y = conv2d(&x, &w, spec);
    let g = stream_tensor(9, y.dims());
    let mut gx = Tensor::zeros(&[1]);
    let mut gw = Tensor::zeros(&[1]);
    conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    let baseline = alloc_count();
    for _ in 0..10 {
        conv2d_backward_into(&mut gx, &mut gw, &x, &w, &g, spec, &mut ws);
    }
    assert_eq!(
        alloc_count(),
        baseline,
        "steady-state conv2d_backward_into grew the workspace arena"
    );
}

/// A *smaller* problem after a large one must not shrink the arena (the
/// buffers are grow-only), so alternating shapes settles to zero growth.
#[test]
fn alternating_shapes_settle_to_zero_growth() {
    let big = (
        stream_tensor(1, &[2, 2, 10, 10]),
        stream_tensor(2, &[3, 2, 3, 3]),
    );
    let small = (
        stream_tensor(3, &[1, 1, 5, 5]),
        stream_tensor(4, &[2, 1, 3, 3]),
    );
    let spec = Conv2dSpec::default();
    let mut ws = Workspace::new();
    let mut out = Tensor::zeros(&[1]);
    conv2d_into(&mut out, &big.0, &big.1, spec, &mut ws);
    conv2d_into(&mut out, &small.0, &small.1, spec, &mut ws);
    let baseline = alloc_count();
    for _ in 0..6 {
        conv2d_into(&mut out, &big.0, &big.1, spec, &mut ws);
        conv2d_into(&mut out, &small.0, &small.1, spec, &mut ws);
    }
    assert_eq!(
        alloc_count(),
        baseline,
        "alternating shapes kept allocating"
    );
}
