//! The event-driven product ([`Tensor::matmul_events`]) must be bitwise
//! identical to the naive `i-k-j` triple loop ([`Tensor::matmul_naive`])
//! on finite data — at every density (whichever side of the crossover it
//! lands on) and at every thread count.
//!
//! The documented carve-out: the gather path skips `a[i,k] == 0.0`
//! terms, so rows of `b` that are only ever multiplied by zero may hide
//! NaN/∞ that the dense kernel would propagate. Synaptic weights are
//! finite, so the tests here use finite operands and demand exact bits.

use proptest::prelude::*;
use tensor::event::EVENT_DENSITY_CROSSOVER;
use tensor::parallel::set_max_threads;
use tensor::Tensor;

/// SplitMix64 value stream of finite magnitudes in roughly [-2, 2].
fn stream_value(seed: u64, i: u64) -> f32 {
    let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
}

fn stream_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len as u64).map(|i| stream_value(seed, i)).collect();
    Tensor::from_vec(data, dims)
}

/// A spike-train-shaped tensor: approximately `density_per_mille / 1000`
/// of the entries are non-zero. Non-zero values are 1.0 spikes except
/// every fourth, which is fractional (an avg-pooled spike).
fn spike_tensor(seed: u64, dims: &[usize], density_per_mille: u64) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len as u64)
        .map(|i| {
            let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z ^= z >> 31;
            if z % 1000 < density_per_mille {
                if z % 4 == 0 {
                    0.25
                } else {
                    1.0
                }
            } else {
                0.0
            }
        })
        .collect();
    Tensor::from_vec(data, dims)
}

fn assert_bitwise(events: &Tensor, naive: &Tensor, context: &str) {
    assert_eq!(events.dims(), naive.dims(), "{context}: shape mismatch");
    for (i, (&x, &y)) in events.data().iter().zip(naive.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{context}: element {i} differs: events={x}, naive={y}"
        );
    }
}

fn check_density(m: usize, k: usize, n: usize, density_per_mille: u64, seed: u64) {
    let a = spike_tensor(seed, &[m, k], density_per_mille);
    let b = stream_tensor(seed ^ 0xD1B5_4A32_D192_ED03, &[k, n]);
    let naive = a.matmul_naive(&b);
    for threads in [1usize, 2, 4] {
        set_max_threads(threads);
        let events = a.matmul_events(&b);
        assert_bitwise(
            &events,
            &naive,
            &format!("[{m}x{k}]x[{k}x{n}] density {density_per_mille}/1000 at {threads} threads"),
        );
    }
    set_max_threads(1);
}

/// The satellite's required grid: densities {0, 0.01, 0.1, 0.5, 1.0} ×
/// threads {1, 2, 4}. The low densities take the gather path, the high
/// ones the dense fallback; both must agree with the naive kernel.
#[test]
fn event_product_matches_naive_across_density_grid() {
    for &per_mille in &[0u64, 10, 100, 500, 1000] {
        check_density(24, 96, 40, per_mille, 0xE0E0 + per_mille);
    }
}

/// A product big enough for the parallel gather dispatch, on both sides
/// of the crossover.
#[test]
fn parallel_event_dispatch_is_bitwise_identical() {
    // Sparse: 48*1024*64 MACs scale down with density but the row-shard
    // machinery still engages at forced thread counts.
    check_density(48, 1024, 64, 50, 0xBEEF);
    // Dense side: falls back to the blocked GEMM under the same API.
    check_density(48, 1024, 64, 900, 0xFEED);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes and densities straddling the crossover.
    #[test]
    fn event_product_matches_naive_on_random_shapes(
        m in 1usize..24,
        k in 1usize..80,
        n in 1usize..24,
        per_mille in 0u64..1000,
        seed in 0u64..(1u64 << 32),
    ) {
        check_density(m, k, n, per_mille, seed);
    }
}

/// The density switch is observable through `matmul_events_into`'s
/// return value; sanity-check the crossover constant is honoured.
#[test]
fn density_switch_honours_crossover_constant() {
    let k = 1000usize;
    let b = stream_tensor(3, &[k, 8]);
    let mut out = Tensor::zeros(&[1, 8]);
    let mut ws = tensor::workspace::Workspace::new();
    let sparse_mille = (EVENT_DENSITY_CROSSOVER * 1000.0) as u64 / 2;
    let a_sparse = spike_tensor(11, &[1, k], sparse_mille);
    assert!(a_sparse.matmul_events_into(&b, &mut out, &mut ws));
    let a_dense = spike_tensor(12, &[1, k], 990);
    assert!(!a_dense.matmul_events_into(&b, &mut out, &mut ws));
}
