//! The blocked, packed GEMM behind [`Tensor::matmul`] must be bitwise
//! identical to the naive `i-k-j` triple loop ([`Tensor::matmul_naive`])
//! at every thread count.
//!
//! "Bitwise identical" here is the kernel's documented contract: every
//! non-NaN element (signed zeros and infinities included) has the exact
//! same bit pattern, and an element is NaN in one kernel iff it is NaN in
//! the other (NaN payload bits of fresh arithmetic NaNs are unspecified
//! by the compiler and therefore exempt).

use proptest::prelude::*;
use tensor::parallel::set_max_threads;
use tensor::Tensor;

/// Deterministic value stream (SplitMix64) mixing ordinary magnitudes
/// with the special values the old sparse-row skip used to mishandle:
/// signed zeros, ±∞ and NaN.
fn stream_value(seed: u64, i: u64) -> f32 {
    let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    match z % 64 {
        0 => 0.0,
        1 => -0.0,
        2 => f32::NAN,
        3 => f32::INFINITY,
        4 => f32::NEG_INFINITY,
        5 => 1e-38,
        _ => ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0,
    }
}

fn stream_tensor(seed: u64, dims: &[usize]) -> Tensor {
    let len: usize = dims.iter().product();
    let data = (0..len as u64).map(|i| stream_value(seed, i)).collect();
    Tensor::from_vec(data, dims)
}

/// Asserts the contract: same bits for non-NaN elements, NaN-ness agrees.
fn assert_bitwise_or_nan(blocked: &Tensor, naive: &Tensor, context: &str) {
    assert_eq!(blocked.dims(), naive.dims(), "{context}: shape mismatch");
    for (i, (&x, &y)) in blocked.data().iter().zip(naive.data()).enumerate() {
        if x.is_nan() || y.is_nan() {
            assert!(
                x.is_nan() && y.is_nan(),
                "{context}: element {i} NaN-ness differs: blocked={x}, naive={y}"
            );
        } else {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{context}: element {i} differs: blocked={x}, naive={y}"
            );
        }
    }
}

fn check_shape(m: usize, k: usize, n: usize, seed: u64) {
    let a = stream_tensor(seed, &[m, k]);
    let b = stream_tensor(seed ^ 0xD1B5_4A32_D192_ED03, &[k, n]);
    let naive = a.matmul_naive(&b);
    for threads in [1usize, 2, 4] {
        set_max_threads(threads);
        let blocked = a.matmul(&b);
        assert_bitwise_or_nan(
            &blocked,
            &naive,
            &format!("[{m}x{k}]x[{k}x{n}] at {threads} threads"),
        );
    }
    set_max_threads(1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random shapes straddling the MR=4 / NR=8 microkernel edges, with
    /// data containing signed zeros, infinities and NaNs.
    #[test]
    fn blocked_matches_naive_on_random_shapes(
        m in 1usize..40,
        k in 1usize..70,
        n in 1usize..40,
        seed in 0u64..(1u64 << 32),
    ) {
        check_shape(m, k, n, seed);
    }
}

/// Shapes that cross every cache-blocking boundary: MC=64 (m), KC=256 (k)
/// and NC=256 (n), including ragged remainders on each.
#[test]
fn blocked_matches_naive_across_cache_block_boundaries() {
    for &(m, k, n) in &[
        (65, 10, 9),   // crosses MC with ragged microtiles
        (7, 300, 11),  // crosses KC: two depth panels, ragged second
        (9, 10, 300),  // crosses NC: two column panels
        (70, 260, 17), // MC and KC together
    ] {
        check_shape(m, k, n, 12345);
    }
}

/// A product big enough to trigger the parallel dispatch path
/// (`work >= PAR_GEMM_MIN_WORK`), checked at 1/2/4 threads.
#[test]
fn parallel_dispatch_is_bitwise_identical() {
    // 160 * 64 * 128 = 1.3M multiply-adds > 1<<20.
    check_shape(160, 64, 128, 777);
}

/// The transposed-operand entry points used by the autodiff backward pass
/// agree with materialised transposes composed with the blocked kernel.
#[test]
fn transposed_entry_points_agree_with_materialised_transposes() {
    let g = stream_tensor(1, &[13, 21]);
    let b = stream_tensor(2, &[17, 21]); // used as Bᵀ: [13,21]x[21,17]
    let a = stream_tensor(3, &[13, 9]); // used as Aᵀ: [9,13]x[13,21]
    assert_bitwise_or_nan(&g.matmul_nt(&b), &g.matmul(&b.transpose2d()), "matmul_nt");
    assert_bitwise_or_nan(&a.matmul_tn(&g), &a.transpose2d().matmul(&g), "matmul_tn");
}
