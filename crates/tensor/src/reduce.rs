//! Reductions: full-tensor sums/means, row-wise softmax helpers and argmax.

use crate::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data().iter().sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        self.sum() / self.len() as f32
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Never panics: every tensor holds at least one element.
    pub fn max(&self) -> f32 {
        self.data()
            .iter()
            .copied()
            .fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    pub fn min(&self) -> f32 {
        self.data().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// For a `[N, C]` matrix, the argmax of each row — i.e. the predicted
    /// class per sample for a logits matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        let (n, c) = match self.dims() {
            [n, c] => (*n, *c),
            d => panic!("argmax_rows requires rank 2, got shape {d:?}"),
        };
        let mut out = Vec::with_capacity(n);
        for row in self.data().chunks(c) {
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        out
    }

    /// Row-wise log-softmax of a `[N, C]` matrix, computed with the max-shift
    /// trick for numerical stability.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn log_softmax_rows(&self) -> Tensor {
        let (_, c) = match self.dims() {
            [n, c] => (*n, *c),
            d => panic!("log_softmax_rows requires rank 2, got shape {d:?}"),
        };
        let mut out = self.clone();
        for row in out.data_mut().chunks_mut(c) {
            let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let lse = row.iter().map(|&v| (v - m).exp()).sum::<f32>().ln() + m;
            for v in row {
                *v -= lse;
            }
        }
        out
    }

    /// Row-wise softmax of a `[N, C]` matrix.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn softmax_rows(&self) -> Tensor {
        self.log_softmax_rows().exp()
    }

    /// Sums a `[N, C]` matrix over its rows, returning `[C]`.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn sum_rows(&self) -> Tensor {
        let (_, c) = match self.dims() {
            [n, c] => (*n, *c),
            d => panic!("sum_rows requires rank 2, got shape {d:?}"),
        };
        let mut out = Tensor::zeros(&[c]);
        for row in self.data().chunks(c) {
            for (acc, v) in out.data_mut().iter_mut().zip(row) {
                *acc += v;
            }
        }
        out
    }

    /// L2 norm of the tensor viewed as a flat vector.
    pub fn norm(&self) -> f32 {
        self.data().iter().map(|v| v * v).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_reductions() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), 1.0);
        assert!((t.norm() - 30.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn argmax_picks_first_on_ties_only_when_strictly_greater() {
        let t = Tensor::from_vec(vec![1.0, 3.0, 3.0, 0.0, -1.0, -2.0], &[2, 3]);
        assert_eq!(t.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn log_softmax_rows_sum_to_one_after_exp() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 100.0, 100.0, 100.0], &[2, 3]);
        let p = t.log_softmax_rows().exp();
        for row in p.data().chunks(3) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row sums to {s}");
        }
    }

    #[test]
    fn log_softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 0.0], &[1, 2]);
        let ls = t.log_softmax_rows();
        assert!(!ls.has_non_finite() || ls.data()[1] == f32::NEG_INFINITY);
        assert!((ls.data()[0] - 0.0).abs() < 1e-5);
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 10.0, 20.0], &[2, 2]);
        assert_eq!(t.sum_rows().data(), &[11.0, 22.0]);
    }
}
