//! Reusable scratch-buffer arenas for the allocation-free kernel paths.
//!
//! The SNN hot path re-runs im2col convolution and GEMM at every one of `T`
//! timesteps, for every PGD iteration, for every cell of the exploration
//! grid. Allocating the im2col column matrix and the GEMM packing panels
//! afresh each time dominates small-model wall time; a [`Workspace`] owns
//! those buffers and hands them out for reuse, so in steady state (after the
//! first step warms the arena) the kernels perform **zero scratch
//! allocations**.
//!
//! # Structure
//!
//! * [`WsBuffer`] — one growable `f32` buffer that only ever reallocates
//!   when a request exceeds its high-water capacity.
//! * [`GemmScratch`] — the A/B packing panels of one GEMM worker.
//! * [`ShardScratch`] — everything one parallel worker shard needs
//!   (im2col columns, GEMM panels, gradient scratch). A [`Workspace`]
//!   holds one per worker so scoped threads never contend.
//! * [`Workspace`] — the arena. Create one per batch/simulation and pass it
//!   to the `_into` kernel variants ([`crate::conv::conv2d_into`],
//!   [`crate::conv::conv2d_backward_into`]), or rely on the per-thread
//!   default used by the allocating wrappers ([`with_thread_workspace`]).
//!
//! # Determinism
//!
//! Buffers only affect *where* intermediates live, never the order of
//! floating-point operations: results are bitwise independent of whether a
//! workspace is fresh, reused, or grown/shrunk between calls (see
//! `tests/workspace_reuse.rs`).
//!
//! # Allocation accounting
//!
//! Every buffer growth increments a **thread-local** counter, readable via
//! [`alloc_count`]. Tests warm a path once, snapshot the counter, run the
//! path again and assert the count is unchanged — proving the steady state
//! allocates nothing from the arena. The counter is thread-local so
//! concurrently running tests cannot pollute each other; scratch handed to
//! scoped worker threads is counted on the worker, not the spawner.

use std::cell::{Cell, RefCell};

thread_local! {
    /// Number of workspace buffer allocations (growths) on this thread.
    static WS_ALLOCS: Cell<u64> = const { Cell::new(0) };

    /// The per-thread default workspace used by the allocating kernel
    /// wrappers (`Tensor::matmul`, `conv::conv2d`, …).
    static THREAD_WS: RefCell<Workspace> = RefCell::new(Workspace::new());
}

/// Workspace buffer allocations performed by the **current thread** so far.
///
/// Monotonically increasing; diff two snapshots around a region to count its
/// scratch allocations. See the module docs for the steady-state test
/// pattern.
pub fn alloc_count() -> u64 {
    WS_ALLOCS.with(Cell::get)
}

fn note_alloc() {
    WS_ALLOCS.with(|c| c.set(c.get() + 1));
    // A timing-section gauge, not a counter: each worker thread warms its
    // own arena, so growth events legitimately scale with `--threads`.
    obs::timing_gauge_add("workspace/alloc_growth", 1);
}

/// One growable scratch buffer: requests within the high-water capacity are
/// allocation-free.
#[derive(Debug, Default)]
pub struct WsBuffer {
    buf: Vec<f32>,
}

impl WsBuffer {
    /// Grows the logical length to at least `len` (counting a workspace
    /// allocation only when the capacity must grow).
    fn ensure(&mut self, len: usize) {
        if self.buf.len() < len {
            if self.buf.capacity() < len {
                note_alloc();
            }
            self.buf.resize(len, 0.0);
        }
    }

    /// A `len`-element slice with **unspecified contents** (stale data from
    /// earlier uses); callers must overwrite every element they read.
    pub fn get(&mut self, len: usize) -> &mut [f32] {
        self.ensure(len);
        &mut self.buf[..len]
    }

    /// A `len`-element slice filled with zeros.
    pub fn get_zeroed(&mut self, len: usize) -> &mut [f32] {
        self.ensure(len);
        let s = &mut self.buf[..len];
        s.fill(0.0);
        s
    }

    /// Current capacity in `f32` elements (diagnostics).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// One growable `u32` index buffer — [`WsBuffer`] for the active-neuron
/// index lists of the sparse event path. Growth is counted by the same
/// thread-local allocation counter, so the steady-state-alloc tests cover
/// event buffers exactly like `f32` scratch.
#[derive(Debug, Default)]
pub struct WsIndexBuffer {
    buf: Vec<u32>,
}

impl WsIndexBuffer {
    /// Grows the logical length to at least `len` (counting a workspace
    /// allocation only when the capacity must grow).
    fn ensure(&mut self, len: usize) {
        if self.buf.len() < len {
            if self.buf.capacity() < len {
                note_alloc();
            }
            self.buf.resize(len, 0);
        }
    }

    /// A `len`-element slice with **unspecified contents** (stale data from
    /// earlier uses); callers must overwrite every element they read.
    pub fn get(&mut self, len: usize) -> &mut [u32] {
        self.ensure(len);
        &mut self.buf[..len]
    }

    /// Current capacity in `u32` elements (diagnostics).
    pub fn capacity(&self) -> usize {
        self.buf.capacity()
    }
}

/// The packing panels of one GEMM worker (see [`crate::Tensor::matmul`]'s
/// blocked kernel): an `MC × KC` A-panel and a `KC × NC` B-panel.
#[derive(Debug, Default)]
pub struct GemmScratch {
    pub(crate) pack_a: WsBuffer,
    pub(crate) pack_b: WsBuffer,
}

/// All the scratch one parallel worker shard needs. A [`Workspace`] keeps
/// one `ShardScratch` per worker so scoped threads own disjoint buffers.
#[derive(Debug, Default)]
pub struct ShardScratch {
    /// im2col column matrix of the image currently being convolved.
    pub(crate) im2col: WsBuffer,
    /// GEMM packing panels.
    pub(crate) gemm: GemmScratch,
    /// Column-gradient matrix (`wᵀ·g`) in the conv backward pass.
    pub(crate) col_grad: WsBuffer,
    /// Active-neuron indices of the spike row currently being gathered
    /// (sparse event path, see [`crate::Tensor::matmul_events`]).
    pub(crate) event_idx: WsIndexBuffer,
    /// The matching non-zero spike values (pooled spikes are fractional).
    pub(crate) event_val: WsBuffer,
}

/// A reusable scratch arena for the `_into` kernel variants.
///
/// Create one per batch/simulation, pass it to every
/// [`crate::conv::conv2d_into`] / [`crate::conv::conv2d_backward_into`]
/// call, and the im2col/packing/gradient scratch is allocated once and
/// reused across all timesteps and attack iterations. See the module docs
/// for the determinism and accounting contracts.
///
/// # Example
///
/// ```
/// use tensor::conv::{conv2d, conv2d_into, Conv2dSpec};
/// use tensor::{workspace::Workspace, Tensor};
///
/// let x = Tensor::ones(&[1, 1, 4, 4]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// let mut ws = Workspace::new();
/// let mut y = Tensor::zeros(&[1]);
/// for _step in 0..8 {
///     // After the first call the arena is warm: no scratch allocations.
///     conv2d_into(&mut y, &x, &w, Conv2dSpec::default(), &mut ws);
/// }
/// assert_eq!(y, conv2d(&x, &w, Conv2dSpec::default()));
/// ```
#[derive(Debug, Default)]
pub struct Workspace {
    shards: Vec<ShardScratch>,
    /// Per-image weight-gradient contributions of the conv backward pass,
    /// kept outside the shards because it is reduced serially in image
    /// order after the parallel section (bitwise-stable summation).
    grad_w_parts: WsBuffer,
}

/// Stops the process heap from bouncing pages between the allocator and
/// the kernel (first call only; later calls are free).
///
/// The tape-based time loop allocates a few megabytes of per-step tensors
/// per forward pass and frees them all when the tape drops. With glibc's
/// default tuning that free raises the heap's top chunk past the trim
/// threshold, the pages go back to the OS, and the *next* pass pays a
/// minor page fault per 4 KiB re-touched — measured at ~460 faults (and
/// most of the wall time) per 16-step LIF window. Raising the trim
/// threshold once keeps the steady-state working set mapped, which is the
/// same contract the [`Workspace`] arena provides for kernel scratch,
/// extended to the heap that backs tape tensors.
///
/// Non-glibc targets get a no-op: the tuning is an optimization, never a
/// correctness requirement, and results are bitwise identical either way.
pub fn retain_heap_pages() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        #[cfg(all(target_os = "linux", target_env = "gnu"))]
        {
            extern "C" {
                fn mallopt(param: core::ffi::c_int, value: core::ffi::c_int) -> core::ffi::c_int;
            }
            // glibc <malloc.h> parameter numbers (stable ABI).
            const M_TRIM_THRESHOLD: core::ffi::c_int = -1;
            const M_TOP_PAD: core::ffi::c_int = -2;
            // SAFETY: `mallopt` is glibc's documented allocator-tuning
            // entry point; it touches no caller memory and only adjusts
            // malloc parameters, which is sound from any thread.
            unsafe {
                mallopt(M_TRIM_THRESHOLD, core::ffi::c_int::MAX);
                mallopt(M_TOP_PAD, 4 << 20);
            }
        }
    });
}

impl Workspace {
    /// An empty arena; buffers grow on first use.
    ///
    /// Also applies the process-wide [`retain_heap_pages`] tuning: every
    /// hot path starts by creating (or lazily reaching) a workspace, so
    /// this is the natural once-per-process hook.
    pub fn new() -> Self {
        retain_heap_pages();
        Self::default()
    }

    /// At least `n` per-worker scratch shards (growing the list as needed;
    /// `ShardScratch` construction itself allocates no `f32` storage).
    pub(crate) fn shards(&mut self, n: usize) -> &mut [ShardScratch] {
        if self.shards.len() < n {
            self.shards.resize_with(n, Default::default);
        }
        &mut self.shards[..n]
    }

    /// Simultaneous access to `n` shards and the weight-gradient staging
    /// buffer (the conv backward pass needs both at once).
    pub(crate) fn split(&mut self, n: usize) -> (&mut [ShardScratch], &mut WsBuffer) {
        if self.shards.len() < n {
            self.shards.resize_with(n, Default::default);
        }
        (&mut self.shards[..n], &mut self.grad_w_parts)
    }
}

/// Runs `f` with the calling thread's persistent default [`Workspace`].
///
/// This is what makes the plain allocating APIs ([`crate::Tensor::matmul`],
/// [`crate::conv::conv2d`], …) allocation-free in steady state without any
/// caller plumbing: the training loop, the SNN time loop and every PGD
/// iteration run on one thread and therefore share one warm arena.
///
/// Re-entrant calls (a kernel invoked while the thread workspace is already
/// borrowed) fall back to a fresh temporary arena instead of panicking.
pub fn with_thread_workspace<R>(f: impl FnOnce(&mut Workspace) -> R) -> R {
    THREAD_WS.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ws) => f(&mut ws),
        Err(_) => f(&mut Workspace::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_reuse_is_allocation_free() {
        let mut b = WsBuffer::default();
        let before = alloc_count();
        b.get_zeroed(128);
        assert_eq!(alloc_count(), before + 1, "first growth must be counted");
        b.get(64);
        b.get_zeroed(128);
        b.get(1);
        assert_eq!(
            alloc_count(),
            before + 1,
            "requests within capacity are free"
        );
        b.get(129);
        assert_eq!(alloc_count(), before + 2, "exceeding capacity reallocates");
    }

    #[test]
    fn get_zeroed_clears_stale_contents() {
        let mut b = WsBuffer::default();
        b.get(8).fill(7.0);
        assert!(b.get_zeroed(8).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn shards_grow_and_persist() {
        let mut ws = Workspace::new();
        assert_eq!(ws.shards(3).len(), 3);
        ws.shards(3)[2].im2col.get(16);
        let cap = ws.shards(3)[2].im2col.capacity();
        assert!(cap >= 16);
        // Asking for fewer shards must not drop the extras' buffers.
        ws.shards(1);
        assert_eq!(ws.shards(3)[2].im2col.capacity(), cap);
    }

    #[test]
    fn thread_workspace_is_reentrant_safe() {
        with_thread_workspace(|outer| {
            outer.shards(1)[0].im2col.get(4);
            // A nested borrow gets a temporary arena rather than panicking.
            with_thread_workspace(|inner| {
                inner.shards(1)[0].im2col.get(4);
            });
        });
    }
}
