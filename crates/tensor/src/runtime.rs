//! The persistent worker pool behind every [`crate::parallel`] helper.
//!
//! Before this module, each parallel section spawned fresh
//! `crossbeam::scope` threads and joined them on exit — a fixed
//! spawn/join tax paid once per call, and the reason the GEMM dispatch
//! needed a per-shard work floor at all. The SNN time loop multiplies
//! that tax by `T` timesteps per forward pass. The pool replaces it with
//! long-lived workers parked on a [`Condvar`]: the first parallel section
//! spawns them (lazily, up to [`MAX_POOL_WORKERS`]), every later section
//! wakes them, and a warm process performs **zero thread spawns** in
//! steady state (asserted by the `spawn_guard` bench step via
//! [`spawn_count`]).
//!
//! # Determinism contract
//!
//! The pool never changes *what* is computed, only *which thread*
//! computes it. `dispatch` runs pieces `0..pieces` exactly once each;
//! piece boundaries come from the caller ([`crate::parallel::chunk_ranges`]
//! produces the same shards as the scoped-thread implementation did), and
//! piece→executor assignment is fixed and deterministic: executor `e` of
//! `E` runs pieces `e, e+E, e+2E, …` (the caller is executor 0, pool
//! worker `i` is executor `i+1`). Since every piece runs the same code on
//! the same data regardless of executor, outputs are bitwise identical to
//! the serial loop at every thread count — exactly the guarantee the
//! scoped implementation gave, minus the per-call spawns.
//!
//! # Synchronization protocol
//!
//! One global job slot guarded by a [`Mutex`] plus two condvars (`work`
//! publishes, `done` acknowledges) and a `lease` mutex serializing
//! concurrent top-level dispatchers (e.g. two `serve` replicas): a
//! dispatcher takes the lease, publishes the job with a bumped sequence
//! number, participates as executor 0, then waits for every registered
//! worker to check in. Workers register under the state lock *before*
//! reading the current sequence number, so a worker spawned while a job
//! is in flight can never join a job it was not counted into. Panics in
//! any piece are caught, the first is stored, and `dispatch` re-raises
//! it on the caller after all workers have checked in — same observable
//! behavior as the scoped-thread join.
//!
//! Nested parallel sections (a piece that itself calls a parallel helper)
//! run inline on their executor: the thread-local `ACTIVE` flag marks
//! pool workers permanently and the caller for the duration of its
//! participation, so nesting can never deadlock on the single job slot.
//!
//! # Metrics
//!
//! * `tensor/pool_dispatches` — deterministic counter, one per parallel
//!   section *entry* (including inline/serial ones, counted by the
//!   helpers in [`crate::parallel`]), so the value is independent of the
//!   thread count.
//! * `tensor/pool_wake_ns` — quarantined wall-clock timing gauge:
//!   nanoseconds from job publication to each worker starting its first
//!   piece. Never part of deterministic artifacts.

use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Upper bound on pool threads: `1 + MAX_POOL_WORKERS` executors serve
/// any dispatch. Callers may request hundreds of pieces (piece counts
/// drive shard *boundaries*, which must stay thread-count independent);
/// executors beyond the piece count or this cap would only idle.
pub const MAX_POOL_WORKERS: usize = 15;

/// One published parallel section. `f` borrows the dispatcher's stack;
/// the protocol guarantees the borrow outlives every worker's use (the
/// dispatcher cannot return before `remaining` hits zero).
#[derive(Clone, Copy)]
struct Job {
    f: &'static (dyn Fn(usize) + Sync),
    pieces: usize,
    executors: usize,
    published: Instant,
}

struct State {
    /// Bumped once per published job; workers wait for it to advance.
    seq: u64,
    job: Option<Job>,
    /// Registered workers that have not yet checked in for the current job.
    remaining: usize,
    /// First panic payload caught by any worker for the current job.
    panic: Option<Box<dyn Any + Send>>,
    /// Threads launched (some may not have registered yet).
    spawned: usize,
    /// Workers parked in the wait loop (registered under this lock).
    registered: usize,
}

struct Shared {
    state: Mutex<State>,
    /// Signals workers: a new job was published (`state.seq` advanced).
    work: Condvar,
    /// Signals the dispatcher: registration or check-in progressed.
    done: Condvar,
    /// Serializes top-level dispatchers; held for the whole job.
    lease: Mutex<()>,
}

fn shared() -> &'static Shared {
    static SHARED: OnceLock<Shared> = OnceLock::new();
    SHARED.get_or_init(|| Shared {
        state: Mutex::new(State {
            seq: 0,
            job: None,
            remaining: 0,
            panic: None,
            spawned: 0,
            registered: 0,
        }),
        work: Condvar::new(),
        done: Condvar::new(),
        lease: Mutex::new(()),
    })
}

thread_local! {
    /// `true` on pool workers (permanently) and on a dispatcher while it
    /// participates in its own job: parallel sections entered with the
    /// flag set run inline, making nesting deadlock-free.
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
}

/// Test/diagnostic knob: force every dispatch inline on the caller.
static FORCE_SERIAL: AtomicBool = AtomicBool::new(false);
/// Total pool threads ever spawned by this process (a plain atomic, not
/// an obs counter: spawns happen once per process, so the value is *not*
/// thread-count deterministic and must stay out of metrics artifacts).
static SPAWNED_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Forces every `dispatch` to run inline on the calling thread (the
/// serial reference path). Bitwise-identity tests diff pooled against
/// forced-serial output; the knob is global, so don't leave it set.
pub fn set_force_serial(on: bool) {
    FORCE_SERIAL.store(on, Ordering::Relaxed);
}

/// Whether [`set_force_serial`] is currently set.
pub fn force_serial() -> bool {
    FORCE_SERIAL.load(Ordering::Relaxed)
}

/// How many pool worker threads this process has ever spawned. Flat in
/// steady state: the warm SNN loop must not move it (the bench
/// `spawn_guard` enforces exactly that).
pub fn spawn_count() -> u64 {
    SPAWNED_TOTAL.load(Ordering::Relaxed)
}

/// Records one parallel-section entry on the deterministic
/// `tensor/pool_dispatches` counter. Called by every [`crate::parallel`]
/// helper exactly once per call — serial fast paths included — so the
/// count depends only on the call sequence, never on the thread count.
pub(crate) fn note_dispatch() {
    obs::counter_add("tensor/pool_dispatches", 1);
}

/// A raw pointer that crosses the dispatch boundary. Each use site hands
/// disjoint regions of the pointee to different pieces; the SAFETY
/// comments at those sites carry the aliasing argument.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T>(pub(crate) *mut T);

// SAFETY: SendPtr only moves the *address* to pool workers; every use
// site derives disjoint, exclusively-owned regions from it (one per
// piece, each piece executed exactly once).
unsafe impl<T> Send for SendPtr<T> {}
// SAFETY: same argument as Send — shared access is to the address only.
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn get(&self) -> *mut T {
        self.0
    }
}

fn worker_main(index: usize) {
    ACTIVE.with(|a| a.set(true));
    let shared = shared();
    let mut guard = shared.state.lock().expect("pool state poisoned");
    guard.registered += 1;
    shared.done.notify_all();
    // Synchronize with any in-flight job: this worker was not counted
    // into `remaining` for it, so it must wait for the *next* sequence
    // number. Reading `seq` under the same lock registration happened
    // under makes that exact.
    let mut last_seq = guard.seq;
    loop {
        while guard.seq == last_seq {
            guard = shared.work.wait(guard).expect("pool state poisoned");
        }
        last_seq = guard.seq;
        let job = guard.job.expect("sequence advanced without a job");
        drop(guard);
        let mut failure = None;
        if index + 1 < job.executors {
            if obs::enabled() {
                let ns = job.published.elapsed().as_nanos() as u64;
                obs::timing_gauge_add("tensor/pool_wake_ns", ns);
            }
            let run = catch_unwind(AssertUnwindSafe(|| {
                let mut piece = index + 1;
                while piece < job.pieces {
                    (job.f)(piece);
                    piece += job.executors;
                }
            }));
            if let Err(payload) = run {
                failure = Some(payload);
            }
        }
        guard = shared.state.lock().expect("pool state poisoned");
        if let Some(payload) = failure {
            // Keep the first panic; later ones joined the same root cause.
            if guard.panic.is_none() {
                guard.panic = Some(payload);
            }
        }
        guard.remaining -= 1;
        if guard.remaining == 0 {
            shared.done.notify_all();
        }
    }
}

/// Spawns pool workers until at least `needed` are registered (clamped
/// to [`MAX_POOL_WORKERS`]); returns once they are all parked in the
/// wait loop. Idempotent and cheap when the pool is already warm.
fn ensure_workers(shared: &'static Shared, needed: usize) {
    let needed = needed.min(MAX_POOL_WORKERS);
    let mut guard = shared.state.lock().expect("pool state poisoned");
    while guard.spawned < needed {
        let index = guard.spawned;
        guard.spawned += 1;
        SPAWNED_TOTAL.fetch_add(1, Ordering::Relaxed);
        std::thread::Builder::new()
            .name(format!("tensor-pool-{index}"))
            .spawn(move || worker_main(index))
            .expect("failed to spawn pool worker");
    }
    while guard.registered < needed {
        guard = shared.done.wait(guard).expect("pool state poisoned");
    }
}

/// Runs `f(piece)` for every piece in `0..pieces`, each exactly once,
/// fanning out over the persistent pool. Piece→executor assignment is
/// the fixed stride documented in the module docs, so results never
/// depend on how many executors participate. Runs inline (plain serial
/// loop, no locks touched) when there is nothing to fan out, when
/// [`force_serial`] is set, or when called from inside another dispatch.
///
/// # Panics
///
/// Propagates the first panic raised by any piece, after every worker
/// has checked in (no piece is left running).
// armor-lint: hot
pub(crate) fn dispatch<F: Fn(usize) + Sync>(pieces: usize, f: F) {
    if pieces == 0 {
        return;
    }
    if pieces == 1 || force_serial() || ACTIVE.with(|a| a.get()) {
        for piece in 0..pieces {
            f(piece);
        }
        return;
    }
    let executors = pieces.min(MAX_POOL_WORKERS + 1);
    let shared = shared();
    ensure_workers(shared, executors - 1);
    let lease = shared.lease.lock().expect("pool lease poisoned");
    let f_ref: &(dyn Fn(usize) + Sync) = &f;
    // The job (and this borrow of `f`) is retired before `dispatch`
    // returns: we wait below until every registered worker has checked in
    // for this sequence number, and workers only call `job.f` between
    // reading the job and checking in.
    // SAFETY: the 'static lifetime is a fiction the check-in protocol
    // above makes unobservable; the borrow ends before `dispatch` returns.
    let f_static: &'static (dyn Fn(usize) + Sync) =
        unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(f_ref) };
    let mut guard = shared.state.lock().expect("pool state poisoned");
    let expected = guard.registered;
    guard.seq += 1;
    guard.job = Some(Job {
        f: f_static,
        pieces,
        executors,
        published: Instant::now(),
    });
    guard.remaining = expected;
    drop(guard);
    shared.work.notify_all();
    // Participate as executor 0; ACTIVE makes nested sections run inline.
    ACTIVE.with(|a| a.set(true));
    let caller = catch_unwind(AssertUnwindSafe(|| {
        let mut piece = 0;
        while piece < pieces {
            f(piece);
            piece += executors;
        }
    }));
    ACTIVE.with(|a| a.set(false));
    let mut guard = shared.state.lock().expect("pool state poisoned");
    while guard.remaining > 0 {
        // armor-lint: allow(lock-order) -- workers check in through `state`/`done` only and never take `lease`; holding the dispatch lease across this wait is exactly what serializes dispatches
        guard = shared.done.wait(guard).expect("pool state poisoned");
    }
    guard.job = None;
    let pool_panic = guard.panic.take();
    drop(guard);
    drop(lease);
    if let Some(payload) = pool_panic {
        std::panic::resume_unwind(payload);
    }
    if let Err(payload) = caller {
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn every_piece_runs_exactly_once() {
        for pieces in [1usize, 2, 3, 16, 17, 64] {
            let hits: Vec<AtomicUsize> = (0..pieces).map(|_| AtomicUsize::new(0)).collect();
            dispatch(pieces, |p| {
                hits[p].fetch_add(1, Ordering::Relaxed);
            });
            for (p, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), 1, "piece {p} of {pieces}");
            }
        }
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let hits = AtomicUsize::new(0);
        dispatch(4, |_| {
            dispatch(3, |_| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 12);
    }

    #[test]
    fn force_serial_runs_on_the_caller() {
        set_force_serial(true);
        let main = std::thread::current().id();
        dispatch(8, |_| {
            assert_eq!(std::thread::current().id(), main);
        });
        set_force_serial(false);
    }

    #[test]
    fn pool_panic_reaches_the_dispatcher() {
        let caught = std::panic::catch_unwind(|| {
            dispatch(8, |p| {
                assert!(p != 5, "piece five exploded");
            });
        });
        assert!(caught.is_err());
        // The pool must stay serviceable after a panicked job.
        let hits = AtomicUsize::new(0);
        dispatch(8, |_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn warm_pool_spawns_no_new_threads() {
        // Warm up to the cap, then verify further dispatches reuse it.
        dispatch(MAX_POOL_WORKERS + 1, |_| {});
        let warm = spawn_count();
        for _ in 0..32 {
            dispatch(MAX_POOL_WORKERS + 1, |_| {});
        }
        assert_eq!(spawn_count(), warm, "warm dispatches must not spawn");
    }
}
