//! Cache-blocked, packed GEMM kernel — the compute core behind
//! [`crate::Tensor::matmul`] and the im2col convolutions.
//!
//! # Algorithm
//!
//! Classic three-level BLIS-style tiling: the `N` dimension is split into
//! `NC`-wide column blocks, the `K` dimension into `KC`-deep panels, and the
//! `M` dimension into `MC`-tall row blocks. For each `(jc, pc)` pair the
//! `KC × NC` slice of `B` is packed once into a contiguous panel buffer and
//! reused across every row block; for each `(jc, pc, ic)` the `MC × KC`
//! slice of `A` is packed likewise. The innermost work is a fixed
//! `MR × NR` register microkernel that keeps the output tile in locals
//! across the whole `KC` depth — `(MR + NR)` loads per `2·MR·NR` flops
//! instead of the naive kernel's load-and-store per element.
//!
//! # Determinism contract
//!
//! For every output element `c[i][j]`, products `a[i][k]·b[k][j]` are added
//! **in ascending `k` order into a single accumulator** — exactly the
//! per-element operation sequence of the naive `i-k-j` triple loop
//! ([`crate::Tensor::matmul_naive`]). The `KC` blocking merely spills the
//! accumulator to `C` between depth panels (an exact f32 store/load), the
//! `MC`/`NC` blocking only reorders *which elements* are produced when, and
//! edge tiles run a scalar loop with the same `k` order. Transposed operand
//! layouts change packing addresses, never values. The row-sharded parallel
//! dispatch in [`crate::Tensor::matmul`] gives each worker disjoint rows of
//! `C` computed by this same serial code. Results are therefore **bitwise
//! identical** to the naive kernel — infinities and signed zeros included —
//! at every thread count and for every tiling-boundary geometry
//! (property-tested in `tests/gemm_bitwise.rs`). The single carve-out is
//! NaN *payloads*: an element is NaN in the blocked kernel iff it is NaN in
//! the naive one, but the payload/sign bits of freshly produced arithmetic
//! NaNs are unspecified by the language (LLVM may pick different
//! instructions per loop shape), so they are not compared.

use std::fmt;
use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::workspace::GemmScratch;

/// Lifetime total of `pack_a` invocations (prepack builds included).
static PACK_A_CALLS: AtomicU64 = AtomicU64::new(0);
/// Lifetime total of `pack_b` invocations (prepack builds included).
static PACK_B_CALLS: AtomicU64 = AtomicU64::new(0);

/// Process-lifetime count of A-panel packing calls. Deliberately a plain
/// atomic rather than an `obs` counter: pack counts depend on shard
/// geometry (each row shard packs its own A panels), so they are not
/// thread-count deterministic. Used by steady-state guards asserting a
/// warm prepacked loop performs zero packing work.
pub fn pack_a_calls() -> u64 {
    PACK_A_CALLS.load(Ordering::Relaxed)
}

/// Process-lifetime count of B-panel packing calls. See [`pack_a_calls`].
pub fn pack_b_calls() -> u64 {
    PACK_B_CALLS.load(Ordering::Relaxed)
}

/// Microkernel tile height (rows of `C` held in registers).
pub(crate) const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers).
pub(crate) const NR: usize = 16;
/// Row-block height; A panels are `MC × KC`. Multiple of `MR`.
pub(crate) const MC: usize = 64;
/// Depth-block size shared by both packed panels.
pub(crate) const KC: usize = 256;
/// Column-block width; B panels are `KC × NC`. Multiple of `NR`.
pub(crate) const NC: usize = 256;

/// Logical shape and operand layouts of one GEMM: `C[m×n] += A[m×k]·B[k×n]`.
///
/// `a_trans`/`b_trans` flag operands stored transposed: with `a_trans` the
/// buffer holds `A` as `[k × m]` row-major (so `A[i,p]` reads
/// `a[p·m + i]`), and with `b_trans` the buffer holds `B` as `[n × k]`
/// (so `B[p,j]` reads `b[j·k + p]`). This lets the autodiff backward pass
/// compute `g·Bᵀ` and `Aᵀ·g` without materialising transposes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GemmSpec {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub a_trans: bool,
    pub b_trans: bool,
}

#[inline(always)]
fn a_at(a: &[f32], spec: GemmSpec, i: usize, p: usize) -> f32 {
    if spec.a_trans {
        a[p * spec.m + i]
    } else {
        a[i * spec.k + p]
    }
}

#[inline(always)]
fn b_at(b: &[f32], spec: GemmSpec, p: usize, j: usize) -> f32 {
    if spec.b_trans {
        b[j * spec.k + p]
    } else {
        b[p * spec.n + j]
    }
}

/// Packs the `rows × kc` block of `A` starting at `(row0, pc)` into `MR`-row
/// panels: panel `ir` (covering absolute rows `row0+ir .. row0+ir+mr`) is
/// stored depth-major at offset `ir·kc` with stride `mr` — the exact panel
/// height, so edge panels carry no padding (padding would inject spurious
/// `0·b` terms and break NaN/−0.0 bitwise identity).
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    spec: GemmSpec,
    row0: usize,
    rows: usize,
    pc: usize,
    kc: usize,
) {
    PACK_A_CALLS.fetch_add(1, Ordering::Relaxed);
    for ir in (0..rows).step_by(MR) {
        let mr = MR.min(rows - ir);
        let panel = &mut dst[ir * kc..(ir + mr) * kc];
        for kk in 0..kc {
            for r in 0..mr {
                panel[kk * mr + r] = a_at(a, spec, row0 + ir + r, pc + kk);
            }
        }
    }
}

/// Packs the `kc × nc` block of `B` starting at `(pc, jc)` into `NR`-column
/// panels: panel `jr` is stored depth-major at offset `jr·kc` with stride
/// `nr` (exact width, no padding — same rationale as `pack_a`).
fn pack_b(dst: &mut [f32], b: &[f32], spec: GemmSpec, pc: usize, kc: usize, jc: usize, nc: usize) {
    PACK_B_CALLS.fetch_add(1, Ordering::Relaxed);
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let panel = &mut dst[jr * kc..(jr + nr) * kc];
        for kk in 0..kc {
            for cc in 0..nr {
                panel[kk * nr + cc] = b_at(b, spec, pc + kk, jc + jr + cc);
            }
        }
    }
}

/// The full `MR × NR` register microkernel: loads the output tile, streams
/// both packed panels over the `kc` depth and stores the tile back. Per
/// element the additions run in ascending `k` order into one accumulator.
#[inline]
fn kernel_full(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for (a_k, b_k) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = a_k[r];
            for (cc, slot) in row.iter_mut().enumerate() {
                *slot += ar * b_k[cc];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Edge-tile kernel for partial `mr × nr` tiles (panel strides are the
/// actual tile sizes). Scalar loops, same ascending-`k` accumulation.
fn kernel_edge(kc: usize, mr: usize, nr: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    for r in 0..mr {
        for cc in 0..nr {
            let mut acc = c[r * ldc + cc];
            for kk in 0..kc {
                acc += ap[kk * mr + r] * bp[kk * nr + cc];
            }
            c[r * ldc + cc] = acc;
        }
    }
}

/// A weight matrix packed once into the exact B-panel layout that
/// `gemm_block` would produce on the fly: for each `(jc, pc)` block the
/// `kc × nc` slice lives at offset `jc·k + pc·nc` in `(jc, pc)` loop
/// order, filled by the same `pack_b` routine. Because the bytes the
/// microkernel streams are identical, every result computed through a
/// `PrepackedB` is bitwise identical to the pack-per-call path — the cache
/// changes *when* packing happens, never *what* is packed.
pub struct PrepackedB {
    data: Vec<f32>,
    pub(crate) k: usize,
    pub(crate) n: usize,
}

impl fmt::Debug for PrepackedB {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrepackedB({}x{})", self.k, self.n)
    }
}

impl PrepackedB {
    /// Packs the full `k × n` operand `b` (layout per `spec.b_trans`) into
    /// panel form. Runs every `(jc, pc)` block through `pack_b` exactly
    /// once, so a build counts toward [`pack_b_calls`] but warm reuse does
    /// not.
    pub(crate) fn pack_from(b: &[f32], spec: GemmSpec) -> Self {
        let (k, n) = (spec.k, spec.n);
        let mut data = vec![0.0f32; k * n];
        for jc in (0..n).step_by(NC) {
            let nc = NC.min(n - jc);
            for pc in (0..k).step_by(KC) {
                let kc = KC.min(k - pc);
                let off = jc * k + pc * nc;
                pack_b(&mut data[off..off + kc * nc], b, spec, pc, kc, jc, nc);
            }
        }
        Self { data, k, n }
    }

    /// Returns the `(k, n)` logical shape this operand was packed for.
    pub fn shape(&self) -> (usize, usize) {
        (self.k, self.n)
    }

    // armor-lint: hot
    fn panel(&self, jc: usize, nc: usize, pc: usize, kc: usize) -> &[f32] {
        let off = jc * self.k + pc * nc;
        &self.data[off..off + kc * nc]
    }
}

/// An A-operand (conv weight matrix) packed once into `pack_a` panel
/// layout for the **full** row range `0..m`: the `(pc, ic)` block lives at
/// offset `pc·m + ic·kc`. Valid only for GEMMs computing all `m` rows —
/// exactly the per-image conv product, whose row range is always `0..o`.
/// Same bitwise-identity argument as [`PrepackedB`].
pub struct PrepackedA {
    data: Vec<f32>,
    pub(crate) m: usize,
    pub(crate) k: usize,
}

impl fmt::Debug for PrepackedA {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PrepackedA({}x{})", self.m, self.k)
    }
}

impl PrepackedA {
    /// Packs the full `m × k` operand `a` (layout per `spec.a_trans`) into
    /// panel form via `pack_a`.
    pub(crate) fn pack_from(a: &[f32], spec: GemmSpec) -> Self {
        let (m, k) = (spec.m, spec.k);
        let mut data = vec![0.0f32; m * k];
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let off = pc * m + ic * kc;
                pack_a(&mut data[off..off + mc * kc], a, spec, ic, mc, pc, kc);
            }
        }
        Self { data, m, k }
    }

    /// Returns the `(m, k)` logical shape this operand was packed for.
    pub fn shape(&self) -> (usize, usize) {
        (self.m, self.k)
    }

    // armor-lint: hot
    fn panel(&self, pc: usize, kc: usize, ic: usize, mc: usize) -> &[f32] {
        let off = pc * self.m + ic * kc;
        &self.data[off..off + mc * kc]
    }
}

/// The shared `jr`/`ir` microkernel sweep over one `(ic, jc)` tile pair:
/// identical for packed-on-the-fly and prepacked panels, which is what
/// makes the prepacked drivers bitwise-identical by construction.
#[inline]
#[allow(clippy::too_many_arguments)]
fn tile_block(
    c: &mut [f32],
    n: usize,
    kc: usize,
    mc: usize,
    nc: usize,
    ic: usize,
    jc: usize,
    ap: &[f32],
    bp: &[f32],
) {
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let bpanel = &bp[jr * kc..(jr + nr) * kc];
        for ir in (0..mc).step_by(MR) {
            let mr = MR.min(mc - ir);
            let apanel = &ap[ir * kc..(ir + mr) * kc];
            let c_tile = &mut c[(ic + ir) * n + jc + jr..];
            if mr == MR && nr == NR {
                kernel_full(kc, apanel, bpanel, c_tile, n);
            } else {
                kernel_edge(kc, mr, nr, apanel, bpanel, c_tile, n);
            }
        }
    }
}

/// Accumulates `A[rows, :] · B` into `c`, the row-major `rows.len() × n`
/// output slice for the absolute row range `rows` (callers pre-zero `c` for
/// a plain product). Packing panels are leased from `scratch` — warm
/// buffers make the call allocation-free.
pub(crate) fn gemm_block(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    spec: GemmSpec,
    rows: Range<usize>,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (spec.k, spec.n);
    debug_assert_eq!(c.len(), rows.len() * n);
    if rows.is_empty() || n == 0 || k == 0 {
        return;
    }
    // Every matmul/conv funnels through this block (the parallel dispatch
    // shards disjoint row ranges), so per-shard MAC counts sum to exactly
    // m·k·n per GEMM regardless of thread count.
    obs::counter_add("tensor/gemm_macs", (rows.len() * k * n) as u64);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp = scratch.pack_b.get(nc * kc);
            pack_b(bp, b, spec, pc, kc, jc, nc);
            for ic in (0..rows.len()).step_by(MC) {
                let mc = MC.min(rows.len() - ic);
                let ap = scratch.pack_a.get(mc * kc);
                pack_a(ap, a, spec, rows.start + ic, mc, pc, kc);
                tile_block(c, n, kc, mc, nc, ic, jc, ap, bp);
            }
        }
    }
}

/// `gemm_block` with the B operand already in panel form: zero
/// `pack_b` work per call. `A` is still packed per row block from
/// `scratch` (it is the activation operand, different every call). The
/// absolute row range `rows` shards exactly like `gemm_block`, because B
/// panels are row-independent.
// armor-lint: hot
pub(crate) fn gemm_block_prepacked(
    c: &mut [f32],
    a: &[f32],
    pb: &PrepackedB,
    spec: GemmSpec,
    rows: Range<usize>,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (spec.k, spec.n);
    debug_assert_eq!((pb.k, pb.n), (k, n), "prepacked B shape mismatch");
    debug_assert_eq!(c.len(), rows.len() * n);
    if rows.is_empty() || n == 0 || k == 0 {
        return;
    }
    obs::counter_add("tensor/gemm_macs", (rows.len() * k * n) as u64);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp = pb.panel(jc, nc, pc, kc);
            for ic in (0..rows.len()).step_by(MC) {
                let mc = MC.min(rows.len() - ic);
                let ap = scratch.pack_a.get(mc * kc);
                pack_a(ap, a, spec, rows.start + ic, mc, pc, kc);
                tile_block(c, n, kc, mc, nc, ic, jc, ap, bp);
            }
        }
    }
}

/// `gemm_block` with the A operand already in panel form — the conv
/// weight path, where `A` is the `[o, c·kh·kw]` kernel matrix and `B` is
/// the input-dependent im2col buffer (packed per call from `scratch`;
/// it *cannot* be prepacked). Computes the full `0..m` row range, which
/// is the only range [`PrepackedA`] panels are keyed for.
// armor-lint: hot
pub(crate) fn gemm_block_prepacked_a(
    c: &mut [f32],
    pa: &PrepackedA,
    b: &[f32],
    spec: GemmSpec,
    scratch: &mut GemmScratch,
) {
    let (m, k, n) = (spec.m, spec.k, spec.n);
    debug_assert_eq!((pa.m, pa.k), (m, k), "prepacked A shape mismatch");
    debug_assert_eq!(c.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    obs::counter_add("tensor/gemm_macs", (m * k * n) as u64);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp = scratch.pack_b.get(nc * kc);
            pack_b(bp, b, spec, pc, kc, jc, nc);
            for ic in (0..m).step_by(MC) {
                let mc = MC.min(m - ic);
                let ap = pa.panel(pc, kc, ic, mc);
                tile_block(c, n, kc, mc, nc, ic, jc, ap, bp);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::GemmScratch;

    fn gemm_dense(a: &[f32], b: &[f32], spec: GemmSpec) -> Vec<f32> {
        let mut c = vec![0.0; spec.m * spec.n];
        let mut scratch = GemmScratch::default();
        gemm_block(&mut c, a, b, spec, 0..spec.m, &mut scratch);
        c
    }

    fn naive(a: &[f32], b: &[f32], spec: GemmSpec) -> Vec<f32> {
        let mut c = vec![0.0; spec.m * spec.n];
        for i in 0..spec.m {
            for p in 0..spec.k {
                let av = a_at(a, spec, i, p);
                for j in 0..spec.n {
                    c[i * spec.n + j] += av * b_at(b, spec, p, j);
                }
            }
        }
        c
    }

    fn spec(m: usize, k: usize, n: usize) -> GemmSpec {
        GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: false,
        }
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) * scale)
            .collect()
    }

    #[test]
    fn matches_naive_across_tile_boundaries() {
        // Geometries chosen to hit: exact microkernel multiples, edge tiles
        // in both directions, and KC/MC/NC block crossings.
        for (m, k, n) in [
            (1, 1, 1),
            (MR, 3, NR),
            (MR + 1, 5, NR + 3),
            (MC + 2, KC + 5, 7),
            (3, 2 * KC + 1, 2),
            (5, 4, NC + 9),
            (MC, KC, NR),
        ] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let s = spec(m, k, n);
            assert_eq!(
                gemm_dense(&a, &b, s),
                naive(&a, &b, s),
                "mismatch at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn transposed_layouts_match_naive() {
        let (m, k, n) = (9, 11, 10);
        let a_t = ramp(k * m, 0.3); // A stored [k, m]
        let b_t = ramp(n * k, 0.7); // B stored [n, k]
        for (a_trans, b_trans) in [(true, false), (false, true), (true, true)] {
            let s = GemmSpec {
                m,
                k,
                n,
                a_trans,
                b_trans,
            };
            let a = if a_trans {
                a_t.clone()
            } else {
                ramp(m * k, 0.3)
            };
            let b = if b_trans {
                b_t.clone()
            } else {
                ramp(k * n, 0.7)
            };
            assert_eq!(gemm_dense(&a, &b, s), naive(&a, &b, s));
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let s = spec(2, 3, 2);
        let a = ramp(6, 1.0);
        let b = ramp(6, 1.0);
        let mut c = vec![10.0; 4];
        let mut scratch = GemmScratch::default();
        gemm_block(&mut c, &a, &b, s, 0..2, &mut scratch);
        let plain = naive(&a, &b, s);
        for (got, want) in c.iter().zip(&plain) {
            assert_eq!(*got, 10.0 + want);
        }
    }

    #[test]
    fn prepacked_b_is_bitwise_identical_across_tile_boundaries() {
        for (m, k, n) in [
            (1, 1, 1),
            (MR + 1, 5, NR + 3),
            (MC + 2, KC + 5, 7),
            (3, 2 * KC + 1, 2),
            (5, 4, NC + 9),
            (MC, KC, NR),
        ] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let s = spec(m, k, n);
            let pb = PrepackedB::pack_from(&b, s);
            let mut c = vec![0.0; m * n];
            gemm_block_prepacked(&mut c, &a, &pb, s, 0..m, &mut GemmScratch::default());
            assert_eq!(c, gemm_dense(&a, &b, s), "mismatch at m={m} k={k} n={n}");
        }
    }

    #[test]
    fn prepacked_b_supports_row_sharded_ranges() {
        let s = spec(10, 6, 5);
        let a = ramp(60, 0.5);
        let b = ramp(30, 0.25);
        let pb = PrepackedB::pack_from(&b, s);
        let full = naive(&a, &b, s);
        let rows = 3..8;
        let mut c = vec![0.0; rows.len() * s.n];
        gemm_block_prepacked(
            &mut c,
            &a,
            &pb,
            s,
            rows.clone(),
            &mut GemmScratch::default(),
        );
        assert_eq!(c, full[rows.start * s.n..rows.end * s.n]);
    }

    #[test]
    fn prepacked_b_packs_transposed_layouts() {
        let (m, k, n) = (9, 11, 10);
        let a = ramp(m * k, 0.3);
        let b_t = ramp(n * k, 0.7); // B stored [n, k]
        let s = GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: true,
        };
        let pb = PrepackedB::pack_from(&b_t, s);
        let mut c = vec![0.0; m * n];
        gemm_block_prepacked(&mut c, &a, &pb, s, 0..m, &mut GemmScratch::default());
        assert_eq!(c, naive(&a, &b_t, s));
    }

    #[test]
    fn prepacked_a_is_bitwise_identical_across_tile_boundaries() {
        for (m, k, n) in [
            (1, 1, 1),
            (MR + 1, 5, NR + 3),
            (MC + 2, KC + 5, 7),
            (3, 2 * KC + 1, 2),
            (5, 4, NC + 9),
        ] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let s = spec(m, k, n);
            let pa = PrepackedA::pack_from(&a, s);
            let mut c = vec![0.0; m * n];
            gemm_block_prepacked_a(&mut c, &pa, &b, s, &mut GemmScratch::default());
            assert_eq!(c, gemm_dense(&a, &b, s), "mismatch at m={m} k={k} n={n}");
        }
    }

    #[test]
    fn row_range_computes_the_requested_rows_only() {
        let s = spec(10, 6, 5);
        let a = ramp(60, 0.5);
        let b = ramp(30, 0.25);
        let full = naive(&a, &b, s);
        let rows = 3..8;
        let mut c = vec![0.0; rows.len() * s.n];
        gemm_block(&mut c, &a, &b, s, rows.clone(), &mut GemmScratch::default());
        assert_eq!(c, full[rows.start * s.n..rows.end * s.n]);
    }
}
