//! Cache-blocked, packed GEMM kernel — the compute core behind
//! [`crate::Tensor::matmul`] and the im2col convolutions.
//!
//! # Algorithm
//!
//! Classic three-level BLIS-style tiling: the `N` dimension is split into
//! `NC`-wide column blocks, the `K` dimension into `KC`-deep panels, and the
//! `M` dimension into `MC`-tall row blocks. For each `(jc, pc)` pair the
//! `KC × NC` slice of `B` is packed once into a contiguous panel buffer and
//! reused across every row block; for each `(jc, pc, ic)` the `MC × KC`
//! slice of `A` is packed likewise. The innermost work is a fixed
//! `MR × NR` register microkernel that keeps the output tile in locals
//! across the whole `KC` depth — `(MR + NR)` loads per `2·MR·NR` flops
//! instead of the naive kernel's load-and-store per element.
//!
//! # Determinism contract
//!
//! For every output element `c[i][j]`, products `a[i][k]·b[k][j]` are added
//! **in ascending `k` order into a single accumulator** — exactly the
//! per-element operation sequence of the naive `i-k-j` triple loop
//! ([`crate::Tensor::matmul_naive`]). The `KC` blocking merely spills the
//! accumulator to `C` between depth panels (an exact f32 store/load), the
//! `MC`/`NC` blocking only reorders *which elements* are produced when, and
//! edge tiles run a scalar loop with the same `k` order. Transposed operand
//! layouts change packing addresses, never values. The row-sharded parallel
//! dispatch in [`crate::Tensor::matmul`] gives each worker disjoint rows of
//! `C` computed by this same serial code. Results are therefore **bitwise
//! identical** to the naive kernel — infinities and signed zeros included —
//! at every thread count and for every tiling-boundary geometry
//! (property-tested in `tests/gemm_bitwise.rs`). The single carve-out is
//! NaN *payloads*: an element is NaN in the blocked kernel iff it is NaN in
//! the naive one, but the payload/sign bits of freshly produced arithmetic
//! NaNs are unspecified by the language (LLVM may pick different
//! instructions per loop shape), so they are not compared.

use std::ops::Range;

use crate::workspace::GemmScratch;

/// Microkernel tile height (rows of `C` held in registers).
pub(crate) const MR: usize = 4;
/// Microkernel tile width (columns of `C` held in registers).
pub(crate) const NR: usize = 16;
/// Row-block height; A panels are `MC × KC`. Multiple of `MR`.
pub(crate) const MC: usize = 64;
/// Depth-block size shared by both packed panels.
pub(crate) const KC: usize = 256;
/// Column-block width; B panels are `KC × NC`. Multiple of `NR`.
pub(crate) const NC: usize = 256;

/// Logical shape and operand layouts of one GEMM: `C[m×n] += A[m×k]·B[k×n]`.
///
/// `a_trans`/`b_trans` flag operands stored transposed: with `a_trans` the
/// buffer holds `A` as `[k × m]` row-major (so `A[i,p]` reads
/// `a[p·m + i]`), and with `b_trans` the buffer holds `B` as `[n × k]`
/// (so `B[p,j]` reads `b[j·k + p]`). This lets the autodiff backward pass
/// compute `g·Bᵀ` and `Aᵀ·g` without materialising transposes.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GemmSpec {
    pub m: usize,
    pub k: usize,
    pub n: usize,
    pub a_trans: bool,
    pub b_trans: bool,
}

#[inline(always)]
fn a_at(a: &[f32], spec: GemmSpec, i: usize, p: usize) -> f32 {
    if spec.a_trans {
        a[p * spec.m + i]
    } else {
        a[i * spec.k + p]
    }
}

#[inline(always)]
fn b_at(b: &[f32], spec: GemmSpec, p: usize, j: usize) -> f32 {
    if spec.b_trans {
        b[j * spec.k + p]
    } else {
        b[p * spec.n + j]
    }
}

/// Packs the `rows × kc` block of `A` starting at `(row0, pc)` into `MR`-row
/// panels: panel `ir` (covering absolute rows `row0+ir .. row0+ir+mr`) is
/// stored depth-major at offset `ir·kc` with stride `mr` — the exact panel
/// height, so edge panels carry no padding (padding would inject spurious
/// `0·b` terms and break NaN/−0.0 bitwise identity).
fn pack_a(
    dst: &mut [f32],
    a: &[f32],
    spec: GemmSpec,
    row0: usize,
    rows: usize,
    pc: usize,
    kc: usize,
) {
    for ir in (0..rows).step_by(MR) {
        let mr = MR.min(rows - ir);
        let panel = &mut dst[ir * kc..(ir + mr) * kc];
        for kk in 0..kc {
            for r in 0..mr {
                panel[kk * mr + r] = a_at(a, spec, row0 + ir + r, pc + kk);
            }
        }
    }
}

/// Packs the `kc × nc` block of `B` starting at `(pc, jc)` into `NR`-column
/// panels: panel `jr` is stored depth-major at offset `jr·kc` with stride
/// `nr` (exact width, no padding — same rationale as [`pack_a`]).
fn pack_b(dst: &mut [f32], b: &[f32], spec: GemmSpec, pc: usize, kc: usize, jc: usize, nc: usize) {
    for jr in (0..nc).step_by(NR) {
        let nr = NR.min(nc - jr);
        let panel = &mut dst[jr * kc..(jr + nr) * kc];
        for kk in 0..kc {
            for cc in 0..nr {
                panel[kk * nr + cc] = b_at(b, spec, pc + kk, jc + jr + cc);
            }
        }
    }
}

/// The full `MR × NR` register microkernel: loads the output tile, streams
/// both packed panels over the `kc` depth and stores the tile back. Per
/// element the additions run in ascending `k` order into one accumulator.
#[inline]
fn kernel_full(kc: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    let mut acc = [[0.0f32; NR]; MR];
    for (r, row) in acc.iter_mut().enumerate() {
        row.copy_from_slice(&c[r * ldc..r * ldc + NR]);
    }
    for (a_k, b_k) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(kc) {
        for (r, row) in acc.iter_mut().enumerate() {
            let ar = a_k[r];
            for (cc, slot) in row.iter_mut().enumerate() {
                *slot += ar * b_k[cc];
            }
        }
    }
    for (r, row) in acc.iter().enumerate() {
        c[r * ldc..r * ldc + NR].copy_from_slice(row);
    }
}

/// Edge-tile kernel for partial `mr × nr` tiles (panel strides are the
/// actual tile sizes). Scalar loops, same ascending-`k` accumulation.
fn kernel_edge(kc: usize, mr: usize, nr: usize, ap: &[f32], bp: &[f32], c: &mut [f32], ldc: usize) {
    for r in 0..mr {
        for cc in 0..nr {
            let mut acc = c[r * ldc + cc];
            for kk in 0..kc {
                acc += ap[kk * mr + r] * bp[kk * nr + cc];
            }
            c[r * ldc + cc] = acc;
        }
    }
}

/// Accumulates `A[rows, :] · B` into `c`, the row-major `rows.len() × n`
/// output slice for the absolute row range `rows` (callers pre-zero `c` for
/// a plain product). Packing panels are leased from `scratch` — warm
/// buffers make the call allocation-free.
pub(crate) fn gemm_block(
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    spec: GemmSpec,
    rows: Range<usize>,
    scratch: &mut GemmScratch,
) {
    let (k, n) = (spec.k, spec.n);
    debug_assert_eq!(c.len(), rows.len() * n);
    if rows.is_empty() || n == 0 || k == 0 {
        return;
    }
    // Every matmul/conv funnels through this block (the parallel dispatch
    // shards disjoint row ranges), so per-shard MAC counts sum to exactly
    // m·k·n per GEMM regardless of thread count.
    obs::counter_add("tensor/gemm_macs", (rows.len() * k * n) as u64);
    for jc in (0..n).step_by(NC) {
        let nc = NC.min(n - jc);
        for pc in (0..k).step_by(KC) {
            let kc = KC.min(k - pc);
            let bp = scratch.pack_b.get(nc * kc);
            pack_b(bp, b, spec, pc, kc, jc, nc);
            for ic in (0..rows.len()).step_by(MC) {
                let mc = MC.min(rows.len() - ic);
                let ap = scratch.pack_a.get(mc * kc);
                pack_a(ap, a, spec, rows.start + ic, mc, pc, kc);
                for jr in (0..nc).step_by(NR) {
                    let nr = NR.min(nc - jr);
                    let bpanel = &bp[jr * kc..(jr + nr) * kc];
                    for ir in (0..mc).step_by(MR) {
                        let mr = MR.min(mc - ir);
                        let apanel = &ap[ir * kc..(ir + mr) * kc];
                        let c_tile = &mut c[(ic + ir) * n + jc + jr..];
                        if mr == MR && nr == NR {
                            kernel_full(kc, apanel, bpanel, c_tile, n);
                        } else {
                            kernel_edge(kc, mr, nr, apanel, bpanel, c_tile, n);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::GemmScratch;

    fn gemm_dense(a: &[f32], b: &[f32], spec: GemmSpec) -> Vec<f32> {
        let mut c = vec![0.0; spec.m * spec.n];
        let mut scratch = GemmScratch::default();
        gemm_block(&mut c, a, b, spec, 0..spec.m, &mut scratch);
        c
    }

    fn naive(a: &[f32], b: &[f32], spec: GemmSpec) -> Vec<f32> {
        let mut c = vec![0.0; spec.m * spec.n];
        for i in 0..spec.m {
            for p in 0..spec.k {
                let av = a_at(a, spec, i, p);
                for j in 0..spec.n {
                    c[i * spec.n + j] += av * b_at(b, spec, p, j);
                }
            }
        }
        c
    }

    fn spec(m: usize, k: usize, n: usize) -> GemmSpec {
        GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: false,
        }
    }

    fn ramp(len: usize, scale: f32) -> Vec<f32> {
        (0..len)
            .map(|i| ((i * 7 % 13) as f32 - 6.0) * scale)
            .collect()
    }

    #[test]
    fn matches_naive_across_tile_boundaries() {
        // Geometries chosen to hit: exact microkernel multiples, edge tiles
        // in both directions, and KC/MC/NC block crossings.
        for (m, k, n) in [
            (1, 1, 1),
            (MR, 3, NR),
            (MR + 1, 5, NR + 3),
            (MC + 2, KC + 5, 7),
            (3, 2 * KC + 1, 2),
            (5, 4, NC + 9),
            (MC, KC, NR),
        ] {
            let a = ramp(m * k, 0.25);
            let b = ramp(k * n, 0.5);
            let s = spec(m, k, n);
            assert_eq!(
                gemm_dense(&a, &b, s),
                naive(&a, &b, s),
                "mismatch at m={m} k={k} n={n}"
            );
        }
    }

    #[test]
    fn transposed_layouts_match_naive() {
        let (m, k, n) = (9, 11, 10);
        let a_t = ramp(k * m, 0.3); // A stored [k, m]
        let b_t = ramp(n * k, 0.7); // B stored [n, k]
        for (a_trans, b_trans) in [(true, false), (false, true), (true, true)] {
            let s = GemmSpec {
                m,
                k,
                n,
                a_trans,
                b_trans,
            };
            let a = if a_trans {
                a_t.clone()
            } else {
                ramp(m * k, 0.3)
            };
            let b = if b_trans {
                b_t.clone()
            } else {
                ramp(k * n, 0.7)
            };
            assert_eq!(gemm_dense(&a, &b, s), naive(&a, &b, s));
        }
    }

    #[test]
    fn accumulates_into_existing_output() {
        let s = spec(2, 3, 2);
        let a = ramp(6, 1.0);
        let b = ramp(6, 1.0);
        let mut c = vec![10.0; 4];
        let mut scratch = GemmScratch::default();
        gemm_block(&mut c, &a, &b, s, 0..2, &mut scratch);
        let plain = naive(&a, &b, s);
        for (got, want) in c.iter().zip(&plain) {
            assert_eq!(*got, 10.0 + want);
        }
    }

    #[test]
    fn row_range_computes_the_requested_rows_only() {
        let s = spec(10, 6, 5);
        let a = ramp(60, 0.5);
        let b = ramp(30, 0.25);
        let full = naive(&a, &b, s);
        let rows = 3..8;
        let mut c = vec![0.0; rows.len() * s.n];
        gemm_block(&mut c, &a, &b, s, rows.clone(), &mut GemmScratch::default());
        assert_eq!(c, full[rows.start * s.n..rows.end * s.n]);
    }
}
