//! Shape manipulation: concatenation, padding, flipping and axis
//! reductions.

use crate::{Shape, Tensor};

impl Tensor {
    /// Concatenates tensors along axis 0 (the batch axis).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the non-batch dimensions differ.
    ///
    /// # Example
    ///
    /// ```
    /// use tensor::Tensor;
    ///
    /// let a = Tensor::ones(&[1, 2]);
    /// let b = Tensor::zeros(&[2, 2]);
    /// let c = Tensor::cat0(&[&a, &b]);
    /// assert_eq!(c.dims(), &[3, 2]);
    /// assert_eq!(c.data(), &[1.0, 1.0, 0.0, 0.0, 0.0, 0.0]);
    /// ```
    pub fn cat0(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "cat0 of zero tensors");
        let first = parts[0].dims();
        let tail = &first[1..];
        let mut n = 0usize;
        for p in parts {
            assert_eq!(
                &p.dims()[1..],
                tail,
                "cat0 inner dimensions differ: {:?} vs {:?}",
                p.dims(),
                first
            );
            n += p.dims()[0];
        }
        let mut dims = vec![n];
        dims.extend_from_slice(tail);
        let mut data = Vec::with_capacity(Shape::new(&dims).len());
        for p in parts {
            data.extend_from_slice(p.data());
        }
        Tensor::from_vec(data, &dims)
    }

    /// Extracts the half-open sample range `[start, end)` along axis 0.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end` or `end` exceeds the batch size.
    pub fn slice0(&self, start: usize, end: usize) -> Tensor {
        let dims = self.dims();
        assert!(start < end, "empty slice [{start}, {end})");
        assert!(
            end <= dims[0],
            "slice end {end} exceeds batch size {}",
            dims[0]
        );
        let sample_len: usize = dims[1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims[0] = end - start;
        Tensor::from_vec(
            self.data()[start * sample_len..end * sample_len].to_vec(),
            &out_dims,
        )
    }

    /// Zero-pads the two trailing (spatial) axes by `pad` on every side.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank < 2.
    pub fn pad2d(&self, pad: usize) -> Tensor {
        let dims = self.dims();
        assert!(dims.len() >= 2, "pad2d needs rank >= 2, got {dims:?}");
        if pad == 0 {
            return self.clone();
        }
        let (h, w) = (dims[dims.len() - 2], dims[dims.len() - 1]);
        let planes: usize = dims[..dims.len() - 2].iter().product();
        let (ho, wo) = (h + 2 * pad, w + 2 * pad);
        let mut out_dims = dims.to_vec();
        let rank = out_dims.len();
        out_dims[rank - 2] = ho;
        out_dims[rank - 1] = wo;
        let mut out = Tensor::zeros(&out_dims);
        for p in 0..planes {
            let src = &self.data()[p * h * w..(p + 1) * h * w];
            let dst = &mut out.data_mut()[p * ho * wo..(p + 1) * ho * wo];
            for i in 0..h {
                let row = &src[i * w..(i + 1) * w];
                dst[(i + pad) * wo + pad..(i + pad) * wo + pad + w].copy_from_slice(row);
            }
        }
        out
    }

    /// Mirrors the last (width) axis — horizontal flip for images.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank 0.
    pub fn flip_horizontal(&self) -> Tensor {
        let dims = self.dims();
        assert!(!dims.is_empty(), "flip of a scalar");
        let w = dims[dims.len() - 1];
        let rows = self.len() / w;
        let mut out = self.clone();
        for r in 0..rows {
            out.data_mut()[r * w..(r + 1) * w].reverse();
        }
        out
    }

    /// Translates the two trailing axes by `(dy, dx)` pixels, filling vacated
    /// pixels with zero (a rigid shift, used for augmentation).
    ///
    /// # Panics
    ///
    /// Panics if the tensor has rank < 2.
    pub fn shift2d(&self, dy: isize, dx: isize) -> Tensor {
        let dims = self.dims();
        assert!(dims.len() >= 2, "shift2d needs rank >= 2, got {dims:?}");
        let (h, w) = (dims[dims.len() - 2] as isize, dims[dims.len() - 1] as isize);
        let planes: usize = dims[..dims.len() - 2].iter().product();
        let mut out = Tensor::zeros(dims);
        let (hu, wu) = (h as usize, w as usize);
        for p in 0..planes {
            let src = &self.data()[p * hu * wu..(p + 1) * hu * wu];
            let dst = &mut out.data_mut()[p * hu * wu..(p + 1) * hu * wu];
            for i in 0..h {
                let si = i - dy;
                if si < 0 || si >= h {
                    continue;
                }
                for j in 0..w {
                    let sj = j - dx;
                    if sj < 0 || sj >= w {
                        continue;
                    }
                    dst[(i * w + j) as usize] = src[(si * w + sj) as usize];
                }
            }
        }
        out
    }

    /// Sums over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the tensor is rank 1 (the result would
    /// be a scalar; use [`Tensor::sum`]).
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        let dims = self.dims();
        assert!(axis < dims.len(), "axis {axis} out of range for {dims:?}");
        assert!(dims.len() > 1, "sum_axis on rank 1; use sum()");
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims.remove(axis);
        let mut out = Tensor::zeros(&out_dims);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let dst = &mut out.data_mut()[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&self.data()[base..base + inner]) {
                    *d += s;
                }
            }
        }
        out
    }

    /// Means over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tensor::sum_axis`].
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.dims()[axis] as f32;
        self.sum_axis(axis).mul_scalar(1.0 / n)
    }

    /// Maximum over one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Tensor::sum_axis`].
    pub fn max_axis(&self, axis: usize) -> Tensor {
        let dims = self.dims();
        assert!(axis < dims.len(), "axis {axis} out of range for {dims:?}");
        assert!(dims.len() > 1, "max_axis on rank 1; use max()");
        let outer: usize = dims[..axis].iter().product();
        let mid = dims[axis];
        let inner: usize = dims[axis + 1..].iter().product();
        let mut out_dims = dims.to_vec();
        out_dims.remove(axis);
        let mut out = Tensor::full(&out_dims, f32::NEG_INFINITY);
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let dst = &mut out.data_mut()[o * inner..(o + 1) * inner];
                for (d, &s) in dst.iter_mut().zip(&self.data()[base..base + inner]) {
                    *d = d.max(s);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn cat_and_slice_round_trip() {
        let a = t(&[1.0, 2.0], &[1, 2]);
        let b = t(&[3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::cat0(&[&a, &b]);
        assert_eq!(c.dims(), &[3, 2]);
        assert_eq!(c.slice0(0, 1), a);
        assert_eq!(c.slice0(1, 3), b);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn cat_rejects_mismatched_tails() {
        Tensor::cat0(&[&Tensor::zeros(&[1, 2]), &Tensor::zeros(&[1, 3])]);
    }

    #[test]
    fn pad_surrounds_with_zeros() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = x.pad2d(1);
        assert_eq!(y.dims(), &[1, 1, 4, 4]);
        assert_eq!(y.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(y.at(&[0, 0, 1, 1]), 1.0);
        assert_eq!(y.at(&[0, 0, 2, 2]), 4.0);
        assert_eq!(y.sum(), x.sum());
    }

    #[test]
    fn flip_reverses_rows() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let y = x.flip_horizontal();
        assert_eq!(y.data(), &[3.0, 2.0, 1.0, 6.0, 5.0, 4.0]);
        assert_eq!(y.flip_horizontal(), x);
    }

    #[test]
    fn shift_moves_content_and_zero_fills() {
        let x = t(&[1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let y = x.shift2d(1, 0); // down by one row
        assert_eq!(y.data(), &[0.0, 0.0, 1.0, 2.0]);
        let y = x.shift2d(0, -1); // left by one column
        assert_eq!(y.data(), &[2.0, 0.0, 4.0, 0.0]);
        assert_eq!(x.shift2d(0, 0), x);
        // Shifting everything out leaves zeros.
        assert_eq!(x.shift2d(5, 0).sum(), 0.0);
    }

    #[test]
    fn axis_reductions_match_hand_computation() {
        let x = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(x.sum_axis(0).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(x.sum_axis(1).data(), &[6.0, 15.0]);
        assert_eq!(x.mean_axis(1).data(), &[2.0, 5.0]);
        assert_eq!(x.max_axis(0).data(), &[4.0, 5.0, 6.0]);
        assert_eq!(x.max_axis(1).data(), &[3.0, 6.0]);
    }

    #[test]
    fn axis_reduction_on_rank3() {
        let x = t(&(1..=8).map(|v| v as f32).collect::<Vec<_>>(), &[2, 2, 2]);
        // Sum over the middle axis.
        assert_eq!(x.sum_axis(1).data(), &[4.0, 6.0, 12.0, 14.0]);
        assert_eq!(x.sum_axis(1).dims(), &[2, 2]);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Sum of axis reductions equals the global sum.
            #[test]
            fn axis_sums_preserve_total(data in proptest::collection::vec(-5.0f32..5.0, 12)) {
                let x = Tensor::from_vec(data, &[3, 4]);
                let total = x.sum();
                prop_assert!((x.sum_axis(0).sum() - total).abs() < 1e-4);
                prop_assert!((x.sum_axis(1).sum() - total).abs() < 1e-4);
            }

            /// Double flip is the identity; padding preserves mass.
            #[test]
            fn flip_involution_pad_mass(data in proptest::collection::vec(0.0f32..1.0, 16)) {
                let x = Tensor::from_vec(data, &[1, 1, 4, 4]);
                prop_assert_eq!(x.flip_horizontal().flip_horizontal(), x.clone());
                prop_assert!((x.pad2d(2).sum() - x.sum()).abs() < 1e-4);
            }

            /// cat0 then slice0 returns the originals.
            #[test]
            fn cat_slice_inverse(
                a in proptest::collection::vec(-1.0f32..1.0, 6),
                b in proptest::collection::vec(-1.0f32..1.0, 9),
            ) {
                let ta = Tensor::from_vec(a, &[2, 3]);
                let tb = Tensor::from_vec(b, &[3, 3]);
                let c = Tensor::cat0(&[&ta, &tb]);
                prop_assert_eq!(c.slice0(0, 2), ta);
                prop_assert_eq!(c.slice0(2, 5), tb);
            }

            /// Opposite shifts restore interior content.
            #[test]
            fn shift_and_unshift_preserve_interior(data in proptest::collection::vec(0.0f32..1.0, 16)) {
                let x = Tensor::from_vec(data, &[1, 1, 4, 4]);
                let back = x.shift2d(1, 1).shift2d(-1, -1);
                // Interior pixels (not shifted off the edge) must survive.
                for i in 0..3 {
                    for j in 0..3 {
                        prop_assert_eq!(back.at(&[0, 0, i, j]), x.at(&[0, 0, i, j]));
                    }
                }
            }
        }
    }
}
