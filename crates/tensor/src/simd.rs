//! The fused LIF membrane-update kernel: one sweep over the membrane
//! buffer computing integration, (optionally adaptive) threshold centering,
//! the Heaviside spike decision, and the reset — with an explicit AVX2
//! fast path and a bit-for-bit identical scalar fallback.
//!
//! # Why a fused kernel
//!
//! The SNN time loop runs the LIF update `T` times per forward pass, and
//! PGD multiplies that by its iteration count. Expressed as composed tensor
//! ops the step costs six full-buffer sweeps plus six intermediate
//! allocations per timestep; fused, it is one sweep writing the four lanes
//! the autodiff tape actually needs (`v_int`, `centered`, `spikes`,
//! `v_next`).
//!
//! # Determinism contract
//!
//! Both paths execute the exact same per-element operation sequence as the
//! previous composed-op formulation:
//!
//! ```text
//! v_int    = v·β + I                      (mul, then add — NO fma)
//! centered = (v_int − a·κ) + (−V_th)      (adaptive) | v_int + (−V_th)
//! spikes   = 1.0 if centered ≥ 0.0 else 0.0
//! v_next   = v_int − v_int·spikes (zero reset) | v_int − spikes·V_th
//! ```
//!
//! The AVX2 path deliberately uses separate `_mm256_mul_ps` /
//! `_mm256_add_ps` instructions rather than `vfmadd`: a fused
//! multiply-add rounds once where the scalar reference rounds twice, which
//! would break bitwise equality. The spike compare uses `_CMP_GE_OQ`,
//! matching scalar `>=` exactly (NaN membranes do not spike; `-0.0 ≥ 0.0`
//! does). Tail elements run the same scalar element function as the
//! fallback. Dispatch therefore changes wall-clock only, never results —
//! property-tested in this module across special values (NaN, ±∞, ±0,
//! denormals) and every tail length.
//!
//! # Dispatch
//!
//! [`lif_step`] picks AVX2 when the CPU supports it (checked once via
//! `is_x86_feature_detected!`, which caches) unless [`set_force_scalar`]
//! pins the scalar path (used by benches to measure both, and by tests to
//! prove equality on the dispatch boundary). Every call increments one of
//! the `tensor/lif_steps_simd` / `tensor/lif_steps_scalar` obs counters.

use crate::Tensor;
use std::sync::atomic::{AtomicBool, Ordering};

/// When `true`, [`lif_step`] always takes the scalar path even if AVX2 is
/// available. Results are identical either way; this is a measurement and
/// test knob, not a correctness switch.
static FORCE_SCALAR: AtomicBool = AtomicBool::new(false);

/// Pins (or unpins) [`lif_step`] to the scalar path. Safe to toggle at any
/// time from any thread: both paths are bitwise identical, so a racing
/// dispatch can only change which counter increments.
pub fn set_force_scalar(force: bool) {
    FORCE_SCALAR.store(force, Ordering::Relaxed);
}

/// `true` while [`set_force_scalar`]`(true)` is in effect.
pub fn force_scalar() -> bool {
    FORCE_SCALAR.load(Ordering::Relaxed)
}

/// `true` when this build/CPU combination has the AVX2 fast path (ignores
/// the [`set_force_scalar`] override).
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The scalar parameters of one LIF membrane update.
#[derive(Debug, Clone, Copy)]
pub struct LifKernelSpec {
    /// Membrane decay factor `β ∈ [0, 1]`.
    pub beta: f32,
    /// Firing threshold `V_th`.
    pub v_th: f32,
    /// `true` for reset-to-zero, `false` for reset-by-subtraction.
    pub zero_reset: bool,
}

/// The four lanes of one fused LIF step plus the spike count.
///
/// All four tensors are freshly allocated per call — they become autodiff
/// tape values, which must own their storage; the kernel itself performs
/// no intermediate allocations (down from six in the composed-op form).
#[derive(Debug)]
pub struct LifStepOut {
    /// Integrated membrane `v·β + I` (pre-reset potential).
    pub v_int: Tensor,
    /// Threshold-centered potential the surrogate gradient differentiates.
    pub centered: Tensor,
    /// Binary spike lane (`1.0`/`0.0`).
    pub spikes: Tensor,
    /// Post-reset membrane for the next timestep.
    pub v_next: Tensor,
    /// Number of spiking neurons (exact popcount of `spikes`).
    pub fired: usize,
}

/// Mutable views of the four output lanes, so the kernels stay under a
/// sane argument count.
struct Lanes<'a> {
    v_int: &'a mut [f32],
    centered: &'a mut [f32],
    spikes: &'a mut [f32],
    v_next: &'a mut [f32],
}

/// One LIF element — the single source of truth both kernels (and the AVX2
/// tail) reduce to. See the module docs for the exact operation order.
#[inline(always)]
fn lif_element(
    spec: LifKernelSpec,
    inp: f32,
    vm: f32,
    adapt: Option<(f32, f32)>,
) -> (f32, f32, f32, f32) {
    let vi = vm * spec.beta + inp;
    let c = match adapt {
        Some((a, kappa)) => (vi - a * kappa) + (-spec.v_th),
        None => vi + (-spec.v_th),
    };
    let s = if c >= 0.0 { 1.0 } else { 0.0 };
    let vn = if spec.zero_reset {
        vi - vi * s
    } else {
        vi - s * spec.v_th
    };
    (vi, c, s, vn)
}

/// Scalar reference kernel; also the fallback on non-AVX2 hardware.
// armor-lint: hot
fn lif_step_scalar(
    input: &[f32],
    v: &[f32],
    adapt: Option<(&[f32], f32)>,
    spec: LifKernelSpec,
    out: &mut Lanes<'_>,
) -> usize {
    let mut fired = 0usize;
    for i in 0..input.len() {
        let (vi, c, s, vn) = lif_element(spec, input[i], v[i], adapt.map(|(a, k)| (a[i], k)));
        out.v_int[i] = vi;
        out.centered[i] = c;
        out.spikes[i] = s;
        out.v_next[i] = vn;
        fired += usize::from(s != 0.0);
    }
    fired
}

/// AVX2 kernel: 8 lanes per iteration, scalar tail via [`lif_element`].
/// Separate mul/add (never `vfmadd`) and `_CMP_GE_OQ` keep every element
/// bit-identical to [`lif_step_scalar`] — see the module docs.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
// armor-lint: hot
// SAFETY: `unsafe` only for `#[target_feature(enable = "avx2")]`; callers
// verify AVX2 first. Loads/stores stay in bounds: the vector loop runs
// while `i + 8 <= n` on equal-length slices, the tail uses safe indexing.
unsafe fn lif_step_avx2(
    input: &[f32],
    v: &[f32],
    adapt: Option<(&[f32], f32)>,
    spec: LifKernelSpec,
    out: &mut Lanes<'_>,
) -> usize {
    use std::arch::x86_64::*;
    let n = input.len();
    let beta_v = _mm256_set1_ps(spec.beta);
    let neg_th_v = _mm256_set1_ps(-spec.v_th);
    let th_v = _mm256_set1_ps(spec.v_th);
    let one_v = _mm256_set1_ps(1.0);
    let zero_v = _mm256_setzero_ps();
    let adapt_v = adapt.map(|(a, k)| (a, _mm256_set1_ps(k)));
    let mut fired = 0usize;
    let mut i = 0usize;
    while i + 8 <= n {
        let inp = _mm256_loadu_ps(input.as_ptr().add(i));
        let vm = _mm256_loadu_ps(v.as_ptr().add(i));
        // v·β + I with distinct round steps — fma would round once and
        // diverge from the scalar reference by one ulp on some inputs.
        let vi = _mm256_add_ps(_mm256_mul_ps(vm, beta_v), inp);
        let pre = match adapt_v {
            Some((a, kappa_v)) => {
                let av = _mm256_loadu_ps(a.as_ptr().add(i));
                _mm256_sub_ps(vi, _mm256_mul_ps(av, kappa_v))
            }
            None => vi,
        };
        let c = _mm256_add_ps(pre, neg_th_v);
        // Ordered ≥: NaN lanes do not spike, matching scalar `c >= 0.0`.
        let mask = _mm256_cmp_ps::<_CMP_GE_OQ>(c, zero_v);
        let s = _mm256_and_ps(mask, one_v);
        let vn = if spec.zero_reset {
            _mm256_sub_ps(vi, _mm256_mul_ps(vi, s))
        } else {
            _mm256_sub_ps(vi, _mm256_mul_ps(s, th_v))
        };
        _mm256_storeu_ps(out.v_int.as_mut_ptr().add(i), vi);
        _mm256_storeu_ps(out.centered.as_mut_ptr().add(i), c);
        _mm256_storeu_ps(out.spikes.as_mut_ptr().add(i), s);
        _mm256_storeu_ps(out.v_next.as_mut_ptr().add(i), vn);
        fired += _mm256_movemask_ps(mask).count_ones() as usize;
        i += 8;
    }
    while i < n {
        let (vi, c, s, vn) = lif_element(spec, input[i], v[i], adapt.map(|(a, k)| (a[i], k)));
        out.v_int[i] = vi;
        out.centered[i] = c;
        out.spikes[i] = s;
        out.v_next[i] = vn;
        fired += usize::from(s != 0.0);
        i += 1;
    }
    fired
}

/// Runs the best available kernel; returns `(fired, used_simd)`.
fn run_kernel(
    input: &[f32],
    v: &[f32],
    adapt: Option<(&[f32], f32)>,
    spec: LifKernelSpec,
    out: &mut Lanes<'_>,
) -> (usize, bool) {
    #[cfg(target_arch = "x86_64")]
    if simd_available() && !force_scalar() {
        // SAFETY: `simd_available()` just confirmed AVX2 on this CPU, and
        // `lif_step` validated that all slices share one length.
        return (unsafe { lif_step_avx2(input, v, adapt, spec, out) }, true);
    }
    (lif_step_scalar(input, v, adapt, spec, out), false)
}

/// One fused LIF membrane update over `input` (the synaptic drive) and `v`
/// (the membrane state), optionally with an adaptation current
/// `adapt = (a, κ)` subtracted before thresholding (ALIF).
///
/// Returns all four lanes the autodiff tape needs plus the spike count.
/// Dispatches to AVX2 when available (see the module docs for the
/// bitwise-determinism contract) and increments the
/// `tensor/lif_steps_simd` / `tensor/lif_steps_scalar` obs counter for
/// whichever path ran.
///
/// # Panics
///
/// Panics if `v` (or the adaptation tensor) does not match `input`'s shape.
pub fn lif_step(
    input: &Tensor,
    v: &Tensor,
    adapt: Option<(&Tensor, f32)>,
    spec: LifKernelSpec,
) -> LifStepOut {
    assert_eq!(
        input.shape(),
        v.shape(),
        "lif_step input/membrane shape mismatch: {} vs {}",
        input.shape(),
        v.shape()
    );
    if let Some((a, _)) = adapt {
        assert_eq!(
            input.shape(),
            a.shape(),
            "lif_step input/adaptation shape mismatch: {} vs {}",
            input.shape(),
            a.shape()
        );
    }
    let n = input.len();
    let mut v_int = vec![0.0f32; n];
    let mut centered = vec![0.0f32; n];
    let mut spikes = vec![0.0f32; n];
    let mut v_next = vec![0.0f32; n];
    let (fired, used_simd) = run_kernel(
        input.data(),
        v.data(),
        adapt.map(|(a, k)| (a.data(), k)),
        spec,
        &mut Lanes {
            v_int: &mut v_int,
            centered: &mut centered,
            spikes: &mut spikes,
            v_next: &mut v_next,
        },
    );
    obs::counter_add(
        if used_simd {
            "tensor/lif_steps_simd"
        } else {
            "tensor/lif_steps_scalar"
        },
        1,
    );
    let dims = input.dims();
    LifStepOut {
        v_int: Tensor::from_vec(v_int, dims),
        centered: Tensor::from_vec(centered, dims),
        spikes: Tensor::from_vec(spikes, dims),
        v_next: Tensor::from_vec(v_next, dims),
        fired,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic stream mixing ordinary magnitudes with the IEEE
    /// corners the compare/reset lanes must handle: ±0, NaN, ±∞,
    /// denormal-scale values, and exact-threshold hits.
    fn stream_value(seed: u64, i: u64) -> f32 {
        let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        match z % 32 {
            0 => 0.0,
            1 => -0.0,
            2 => f32::NAN,
            3 => f32::INFINITY,
            4 => f32::NEG_INFINITY,
            5 => 1e-38,
            6 => 1.0, // lands exactly on V_th for β=1, I=0 setups
            _ => ((z >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0,
        }
    }

    fn stream_tensor(seed: u64, n: usize) -> Tensor {
        Tensor::from_vec((0..n as u64).map(|i| stream_value(seed, i)).collect(), &[n])
    }

    fn assert_bitwise_or_nan(a: &Tensor, b: &Tensor, context: &str) {
        for (i, (&x, &y)) in a.data().iter().zip(b.data()).enumerate() {
            if x.is_nan() || y.is_nan() {
                assert!(
                    x.is_nan() && y.is_nan(),
                    "{context}: element {i}: {x} vs {y}"
                );
            } else {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{context}: element {i}: {x} vs {y}"
                );
            }
        }
    }

    /// Runs both kernels directly on the same inputs and demands identical
    /// bits in all four lanes (and an equal spike count).
    fn check_paths(n: usize, seed: u64, spec: LifKernelSpec, with_adapt: bool) {
        if !simd_available() {
            return; // scalar-only hardware: dispatch has a single path
        }
        let input = stream_tensor(seed, n);
        let v = stream_tensor(seed ^ 0xABCD_EF01_2345_6789, n);
        let a = stream_tensor(seed ^ 0x1357_9BDF_0246_8ACE, n);
        let adapt = with_adapt.then_some((&a, 0.35f32));
        set_force_scalar(true);
        let scalar = lif_step(&input, &v, adapt, spec);
        set_force_scalar(false);
        let simd = lif_step(&input, &v, adapt, spec);
        let ctx = format!("n={n} zero_reset={} adapt={with_adapt}", spec.zero_reset);
        assert_bitwise_or_nan(&simd.v_int, &scalar.v_int, &format!("{ctx} v_int"));
        assert_bitwise_or_nan(&simd.centered, &scalar.centered, &format!("{ctx} centered"));
        assert_bitwise_or_nan(&simd.spikes, &scalar.spikes, &format!("{ctx} spikes"));
        assert_bitwise_or_nan(&simd.v_next, &scalar.v_next, &format!("{ctx} v_next"));
        assert_eq!(simd.fired, scalar.fired, "{ctx} fired");
    }

    #[test]
    fn simd_matches_scalar_bitwise_across_lengths_and_modes() {
        for n in [1usize, 7, 8, 9, 15, 16, 17, 31, 32, 33, 256] {
            for zero_reset in [false, true] {
                for with_adapt in [false, true] {
                    let spec = LifKernelSpec {
                        beta: 0.9,
                        v_th: 1.0,
                        zero_reset,
                    };
                    check_paths(n, 42 + n as u64, spec, with_adapt);
                }
            }
        }
    }

    #[test]
    fn simd_matches_scalar_at_edge_parameters() {
        for (beta, v_th) in [(0.0f32, 0.5f32), (1.0, 1.0), (0.5, 0.0)] {
            for zero_reset in [false, true] {
                let spec = LifKernelSpec {
                    beta,
                    v_th,
                    zero_reset,
                };
                check_paths(40, 7, spec, false);
                check_paths(40, 8, spec, true);
            }
        }
    }

    /// The fused kernel must equal the composed tensor-op formulation it
    /// replaced (the old `LifCell::step` data path), element for element.
    #[test]
    fn fused_matches_composed_ops_bitwise() {
        let spec = LifKernelSpec {
            beta: 0.9,
            v_th: 1.0,
            zero_reset: false,
        };
        let input = stream_tensor(5, 64);
        let v = stream_tensor(6, 64);
        let out = lif_step(&input, &v, None, spec);
        let v_int = v.mul_scalar(spec.beta).add(&input);
        let centered = v_int.add_scalar(-spec.v_th);
        let spikes = centered.map(|c| if c >= 0.0 { 1.0 } else { 0.0 });
        let v_next = v_int.sub(&spikes.mul_scalar(spec.v_th));
        assert_bitwise_or_nan(&out.v_int, &v_int, "v_int");
        assert_bitwise_or_nan(&out.centered, &centered, "centered");
        assert_bitwise_or_nan(&out.spikes, &spikes, "spikes");
        assert_bitwise_or_nan(&out.v_next, &v_next, "v_next");
    }

    #[test]
    fn fired_counts_spiking_neurons_exactly() {
        let spec = LifKernelSpec {
            beta: 1.0,
            v_th: 1.0,
            zero_reset: false,
        };
        let input = Tensor::from_vec(vec![2.0, 0.5, 1.0, -3.0, 1.5, 0.0, 2.5, 0.9, 1.1], &[9]);
        let v = Tensor::zeros(&[9]);
        let out = lif_step(&input, &v, None, spec);
        assert_eq!(out.fired, 5); // 2.0, 1.0, 1.5, 2.5, 1.1 reach V_th
        assert_eq!(
            out.fired,
            out.spikes.data().iter().filter(|&&s| s != 0.0).count()
        );
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn mismatched_membrane_shape_rejected() {
        lif_step(
            &Tensor::zeros(&[4]),
            &Tensor::zeros(&[5]),
            None,
            LifKernelSpec {
                beta: 0.9,
                v_th: 1.0,
                zero_reset: false,
            },
        );
    }
}
