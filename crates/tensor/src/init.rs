//! Random tensor initializers.
//!
//! All initializers take an explicit RNG so that every experiment in the
//! workspace is reproducible from a single seed.

use rand::Rng;

use crate::Tensor;

/// Samples every element uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use tensor::init;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let t = init::uniform(&mut rng, &[4, 4], -0.1, 0.1);
/// assert!(t.data().iter().all(|v| (-0.1..0.1).contains(v)));
/// ```
pub fn uniform<R: Rng>(rng: &mut R, dims: &[usize], lo: f32, hi: f32) -> Tensor {
    assert!(lo < hi, "uniform bounds inverted: [{lo}, {hi})");
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = rng.gen_range(lo..hi);
    }
    t
}

/// Samples every element from `N(mean, std²)` via the Box–Muller transform.
///
/// # Panics
///
/// Panics if `std` is negative.
pub fn normal<R: Rng>(rng: &mut R, dims: &[usize], mean: f32, std: f32) -> Tensor {
    assert!(std >= 0.0, "normal std must be non-negative, got {std}");
    let mut t = Tensor::zeros(dims);
    for v in t.data_mut() {
        *v = mean + std * standard_normal(rng);
    }
    t
}

/// Kaiming-uniform initialization for a weight tensor whose fan-in is
/// `fan_in`: uniform on `[-b, b]` with `b = sqrt(6 / fan_in)`.
///
/// This matches PyTorch's default `kaiming_uniform_(a=√5)` closely enough
/// for the small networks in this workspace and keeps early LIF membrane
/// currents in a trainable range.
///
/// # Panics
///
/// Panics if `fan_in` is zero.
pub fn kaiming_uniform<R: Rng>(rng: &mut R, dims: &[usize], fan_in: usize) -> Tensor {
    assert!(fan_in > 0, "kaiming fan_in must be positive");
    let bound = (6.0 / fan_in as f32).sqrt();
    uniform(rng, dims, -bound, bound)
}

/// One sample from the standard normal distribution.
pub fn standard_normal<R: Rng>(rng: &mut R) -> f32 {
    // Box–Muller; reject u1 == 0 to avoid ln(0).
    loop {
        let u1: f32 = rng.gen();
        if u1 <= f32::MIN_POSITIVE {
            continue;
        }
        let u2: f32 = rng.gen();
        return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = uniform(&mut rng, &[1000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
    }

    #[test]
    fn normal_moments_are_roughly_right() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = normal(&mut rng, &[20_000], 1.0, 2.0);
        let mean = t.mean();
        let var = t.map(|v| (v - mean) * (v - mean)).mean();
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn kaiming_bound_scales_with_fan_in() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = kaiming_uniform(&mut rng, &[64, 100], 100);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(t.max_abs() <= bound);
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = uniform(&mut StdRng::seed_from_u64(9), &[16], 0.0, 1.0);
        let b = uniform(&mut StdRng::seed_from_u64(9), &[16], 0.0, 1.0);
        assert_eq!(a, b);
    }
}
