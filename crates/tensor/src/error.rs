//! Error types for fallible tensor constructors.

use std::error::Error;
use std::fmt;

/// Error returned by fallible constructors such as
/// [`Tensor::try_from_vec`](crate::Tensor::try_from_vec) when the data length
/// does not match the requested shape.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let err = Tensor::try_from_vec(vec![1.0, 2.0, 3.0], &[2, 2]).unwrap_err();
/// assert_eq!(err.expected(), 4);
/// assert_eq!(err.actual(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    expected: usize,
    actual: usize,
    dims: Vec<usize>,
}

impl ShapeError {
    pub(crate) fn new(expected: usize, actual: usize, dims: &[usize]) -> Self {
        Self {
            expected,
            actual,
            dims: dims.to_vec(),
        }
    }

    /// The element count implied by the requested shape.
    pub fn expected(&self) -> usize {
        self.expected
    }

    /// The element count actually provided.
    pub fn actual(&self) -> usize {
        self.actual
    }
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "shape {:?} requires {} elements but {} were provided",
            self.dims, self.expected, self.actual
        )
    }
}

impl Error for ShapeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_both_counts() {
        let err = ShapeError::new(4, 3, &[2, 2]);
        let msg = err.to_string();
        assert!(msg.contains('4') && msg.contains('3'), "{msg}");
    }
}
