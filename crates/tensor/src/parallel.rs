//! Deterministic data-parallel helpers shared by the tensor kernels and the
//! attack-evaluation pipeline.
//!
//! Every helper splits its index space into at most `threads` *contiguous*
//! shards and writes (or collects) per-index results into their natural
//! positions. Each index is processed by exactly the same code a serial loop
//! would run, and nothing is reduced across shard boundaries, so the output
//! is bitwise-identical to the serial loop for every thread count.
//! Parallelism here changes wall-clock time, never results.
//!
//! Shards execute on the persistent worker pool in [`crate::runtime`]:
//! helpers compute their shard boundaries exactly as the old scoped-thread
//! implementation did and hand the pieces to `crate::runtime::dispatch`,
//! which reuses parked threads instead of spawning fresh ones per call.
//! Each helper counts one `tensor/pool_dispatches` on entry (serial fast
//! paths included), so that counter is independent of the thread count.
//!
//! The workspace-wide default thread count lives behind
//! [`set_max_threads`]/[`max_threads`]; kernels such as [`crate::conv::conv2d`]
//! and [`crate::Tensor::map`] consult it so callers opt whole pipelines into
//! parallel execution with one switch (the CLI's `--threads` flag).

use std::mem::{ManuallyDrop, MaybeUninit};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

use crate::runtime::{self, SendPtr};

/// Workspace-wide default thread count; 0 means "all available cores".
/// Defaults to 1 so libraries stay serial unless a binary opts in.
static MAX_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Elementwise kernels stay serial below this element count: for tiny
/// tensors the thread spawn costs more than the arithmetic it distributes.
pub const PAR_ELEMENTWISE_MIN_LEN: usize = 1 << 15;

/// Sets the workspace-wide default thread count consulted by the parallel
/// tensor kernels. `0` means "use every available core"; `1` (the initial
/// value) keeps all kernels serial.
pub fn set_max_threads(threads: usize) {
    MAX_THREADS.store(threads, Ordering::Relaxed);
}

/// The workspace-wide default thread count, resolved to a concrete positive
/// number (see [`set_max_threads`]).
pub fn max_threads() -> usize {
    resolve(MAX_THREADS.load(Ordering::Relaxed))
}

/// Resolves a requested thread count: `0` becomes the number of available
/// cores (at least 1), anything else is returned unchanged.
pub fn resolve(threads: usize) -> usize {
    if threads == 0 {
        available_cores()
    } else {
        threads
    }
}

/// The number of cores actually available to this process (cached, at
/// least 1).
///
/// Work-sizing heuristics clamp their shard counts to this: spawning more
/// workers than cores cannot overlap any computation, so the extra shards
/// would pay spawn/join overhead for zero parallelism (the measured
/// 2-thread GEMM regression on a 1-core runner). Results are bitwise
/// identical at every shard count, so the clamp changes wall-clock only.
pub fn available_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Splits `0..total` into at most `pieces` contiguous, near-equal, non-empty
/// ranges covering every index exactly once (fewer than `pieces` ranges when
/// `total < pieces`).
///
/// # Panics
///
/// Panics if `pieces` is zero.
pub fn chunk_ranges(total: usize, pieces: usize) -> Vec<Range<usize>> {
    assert!(pieces > 0, "cannot split work into zero pieces");
    let pieces = pieces.min(total);
    if pieces == 0 {
        return Vec::new();
    }
    let mut ranges = Vec::with_capacity(pieces);
    let (base, extra) = (total / pieces, total % pieces);
    let mut start = 0;
    for i in 0..pieces {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

/// Maps `f` over `0..n` with up to `threads` workers and returns the results
/// in index order — the parallel equivalent of `(0..n).map(f).collect()`.
///
/// With `threads <= 1` (or `n <= 1`) the pool is not touched and `f` runs
/// on the caller's stack.
///
/// # Panics
///
/// Propagates a panic from `f` (the pool waits for every worker to check
/// in first).
pub fn par_map_collect<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let pieces = resolve(threads).min(n);
    runtime::note_dispatch();
    if pieces <= 1 {
        return (0..n).map(f).collect();
    }
    let ranges = chunk_ranges(n, pieces);
    let mut out: Vec<MaybeUninit<T>> = Vec::with_capacity(n);
    // SAFETY: `MaybeUninit<T>` needs no initialization; every slot is
    // written exactly once below before the vector is transmuted.
    unsafe { out.set_len(n) };
    let base = SendPtr(out.as_mut_ptr());
    runtime::dispatch(ranges.len(), |piece| {
        for i in ranges[piece].clone() {
            // SAFETY: `chunk_ranges` yields disjoint index ranges and each
            // piece runs exactly once, so slot `i` is written by exactly
            // one executor and read by nobody until dispatch returns.
            unsafe { base.get().add(i).write(MaybeUninit::new(f(i))) };
        }
    });
    // A panicking piece propagates out of `dispatch` above; in that case
    // `out` drops as uninitialized storage and the written elements leak
    // (never double-dropped), which is acceptable on the panic path.
    let mut out = ManuallyDrop::new(out);
    let (ptr, len, cap) = (out.as_mut_ptr(), out.len(), out.capacity());
    // SAFETY: all `n` slots were initialized by the loop above, and
    // `MaybeUninit<T>` has the same layout as `T`.
    unsafe { Vec::from_raw_parts(ptr.cast::<T>(), len, cap) }
}

/// Applies `f(offset, shard)` to contiguous shards of `data` with up to
/// `threads` workers; `offset` is the shard's starting index in `data`.
///
/// Used for elementwise kernels where every output element depends only on
/// the same-index input element(s).
pub fn par_apply<F>(data: &mut [f32], threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let pieces = resolve(threads).min(data.len());
    runtime::note_dispatch();
    if pieces <= 1 {
        f(0, data);
        return;
    }
    let ranges = chunk_ranges(data.len(), pieces);
    let base = SendPtr(data.as_mut_ptr());
    runtime::dispatch(ranges.len(), |piece| {
        let range = &ranges[piece];
        // SAFETY: `chunk_ranges` yields disjoint ranges of `data`, each
        // piece runs exactly once, so shards never overlap.
        let shard =
            unsafe { std::slice::from_raw_parts_mut(base.get().add(range.start), range.len()) };
        f(range.start, shard);
    });
}

/// Splits `data` into consecutive chunks of `chunk_len` and calls
/// `f(chunk_index, chunk)` for each, distributing contiguous runs of chunks
/// over up to `threads` workers.
///
/// This is the writer side of batch parallelism: e.g. `conv2d` hands every
/// image its disjoint slice of the output buffer.
///
/// # Panics
///
/// Panics if `chunk_len` is zero or does not divide `data.len()`, and
/// propagates panics from `f`.
pub fn par_chunks_mut<F>(data: &mut [f32], chunk_len: usize, threads: usize, f: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    assert!(chunk_len > 0, "chunk_len must be positive");
    assert_eq!(
        data.len() % chunk_len,
        0,
        "chunk_len {chunk_len} does not divide buffer length {}",
        data.len()
    );
    let n = data.len() / chunk_len;
    let pieces = resolve(threads).min(n);
    runtime::note_dispatch();
    if pieces <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_len).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let ranges = chunk_ranges(n, pieces);
    let base = SendPtr(data.as_mut_ptr());
    runtime::dispatch(ranges.len(), |piece| {
        let range = &ranges[piece];
        // SAFETY: pieces own disjoint chunk ranges (`chunk_ranges`) and the
        // pool runs each piece exactly once, so the slices never overlap.
        let shard = unsafe {
            std::slice::from_raw_parts_mut(
                base.get().add(range.start * chunk_len),
                range.len() * chunk_len,
            )
        };
        for (j, chunk) in shard.chunks_mut(chunk_len).enumerate() {
            f(range.start + j, chunk);
        }
    });
}

/// Splits `data` (`rows` logical rows of `row_len` elements each) into the
/// contiguous row shards of [`chunk_ranges`]`(rows, scratch.len())` and runs
/// `f(row_range, shard, scratch_i)` for each, one shard per worker, each
/// worker owning one scratch slot.
///
/// This is [`par_chunks_mut`] for kernels that need per-worker scratch
/// buffers (GEMM packing panels, im2col columns): scratch is bound to the
/// *piece*, not the executing thread — piece `i` always uses `scratch[i]`,
/// so the caller's [`crate::workspace::Workspace`] carries warm buffers
/// across calls regardless of which pool worker runs which piece. With one
/// shard (or one row) everything runs on the caller's stack using
/// `scratch[0]`.
///
/// # Panics
///
/// Panics if `scratch` is empty while there are rows to process, if
/// `row_len · rows` disagrees with `data.len()`, and propagates panics
/// from `f`.
pub fn par_row_shards<T, F>(data: &mut [f32], rows: usize, row_len: usize, scratch: &mut [T], f: F)
where
    T: Send,
    F: Fn(Range<usize>, &mut [f32], &mut T) + Sync,
{
    assert_eq!(
        data.len(),
        rows * row_len,
        "buffer length {} does not hold {rows} rows of {row_len}",
        data.len()
    );
    if rows == 0 {
        return;
    }
    assert!(!scratch.is_empty(), "need at least one scratch slot");
    let pieces = scratch.len().min(rows);
    runtime::note_dispatch();
    if pieces <= 1 {
        f(0..rows, data, &mut scratch[0]);
        return;
    }
    let ranges = chunk_ranges(rows, pieces);
    let dbase = SendPtr(data.as_mut_ptr());
    let sbase = SendPtr(scratch.as_mut_ptr());
    runtime::dispatch(ranges.len(), |piece| {
        let range = ranges[piece].clone();
        // SAFETY: pieces own disjoint row ranges (`chunk_ranges`) and the
        // pool runs each piece exactly once, so the data slices never
        // overlap.
        let shard = unsafe {
            std::slice::from_raw_parts_mut(
                dbase.get().add(range.start * row_len),
                range.len() * row_len,
            )
        };
        // SAFETY: scratch slot `piece` belongs to this piece alone
        // (`piece < pieces <= scratch.len()`, each piece runs once).
        let slot = unsafe { &mut *sbase.get().add(piece) };
        f(range, shard, slot);
    });
}

/// Like [`par_row_shards`], but shards **two** buffers by the same row
/// ranges: `f(row_range, a_shard, b_shard, scratch_i)` where `a` has rows of
/// `a_row_len` elements and `b` rows of `b_row_len`. Used by the conv
/// backward pass, whose workers write an input-gradient slice and a
/// weight-gradient staging slice for the same image range.
///
/// # Panics
///
/// Same contract as [`par_row_shards`], applied to both buffers.
pub fn par_row_shards2<T, F>(
    a: &mut [f32],
    a_row_len: usize,
    b: &mut [f32],
    b_row_len: usize,
    rows: usize,
    scratch: &mut [T],
    f: F,
) where
    T: Send,
    F: Fn(Range<usize>, &mut [f32], &mut [f32], &mut T) + Sync,
{
    assert_eq!(
        a.len(),
        rows * a_row_len,
        "first buffer length {} does not hold {rows} rows of {a_row_len}",
        a.len()
    );
    assert_eq!(
        b.len(),
        rows * b_row_len,
        "second buffer length {} does not hold {rows} rows of {b_row_len}",
        b.len()
    );
    if rows == 0 {
        return;
    }
    assert!(!scratch.is_empty(), "need at least one scratch slot");
    let pieces = scratch.len().min(rows);
    runtime::note_dispatch();
    if pieces <= 1 {
        f(0..rows, a, b, &mut scratch[0]);
        return;
    }
    let ranges = chunk_ranges(rows, pieces);
    let abase = SendPtr(a.as_mut_ptr());
    let bbase = SendPtr(b.as_mut_ptr());
    let sbase = SendPtr(scratch.as_mut_ptr());
    runtime::dispatch(ranges.len(), |piece| {
        let range = ranges[piece].clone();
        // SAFETY: pieces own disjoint row ranges in both buffers
        // (`chunk_ranges`) and the pool runs each piece exactly once, so
        // neither slice overlaps another piece's.
        let a_shard = unsafe {
            std::slice::from_raw_parts_mut(
                abase.get().add(range.start * a_row_len),
                range.len() * a_row_len,
            )
        };
        // SAFETY: same disjointness argument for the second buffer.
        let b_shard = unsafe {
            std::slice::from_raw_parts_mut(
                bbase.get().add(range.start * b_row_len),
                range.len() * b_row_len,
            )
        };
        // SAFETY: scratch slot `piece` belongs to this piece alone.
        let slot = unsafe { &mut *sbase.get().add(piece) };
        f(range, a_shard, b_shard, slot);
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_cover_exactly_once() {
        for total in [0usize, 1, 2, 7, 16, 100] {
            for pieces in [1usize, 2, 3, 4, 13] {
                let ranges = chunk_ranges(total, pieces);
                assert!(ranges.len() <= pieces);
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next, "gap before {r:?}");
                    assert!(!r.is_empty(), "empty shard {r:?}");
                    next = r.end;
                }
                assert_eq!(next, total, "{total} split into {pieces}");
                // Near-equal: shard sizes differ by at most one.
                if let (Some(min), Some(max)) = (
                    ranges.iter().map(|r| r.len()).min(),
                    ranges.iter().map(|r| r.len()).max(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero pieces")]
    fn zero_pieces_rejected() {
        chunk_ranges(4, 0);
    }

    #[test]
    fn par_map_collect_matches_serial_for_every_thread_count() {
        let serial: Vec<usize> = (0..37).map(|i| i * i).collect();
        for threads in [1, 2, 3, 4, 64] {
            assert_eq!(par_map_collect(37, threads, |i| i * i), serial);
        }
        assert_eq!(par_map_collect(0, 4, |i| i), Vec::<usize>::new());
    }

    #[test]
    fn par_apply_writes_every_offset() {
        for threads in [1, 3, 8] {
            let mut data = vec![0.0f32; 41];
            par_apply(&mut data, threads, |offset, shard| {
                for (i, v) in shard.iter_mut().enumerate() {
                    *v = (offset + i) as f32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as f32);
            }
        }
    }

    #[test]
    fn par_chunks_mut_hands_out_disjoint_chunks_in_order() {
        for threads in [1, 2, 5] {
            let mut data = vec![0.0f32; 6 * 4];
            par_chunks_mut(&mut data, 4, threads, |i, chunk| {
                assert_eq!(chunk.len(), 4);
                for v in chunk {
                    *v = i as f32;
                }
            });
            for (i, chunk) in data.chunks(4).enumerate() {
                assert!(chunk.iter().all(|&v| v == i as f32));
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn ragged_chunks_rejected() {
        par_chunks_mut(&mut [0.0; 5], 2, 2, |_, _| {});
    }

    #[test]
    fn worker_panic_propagates() {
        let caught = std::panic::catch_unwind(|| {
            par_map_collect(8, 4, |i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(caught.is_err());
    }

    #[test]
    fn par_row_shards_covers_rows_with_private_scratch() {
        for slots in [1usize, 2, 3, 8] {
            let mut data = vec![0.0f32; 7 * 3];
            let mut scratch = vec![0u32; slots];
            par_row_shards(&mut data, 7, 3, &mut scratch, |rows, shard, slot| {
                *slot += 1; // each worker owns its slot exclusively
                for (j, row) in shard.chunks_mut(3).enumerate() {
                    row.fill((rows.start + j) as f32);
                }
            });
            for (i, row) in data.chunks(3).enumerate() {
                assert!(row.iter().all(|&v| v == i as f32), "{slots} slots, row {i}");
            }
            // Every shard used exactly one slot exactly once.
            assert_eq!(scratch.iter().sum::<u32>() as usize, slots.min(7));
        }
    }

    #[test]
    fn par_row_shards2_shards_both_buffers_identically() {
        for slots in [1usize, 2, 4] {
            let mut a = vec![0.0f32; 5 * 2];
            let mut b = vec![0.0f32; 5 * 3];
            let mut scratch = vec![(); slots];
            par_row_shards2(&mut a, 2, &mut b, 3, 5, &mut scratch, |rows, ax, bx, _| {
                assert_eq!(ax.len(), rows.len() * 2);
                assert_eq!(bx.len(), rows.len() * 3);
                for (j, row) in ax.chunks_mut(2).enumerate() {
                    row.fill((rows.start + j) as f32);
                }
                for (j, row) in bx.chunks_mut(3).enumerate() {
                    row.fill(-((rows.start + j) as f32));
                }
            });
            for (i, row) in a.chunks(2).enumerate() {
                assert!(row.iter().all(|&v| v == i as f32));
            }
            for (i, row) in b.chunks(3).enumerate() {
                assert!(row.iter().all(|&v| v == -(i as f32)));
            }
        }
    }

    #[test]
    #[should_panic(expected = "scratch slot")]
    fn par_row_shards_requires_scratch() {
        par_row_shards::<(), _>(&mut [0.0; 4], 2, 2, &mut [], |_, _, _| {});
    }

    #[test]
    fn knob_round_trips_and_resolves() {
        assert!(resolve(0) >= 1);
        assert_eq!(resolve(3), 3);
        // Don't disturb other tests: restore the knob afterwards.
        let before = max_threads();
        set_max_threads(2);
        assert_eq!(max_threads(), 2);
        set_max_threads(before);
    }
}
