//! Matrix products and transposes for rank-2 tensors.

use crate::Tensor;

impl Tensor {
    /// Matrix product of a `[M, K]` tensor with a `[K, N]` tensor.
    ///
    /// Uses an `i-k-j` loop order so the inner loop walks both the output
    /// row and the right-hand operand row contiguously.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions do not
    /// match.
    ///
    /// # Example
    ///
    /// ```
    /// use tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Self) -> Self {
        let (m, k) = match self.dims() {
            [m, k] => (*m, *k),
            d => panic!("matmul lhs must be rank 2, got shape {d:?}"),
        };
        let (k2, n) = match other.dims() {
            [k2, n] => (*k2, *n),
            d => panic!("matmul rhs must be rank 2, got shape {d:?}"),
        };
        assert_eq!(
            k, k2,
            "matmul inner dimensions differ: [{m}, {k}] x [{k2}, {n}]"
        );
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                if aik == 0.0 {
                    continue;
                }
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        out
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Self {
        let (m, n) = match self.dims() {
            [m, n] => (*m, *n),
            d => panic!("transpose2d requires rank 2, got shape {d:?}"),
        };
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data_mut()[j * m + i] = self.data()[i * n + j];
            }
        }
        out
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "dot shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        // [1, 3] x [3, 2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.data(), &[14.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2d(), a);
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
