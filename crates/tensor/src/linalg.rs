//! Matrix products and transposes for rank-2 tensors.
//!
//! [`Tensor::matmul`] dispatches to the packed, cache-blocked kernel in
//! [`crate::gemm`]; it is bitwise identical to the simple
//! [`Tensor::matmul_naive`] triple loop at every thread count (see the
//! determinism contract in the `gemm` module docs) and several times faster
//! on cache-resident and larger problems. Scratch comes from the calling
//! thread's [`crate::workspace`] arena, so repeated products allocate
//! nothing beyond their outputs; [`Tensor::matmul_into`] also reuses the
//! output.

use crate::gemm::{gemm_block, gemm_block_prepacked, GemmSpec, PrepackedB};
use crate::workspace::{with_thread_workspace, Workspace};
use crate::Tensor;

/// Below this many multiply-adds (`m·k·n`) the product always runs on the
/// calling thread: sub-millisecond GEMMs lose more to thread spawning than
/// sharding recovers.
pub const PAR_GEMM_MIN_WORK: usize = 1 << 20;

/// Minimum multiply-adds per *shard* once a GEMM goes parallel. The old
/// heuristic gated only on total work, so a 256³ product (16M MACs) split
/// two ways handed each worker a sub-millisecond slice whose spawn/join
/// overhead exceeded the parallel win — threaded 256³ measured *slower*
/// than serial (845µs vs 643µs). Sizing shards by this floor (and clamping
/// to [`crate::parallel::available_cores`]) keeps each worker busy long
/// enough to amortise its thread. Shard count never changes results, only
/// wall-clock: rows are computed independently per shard.
pub const PAR_GEMM_SHARD_WORK: usize = 1 << 21;

/// How many worker threads a GEMM of `work` multiply-adds should use:
/// serial below [`PAR_GEMM_MIN_WORK`], then the smallest of the `--threads`
/// setting, the physical core count, and `work / `[`PAR_GEMM_SHARD_WORK`]
/// (so every shard clears the per-shard work floor).
pub(crate) fn gemm_threads(work: usize) -> usize {
    if work < PAR_GEMM_MIN_WORK {
        return 1;
    }
    crate::parallel::max_threads()
        .min(crate::parallel::available_cores())
        .min((work / PAR_GEMM_SHARD_WORK).max(1))
        .max(1)
}

/// Validates shapes for `[M, K] x [K, N]` and returns `(m, k, n)`.
pub(crate) fn mmdims(a: &Tensor, b: &Tensor) -> (usize, usize, usize) {
    let (m, k) = match a.dims() {
        [m, k] => (*m, *k),
        d => panic!("matmul lhs must be rank 2, got shape {d:?}"),
    };
    let (k2, n) = match b.dims() {
        [k2, n] => (*k2, *n),
        d => panic!("matmul rhs must be rank 2, got shape {d:?}"),
    };
    assert_eq!(
        k, k2,
        "matmul inner dimensions differ: [{m}, {k}] x [{k2}, {n}]"
    );
    (m, k, n)
}

/// Runs one GEMM through the blocked kernel, row-sharded across threads when
/// the problem is big enough to pay for them. `out` must be zeroed (or hold
/// values to accumulate onto) and exactly `m·n` long.
pub(crate) fn gemm_dispatch(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    spec: GemmSpec,
    ws: &mut Workspace,
) {
    let threads = gemm_threads(spec.m * spec.k * spec.n);
    let shards = ws.shards(threads.min(spec.m).max(1));
    crate::parallel::par_row_shards(out, spec.m, spec.n, shards, |rows, c, scratch| {
        gemm_block(c, a, b, spec, rows, &mut scratch.gemm);
    });
}

impl Tensor {
    /// Matrix product of a `[M, K]` tensor with a `[K, N]` tensor.
    ///
    /// Runs the packed, cache-blocked kernel (the private `gemm` module),
    /// sharding
    /// output rows across [`crate::parallel::max_threads`] workers for large
    /// problems. Results are **bitwise identical** to
    /// [`Tensor::matmul_naive`] for every thread count; scratch buffers are
    /// reused from the calling thread's workspace, so steady-state calls
    /// allocate only the output.
    ///
    /// # Panics
    ///
    /// Panics if either operand is not rank 2 or the inner dimensions do not
    /// match.
    ///
    /// # Example
    ///
    /// ```
    /// use tensor::Tensor;
    ///
    /// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
    /// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
    /// assert_eq!(a.matmul(&b).data(), &[19.0, 22.0, 43.0, 50.0]);
    /// ```
    pub fn matmul(&self, other: &Self) -> Self {
        let (m, _, n) = mmdims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        with_thread_workspace(|ws| self.matmul_into(other, &mut out, ws));
        out
    }

    /// [`Tensor::matmul`] writing into a caller-owned output tensor and
    /// workspace: `out` is resized in place ([`Tensor::resize_reusing`]) and
    /// overwritten, so a warm `(out, ws)` pair makes the whole product
    /// allocation-free.
    ///
    /// # Panics
    ///
    /// Same shape contract as [`Tensor::matmul`].
    pub fn matmul_into(&self, other: &Self, out: &mut Tensor, ws: &mut Workspace) {
        let (m, k, n) = mmdims(self, other);
        out.resize_reusing(&[m, n]);
        out.data_mut().fill(0.0);
        let spec = GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: false,
        };
        gemm_dispatch(out.data_mut(), self.data(), other.data(), spec, ws);
    }

    /// Packs this `[K, N]` tensor once into GEMM B-panel layout for reuse
    /// across many products ([`Tensor::matmul_prepacked`]). The panels are
    /// produced by the exact routine `matmul` runs per call, so prepacked
    /// products are **bitwise identical** to `matmul` — packing once
    /// changes when the work happens, never the bytes. Weight matrices are
    /// the intended use: constant across every timestep of a forward pass
    /// and every request a replica answers.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn prepack_b(&self) -> PrepackedB {
        let (k, n) = match self.dims() {
            [k, n] => (*k, *n),
            d => panic!("prepack_b requires rank 2, got shape {d:?}"),
        };
        let spec = GemmSpec {
            m: 0,
            k,
            n,
            a_trans: false,
            b_trans: false,
        };
        PrepackedB::pack_from(self.data(), spec)
    }

    /// [`Tensor::matmul`] against a weight matrix prepacked with
    /// [`Tensor::prepack_b`]: zero B-packing work per call, bitwise
    /// identical results.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or its trailing dimension differs
    /// from the packed operand's leading dimension.
    pub fn matmul_prepacked(&self, pb: &PrepackedB) -> Self {
        let (k, n) = pb.shape();
        let m = match self.dims() {
            [m, k2] if *k2 == k => *m,
            d => panic!("matmul_prepacked lhs {d:?} does not match packed [{k}, {n}]"),
        };
        let mut out = Tensor::zeros(&[m, n]);
        with_thread_workspace(|ws| self.matmul_prepacked_into(pb, &mut out, ws));
        out
    }

    /// [`Tensor::matmul_prepacked`] writing into a caller-owned output and
    /// workspace — with a warm `(out, ws)` pair the whole product performs
    /// zero allocation *and* zero B-panel packing.
    ///
    /// # Panics
    ///
    /// Same shape contract as [`Tensor::matmul_prepacked`].
    pub fn matmul_prepacked_into(&self, pb: &PrepackedB, out: &mut Tensor, ws: &mut Workspace) {
        let (k, n) = pb.shape();
        let m = match self.dims() {
            [m, k2] if *k2 == k => *m,
            d => panic!("matmul_prepacked lhs {d:?} does not match packed [{k}, {n}]"),
        };
        out.resize_reusing(&[m, n]);
        out.data_mut().fill(0.0);
        let spec = GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: false,
        };
        let threads = gemm_threads(m * k * n);
        let shards = ws.shards(threads.min(m).max(1));
        let a = self.data();
        crate::parallel::par_row_shards(out.data_mut(), m, n, shards, |rows, c, scratch| {
            gemm_block_prepacked(c, a, pb, spec, rows, &mut scratch.gemm);
        });
    }

    /// `self · otherᵀ` for `self: [M, K]` and `other: [N, K]`, without
    /// materialising the transpose (the blocked kernel packs the transposed
    /// operand directly). Backward passes use this for `∂L/∂A = g · Bᵀ`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with matching trailing
    /// dimensions.
    pub fn matmul_nt(&self, other: &Self) -> Self {
        let (m, k) = match self.dims() {
            [m, k] => (*m, *k),
            d => panic!("matmul_nt lhs must be rank 2, got shape {d:?}"),
        };
        let (n, k2) = match other.dims() {
            [n, k2] => (*n, *k2),
            d => panic!("matmul_nt rhs must be rank 2, got shape {d:?}"),
        };
        assert_eq!(
            k, k2,
            "matmul_nt inner dimensions differ: [{m}, {k}] x [{n}, {k2}]ᵀ"
        );
        let mut out = Tensor::zeros(&[m, n]);
        let spec = GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: true,
        };
        with_thread_workspace(|ws| {
            gemm_dispatch(out.data_mut(), self.data(), other.data(), spec, ws)
        });
        out
    }

    /// `selfᵀ · other` for `self: [K, M]` and `other: [K, N]`, without
    /// materialising the transpose. Backward passes use this for
    /// `∂L/∂B = Aᵀ · g`.
    ///
    /// # Panics
    ///
    /// Panics unless both operands are rank 2 with matching leading
    /// dimensions.
    pub fn matmul_tn(&self, other: &Self) -> Self {
        let (k, m) = match self.dims() {
            [k, m] => (*k, *m),
            d => panic!("matmul_tn lhs must be rank 2, got shape {d:?}"),
        };
        let (k2, n) = match other.dims() {
            [k2, n] => (*k2, *n),
            d => panic!("matmul_tn rhs must be rank 2, got shape {d:?}"),
        };
        assert_eq!(
            k, k2,
            "matmul_tn inner dimensions differ: [{k}, {m}]ᵀ x [{k2}, {n}]"
        );
        let mut out = Tensor::zeros(&[m, n]);
        let spec = GemmSpec {
            m,
            k,
            n,
            a_trans: true,
            b_trans: false,
        };
        with_thread_workspace(|ws| {
            gemm_dispatch(out.data_mut(), self.data(), other.data(), spec, ws)
        });
        out
    }

    /// Reference matrix product: the plain `i-k-j` triple loop, one
    /// accumulator pass per output row. This is the semantic definition the
    /// blocked kernel is property-tested against; use it in tests and
    /// cross-checks, not hot paths.
    ///
    /// # Panics
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_naive(&self, other: &Self) -> Self {
        let (m, k, n) = mmdims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        let a = self.data();
        let b = other.data();
        let c = out.data_mut();
        for i in 0..m {
            let a_row = &a[i * k..(i + 1) * k];
            let c_row = &mut c[i * n..(i + 1) * n];
            for (kk, &aik) in a_row.iter().enumerate() {
                let b_row = &b[kk * n..(kk + 1) * n];
                for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                    *cv += aik * bv;
                }
            }
        }
        out
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2d(&self) -> Self {
        let (m, n) = match self.dims() {
            [m, n] => (*m, *n),
            d => panic!("transpose2d requires rank 2, got shape {d:?}"),
        };
        let mut out = Tensor::zeros(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data_mut()[j * m + i] = self.data()[i * n + j];
            }
        }
        out
    }

    /// Dot product of two same-shape tensors viewed as flat vectors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn dot(&self, other: &Self) -> f32 {
        assert_eq!(
            self.shape(),
            other.shape(),
            "dot shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        self.data()
            .iter()
            .zip(other.data())
            .map(|(&a, &b)| a * b)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let i = Tensor::eye(3);
        assert_eq!(a.matmul(&i).data(), a.data());
    }

    #[test]
    fn matmul_rectangular() {
        // [1, 3] x [3, 2]
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]);
        let b = Tensor::from_vec(vec![1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.dims(), &[1, 2]);
        assert_eq!(c.data(), &[14.0, 32.0]);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_rejects_mismatch() {
        Tensor::zeros(&[2, 3]).matmul(&Tensor::zeros(&[2, 3]));
    }

    /// Regression for the old `aik == 0.0` fast path: a zero times a
    /// non-finite operand must produce NaN, exactly as IEEE summation says —
    /// only the explicit sparse entry point may skip.
    #[test]
    fn matmul_propagates_nan_through_zero_lhs() {
        let a = Tensor::from_vec(vec![0.0, 1.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, f32::INFINITY, 2.0, 3.0], &[2, 2]);
        let c = a.matmul(&b);
        assert!(c.data()[0].is_nan(), "0·NaN + 1·2 must be NaN");
        assert!(c.data()[1].is_nan(), "0·inf + 1·3 must be NaN");
        assert!(a.matmul_naive(&b).data()[0].is_nan());
        // The sparse helper intentionally keeps the skip.
        assert_eq!(a.matmul_sparse_rows(&b).data(), &[2.0, 3.0]);
    }

    /// Signed zeros and non-finite operands flow through the blocked kernel
    /// exactly as through the naive reference (bit-for-bit).
    #[test]
    fn matmul_special_values_match_naive_bitwise() {
        let a = Tensor::from_vec(
            vec![-0.0, 0.0, 1.0, f32::NEG_INFINITY, -1.0, f32::NAN],
            &[2, 3],
        );
        let b = Tensor::from_vec(vec![1.0, -0.0, f32::INFINITY, 0.5, f32::NAN, -2.0], &[3, 2]);
        let blocked = a.matmul(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in blocked.data().iter().zip(naive.data()) {
            // NaN payload/sign of fresh arithmetic NaNs is unspecified by
            // the language, so NaN compares as NaN; everything else (signed
            // zeros, infinities) must match bit for bit.
            if x.is_nan() || y.is_nan() {
                assert!(x.is_nan() && y.is_nan(), "blocked {x} vs naive {y}");
            } else {
                assert_eq!(x.to_bits(), y.to_bits(), "blocked {x} vs naive {y}");
            }
        }
    }

    #[test]
    fn matmul_into_reuses_output_across_shapes() {
        let mut out = Tensor::zeros(&[1]);
        let mut ws = crate::workspace::Workspace::new();
        let a = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32) * 0.5).collect(), &[4, 5]);
        a.matmul_into(&b, &mut out, &mut ws);
        assert_eq!(out, a.matmul_naive(&b));
        // Shrink, then grow again: contents must match fresh computation.
        let a2 = Tensor::from_vec(vec![2.0, 3.0], &[1, 2]);
        let b2 = Tensor::from_vec(vec![4.0, 5.0], &[2, 1]);
        a2.matmul_into(&b2, &mut out, &mut ws);
        assert_eq!(out.dims(), &[1, 1]);
        assert_eq!(out.item(), 23.0);
        a.matmul_into(&b, &mut out, &mut ws);
        assert_eq!(out, a.matmul_naive(&b));
    }

    #[test]
    fn matmul_nt_and_tn_match_materialised_transposes() {
        let a = Tensor::from_vec((0..15).map(|i| (i as f32) - 7.0).collect(), &[3, 5]);
        let b = Tensor::from_vec((0..20).map(|i| (i as f32) * 0.25).collect(), &[4, 5]);
        assert_eq!(a.matmul_nt(&b), a.matmul_naive(&b.transpose2d()));
        let g = Tensor::from_vec((0..12).map(|i| (i as f32) * 0.5 - 3.0).collect(), &[3, 4]);
        assert_eq!(a.matmul_tn(&g), a.transpose2d().matmul_naive(&g));
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let t = a.transpose2d();
        assert_eq!(t.dims(), &[3, 2]);
        assert_eq!(t.at(&[2, 1]), a.at(&[1, 2]));
        assert_eq!(t.transpose2d(), a);
    }

    /// The per-shard work floor: serial below the total-work gate, then
    /// thread count scales with `work / PAR_GEMM_SHARD_WORK` instead of
    /// jumping straight to the `--threads` setting.
    #[test]
    fn gemm_threads_enforces_per_shard_work_floor() {
        let before = crate::parallel::max_threads();
        crate::parallel::set_max_threads(8);
        assert_eq!(gemm_threads(PAR_GEMM_MIN_WORK - 1), 1, "below total gate");
        // 256³ = 16M MACs: at most 16M / 2M = 8 shards, further clamped by
        // the physical core count — never more workers than cores.
        let t = gemm_threads(256 * 256 * 256);
        assert!(t <= crate::parallel::available_cores());
        assert!(t <= 8);
        // Just over the total gate but under 2·SHARD_WORK: one worker, the
        // old 2-thread pessimization is structurally impossible.
        assert_eq!(gemm_threads(PAR_GEMM_SHARD_WORK + 1), 1);
        crate::parallel::set_max_threads(before);
    }

    /// Multi-shard execution must stay bitwise identical even when the
    /// dispatch heuristic would choose fewer workers (e.g. on a 1-core
    /// runner): drive `par_row_shards` with forced shard counts directly.
    #[test]
    fn forced_multi_shard_gemm_is_bitwise_identical() {
        use crate::gemm::{gemm_block, GemmSpec};
        let (m, k, n) = (37, 19, 23);
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 + 11) % 97) as f32 * 0.17 - 8.0)
                .collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 + 7) % 89) as f32 * 0.23 - 10.0)
                .collect(),
            &[k, n],
        );
        let naive = a.matmul_naive(&b);
        let spec = GemmSpec {
            m,
            k,
            n,
            a_trans: false,
            b_trans: false,
        };
        for shards in [1usize, 2, 4, 7] {
            let mut ws = Workspace::new();
            let mut out = vec![0.0f32; m * n];
            let slots = ws.shards(shards);
            crate::parallel::par_row_shards(&mut out, m, n, slots, |rows, c, scratch| {
                gemm_block(c, a.data(), b.data(), spec, rows, &mut scratch.gemm);
            });
            for (i, (&x, &y)) in out.iter().zip(naive.data()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "element {i} differs at {shards} forced shards"
                );
            }
        }
    }

    /// Prepacked products must be bitwise identical to pack-per-call
    /// `matmul` at every thread count, including special values.
    #[test]
    fn matmul_prepacked_matches_matmul_bitwise() {
        let (m, k, n) = (37, 19, 23);
        let a = Tensor::from_vec(
            (0..m * k)
                .map(|i| ((i * 37 + 11) % 97) as f32 * 0.17 - 8.0)
                .collect(),
            &[m, k],
        );
        let b = Tensor::from_vec(
            (0..k * n)
                .map(|i| ((i * 53 + 7) % 89) as f32 * 0.23 - 10.0)
                .collect(),
            &[k, n],
        );
        let pb = b.prepack_b();
        let reference = a.matmul(&b);
        let before = crate::parallel::max_threads();
        for threads in [1usize, 2, 4] {
            crate::parallel::set_max_threads(threads);
            let got = a.matmul_prepacked(&pb);
            for (i, (&x, &y)) in got.data().iter().zip(reference.data()).enumerate() {
                assert_eq!(x.to_bits(), y.to_bits(), "element {i} at {threads} threads");
            }
        }
        crate::parallel::set_max_threads(before);
    }

    #[test]
    fn matmul_prepacked_handles_special_values() {
        let a = Tensor::from_vec(
            vec![-0.0, 0.0, 1.0, f32::NEG_INFINITY, -1.0, f32::NAN],
            &[2, 3],
        );
        let b = Tensor::from_vec(vec![1.0, -0.0, f32::INFINITY, 0.5, f32::NAN, -2.0], &[3, 2]);
        let got = a.matmul_prepacked(&b.prepack_b());
        let want = a.matmul(&b);
        for (x, y) in got.data().iter().zip(want.data()) {
            if x.is_nan() || y.is_nan() {
                assert!(x.is_nan() && y.is_nan(), "prepacked {x} vs matmul {y}");
            } else {
                assert_eq!(x.to_bits(), y.to_bits(), "prepacked {x} vs matmul {y}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "does not match packed")]
    fn matmul_prepacked_rejects_mismatch() {
        let b = Tensor::zeros(&[3, 2]);
        Tensor::zeros(&[2, 4]).matmul_prepacked(&b.prepack_b());
    }

    #[test]
    fn dot_product() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.dot(&b), 32.0);
    }
}
