//! Elementwise algebra: binary ops, scalar ops and the restricted
//! broadcasting patterns used by network layers (bias addition).

use crate::Tensor;

impl Tensor {
    /// Elementwise sum of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn div(&self, other: &Self) -> Self {
        self.zip_map(other, |a, b| a / b)
    }

    /// Elementwise maximum of two same-shape tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn maximum(&self, other: &Self) -> Self {
        self.zip_map(other, f32::max)
    }

    /// Adds `s` to every element.
    pub fn add_scalar(&self, s: f32) -> Self {
        self.map(|v| v + s)
    }

    /// Multiplies every element by `s`.
    pub fn mul_scalar(&self, s: f32) -> Self {
        self.map(|v| v * s)
    }

    /// Elementwise negation.
    pub fn neg(&self) -> Self {
        self.map(|v| -v)
    }

    /// Elementwise sign: `-1.0`, `0.0` or `1.0` (the PGD step direction).
    pub fn sign(&self) -> Self {
        self.map(|v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Self {
        assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Self {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Self {
        self.map(f32::ln)
    }

    /// Adds a rank-1 bias of length `C` to a `[N, C]` matrix (per column) or
    /// a `[N, C, H, W]` feature map (per channel).
    ///
    /// This is the only broadcasting pattern the workspace needs, so it is
    /// implemented directly instead of a general broadcasting engine.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not rank 1, or if its length does not match the
    /// channel dimension, or if `self` is not rank 2 or rank 4.
    pub fn add_bias(&self, bias: &Self) -> Self {
        assert_eq!(
            bias.shape().rank(),
            1,
            "bias must be rank 1, got {}",
            bias.shape()
        );
        let c = bias.len();
        let mut out = self.clone();
        match self.dims() {
            [_, cols] => {
                assert_eq!(
                    *cols, c,
                    "bias length {c} does not match matrix columns {cols}"
                );
                for row in out.data_mut().chunks_mut(c) {
                    for (v, b) in row.iter_mut().zip(bias.data()) {
                        *v += b;
                    }
                }
            }
            [_, ch, h, w] => {
                assert_eq!(*ch, c, "bias length {c} does not match channels {ch}");
                let plane = h * w;
                for image in out.data_mut().chunks_mut(c * plane) {
                    for (ci, channel) in image.chunks_mut(plane).enumerate() {
                        let b = bias.data()[ci];
                        for v in channel {
                            *v += b;
                        }
                    }
                }
            }
            other => panic!("add_bias expects rank 2 or 4, got shape {other:?}"),
        }
        out
    }

    /// Reduces a gradient of shape `[N, C]` or `[N, C, H, W]` down to the
    /// rank-1 bias shape `[C]` by summing over all non-channel axes.
    ///
    /// This is the adjoint of [`Tensor::add_bias`].
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or rank 4.
    pub fn reduce_to_bias(&self) -> Self {
        match self.dims() {
            [_, c] => {
                let c = *c;
                let mut out = Tensor::zeros(&[c]);
                for row in self.data().chunks(c) {
                    for (acc, v) in out.data_mut().iter_mut().zip(row) {
                        *acc += v;
                    }
                }
                out
            }
            [_, c, h, w] => {
                let (c, plane) = (*c, h * w);
                let mut out = Tensor::zeros(&[c]);
                for image in self.data().chunks(c * plane) {
                    for (ci, channel) in image.chunks(plane).enumerate() {
                        out.data_mut()[ci] += channel.iter().sum::<f32>();
                    }
                }
                out
            }
            other => panic!("reduce_to_bias expects rank 2 or 4, got shape {other:?}"),
        }
    }

    /// Accumulates `other * scale` into `self` in place (`axpy`).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled_inplace(&mut self, other: &Self, scale: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled_inplace shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        for (a, b) in self.data_mut().iter_mut().zip(other.data()) {
            *a += b * scale;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims)
    }

    #[test]
    fn binary_ops() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[4.0, 3.0, 2.0, 1.0], &[2, 2]);
        assert_eq!(a.add(&b).data(), &[5.0; 4]);
        assert_eq!(a.sub(&b).data(), &[-3.0, -1.0, 1.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 6.0, 6.0, 4.0]);
        assert_eq!(a.div(&b).data(), &[0.25, 2.0 / 3.0, 1.5, 4.0]);
        assert_eq!(a.maximum(&b).data(), &[4.0, 3.0, 3.0, 4.0]);
    }

    #[test]
    fn scalar_ops() {
        let a = t(&[1.0, -2.0], &[2]);
        assert_eq!(a.add_scalar(1.0).data(), &[2.0, -1.0]);
        assert_eq!(a.mul_scalar(-2.0).data(), &[-2.0, 4.0]);
        assert_eq!(a.neg().data(), &[-1.0, 2.0]);
    }

    #[test]
    fn sign_matches_ieee() {
        let a = t(&[3.0, -0.5, 0.0], &[3]);
        assert_eq!(a.sign().data(), &[1.0, -1.0, 0.0]);
    }

    #[test]
    fn clamp_bounds() {
        let a = t(&[-2.0, 0.5, 2.0], &[3]);
        assert_eq!(a.clamp(0.0, 1.0).data(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn bias_add_matrix() {
        let x = t(&[0.0, 0.0, 0.0, 0.0], &[2, 2]);
        let b = t(&[1.0, 2.0], &[2]);
        assert_eq!(x.add_bias(&b).data(), &[1.0, 2.0, 1.0, 2.0]);
    }

    #[test]
    fn bias_add_feature_map() {
        let x = Tensor::zeros(&[1, 2, 2, 2]);
        let b = t(&[1.0, -1.0], &[2]);
        let y = x.add_bias(&b);
        assert_eq!(y.data(), &[1.0, 1.0, 1.0, 1.0, -1.0, -1.0, -1.0, -1.0]);
    }

    #[test]
    fn reduce_to_bias_is_adjoint_of_add_bias() {
        // Sum over batch for rank 2.
        let g = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        assert_eq!(g.reduce_to_bias().data(), &[4.0, 6.0]);
        // Sum over batch and plane for rank 4.
        let g4 = Tensor::ones(&[2, 3, 2, 2]);
        assert_eq!(g4.reduce_to_bias().data(), &[8.0, 8.0, 8.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = t(&[1.0, 1.0], &[2]);
        let b = t(&[2.0, 3.0], &[2]);
        a.add_scaled_inplace(&b, 0.5);
        assert_eq!(a.data(), &[2.0, 2.5]);
    }
}
