//! The owned, contiguous, row-major tensor type.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Shape, ShapeError};

/// An owned, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container shared by the whole workspace:
/// network weights, activations, spike trains, gradients and adversarial
/// perturbations are all `Tensor`s. Data is always contiguous, so views are
/// realised by cheap reshapes ([`Tensor::reshape`]) rather than strided
/// aliasing — a deliberate simplification that keeps every op a plain loop
/// over `&[f32]`.
///
/// # Example
///
/// ```
/// use tensor::Tensor;
///
/// let x = Tensor::from_vec(vec![1.0, -2.0, 3.0, -4.0], &[2, 2]);
/// let relu = x.map(|v| v.max(0.0));
/// assert_eq!(relu.data(), &[1.0, 0.0, 3.0, 0.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![0.0; len],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Self::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let len = shape.len();
        Self {
            shape,
            data: vec![value; len],
        }
    }

    /// Creates a rank-0 scalar tensor.
    pub fn scalar(value: f32) -> Self {
        Self {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `dims`. Use
    /// [`Tensor::try_from_vec`] to handle the mismatch as an error.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Self {
        match Self::try_from_vec(data, dims) {
            Ok(t) => t,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a tensor from a flat row-major buffer, or reports the length
    /// mismatch.
    ///
    /// # Errors
    ///
    /// Returns a [`ShapeError`] if `data.len()` does not equal the product of
    /// `dims`.
    pub fn try_from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self, ShapeError> {
        let shape = Shape::new(dims);
        if data.len() != shape.len() {
            return Err(ShapeError::new(shape.len(), data.len(), dims));
        }
        Ok(Self { shape, data })
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` if the tensor is a rank-0 scalar (it still holds one element).
    pub fn is_empty(&self) -> bool {
        self.shape.is_empty()
    }

    /// Immutable view of the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Reads the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Writes the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or any coordinate is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// The single value of a scalar (or one-element) tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor holds more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() requires a one-element tensor, got shape {}",
            self.shape
        );
        self.data[0]
    }

    /// Reshapes this tensor **in place** to `dims`, reusing the existing
    /// buffer capacity — the counterpart of [`Tensor::reshape`] for the
    /// `_into` kernel variants, which recycle one output tensor across calls
    /// of varying shape.
    ///
    /// Elements that survive the resize keep their values; any newly exposed
    /// elements are zero. Capacity never shrinks, so a tensor cycled through
    /// smaller and larger shapes stops allocating once it has seen its
    /// high-water size.
    pub fn resize_reusing(&mut self, dims: &[usize]) {
        let shape = Shape::new(dims);
        self.data.resize(shape.len(), 0.0);
        self.shape = shape;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        assert_eq!(
            shape.len(),
            self.data.len(),
            "cannot reshape {} elements into shape {shape}",
            self.data.len()
        );
        Self {
            shape,
            data: self.data.clone(),
        }
    }

    /// Thread count for an elementwise kernel over `len` elements: the
    /// global [`crate::parallel`] knob, or 1 when the tensor is too small
    /// for forking to pay off. Elementwise results are position-independent,
    /// so the thread count never changes the output.
    fn elementwise_threads(len: usize) -> usize {
        if len >= crate::parallel::PAR_ELEMENTWISE_MIN_LEN {
            crate::parallel::max_threads()
        } else {
            1
        }
    }

    /// Applies `f` to every element, producing a new tensor.
    pub fn map<F: Fn(f32) -> f32 + Sync>(&self, f: F) -> Self {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32 + Sync>(&mut self, f: F) {
        let threads = Self::elementwise_threads(self.data.len());
        crate::parallel::par_apply(&mut self.data, threads, |_, shard| {
            for v in shard {
                *v = f(*v);
            }
        });
    }

    /// Combines two same-shape tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map<F: Fn(f32, f32) -> f32 + Sync>(&self, other: &Self, f: F) -> Self {
        assert_eq!(
            self.shape, other.shape,
            "zip_map shape mismatch: {} vs {}",
            self.shape, other.shape
        );
        let mut out = self.clone();
        let threads = Self::elementwise_threads(out.data.len());
        crate::parallel::par_apply(&mut out.data, threads, |offset, shard| {
            for (i, v) in shard.iter_mut().enumerate() {
                *v = f(*v, other.data[offset + i]);
            }
        });
        out
    }

    /// `true` if every element of `self` is within `tol` of the matching
    /// element of `other` and the shapes are equal.
    pub fn allclose(&self, other: &Self, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(&a, &b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute element, or `0.0` for a scalar zero tensor.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// `true` if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Renders a `[H, W]`, `[1, H, W]` or `[1, 1, H, W]` tensor in `[0, 1]`
    /// as ASCII art (one character per pixel, darker ramp for brighter
    /// values) — handy for eyeballing digit images in terminals and tests.
    ///
    /// # Panics
    ///
    /// Panics if the tensor cannot be viewed as a single 2-D image.
    pub fn render_ascii_image(&self) -> String {
        let dims = self.dims();
        let (h, w) = match dims {
            [h, w] => (*h, *w),
            [1, h, w] => (*h, *w),
            [1, 1, h, w] => (*h, *w),
            other => panic!("render_ascii_image needs one 2-D image, got shape {other:?}"),
        };
        const RAMP: &[u8] = b" .:-=+*#%@";
        let mut out = String::with_capacity(h * (w + 1));
        for row in self.data.chunks(w).take(h) {
            for &v in row {
                let idx = (v.clamp(0.0, 1.0) * (RAMP.len() - 1) as f32).round() as usize;
                out.push(RAMP[idx] as char);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, "{:?}", self.data)
        } else {
            write!(
                f,
                "[{:.4}, {:.4}, … {} more]",
                self.data[0],
                self.data[1],
                self.data.len() - 2
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_fill_correctly() {
        assert!(Tensor::zeros(&[2, 2]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[3]).data().iter().all(|&v| v == 1.0));
        assert_eq!(Tensor::full(&[2], 2.5).data(), &[2.5, 2.5]);
        assert_eq!(Tensor::scalar(7.0).item(), 7.0);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.at(&[r, c]), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn try_from_vec_checks_length() {
        assert!(Tensor::try_from_vec(vec![1.0; 4], &[2, 2]).is_ok());
        assert!(Tensor::try_from_vec(vec![1.0; 5], &[2, 2]).is_err());
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.data()[5], 9.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let r = t.reshape(&[4]);
        assert_eq!(r.data(), t.data());
        assert_eq!(r.dims(), &[4]);
    }

    #[test]
    #[should_panic(expected = "cannot reshape")]
    fn reshape_rejects_bad_count() {
        Tensor::zeros(&[2, 2]).reshape(&[3]);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![3.0, 4.0], &[2]);
        assert_eq!(a.map(|v| v * 2.0).data(), &[2.0, 4.0]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data(), &[4.0, 6.0]);
    }

    #[test]
    fn allclose_tolerates_small_error() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.0 + 1e-7, 2.0 - 1e-7], &[2]);
        assert!(a.allclose(&b, 1e-5));
        assert!(!a.allclose(&b, 1e-9));
    }

    #[test]
    fn ascii_image_maps_brightness_to_ramp() {
        let img = Tensor::from_vec(vec![0.0, 1.0, 0.5, 0.0], &[2, 2]);
        let art = img.render_ascii_image();
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].chars().next(), Some(' '));
        assert_eq!(lines[0].chars().nth(1), Some('@'));
        // Same output through the rank-4 view.
        assert_eq!(img.reshape(&[1, 1, 2, 2]).render_ascii_image(), art);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[2]);
        assert!(!t.has_non_finite());
        t.set(&[0], f32::NAN);
        assert!(t.has_non_finite());
    }
}
