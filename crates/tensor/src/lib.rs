//! Dense `f32` N-dimensional tensors for the `spiking-armor` workspace.
//!
//! This crate is the numerical substrate underneath the autodiff engine
//! ([`ad`]), the neural-network layers ([`nn`]) and the spiking dynamics
//! ([`snn`]). It provides:
//!
//! * [`Shape`] — dimension bookkeeping with row-major strides,
//! * [`Tensor`] — an owned, contiguous, row-major `f32` buffer plus shape,
//! * elementwise algebra ([`Tensor::add`], [`Tensor::mul`], scalar variants),
//! * linear algebra ([`Tensor::matmul`], [`Tensor::transpose2d`]) backed by
//!   a packed, cache-blocked GEMM kernel that is bitwise identical to the
//!   naive loop ([`Tensor::matmul_naive`]) at every thread count,
//! * convolution primitives ([`conv::conv2d`], [`conv::conv2d_backward`])
//!   with allocation-free `_into` variants over a reusable
//!   [`workspace::Workspace`] arena,
//! * a fused LIF membrane-update kernel ([`simd::lif_step`]) with an AVX2
//!   fast path and a bit-identical scalar fallback,
//! * event-driven spike matrix products ([`Tensor::matmul_events`]) that
//!   switch per call on measured spike density,
//! * pooling ([`pool::avg_pool2d`], [`pool::max_pool2d`]),
//! * reductions ([`Tensor::sum`], [`Tensor::mean`], [`Tensor::argmax_rows`]),
//! * random and deterministic initializers ([`init`]).
//!
//! Shapes are validated eagerly: mismatched operands panic with a message
//! naming both shapes, which turns silent numerical corruption into an
//! immediate, debuggable failure (see the "Panics" section on each op).
//!
//! # Example
//!
//! ```
//! use tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c.data(), a.data());
//! ```
//!
//! [`ad`]: ../ad/index.html
//! [`nn`]: ../nn/index.html
//! [`snn`]: ../snn/index.html

mod elementwise;
mod error;
mod gemm;
mod linalg;
mod manip;
mod shape;
#[allow(clippy::module_inception)]
mod tensor;

pub mod conv;
pub mod event;
pub mod init;
pub mod parallel;
pub mod pool;
pub mod reduce;
pub mod runtime;
pub mod simd;
pub mod workspace;

pub use conv::{conv2d_prepacked, conv2d_prepacked_into, prepack_conv2d_weights, PrepackedConvW};
pub use error::ShapeError;
pub use gemm::{pack_a_calls, pack_b_calls, PrepackedA, PrepackedB};
pub use shape::Shape;
pub use tensor::Tensor;
