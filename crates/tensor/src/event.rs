//! Event-driven matrix products for spike-sparse left operands.
//!
//! Spiking networks spend their time-loop multiplying *binary, mostly
//! zero* spike matrices into dense weight matrices. A dense GEMM pays for
//! every zero; the event path instead represents each spike row as a list
//! of `(index, value)` events — the neuromorphic "address-event" idiom —
//! and gathers only the weight rows of active neurons. Raising the firing
//! threshold `V_th` (the structural defense knob this repo studies) makes
//! spikes sparser, so defended configurations are exactly the ones this
//! path accelerates.
//!
//! # Per-call density switch
//!
//! [`Tensor::matmul_events`] scans the left operand once, measures
//! `density = nnz / len`, and dispatches:
//!
//! * `density > `[`EVENT_DENSITY_CROSSOVER`] — the dense blocked kernel
//!   (scatter-gather bookkeeping loses to packed panels on dense data);
//!   counter `tensor/event_gemm_dense`.
//! * otherwise — the event gather; counters `tensor/event_gemm_sparse`
//!   and `tensor/events_propagated` (+nnz).
//!
//! The SNN time loop calls this per timestep, so the switch follows the
//! *measured* per-step spike density, not a static guess: a dense analog
//! encoder input takes the dense path while late-timestep sparse spikes
//! take the event path, within one forward pass.
//!
//! # Determinism contract
//!
//! The gather accumulates `c[i][j] += a[i][k]·b[k][j]` in ascending `k`
//! with a single accumulator per output element — the same order as
//! [`Tensor::matmul_naive`] and the blocked kernel. Skipping `a[i][k] == 0`
//! terms is bitwise invisible **for finite `B`**: an ascending-order
//! accumulator seeded with `+0.0` can never hold `-0.0` (IEEE
//! round-to-nearest returns `+0.0` for `x + (−x)` and for `+0.0 + ±0.0`),
//! so each skipped `0·b` term would have added `±0.0` to a value it cannot
//! change. The carve-out: if `B` holds `NaN`/`±∞` at a skipped row, dense
//! would produce `NaN` (`0·∞`) where the event path does not — the same
//! documented shortcut as [`Tensor::matmul_sparse_rows`], acceptable
//! because weight matrices are finite. Row shards never cross output rows,
//! so results are bitwise identical at every thread count (property-tested
//! in `tests/event_bitwise.rs`).
//!
//! # Zero allocation
//!
//! Event index/value lists are leased from the per-shard
//! [`crate::workspace::ShardScratch`] buffers, so a warm workspace runs
//! the whole time-loop without scratch allocations (see the
//! steady-state-alloc tests).

use crate::gemm::PrepackedB;
use crate::linalg::{gemm_threads, mmdims};
use crate::workspace::{with_thread_workspace, ShardScratch, Workspace};
use crate::Tensor;

/// Spike densities above this fraction take the dense blocked kernel;
/// at or below it the event gather wins. Tuned from the measured density
/// sweep in `BENCH_tensor.json` (see EXPERIMENTS.md): on the 32×256×256
/// sweep the gather costs ~13.6 µs at density 0.01 and grows linearly to
/// ~75 µs at 0.25, while the packed-panel kernel is flat at ~150–170 µs —
/// the curves cross near a half-full spike matrix.
pub const EVENT_DENSITY_CROSSOVER: f32 = 0.5;

/// Gathers one shard of output rows from row event lists: for each row,
/// scan the spike row into `(index, value)` events, then accumulate the
/// active weight rows in ascending `k`. Leases event storage from the
/// shard's scratch; allocation-free once warm.
// armor-lint: hot
fn event_gather_rows(
    row_start: usize,
    c: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    scratch: &mut ShardScratch,
) {
    let rows = c.len() / n;
    let idx_buf = scratch.event_idx.get(k);
    let val_buf = scratch.event_val.get(k);
    for r in 0..rows {
        let a_row = &a[(row_start + r) * k..(row_start + r + 1) * k];
        let c_row = &mut c[r * n..(r + 1) * n];
        let mut ne = 0usize;
        for (kk, &aik) in a_row.iter().enumerate() {
            if aik != 0.0 {
                idx_buf[ne] = kk as u32;
                val_buf[ne] = aik;
                ne += 1;
            }
        }
        for e in 0..ne {
            let kk = idx_buf[e] as usize;
            let aik = val_buf[e];
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += aik * bv;
            }
        }
    }
}

impl Tensor {
    /// Matrix product that switches per call between the dense blocked
    /// kernel and a sparse event gather, based on the measured density of
    /// `self` (see the module docs for the crossover rule and the
    /// determinism contract).
    ///
    /// Identical to [`Tensor::matmul`] whenever `other` is finite; the
    /// spike-row zero-skip is not IEEE-clean against `NaN`/`±∞` weights.
    ///
    /// # Panics
    ///
    /// Same shape contract as [`Tensor::matmul`].
    pub fn matmul_events(&self, other: &Self) -> Self {
        let (m, _, n) = mmdims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        with_thread_workspace(|ws| self.matmul_events_into(other, &mut out, ws));
        out
    }

    /// [`Tensor::matmul_events`] writing into a caller-owned output tensor
    /// and workspace; a warm `(out, ws)` pair makes the product
    /// allocation-free on both paths. Returns `true` when the sparse event
    /// path ran (`false`: dense fallback) so callers and benches can
    /// assert which side of the crossover a workload exercises.
    ///
    /// # Panics
    ///
    /// Same shape contract as [`Tensor::matmul`].
    pub fn matmul_events_into(&self, other: &Self, out: &mut Tensor, ws: &mut Workspace) -> bool {
        let (m, k, n) = mmdims(self, other);
        let a = self.data();
        let nnz = a.iter().filter(|&&x| x != 0.0).count();
        let density = if a.is_empty() {
            0.0
        } else {
            nnz as f32 / a.len() as f32
        };
        if density > EVENT_DENSITY_CROSSOVER {
            obs::counter_add("tensor/event_gemm_dense", 1);
            self.matmul_into(other, out, ws);
            return false;
        }
        obs::counter_add("tensor/event_gemm_sparse", 1);
        obs::counter_add("tensor/events_propagated", nnz as u64);
        out.resize_reusing(&[m, n]);
        out.data_mut().fill(0.0);
        // Thread sizing on *actual* multiply-adds (`nnz·n`), not the dense
        // m·k·n: a near-empty spike matrix should never pay spawn/join.
        let threads = gemm_threads(nnz * n);
        let shards = ws.shards(threads.min(m).max(1));
        let b = other.data();
        crate::parallel::par_row_shards(out.data_mut(), m, n, shards, |rows, c, scratch| {
            event_gather_rows(rows.start, c, a, b, k, n, scratch);
        });
        true
    }

    /// [`Tensor::matmul_events_into`] with a prepacked handle for the
    /// dense-fallback side of the density switch. The sparse gather reads
    /// raw weight rows from `other` (it never packs panels, so there is
    /// nothing to prepack); only the dense path above the crossover needs
    /// panels, and it takes them from `pb` instead of re-packing. `other`
    /// and `pb` must be the same `[K, N]` weight matrix — the caller (the
    /// layer cache) guarantees it. Results are bitwise identical to
    /// [`Tensor::matmul_events_into`] on both sides of the switch.
    ///
    /// # Panics
    ///
    /// Same shape contract as [`Tensor::matmul`], plus `pb` must match
    /// `other`'s shape.
    pub fn matmul_events_prepacked_into(
        &self,
        other: &Self,
        pb: &PrepackedB,
        out: &mut Tensor,
        ws: &mut Workspace,
    ) -> bool {
        let (m, k, n) = mmdims(self, other);
        assert_eq!(
            pb.shape(),
            (k, n),
            "prepacked operand {:?} does not match rhs [{k}, {n}]",
            pb.shape()
        );
        let a = self.data();
        let nnz = a.iter().filter(|&&x| x != 0.0).count();
        let density = if a.is_empty() {
            0.0
        } else {
            nnz as f32 / a.len() as f32
        };
        if density > EVENT_DENSITY_CROSSOVER {
            obs::counter_add("tensor/event_gemm_dense", 1);
            self.matmul_prepacked_into(pb, out, ws);
            return false;
        }
        obs::counter_add("tensor/event_gemm_sparse", 1);
        obs::counter_add("tensor/events_propagated", nnz as u64);
        out.resize_reusing(&[m, n]);
        out.data_mut().fill(0.0);
        let threads = gemm_threads(nnz * n);
        let shards = ws.shards(threads.min(m).max(1));
        let b = other.data();
        crate::parallel::par_row_shards(out.data_mut(), m, n, shards, |rows, c, scratch| {
            event_gather_rows(rows.start, c, a, b, k, n, scratch);
        });
        true
    }

    /// [`Tensor::matmul_events_prepacked_into`] allocating a fresh output
    /// via the calling thread's default workspace.
    ///
    /// # Panics
    ///
    /// Same contract as [`Tensor::matmul_events_prepacked_into`].
    pub fn matmul_events_prepacked(&self, other: &Self, pb: &PrepackedB) -> Self {
        let (m, _, n) = mmdims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        with_thread_workspace(|ws| self.matmul_events_prepacked_into(other, pb, &mut out, ws));
        out
    }

    /// Matrix product that **skips zero elements of the left operand** — an
    /// explicit opt-in for very sparse `A` (e.g. binary spike matrices,
    /// where most rows are mostly zeros). This always takes the event
    /// gather, regardless of density; [`Tensor::matmul_events`] adds the
    /// measured-density switch on top.
    ///
    /// The skip is *not* IEEE-clean: a skipped `0·b` term would contribute
    /// `NaN` for `b = ±inf`/`NaN`, so results can differ from
    /// [`Tensor::matmul`] in exactly those corners (identical whenever `B`
    /// is finite). The general entry points never take this shortcut.
    ///
    /// # Panics
    ///
    /// Same contract as [`Tensor::matmul`].
    pub fn matmul_sparse_rows(&self, other: &Self) -> Self {
        let (m, k, n) = mmdims(self, other);
        let mut out = Tensor::zeros(&[m, n]);
        with_thread_workspace(|ws| {
            let scratch = &mut ws.shards(1)[0];
            event_gather_rows(0, out.data_mut(), self.data(), other.data(), k, n, scratch);
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spike_tensor(m: usize, k: usize, density_per_mille: usize, seed: u64) -> Tensor {
        let data = (0..(m * k) as u64)
            .map(|i| {
                let mut z = seed.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z ^= z >> 31;
                if (z % 1000) < density_per_mille as u64 {
                    1.0
                } else {
                    0.0
                }
            })
            .collect();
        Tensor::from_vec(data, &[m, k])
    }

    #[test]
    fn density_switch_picks_the_expected_path() {
        let b = Tensor::from_vec((0..12 * 5).map(|i| i as f32 * 0.1).collect(), &[12, 5]);
        let sparse_a = spike_tensor(6, 12, 100, 1); // ~10% dense
        let dense_a = spike_tensor(6, 12, 900, 2); // ~90% dense
        let mut out = Tensor::zeros(&[1]);
        let mut ws = Workspace::new();
        assert!(sparse_a.matmul_events_into(&b, &mut out, &mut ws));
        assert_eq!(out, sparse_a.matmul_naive(&b));
        assert!(!dense_a.matmul_events_into(&b, &mut out, &mut ws));
        assert_eq!(out, dense_a.matmul_naive(&b));
    }

    #[test]
    fn event_path_matches_dense_bitwise_on_finite_data() {
        let a = spike_tensor(17, 33, 150, 3);
        let b = Tensor::from_vec(
            (0..33 * 9)
                .map(|i| ((i * 31 + 5) % 97) as f32 * 0.21 - 10.0)
                .collect(),
            &[33, 9],
        );
        let ev = a.matmul_events(&b);
        let naive = a.matmul_naive(&b);
        for (x, y) in ev.data().iter().zip(naive.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn empty_and_all_zero_inputs_take_the_event_path() {
        let a = Tensor::zeros(&[4, 8]);
        let b = Tensor::from_vec((0..8 * 3).map(|i| i as f32).collect(), &[8, 3]);
        let mut out = Tensor::zeros(&[1]);
        let mut ws = Workspace::new();
        assert!(a.matmul_events_into(&b, &mut out, &mut ws));
        assert!(out.data().iter().all(|&v| v == 0.0));
        assert_eq!(out.dims(), &[4, 3]);
    }

    /// The prepacked entry point must agree bitwise with the plain one on
    /// both sides of the density switch.
    #[test]
    fn prepacked_event_product_matches_both_paths() {
        let b = Tensor::from_vec(
            (0..12 * 5).map(|i| (i as f32) * 0.1 - 2.5).collect(),
            &[12, 5],
        );
        let pb = b.prepack_b();
        let mut out = Tensor::zeros(&[1]);
        let mut want = Tensor::zeros(&[1]);
        let mut ws = Workspace::new();
        for (a, sparse) in [
            (spike_tensor(6, 12, 100, 1), true),
            (spike_tensor(6, 12, 900, 2), false),
        ] {
            assert_eq!(
                a.matmul_events_prepacked_into(&b, &pb, &mut out, &mut ws),
                sparse
            );
            a.matmul_events_into(&b, &mut want, &mut ws);
            for (x, y) in out.data().iter().zip(want.data()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    /// Fractional event values (e.g. pooled spikes) flow through the
    /// gather, not just binary spikes.
    #[test]
    fn value_carrying_events_are_propagated() {
        let a = Tensor::from_vec(vec![0.0, 0.25, 0.0, 0.0, 0.0, 0.5], &[2, 3]);
        let b = Tensor::from_vec(vec![1.0, 2.0, 4.0, 8.0, 16.0, 32.0], &[3, 2]);
        let ev = a.matmul_events(&b);
        assert_eq!(ev.data(), a.matmul_naive(&b).data());
    }
}
