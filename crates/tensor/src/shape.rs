//! Shape bookkeeping for row-major tensors.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The dimensions of a [`Tensor`](crate::Tensor), stored outermost-first.
///
/// A `Shape` is an ordered list of dimension sizes. The element count is the
/// product of all dimensions; a 0-dimensional shape (`&[]`) describes a
/// scalar with exactly one element.
///
/// # Example
///
/// ```
/// use tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.len(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension sizes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero: zero-sized tensors are never
    /// meaningful in this workspace and always indicate a bug upstream.
    pub fn new(dims: &[usize]) -> Self {
        assert!(
            dims.iter().all(|&d| d > 0),
            "shape {dims:?} contains a zero dimension"
        );
        Self {
            dims: dims.to_vec(),
        }
    }

    /// Creates the scalar shape (rank 0, one element).
    pub fn scalar() -> Self {
        Self { dims: Vec::new() }
    }

    /// The dimension sizes, outermost first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// `true` only for the rank-0 scalar shape; scalar shapes still hold one
    /// element, so this mirrors "has no dimensions", not "has no data".
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// The size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= self.rank()`.
    pub fn dim(&self, axis: usize) -> usize {
        self.dims[axis]
    }

    /// Row-major strides (in elements) for this shape.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0;
        let strides = self.strides();
        for (axis, (&i, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(i < d, "index {i} out of bounds for axis {axis} of size {d}");
            off += i * strides[axis];
        }
        off
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(&dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.len(), 1);
        assert_eq!(s.rank(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn offset_flattens_indices() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[0, 1, 2]), 6);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_rejects_out_of_bounds() {
        Shape::new(&[2, 2]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "zero dimension")]
    fn zero_dims_rejected() {
        Shape::new(&[3, 0]);
    }

    #[test]
    fn display_lists_dims() {
        assert_eq!(Shape::new(&[2, 3]).to_string(), "[2, 3]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }
}
