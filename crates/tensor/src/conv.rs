//! 2-D convolution via `im2col`/`col2im`, with explicit forward and backward
//! entry points shared by the autodiff layer.
//!
//! Layout conventions follow the rest of the workspace:
//!
//! * input  `x`: `[N, C, H, W]`
//! * weight `w`: `[O, C, KH, KW]`
//! * output `y`: `[N, O, HO, WO]` where
//!   `HO = (H + 2·pad − KH)/stride + 1` (and likewise for `WO`).
//!
//! Both passes lower to the packed blocked GEMM (the private `gemm` module),
//! reading
//! the weight tensor's buffer directly as its `[O, C·KH·KW]` matrix view (the
//! data is already laid out that way). The [`conv2d_into`] /
//! [`conv2d_backward_into`] variants lease every intermediate — im2col
//! columns, GEMM packing panels, column gradients, per-image weight-gradient
//! staging — from a caller-owned [`Workspace`], so the SNN time loop runs
//! them allocation-free in steady state; [`conv2d`] / [`conv2d_backward`]
//! are thin wrappers over the calling thread's default arena.

use crate::gemm::PrepackedA;
use crate::workspace::{with_thread_workspace, ShardScratch, Workspace};
use crate::Tensor;

/// Hyperparameters of a 2-D convolution (square stride/padding).
///
/// # Example
///
/// ```
/// use tensor::conv::Conv2dSpec;
///
/// let spec = Conv2dSpec { stride: 1, padding: 2 };
/// assert_eq!(spec.out_extent(28, 5), 28); // "same" conv for a 5x5 kernel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Step between kernel applications, identical in both directions.
    pub stride: usize,
    /// Implicit zero padding added on every side.
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Self {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dSpec {
    /// The output extent along one axis for input extent `input` and kernel
    /// extent `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (after padding) does not fit in the input or the
    /// stride is zero.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = input + 2 * self.padding;
        assert!(
            padded >= kernel,
            "kernel {kernel} larger than padded input {padded}"
        );
        (padded - kernel) / self.stride + 1
    }
}

/// Unfolds one `[C, H, W]` image into the `[C·KH·KW, HO·WO]` column matrix
/// `col` (which is fully overwritten; padding taps become zero).
///
/// Row `c·KH·KW + ki·KW + kj` holds, for every output position, the input
/// pixel that kernel tap `(ki, kj)` of channel `c` reads.
#[allow(clippy::too_many_arguments)]
fn im2col_into(
    col: &mut [f32],
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) {
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(w, kw);
    let cols = ho * wo;
    debug_assert_eq!(col.len(), c * kh * kw * cols);
    col.fill(0.0);
    for ci in 0..c {
        let plane = &image[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let out_row = &mut col[row * cols..(row + 1) * cols];
                for oi in 0..ho {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let in_row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..wo {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out_row[oi * wo + oj] = in_row[jj as usize];
                    }
                }
            }
        }
    }
}

/// Folds a `[C·KH·KW, HO·WO]` column matrix back into the `[C, H, W]` image
/// `image` (fully overwritten), accumulating overlapping taps — the adjoint
/// of [`im2col_into`].
#[allow(clippy::too_many_arguments)]
fn col2im_into(
    image: &mut [f32],
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) {
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(w, kw);
    let cols = ho * wo;
    debug_assert_eq!(image.len(), c * h * w);
    image.fill(0.0);
    for ci in 0..c {
        let plane = &mut image[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let col_row = &col[row * cols..(row + 1) * cols];
                for oi in 0..ho {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for oj in 0..wo {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        plane[ii as usize * w + jj as usize] += col_row[oi * wo + oj];
                    }
                }
            }
        }
    }
}

/// 2-D convolution forward pass.
///
/// Equivalent to [`conv2d_into`] with the calling thread's default
/// [`Workspace`] and a fresh output tensor.
///
/// # Panics
///
/// Panics if `x` is not `[N, C, H, W]`, `w` is not `[O, C, KH, KW]`, the
/// channel counts disagree, or the kernel does not fit the padded input.
///
/// # Example
///
/// ```
/// use tensor::{conv, Tensor};
///
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 2, 2]);
/// let y = conv::conv2d(&x, &w, conv::Conv2dSpec::default());
/// assert_eq!(y.dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Tensor {
    let mut out = Tensor::zeros(&[1]);
    with_thread_workspace(|ws| conv2d_into(&mut out, x, w, spec, ws));
    out
}

/// [`conv2d`] writing into a caller-owned output tensor and scratch arena.
///
/// `out` is resized in place and overwritten; every intermediate (im2col
/// columns, GEMM panels) is leased from `ws`. Once both are warm the call
/// performs **zero heap allocations**, and results are bitwise identical to
/// [`conv2d`] regardless of the workspace's history (see
/// `tests/workspace_reuse.rs`).
///
/// # Panics
///
/// Same shape contract as [`conv2d`].
pub fn conv2d_into(out: &mut Tensor, x: &Tensor, w: &Tensor, spec: Conv2dSpec, ws: &mut Workspace) {
    let (n, c, h, width) = unpack4(x, "conv2d input");
    let (o, cw, kh, kw) = unpack4(w, "conv2d weight");
    assert_eq!(
        c, cw,
        "conv2d channel mismatch: input has {c}, weight expects {cw}"
    );
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(width, kw);
    out.resize_reusing(&[n, o, ho, wo]);
    let image_len = c * h * width;
    let out_len = o * ho * wo;
    let ckk = c * kh * kw;
    let cols = ho * wo;
    // The weight buffer *is* its [O, C·KH·KW] matrix view — no reshape copy.
    let gemm = crate::gemm::GemmSpec {
        m: o,
        k: ckk,
        n: cols,
        a_trans: false,
        b_trans: false,
    };
    // Images are independent: each worker owns one image range's disjoint
    // output slice and its own scratch shard, so the result is
    // bitwise-identical for every thread count.
    let shards = ws.shards(crate::parallel::max_threads().min(n).max(1));
    crate::parallel::par_row_shards(
        out.data_mut(),
        n,
        out_len,
        shards,
        |range, out_shard, scratch: &mut ShardScratch| {
            for (j, out_chunk) in out_shard.chunks_mut(out_len).enumerate() {
                let ni = range.start + j;
                let image = &x.data()[ni * image_len..(ni + 1) * image_len];
                let col = scratch.im2col.get(ckk * cols);
                im2col_into(col, image, c, h, width, kh, kw, spec);
                out_chunk.fill(0.0);
                crate::gemm::gemm_block(out_chunk, w.data(), col, gemm, 0..o, &mut scratch.gemm);
            }
        },
    );
}

/// A conv weight tensor prepacked into GEMM A-panel layout for reuse
/// across timesteps and requests.
///
/// The conv GEMM is `Y = W · col(X)`: the weight matrix is the **A**
/// operand (the im2col columns are input-dependent and can never be
/// prepacked), and every per-image product computes the full row range
/// `0..O` — exactly the case [`crate::PrepackedA`] panels are keyed for.
/// The panels are built by the same packing routine [`conv2d_into`] runs
/// per image, so prepacked convolutions are bitwise identical.
#[derive(Debug)]
pub struct PrepackedConvW {
    pa: PrepackedA,
    dims: [usize; 4],
}

impl PrepackedConvW {
    /// The `[O, C, KH, KW]` shape the weights were packed for.
    pub fn dims(&self) -> &[usize; 4] {
        &self.dims
    }
}

/// Packs a `[O, C, KH, KW]` conv weight tensor once for
/// [`conv2d_prepacked_into`].
///
/// # Panics
///
/// Panics if `w` is not rank 4.
pub fn prepack_conv2d_weights(w: &Tensor) -> PrepackedConvW {
    let (o, c, kh, kw) = unpack4(w, "conv2d weight");
    let spec = crate::gemm::GemmSpec {
        m: o,
        k: c * kh * kw,
        n: 0,
        a_trans: false,
        b_trans: false,
    };
    PrepackedConvW {
        pa: PrepackedA::pack_from(w.data(), spec),
        dims: [o, c, kh, kw],
    }
}

/// [`conv2d_into`] with the weight matrix already in packed panel form:
/// zero weight-packing work per call, bitwise-identical results. The
/// im2col side is still packed per image from scratch buffers — it
/// depends on the input and cannot be cached.
///
/// # Panics
///
/// Same shape contract as [`conv2d`]; `pw` must have been packed from a
/// weight tensor of the same shape.
pub fn conv2d_prepacked_into(
    out: &mut Tensor,
    x: &Tensor,
    pw: &PrepackedConvW,
    spec: Conv2dSpec,
    ws: &mut Workspace,
) {
    let (n, c, h, width) = unpack4(x, "conv2d input");
    let [o, cw, kh, kw] = *pw.dims();
    assert_eq!(
        c, cw,
        "conv2d channel mismatch: input has {c}, weight expects {cw}"
    );
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(width, kw);
    out.resize_reusing(&[n, o, ho, wo]);
    let image_len = c * h * width;
    let out_len = o * ho * wo;
    let ckk = c * kh * kw;
    let cols = ho * wo;
    let gemm = crate::gemm::GemmSpec {
        m: o,
        k: ckk,
        n: cols,
        a_trans: false,
        b_trans: false,
    };
    let shards = ws.shards(crate::parallel::max_threads().min(n).max(1));
    let pa = &pw.pa;
    crate::parallel::par_row_shards(
        out.data_mut(),
        n,
        out_len,
        shards,
        |range, out_shard, scratch: &mut ShardScratch| {
            for (j, out_chunk) in out_shard.chunks_mut(out_len).enumerate() {
                let ni = range.start + j;
                let image = &x.data()[ni * image_len..(ni + 1) * image_len];
                let col = scratch.im2col.get(ckk * cols);
                im2col_into(col, image, c, h, width, kh, kw, spec);
                out_chunk.fill(0.0);
                crate::gemm::gemm_block_prepacked_a(out_chunk, pa, col, gemm, &mut scratch.gemm);
            }
        },
    );
}

/// [`conv2d_prepacked_into`] allocating a fresh output via the calling
/// thread's default workspace.
///
/// # Panics
///
/// Same contract as [`conv2d_prepacked_into`].
pub fn conv2d_prepacked(x: &Tensor, pw: &PrepackedConvW, spec: Conv2dSpec) -> Tensor {
    let mut out = Tensor::zeros(&[1]);
    with_thread_workspace(|ws| conv2d_prepacked_into(&mut out, x, pw, spec, ws));
    out
}

/// Gradients of [`conv2d`] with respect to its input and weight.
///
/// Given `grad_out = ∂L/∂y` of shape `[N, O, HO, WO]`, returns
/// `(∂L/∂x, ∂L/∂w)` with the shapes of `x` and `w`. Equivalent to
/// [`conv2d_backward_into`] with the calling thread's default [`Workspace`].
///
/// # Panics
///
/// Panics on any of the shape violations listed for [`conv2d`], or if
/// `grad_out` does not have the output shape implied by `x`, `w` and `spec`.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor) {
    let mut grad_x = Tensor::zeros(&[1]);
    let mut grad_w = Tensor::zeros(&[1]);
    with_thread_workspace(|ws| {
        conv2d_backward_into(&mut grad_x, &mut grad_w, x, w, grad_out, spec, ws);
    });
    (grad_x, grad_w)
}

/// [`conv2d_backward`] writing into caller-owned gradient tensors and
/// scratch arena: `grad_x`/`grad_w` are resized in place and overwritten,
/// and all intermediates come from `ws` — allocation-free once warm.
///
/// Per-image contributions are computed in parallel into a staging area, and
/// the weight gradient is then reduced serially in image order so float
/// summation matches the serial loop bit for bit.
///
/// # Panics
///
/// Same contract as [`conv2d_backward`].
pub fn conv2d_backward_into(
    grad_x: &mut Tensor,
    grad_w: &mut Tensor,
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    ws: &mut Workspace,
) {
    let (n, c, h, width) = unpack4(x, "conv2d input");
    let (o, _, kh, kw) = unpack4(w, "conv2d weight");
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(width, kw);
    assert_eq!(
        grad_out.dims(),
        &[n, o, ho, wo],
        "conv2d_backward grad_out shape {:?} does not match expected [{n}, {o}, {ho}, {wo}]",
        grad_out.dims()
    );
    grad_x.resize_reusing(&[n, c, h, width]);
    grad_w.resize_reusing(&[o, c, kh, kw]);
    let image_len = c * h * width;
    let out_len = o * ho * wo;
    let ckk = c * kh * kw;
    let cols = ho * wo;
    let wlen = o * ckk;
    // ∂L/∂w contribution of one image: g · colᵀ (B packed transposed).
    let gw_gemm = crate::gemm::GemmSpec {
        m: o,
        k: cols,
        n: ckk,
        a_trans: false,
        b_trans: true,
    };
    // Column gradient: wᵀ · g (A packed transposed), then col2im → ∂L/∂x.
    let gcol_gemm = crate::gemm::GemmSpec {
        m: ckk,
        k: o,
        n: cols,
        a_trans: true,
        b_trans: false,
    };
    let (shards, staging) = ws.split(crate::parallel::max_threads().min(n).max(1));
    let parts = staging.get(n * wlen);
    crate::parallel::par_row_shards2(
        grad_x.data_mut(),
        image_len,
        parts,
        wlen,
        n,
        shards,
        |range, gx_shard, gw_shard, scratch: &mut ShardScratch| {
            for j in 0..range.len() {
                let ni = range.start + j;
                let image = &x.data()[ni * image_len..(ni + 1) * image_len];
                let g = &grad_out.data()[ni * out_len..(ni + 1) * out_len];
                let col = scratch.im2col.get(ckk * cols);
                im2col_into(col, image, c, h, width, kh, kw, spec);
                let gw = &mut gw_shard[j * wlen..(j + 1) * wlen];
                gw.fill(0.0);
                crate::gemm::gemm_block(gw, g, col, gw_gemm, 0..o, &mut scratch.gemm);
                let gcol = scratch.col_grad.get_zeroed(ckk * cols);
                crate::gemm::gemm_block(gcol, w.data(), g, gcol_gemm, 0..ckk, &mut scratch.gemm);
                let gx = &mut gx_shard[j * image_len..(j + 1) * image_len];
                col2im_into(gx, gcol, c, h, width, kh, kw, spec);
            }
        },
    );
    // Serial image-order reduction keeps the sum order independent of the
    // thread count (and of the batch sharding).
    let gw_out = grad_w.data_mut();
    gw_out.fill(0.0);
    for part in parts.chunks_exact(wlen).take(n) {
        for (acc, &v) in gw_out.iter_mut().zip(part) {
            *acc += v;
        }
    }
}

fn unpack4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    match t.dims() {
        [a, b, c, d] => (*a, *b, *c, *d),
        dims => panic!("{what} must be rank 4, got shape {dims:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_extent() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        assert_eq!(spec.out_extent(5, 3), 5);
    }

    #[test]
    fn conv_known_values() {
        // 1x1x3x3 input, counting 1..9; 2x2 kernel of ones, valid conv.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                stride: 2,
                padding: 1,
            },
        );
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Corner kernel sees a 2x2 valid patch, etc.
        assert_eq!(y.data(), &[4.0, 6.0, 6.0, 9.0]);
    }

    #[test]
    fn conv_multi_channel_sums_channels() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let w = Tensor::ones(&[1, 2, 2, 2]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        assert_eq!(y.data(), &[8.0]);
    }

    #[test]
    fn backward_shapes_match_operands() {
        let x = Tensor::ones(&[2, 3, 6, 6]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let y = conv2d(&x, &w, spec);
        let (gx, gw) = conv2d_backward(&x, &w, &Tensor::ones(y.dims()), spec);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gw.dims(), w.dims());
    }

    /// Finite-difference check of both gradients on a small random problem.
    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let x0 = Tensor::from_vec(
            (0..18).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect(),
            &[1, 2, 3, 3],
        );
        let w0 = Tensor::from_vec(
            (0..16).map(|i| ((i * 3 % 7) as f32 - 3.0) * 0.2).collect(),
            &[2, 2, 2, 2],
        );
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).data().iter().sum::<f32>();
        let y = conv2d(&x0, &w0, spec);
        let (gx, gw) = conv2d_backward(&x0, &w0, &Tensor::ones(y.dims()), spec);
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w0) - loss(&xm, &w0)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs analytic {}",
                gx.data()[i]
            );
        }
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x0, &wp) - loss(&x0, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "weight grad {i}: fd {fd} vs analytic {}",
                gw.data()[i]
            );
        }
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;

    /// Finite-difference check with stride 2 and no padding — the loop
    /// geometry differs from the stride-1 case checked above.
    #[test]
    fn strided_backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 0,
        };
        let x0 = Tensor::from_vec(
            (0..32).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.2).collect(),
            &[2, 1, 4, 4],
        );
        let w0 = Tensor::from_vec(
            (0..4).map(|i| (i as f32 - 1.5) * 0.4).collect(),
            &[1, 1, 2, 2],
        );
        let y = conv2d(&x0, &w0, spec);
        assert_eq!(y.dims(), &[2, 1, 2, 2]);
        let (gx, gw) = conv2d_backward(&x0, &w0, &Tensor::ones(y.dims()), spec);
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).sum();
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w0) - loss(&xm, &w0)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "x[{i}]: {fd} vs {}",
                gx.data()[i]
            );
        }
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x0, &wp) - loss(&x0, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "w[{i}]: {fd} vs {}",
                gw.data()[i]
            );
        }
    }

    /// The parallel per-image dispatch must be invisible in the results:
    /// forward and backward outputs are bitwise-identical across thread
    /// counts (each image's computation is untouched and the weight-gradient
    /// reduction stays in image order).
    #[test]
    fn parallel_conv_is_bitwise_identical_to_serial() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5)
                .map(|i| ((i * 13 % 17) as f32 - 8.0) * 0.1)
                .collect(),
            &[2, 2, 5, 5],
        );
        let w = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.25)
                .collect(),
            &[3, 2, 3, 3],
        );
        let before = crate::parallel::max_threads();
        crate::parallel::set_max_threads(1);
        let y_serial = conv2d(&x, &w, spec);
        let (gx_serial, gw_serial) = conv2d_backward(&x, &w, &Tensor::ones(y_serial.dims()), spec);
        for threads in [2, 4] {
            crate::parallel::set_max_threads(threads);
            let y = conv2d(&x, &w, spec);
            let (gx, gw) = conv2d_backward(&x, &w, &Tensor::ones(y.dims()), spec);
            assert_eq!(
                y.data(),
                y_serial.data(),
                "forward differs at {threads} threads"
            );
            assert_eq!(
                gx.data(),
                gx_serial.data(),
                "grad_x differs at {threads} threads"
            );
            assert_eq!(
                gw.data(),
                gw_serial.data(),
                "grad_w differs at {threads} threads"
            );
        }
        crate::parallel::set_max_threads(before);
    }

    /// Prepacked-weight convolution must be bitwise identical to the
    /// pack-per-call path at every thread count.
    #[test]
    fn prepacked_conv_is_bitwise_identical() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5)
                .map(|i| ((i * 13 % 17) as f32 - 8.0) * 0.1)
                .collect(),
            &[2, 2, 5, 5],
        );
        let w = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.25)
                .collect(),
            &[3, 2, 3, 3],
        );
        let pw = prepack_conv2d_weights(&w);
        let want = conv2d(&x, &w, spec);
        let before = crate::parallel::max_threads();
        for threads in [1, 2, 4] {
            crate::parallel::set_max_threads(threads);
            let got = conv2d_prepacked(&x, &pw, spec);
            assert_eq!(got.dims(), want.dims());
            for (i, (&a, &b)) in got.data().iter().zip(want.data()).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "element {i} at {threads} threads");
            }
        }
        crate::parallel::set_max_threads(before);
    }

    /// 1x1 kernels degenerate to per-pixel channel mixing.
    #[test]
    fn one_by_one_kernel_is_channel_mixing() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
        let w = Tensor::from_vec(vec![2.0, 10.0], &[1, 2, 1, 1]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        // out = 2·c0 + 10·c1 per pixel: [2·1+10·3, 2·2+10·4].
        assert_eq!(y.data(), &[32.0, 44.0]);
    }
}
