//! 2-D convolution via `im2col`/`col2im`, with explicit forward and backward
//! entry points shared by the autodiff layer.
//!
//! Layout conventions follow the rest of the workspace:
//!
//! * input  `x`: `[N, C, H, W]`
//! * weight `w`: `[O, C, KH, KW]`
//! * output `y`: `[N, O, HO, WO]` where
//!   `HO = (H + 2·pad − KH)/stride + 1` (and likewise for `WO`).

use crate::Tensor;

/// Hyperparameters of a 2-D convolution (square stride/padding).
///
/// # Example
///
/// ```
/// use tensor::conv::Conv2dSpec;
///
/// let spec = Conv2dSpec { stride: 1, padding: 2 };
/// assert_eq!(spec.out_extent(28, 5), 28); // "same" conv for a 5x5 kernel
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dSpec {
    /// Step between kernel applications, identical in both directions.
    pub stride: usize,
    /// Implicit zero padding added on every side.
    pub padding: usize,
}

impl Default for Conv2dSpec {
    fn default() -> Self {
        Self {
            stride: 1,
            padding: 0,
        }
    }
}

impl Conv2dSpec {
    /// The output extent along one axis for input extent `input` and kernel
    /// extent `kernel`.
    ///
    /// # Panics
    ///
    /// Panics if the kernel (after padding) does not fit in the input or the
    /// stride is zero.
    pub fn out_extent(&self, input: usize, kernel: usize) -> usize {
        assert!(self.stride > 0, "stride must be positive");
        let padded = input + 2 * self.padding;
        assert!(
            padded >= kernel,
            "kernel {kernel} larger than padded input {padded}"
        );
        (padded - kernel) / self.stride + 1
    }
}

/// Unfolds one `[C, H, W]` image into a `[C·KH·KW, HO·WO]` column matrix.
///
/// Row `c·KH·KW + ki·KW + kj` holds, for every output position, the input
/// pixel that kernel tap `(ki, kj)` of channel `c` reads (zero where the tap
/// falls in the padding).
fn im2col(
    image: &[f32],
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Tensor {
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(w, kw);
    let mut col = Tensor::zeros(&[c * kh * kw, ho * wo]);
    let data = col.data_mut();
    let cols = ho * wo;
    for ci in 0..c {
        let plane = &image[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let out_row = &mut data[row * cols..(row + 1) * cols];
                for oi in 0..ho {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    let in_row = &plane[ii as usize * w..(ii as usize + 1) * w];
                    for oj in 0..wo {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        out_row[oi * wo + oj] = in_row[jj as usize];
                    }
                }
            }
        }
    }
    col
}

/// Folds a `[C·KH·KW, HO·WO]` column matrix back into a `[C, H, W]` image,
/// accumulating overlapping taps (the adjoint of [`im2col`]).
fn col2im(
    col: &Tensor,
    c: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    spec: Conv2dSpec,
) -> Vec<f32> {
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(w, kw);
    let cols = ho * wo;
    let mut image = vec![0.0f32; c * h * w];
    for ci in 0..c {
        let plane = &mut image[ci * h * w..(ci + 1) * h * w];
        for ki in 0..kh {
            for kj in 0..kw {
                let row = (ci * kh + ki) * kw + kj;
                let col_row = &col.data()[row * cols..(row + 1) * cols];
                for oi in 0..ho {
                    let ii = (oi * spec.stride + ki) as isize - spec.padding as isize;
                    if ii < 0 || ii >= h as isize {
                        continue;
                    }
                    for oj in 0..wo {
                        let jj = (oj * spec.stride + kj) as isize - spec.padding as isize;
                        if jj < 0 || jj >= w as isize {
                            continue;
                        }
                        plane[ii as usize * w + jj as usize] += col_row[oi * wo + oj];
                    }
                }
            }
        }
    }
    image
}

/// 2-D convolution forward pass.
///
/// # Panics
///
/// Panics if `x` is not `[N, C, H, W]`, `w` is not `[O, C, KH, KW]`, the
/// channel counts disagree, or the kernel does not fit the padded input.
///
/// # Example
///
/// ```
/// use tensor::{conv, Tensor};
///
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 2, 2]);
/// let y = conv::conv2d(&x, &w, conv::Conv2dSpec::default());
/// assert_eq!(y.dims(), &[1, 1, 2, 2]);
/// assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
/// ```
pub fn conv2d(x: &Tensor, w: &Tensor, spec: Conv2dSpec) -> Tensor {
    let (n, c, h, width) = unpack4(x, "conv2d input");
    let (o, cw, kh, kw) = unpack4(w, "conv2d weight");
    assert_eq!(
        c, cw,
        "conv2d channel mismatch: input has {c}, weight expects {cw}"
    );
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(width, kw);
    let w_mat = w.reshape(&[o, c * kh * kw]);
    let mut out = Tensor::zeros(&[n, o, ho, wo]);
    let image_len = c * h * width;
    let out_len = o * ho * wo;
    // Images are independent: each worker owns one image's disjoint output
    // slice, so the result is bitwise-identical for every thread count.
    crate::parallel::par_chunks_mut(
        out.data_mut(),
        out_len,
        crate::parallel::max_threads(),
        |ni, out_chunk| {
            let image = &x.data()[ni * image_len..(ni + 1) * image_len];
            let col = im2col(image, c, h, width, kh, kw, spec);
            let y = w_mat.matmul(&col); // [O, HO*WO]
            out_chunk.copy_from_slice(y.data());
        },
    );
    out
}

/// Gradients of [`conv2d`] with respect to its input and weight.
///
/// Given `grad_out = ∂L/∂y` of shape `[N, O, HO, WO]`, returns
/// `(∂L/∂x, ∂L/∂w)` with the shapes of `x` and `w`.
///
/// # Panics
///
/// Panics on any of the shape violations listed for [`conv2d`], or if
/// `grad_out` does not have the output shape implied by `x`, `w` and `spec`.
pub fn conv2d_backward(
    x: &Tensor,
    w: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
) -> (Tensor, Tensor) {
    let (n, c, h, width) = unpack4(x, "conv2d input");
    let (o, _, kh, kw) = unpack4(w, "conv2d weight");
    let ho = spec.out_extent(h, kh);
    let wo = spec.out_extent(width, kw);
    assert_eq!(
        grad_out.dims(),
        &[n, o, ho, wo],
        "conv2d_backward grad_out shape {:?} does not match expected [{n}, {o}, {ho}, {wo}]",
        grad_out.dims()
    );
    let w_mat = w.reshape(&[o, c * kh * kw]);
    let w_mat_t = w_mat.transpose2d();
    let mut grad_x = Tensor::zeros(&[n, c, h, width]);
    let mut grad_w_mat = Tensor::zeros(&[o, c * kh * kw]);
    let image_len = c * h * width;
    let out_len = o * ho * wo;
    // Per-image contributions are computed in parallel; the weight gradient
    // is then reduced serially in image order so float summation matches the
    // serial loop bit for bit.
    let per_image: Vec<(Tensor, Vec<f32>)> =
        crate::parallel::par_map_collect(n, crate::parallel::max_threads(), |ni| {
            let image = &x.data()[ni * image_len..(ni + 1) * image_len];
            let col = im2col(image, c, h, width, kh, kw, spec);
            let g = Tensor::from_vec(
                grad_out.data()[ni * out_len..(ni + 1) * out_len].to_vec(),
                &[o, ho * wo],
            );
            // ∂L/∂w contribution: g · colᵀ; ∂L/∂x = col2im(wᵀ · g).
            let gw = g.matmul(&col.transpose2d());
            let gcol = w_mat_t.matmul(&g);
            let gx = col2im(&gcol, c, h, width, kh, kw, spec);
            (gw, gx)
        });
    for (ni, (gw, gx)) in per_image.iter().enumerate() {
        grad_w_mat.add_scaled_inplace(gw, 1.0);
        grad_x.data_mut()[ni * image_len..(ni + 1) * image_len].copy_from_slice(gx);
    }
    (grad_x, grad_w_mat.reshape(&[o, c, kh, kw]))
}

fn unpack4(t: &Tensor, what: &str) -> (usize, usize, usize, usize) {
    match t.dims() {
        [a, b, c, d] => (*a, *b, *c, *d),
        dims => panic!("{what} must be rank 4, got shape {dims:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_padding_preserves_extent() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        assert_eq!(spec.out_extent(5, 3), 5);
    }

    #[test]
    fn conv_known_values() {
        // 1x1x3x3 input, counting 1..9; 2x2 kernel of ones, valid conv.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        assert_eq!(y.data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv_with_padding_and_stride() {
        let x = Tensor::ones(&[1, 1, 4, 4]);
        let w = Tensor::ones(&[1, 1, 3, 3]);
        let y = conv2d(
            &x,
            &w,
            Conv2dSpec {
                stride: 2,
                padding: 1,
            },
        );
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        // Corner kernel sees a 2x2 valid patch, etc.
        assert_eq!(y.data(), &[4.0, 6.0, 6.0, 9.0]);
    }

    #[test]
    fn conv_multi_channel_sums_channels() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let w = Tensor::ones(&[1, 2, 2, 2]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        assert_eq!(y.data(), &[8.0]);
    }

    #[test]
    fn backward_shapes_match_operands() {
        let x = Tensor::ones(&[2, 3, 6, 6]);
        let w = Tensor::ones(&[4, 3, 3, 3]);
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let y = conv2d(&x, &w, spec);
        let (gx, gw) = conv2d_backward(&x, &w, &Tensor::ones(y.dims()), spec);
        assert_eq!(gx.dims(), x.dims());
        assert_eq!(gw.dims(), w.dims());
    }

    /// Finite-difference check of both gradients on a small random problem.
    #[test]
    fn backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let x0 = Tensor::from_vec(
            (0..18).map(|i| ((i * 7 % 5) as f32 - 2.0) * 0.3).collect(),
            &[1, 2, 3, 3],
        );
        let w0 = Tensor::from_vec(
            (0..16).map(|i| ((i * 3 % 7) as f32 - 3.0) * 0.2).collect(),
            &[2, 2, 2, 2],
        );
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).data().iter().sum::<f32>();
        let y = conv2d(&x0, &w0, spec);
        let (gx, gw) = conv2d_backward(&x0, &w0, &Tensor::ones(y.dims()), spec);
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w0) - loss(&xm, &w0)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "input grad {i}: fd {fd} vs analytic {}",
                gx.data()[i]
            );
        }
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x0, &wp) - loss(&x0, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "weight grad {i}: fd {fd} vs analytic {}",
                gw.data()[i]
            );
        }
    }
}

#[cfg(test)]
mod stride_tests {
    use super::*;

    /// Finite-difference check with stride 2 and no padding — the loop
    /// geometry differs from the stride-1 case checked above.
    #[test]
    fn strided_backward_matches_finite_differences() {
        let spec = Conv2dSpec {
            stride: 2,
            padding: 0,
        };
        let x0 = Tensor::from_vec(
            (0..32).map(|i| ((i * 5 % 11) as f32 - 5.0) * 0.2).collect(),
            &[2, 1, 4, 4],
        );
        let w0 = Tensor::from_vec(
            (0..4).map(|i| (i as f32 - 1.5) * 0.4).collect(),
            &[1, 1, 2, 2],
        );
        let y = conv2d(&x0, &w0, spec);
        assert_eq!(y.dims(), &[2, 1, 2, 2]);
        let (gx, gw) = conv2d_backward(&x0, &w0, &Tensor::ones(y.dims()), spec);
        let loss = |x: &Tensor, w: &Tensor| conv2d(x, w, spec).sum();
        let eps = 1e-2f32;
        for i in 0..x0.len() {
            let mut xp = x0.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x0.clone();
            xm.data_mut()[i] -= eps;
            let fd = (loss(&xp, &w0) - loss(&xm, &w0)) / (2.0 * eps);
            assert!(
                (fd - gx.data()[i]).abs() < 1e-2,
                "x[{i}]: {fd} vs {}",
                gx.data()[i]
            );
        }
        for i in 0..w0.len() {
            let mut wp = w0.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w0.clone();
            wm.data_mut()[i] -= eps;
            let fd = (loss(&x0, &wp) - loss(&x0, &wm)) / (2.0 * eps);
            assert!(
                (fd - gw.data()[i]).abs() < 1e-2,
                "w[{i}]: {fd} vs {}",
                gw.data()[i]
            );
        }
    }

    /// The parallel per-image dispatch must be invisible in the results:
    /// forward and backward outputs are bitwise-identical across thread
    /// counts (each image's computation is untouched and the weight-gradient
    /// reduction stays in image order).
    #[test]
    fn parallel_conv_is_bitwise_identical_to_serial() {
        let spec = Conv2dSpec {
            stride: 1,
            padding: 1,
        };
        let x = Tensor::from_vec(
            (0..2 * 2 * 5 * 5)
                .map(|i| ((i * 13 % 17) as f32 - 8.0) * 0.1)
                .collect(),
            &[2, 2, 5, 5],
        );
        let w = Tensor::from_vec(
            (0..3 * 2 * 3 * 3)
                .map(|i| ((i * 5 % 9) as f32 - 4.0) * 0.25)
                .collect(),
            &[3, 2, 3, 3],
        );
        let before = crate::parallel::max_threads();
        crate::parallel::set_max_threads(1);
        let y_serial = conv2d(&x, &w, spec);
        let (gx_serial, gw_serial) = conv2d_backward(&x, &w, &Tensor::ones(y_serial.dims()), spec);
        for threads in [2, 4] {
            crate::parallel::set_max_threads(threads);
            let y = conv2d(&x, &w, spec);
            let (gx, gw) = conv2d_backward(&x, &w, &Tensor::ones(y.dims()), spec);
            assert_eq!(
                y.data(),
                y_serial.data(),
                "forward differs at {threads} threads"
            );
            assert_eq!(
                gx.data(),
                gx_serial.data(),
                "grad_x differs at {threads} threads"
            );
            assert_eq!(
                gw.data(),
                gw_serial.data(),
                "grad_w differs at {threads} threads"
            );
        }
        crate::parallel::set_max_threads(before);
    }

    /// 1x1 kernels degenerate to per-pixel channel mixing.
    #[test]
    fn one_by_one_kernel_is_channel_mixing() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]);
        let w = Tensor::from_vec(vec![2.0, 10.0], &[1, 2, 1, 1]);
        let y = conv2d(&x, &w, Conv2dSpec::default());
        // out = 2·c0 + 10·c1 per pixel: [2·1+10·3, 2·2+10·4].
        assert_eq!(y.data(), &[32.0, 44.0]);
    }
}
