//! Spatial pooling over `[N, C, H, W]` feature maps.

use crate::Tensor;

/// Average pooling with a square `k × k` window and stride `k`.
///
/// # Panics
///
/// Panics if `x` is not rank 4, `k` is zero, or `H`/`W` are not divisible by
/// `k` (non-divisible pooling windows would silently drop pixels).
///
/// # Example
///
/// ```
/// use tensor::{pool, Tensor};
///
/// let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
/// let y = pool::avg_pool2d(&x, 2);
/// assert_eq!(y.data(), &[2.5]);
/// ```
pub fn avg_pool2d(x: &Tensor, k: usize) -> Tensor {
    let (n, c, h, w) = unpack4(x);
    check_divisible(h, w, k);
    let (ho, wo) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let norm = 1.0 / (k * k) as f32;
    let in_plane = h * w;
    let out_plane = ho * wo;
    for p in 0..n * c {
        let src = &x.data()[p * in_plane..(p + 1) * in_plane];
        let dst = &mut out.data_mut()[p * out_plane..(p + 1) * out_plane];
        for oi in 0..ho {
            for oj in 0..wo {
                let mut acc = 0.0;
                for di in 0..k {
                    for dj in 0..k {
                        acc += src[(oi * k + di) * w + (oj * k + dj)];
                    }
                }
                dst[oi * wo + oj] = acc * norm;
            }
        }
    }
    out
}

/// Gradient of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its `k × k` input window.
///
/// # Panics
///
/// Panics if `grad_out` does not have the pooled shape of an input with
/// `in_dims` dimensions.
pub fn avg_pool2d_backward(grad_out: &Tensor, in_dims: &[usize], k: usize) -> Tensor {
    let (n, c, h, w) = match in_dims {
        [n, c, h, w] => (*n, *c, *h, *w),
        d => panic!("avg_pool2d_backward input dims must be rank 4, got {d:?}"),
    };
    check_divisible(h, w, k);
    let (ho, wo) = (h / k, w / k);
    assert_eq!(
        grad_out.dims(),
        &[n, c, ho, wo],
        "avg_pool2d_backward grad shape {:?} does not match pooled [{n}, {c}, {ho}, {wo}]",
        grad_out.dims()
    );
    let mut grad_in = Tensor::zeros(in_dims);
    let norm = 1.0 / (k * k) as f32;
    let in_plane = h * w;
    let out_plane = ho * wo;
    for p in 0..n * c {
        let src = &grad_out.data()[p * out_plane..(p + 1) * out_plane];
        let dst = &mut grad_in.data_mut()[p * in_plane..(p + 1) * in_plane];
        for oi in 0..ho {
            for oj in 0..wo {
                let g = src[oi * wo + oj] * norm;
                for di in 0..k {
                    for dj in 0..k {
                        dst[(oi * k + di) * w + (oj * k + dj)] += g;
                    }
                }
            }
        }
    }
    grad_in
}

/// Max pooling with a square `k × k` window and stride `k`.
///
/// Returns the pooled tensor and the flat index (into the input buffer) of
/// each selected maximum, which [`max_pool2d_backward`] uses to route
/// gradients.
///
/// # Panics
///
/// Same conditions as [`avg_pool2d`].
pub fn max_pool2d(x: &Tensor, k: usize) -> (Tensor, Vec<usize>) {
    let (n, c, h, w) = unpack4(x);
    check_divisible(h, w, k);
    let (ho, wo) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, ho, wo]);
    let mut argmax = vec![0usize; n * c * ho * wo];
    let in_plane = h * w;
    let out_plane = ho * wo;
    for p in 0..n * c {
        let src = &x.data()[p * in_plane..(p + 1) * in_plane];
        for oi in 0..ho {
            for oj in 0..wo {
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = 0usize;
                for di in 0..k {
                    for dj in 0..k {
                        let idx = (oi * k + di) * w + (oj * k + dj);
                        if src[idx] > best {
                            best = src[idx];
                            best_idx = idx;
                        }
                    }
                }
                let o = p * out_plane + oi * wo + oj;
                out.data_mut()[o] = best;
                argmax[o] = p * in_plane + best_idx;
            }
        }
    }
    (out, argmax)
}

/// Gradient of [`max_pool2d`]: routes each output gradient to the input
/// element recorded in `argmax`.
///
/// # Panics
///
/// Panics if `grad_out.len() != argmax.len()`.
pub fn max_pool2d_backward(grad_out: &Tensor, argmax: &[usize], in_dims: &[usize]) -> Tensor {
    assert_eq!(
        grad_out.len(),
        argmax.len(),
        "max_pool2d_backward: {} gradients but {} argmax entries",
        grad_out.len(),
        argmax.len()
    );
    let mut grad_in = Tensor::zeros(in_dims);
    for (&g, &idx) in grad_out.data().iter().zip(argmax) {
        grad_in.data_mut()[idx] += g;
    }
    grad_in
}

fn unpack4(t: &Tensor) -> (usize, usize, usize, usize) {
    match t.dims() {
        [n, c, h, w] => (*n, *c, *h, *w),
        d => panic!("pooling input must be rank 4, got shape {d:?}"),
    }
}

fn check_divisible(h: usize, w: usize, k: usize) {
    assert!(k > 0, "pooling window must be positive");
    assert!(
        h.is_multiple_of(k) && w.is_multiple_of(k),
        "pooling window {k} does not divide spatial extent {h}x{w}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec((1..=16).map(|v| v as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d(&x, 2);
        assert_eq!(y.dims(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_spreads_uniformly() {
        let g = Tensor::from_vec(vec![4.0], &[1, 1, 1, 1]);
        let gx = avg_pool2d_backward(&g, &[1, 1, 2, 2], 2);
        assert_eq!(gx.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn max_pool_selects_max_and_routes_grad() {
        let x = Tensor::from_vec(vec![1.0, 5.0, 3.0, 2.0], &[1, 1, 2, 2]);
        let (y, arg) = max_pool2d(&x, 2);
        assert_eq!(y.data(), &[5.0]);
        assert_eq!(arg, vec![1]);
        let gx = max_pool2d_backward(
            &Tensor::from_vec(vec![2.0], &[1, 1, 1, 1]),
            &arg,
            &[1, 1, 2, 2],
        );
        assert_eq!(gx.data(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn pool_rejects_non_divisible() {
        avg_pool2d(&Tensor::zeros(&[1, 1, 3, 3]), 2);
    }
}
