//! Phase spans and the wall-clock timing sink.
//!
//! A [`span`] marks one pass through a named phase (`train/epoch`,
//! `attack/pgd_iter`, `grid/cell`, `sweep/epsilon`). It does two separate
//! things, and keeping them separate is the whole design:
//!
//! * it increments the deterministic counter `span/<name>` — a pure count
//!   of phase entries, bitwise-reproducible across `--threads`;
//! * on drop it adds the elapsed wall-clock time to this module's *timing
//!   sink* — the one place in the workspace where wall-clock durations are
//!   allowed to accumulate.
//!
//! The timing sink is quarantined: its contents go into the `"timing"`
//! section of `metrics.json`, which the determinism contract explicitly
//! excludes (see DESIGN.md §11), and it carries the workspace's single
//! justified `wallclock-purity` allow. Nothing in the deterministic
//! sections can ever observe a clock.
//!
//! Spans nest naturally — each guard times its own scope independently, so
//! a `grid/cell` span can enclose many `sweep/epsilon` spans which enclose
//! many `attack/pgd_iter` spans.

use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

/// Aggregate timing of one span name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStats {
    /// How many spans of this name completed.
    pub count: u64,
    /// Total wall-clock nanoseconds across all of them.
    pub total_nanos: u128,
}

/// The quarantined wall-clock section of a metrics document: per-span
/// durations plus free-form gauges for values that are *expected* to vary
/// across thread counts (e.g. per-thread workspace warm-up allocations).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingSink {
    /// Aggregate durations keyed by span name.
    pub spans: BTreeMap<String, SpanStats>,
    /// Nondeterministic gauges keyed by name.
    pub gauges: BTreeMap<String, u64>,
}

impl TimingSink {
    /// Creates an empty sink.
    pub const fn new() -> Self {
        Self {
            spans: BTreeMap::new(),
            gauges: BTreeMap::new(),
        }
    }
}

static TIMING: Mutex<TimingSink> = Mutex::new(TimingSink::new());

/// An active phase span; dropping it records the elapsed time.
///
/// Inert (no clock was read, nothing will be recorded) when recording was
/// disabled at creation.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    name: &'static str,
    started: Option<Instant>,
}

/// Opens a span over the named phase. While recording is disabled this is
/// a single atomic load returning an inert guard.
pub fn span(name: &'static str) -> Span {
    if !crate::recorder::enabled() {
        return Span {
            name,
            started: None,
        };
    }
    crate::recorder::counter_add(&format!("span/{name}"), 1);
    Span {
        name,
        // The single sanctioned clock read: it can only ever flow into the
        // TIMING sink below, never into a deterministic counter/histogram.
        // armor-lint: allow(wallclock-purity, transitive-determinism) -- the timing sink is the one quarantined wall-clock consumer; the reading flows only into TIMING, never into the deterministic counter this function also bumps
        started: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(started) = self.started else { return };
        let nanos = started.elapsed().as_nanos();
        let mut sink = TIMING.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = sink.spans.get_mut(self.name) {
            s.count += 1;
            s.total_nanos += nanos;
        } else {
            sink.spans.insert(
                self.name.to_string(),
                SpanStats {
                    count: 1,
                    total_nanos: nanos,
                },
            );
        }
    }
}

/// Adds `delta` to a timing-section gauge. Use this — not a counter — for
/// quantities that legitimately differ across `--threads` settings, so they
/// can never poison the deterministic sections. No-op while disabled.
pub fn timing_gauge_add(name: &str, delta: u64) {
    if !crate::recorder::enabled() {
        return;
    }
    let mut sink = TIMING.lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(g) = sink.gauges.get_mut(name) {
        *g += delta;
    } else {
        sink.gauges.insert(name.to_string(), delta);
    }
}

/// A clone of the current timing sink.
pub fn timing_snapshot() -> TimingSink {
    TIMING
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Clears the timing sink (called from [`crate::recorder::reset`]).
pub(crate) fn reset_timing() {
    *TIMING.lock().unwrap_or_else(PoisonError::into_inner) = TimingSink::new();
}

#[cfg(test)]
mod tests {
    use super::*;

    // One #[test] for the whole lifecycle: spans share global state with
    // the recorder, so interleaving with other tests must be avoided.
    #[test]
    fn spans_count_deterministically_and_time_into_the_sink() {
        crate::recorder::reset();

        // Disabled: inert guard, no counter, no timing.
        drop(span("t/phase"));
        assert_eq!(crate::recorder::snapshot().counter("span/t/phase"), 0);
        assert!(timing_snapshot().spans.is_empty());

        crate::recorder::enable(false);
        {
            let _outer = span("t/phase");
            let _inner = span("t/inner"); // spans nest
        }
        drop(span("t/phase"));
        timing_gauge_add("t/gauge", 3);

        let snap = crate::recorder::snapshot();
        assert_eq!(snap.counter("span/t/phase"), 2);
        assert_eq!(snap.counter("span/t/inner"), 1);

        let timing = timing_snapshot();
        assert_eq!(timing.spans.get("t/phase").map(|s| s.count), Some(2));
        assert_eq!(timing.spans.get("t/inner").map(|s| s.count), Some(1));
        assert_eq!(timing.gauges.get("t/gauge"), Some(&3));

        crate::recorder::disable();
        timing_gauge_add("t/gauge", 100);
        assert_eq!(timing_snapshot().gauges.get("t/gauge"), Some(&3));

        crate::recorder::reset();
        assert!(timing_snapshot().spans.is_empty());
        assert!(timing_snapshot().gauges.is_empty());
    }
}
