//! Deterministic observability for the exploration pipeline.
//!
//! A long `--full` grid run trains dozens of `(V_th, T)` cells and PGD-sweeps
//! each one over ε, yet without this crate the only mid-run signals are the
//! run store's journal events. `obs` adds the missing layer — counters,
//! histograms, and phase spans over the hot paths — under one hard rule:
//!
//! **everything except wall-clock time is bitwise-reproducible across
//! `--threads` settings.**
//!
//! * [`registry`] — the pure containers: monotonic [`Registry`] counters and
//!   fixed-bucket [`Histogram`]s whose merge is commutative and associative,
//!   so shard merge order cannot change the result.
//! * [`recorder`] — the global switch and per-thread shards: [`enable`] /
//!   [`counter_add`] / [`observe`] / [`snapshot`]. Disabled recording is one
//!   relaxed atomic load per call site (asserted by `crates/bench`).
//! * [`mod@span`] — phase spans (`train/epoch`, `attack/pgd_iter`, `grid/cell`,
//!   `sweep/epsilon`): a deterministic entry counter plus a *quarantined*
//!   wall-clock timing sink, the single place durations may accumulate.
//! * [`artifact`] — the versioned `metrics.json` document; its `"timing"`
//!   section is always last and is the only part excluded from the
//!   determinism contract ([`strip_timing`]).
//!
//! See DESIGN.md §11 for the metric taxonomy and the full contract, and
//! `tests/metrics_determinism.rs` for the end-to-end enforcement.

#![forbid(unsafe_code)]

pub mod artifact;
pub mod recorder;
pub mod registry;
pub mod span;

pub use artifact::{deterministic_json, metrics_json, render, strip_timing, write_metrics, SCHEMA};
pub use recorder::{
    counter_add, disable, enable, enabled, flush_local, observe, progress_enabled, progress_with,
    reset, snapshot,
};
pub use registry::{Histogram, Registry, LOSS_BOUNDS, RATE_BOUNDS};
pub use span::{span, timing_gauge_add, timing_snapshot, Span, SpanStats, TimingSink};
