//! The global recorder: an enable switch, per-thread shards, and the merge
//! into one global [`Registry`].
//!
//! Recording is off by default and every entry point checks one relaxed
//! atomic load first, so a build that never calls [`enable`] pays a single
//! predictable branch per call site — nothing else (guarded by the
//! `obs_guard` assertion in `crates/bench`).
//!
//! When enabled, each thread records into its own shard: an
//! `Arc<Mutex<Registry>>` created on first use and registered in a global
//! shard list. The shard's mutex is only ever contended by [`snapshot`] and
//! [`reset`], so the owning thread's records stay a fast uncontended lock.
//!
//! Shards are merged *by the reader*, never by thread-exit machinery:
//! [`snapshot`] walks the shard list and folds every shard into the result
//! (draining shards whose thread has exited into a global base so the list
//! cannot grow without bound). Thread-local destructors are deliberately
//! not part of the design — `std::thread::scope` is allowed to return
//! before a finished worker runs its TLS destructors, so a destructor-based
//! flush would race the snapshot and silently drop whole shards. Because
//! [`Registry::merge`] is commutative and associative, the arbitrary order
//! in which shards are folded cannot change the merged result.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::registry::Registry;

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROGRESS: AtomicBool = AtomicBool::new(false);
/// Records from threads whose shard has been drained (exited threads folded
/// in by [`snapshot`], or any thread flushed by [`flush_local`]).
static GLOBAL: Mutex<Registry> = Mutex::new(Registry::new());
/// Every live (and not-yet-drained dead) shard, in registration order.
static SHARDS: Mutex<Vec<Arc<Mutex<Registry>>>> = Mutex::new(Vec::new());

thread_local! {
    /// This thread's shard; `None` until the first record. The TLS slot
    /// only holds a reference — the shard itself lives in [`SHARDS`], so
    /// nothing is lost whenever this thread exits.
    static SHARD: Cell<Option<Arc<Mutex<Registry>>>> = const { Cell::new(None) };
}

/// A poisoned lock means another thread panicked mid-record; the registry
/// itself is never left torn (all its operations only add), so keep going
/// rather than losing the data.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runs `f` on this thread's shard, creating and registering it on first
/// use.
fn with_shard<R>(f: impl FnOnce(&mut Registry) -> R) -> R {
    SHARD.with(|slot| {
        let shard = match slot.take() {
            Some(shard) => shard,
            None => {
                let shard = Arc::new(Mutex::new(Registry::new()));
                lock(&SHARDS).push(Arc::clone(&shard));
                shard
            }
        };
        let result = f(&mut lock(&shard));
        slot.set(Some(shard));
        result
    })
}

/// Turns recording on. `progress` additionally enables stderr progress
/// lines (see [`progress_with`]).
pub fn enable(progress: bool) {
    ENABLED.store(true, Ordering::Relaxed);
    PROGRESS.store(progress, Ordering::Relaxed);
}

/// Turns recording (and progress lines) off. Already-recorded values are
/// kept until [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    PROGRESS.store(false, Ordering::Relaxed);
}

/// `true` while recording is on.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// `true` while stderr progress lines are wanted.
#[inline]
pub fn progress_enabled() -> bool {
    PROGRESS.load(Ordering::Relaxed)
}

/// Prints one progress line to stderr if progress is enabled. The closure
/// only runs when the line will actually be printed, so call sites pay
/// nothing to format messages nobody sees.
pub fn progress_with<F: FnOnce() -> String>(f: F) {
    if progress_enabled() {
        eprintln!("[obs] {}", f());
    }
}

/// Adds `delta` to the counter `name` on this thread's shard. No-op while
/// recording is disabled.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if !enabled() {
        return;
    }
    with_shard(|reg| reg.counter_add(name, delta));
}

/// Records `value` into the histogram `name` (created over `bounds` on
/// first use) on this thread's shard. No-op while recording is disabled.
#[inline]
pub fn observe(name: &str, value: f64, bounds: &[f64]) {
    if !enabled() {
        return;
    }
    with_shard(|reg| reg.observe(name, value, bounds));
}

/// Merges every shard with the global base and returns the combined state.
///
/// Shards of exited threads (we hold their only reference) are drained
/// into the base and dropped, so a workload spawning many short-lived
/// workers does not accumulate dead shards. Records made concurrently by
/// still-running threads may or may not be included — call this after
/// worker scopes have joined for an exact result.
pub fn snapshot() -> Registry {
    let mut global = lock(&GLOBAL);
    let mut shards = lock(&SHARDS);
    shards.retain(|shard| {
        if Arc::strong_count(shard) == 1 {
            global.merge(&std::mem::take(&mut *lock(shard)));
            false
        } else {
            true
        }
    });
    let mut snap = global.clone();
    for shard in shards.iter() {
        snap.merge(&lock(shard));
    }
    snap
}

/// Folds the calling thread's shard into the global base immediately
/// (normally unnecessary — [`snapshot`] reads live shards in place).
pub fn flush_local() {
    let local = with_shard(std::mem::take);
    if !local.is_empty() {
        lock(&GLOBAL).merge(&local);
    }
}

/// Clears the global base, every registered shard, and the timing sink.
/// Records made concurrently by still-running threads may survive; tests
/// that reset between scenarios must do so after worker scopes have joined.
pub fn reset() {
    let mut global = lock(&GLOBAL);
    let mut shards = lock(&SHARDS);
    *global = Registry::new();
    shards.retain(|shard| {
        *lock(shard) = Registry::new();
        // Drop shards of exited threads entirely.
        Arc::strong_count(shard) > 1
    });
    crate::span::reset_timing();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Global state: the whole lifecycle lives in one #[test] so parallel
    // test threads cannot interleave enable/reset calls.
    #[test]
    fn lifecycle_disabled_enabled_threads_reset() {
        // Disabled: nothing records.
        counter_add("t/c", 1);
        observe("t/h", 0.5, &[1.0]);
        assert_eq!(snapshot().counter("t/c"), 0);

        enable(false);
        counter_add("t/c", 2);
        observe("t/h", 0.5, &[1.0]);

        // Worker shards are visible the moment the scope joins — without
        // relying on the workers' TLS destructors having run.
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| counter_add("t/c", 10));
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counter("t/c"), 42);
        assert_eq!(snap.histogram("t/h").map(|h| h.total()), Some(1));

        // A second snapshot sees the same state (dead-shard draining moves
        // data into the base, it must never lose or double it).
        assert_eq!(snapshot().counter("t/c"), 42);

        disable();
        counter_add("t/c", 100);
        assert_eq!(snapshot().counter("t/c"), 42, "disabled calls are no-ops");

        flush_local();
        assert_eq!(snapshot().counter("t/c"), 42);

        reset();
        assert!(snapshot().is_empty());
    }
}
