//! Pure metric containers: monotonic counters and fixed-bucket histograms,
//! plus the deterministic merge that combines per-thread shards.
//!
//! Everything here is plain data — no clocks, no I/O, no global state. The
//! merge is commutative and associative by construction (counter deltas and
//! bucket counts are `u64` sums), so the order in which worker-thread shards
//! reach the global registry cannot change the merged result. That is the
//! foundation of the bitwise `--threads`-invariance contract; see
//! DESIGN.md §11.

use std::collections::BTreeMap;

/// Histogram bounds for values in the unit interval — accuracies, spike
/// rates, robustness points. Upper-edge inclusive deciles.
pub const RATE_BOUNDS: &[f64] = &[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Histogram bounds for loss values (roughly log-spaced).
pub const LOSS_BOUNDS: &[f64] = &[0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0];

/// A fixed-bucket histogram.
///
/// Buckets are defined by a strictly increasing slice of finite upper
/// bounds; a value lands in the first bucket whose bound it does not exceed
/// (upper edge *inclusive*: `value == bounds[i]` counts into bucket `i`).
/// Values above the last bound land in a final overflow bucket, so
/// `counts.len() == bounds.len() + 1`. Non-finite values (`NaN`, `±∞`) are
/// never bucketed — they increment [`Histogram::rejected`] instead, so a
/// poisoned metric is visible rather than silently misfiled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: Vec<u64>,
    counts: Vec<u64>,
    rejected: u64,
}

impl Histogram {
    /// Creates an empty histogram over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, non-finite, or not strictly increasing.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        assert!(
            bounds.iter().zip(bounds.iter().skip(1)).all(|(a, b)| a < b),
            "histogram bounds must be strictly increasing"
        );
        Self {
            bounds: bounds.iter().map(|b| b.to_bits()).collect(),
            counts: vec![0; bounds.len() + 1],
            rejected: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        if !value.is_finite() {
            self.rejected += 1;
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= f64::from_bits(b))
            .unwrap_or(self.bounds.len());
        if let Some(c) = self.counts.get_mut(idx) {
            *c += 1;
        }
    }

    /// Adds another histogram's counts into this one.
    ///
    /// # Panics
    ///
    /// Panics if the two histograms were built over different bounds — that
    /// is a programming error (one metric name, two bucketings), not data.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.rejected += other.rejected;
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> Vec<f64> {
        self.bounds.iter().map(|&b| f64::from_bits(b)).collect()
    }

    /// Per-bucket counts; the final entry is the overflow bucket, so this is
    /// one longer than [`Histogram::bounds`].
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of non-finite observations that were rejected.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Total number of bucketed observations (rejections excluded).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// A set of named counters and histograms.
///
/// Keys live in `BTreeMap`s so iteration — and therefore serialization — is
/// always in sorted-key order, independent of insertion order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Self {
            counters: BTreeMap::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Adds `delta` to the counter `name`, creating it at zero if absent.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += delta;
        } else {
            self.counters.insert(name.to_string(), delta);
        }
    }

    /// Records `value` into the histogram `name`, creating it over `bounds`
    /// if absent. All observations of one name must use the same bounds.
    pub fn observe(&mut self, name: &str, value: f64, bounds: &[f64]) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.record(value);
        } else {
            let mut h = Histogram::new(bounds);
            h.record(value);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// Merges another registry into this one. Commutative and associative:
    /// any merge order of any sharding of the same observations produces an
    /// identical registry.
    pub fn merge(&mut self, other: &Registry) {
        for (name, delta) in &other.counters {
            self.counter_add(name, *delta);
        }
        for (name, hist) in &other.histograms {
            if let Some(h) = self.histograms.get_mut(name) {
                h.merge(hist);
            } else {
                self.histograms.insert(name.clone(), hist.clone());
            }
        }
    }

    /// `true` when no counter or histogram has ever been touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.histograms.is_empty()
    }

    /// Current value of a counter (zero if it was never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named histogram, if any observation created it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted-key order.
    pub fn counters(&self) -> &BTreeMap<String, u64> {
        &self.counters
    }

    /// All histograms in sorted-key order.
    pub fn histograms(&self) -> &BTreeMap<String, Histogram> {
        &self.histograms
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.counter_add("b", 1);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("b"), 1);
        assert_eq!(r.counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_upper_edge_inclusive() {
        let mut h = Histogram::new(&[1.0, 2.0]);
        h.record(0.5); // bucket 0
        h.record(1.0); // exactly on the first edge -> bucket 0
        h.record(1.5); // bucket 1
        h.record(2.0); // exactly on the last edge -> bucket 1
        h.record(2.5); // overflow
        assert_eq!(h.counts(), &[2, 2, 1]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.rejected(), 0);
    }

    #[test]
    fn histogram_rejects_non_finite() {
        let mut h = Histogram::new(&[1.0]);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(f64::NEG_INFINITY);
        assert_eq!(h.counts(), &[0, 0]);
        assert_eq!(h.rejected(), 3);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn merge_rejects_bound_mismatch() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn merge_sums_counters_and_buckets() {
        let mut a = Registry::new();
        a.counter_add("n", 1);
        a.observe("h", 0.5, &[1.0]);
        let mut b = Registry::new();
        b.counter_add("n", 2);
        b.counter_add("m", 7);
        b.observe("h", 3.0, &[1.0]);
        a.merge(&b);
        assert_eq!(a.counter("n"), 3);
        assert_eq!(a.counter("m"), 7);
        let h = a.histogram("h").unwrap();
        assert_eq!(h.counts(), &[1, 1]);
    }
}
