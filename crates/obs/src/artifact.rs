//! The versioned `metrics.json` artifact.
//!
//! Layout (compact JSON, all maps in sorted-key order):
//!
//! ```json
//! {
//!   "schema": "metrics/v1",
//!   "counters": { "<name>": <u64>, ... },
//!   "histograms": {
//!     "<name>": { "bounds": [..], "counts": [..], "rejected": <u64> }, ...
//!   },
//!   "timing": {
//!     "spans": { "<name>": { "count": <u64>, "total_nanos": <u128> }, ... },
//!     "gauges": { "<name>": <u64>, ... }
//!   }
//! }
//! ```
//!
//! The `"timing"` key is always last, and it is the *only* section allowed
//! to differ between runs of the same work: everything before it is covered
//! by the determinism contract (bitwise-identical across `--threads` —
//! enforced by `tests/metrics_determinism.rs`). [`strip_timing`] slices a
//! document down to its deterministic part for byte comparison.
//!
//! Rendering is hand-rolled (the crate is dependency-free); `f64` bounds
//! use Rust's shortest-roundtrip `Display`, which is deterministic.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::recorder;
use crate::registry::Registry;
use crate::span::{self, TimingSink};

/// Version tag of the artifact layout.
pub const SCHEMA: &str = "metrics/v1";

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_deterministic_body(out: &mut String, reg: &Registry) {
    out.push_str("\"schema\":");
    push_json_str(out, SCHEMA);
    out.push_str(",\"counters\":{");
    for (i, (name, value)) in reg.counters().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, hist)) in reg.histograms().iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        out.push_str(":{\"bounds\":[");
        for (j, b) in hist.bounds().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{b}");
        }
        out.push_str("],\"counts\":[");
        for (j, c) in hist.counts().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "{c}");
        }
        let _ = write!(out, "],\"rejected\":{}}}", hist.rejected());
    }
    out.push('}');
}

fn push_timing(out: &mut String, timing: &TimingSink) {
    out.push_str("\"timing\":{\"spans\":{");
    for (i, (name, stats)) in timing.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        let _ = write!(
            out,
            ":{{\"count\":{},\"total_nanos\":{}}}",
            stats.count, stats.total_nanos
        );
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, value)) in timing.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_json_str(out, name);
        let _ = write!(out, ":{value}");
    }
    out.push_str("}}");
}

/// Renders the deterministic sections of a registry — schema, counters,
/// histograms — with no timing. Byte-identical for equal registries.
pub fn deterministic_json(reg: &Registry) -> String {
    let mut out = String::from("{");
    push_deterministic_body(&mut out, reg);
    out.push('}');
    out
}

/// Renders the full current metrics document: a [`recorder::snapshot`] plus
/// the timing sink, `"timing"` last.
pub fn metrics_json() -> String {
    render(&recorder::snapshot(), &span::timing_snapshot())
}

/// Renders a full document from explicit parts.
pub fn render(reg: &Registry, timing: &TimingSink) -> String {
    let mut out = String::from("{");
    push_deterministic_body(&mut out, reg);
    out.push(',');
    push_timing(&mut out, timing);
    out.push('}');
    out
}

/// The deterministic prefix of a rendered document: everything before the
/// trailing `"timing"` section. Two documents describing the same work must
/// satisfy `strip_timing(a) == strip_timing(b)` regardless of `--threads`.
pub fn strip_timing(document: &str) -> &str {
    match document.find(",\"timing\":") {
        Some(i) => document.get(..i).unwrap_or(document),
        None => document,
    }
}

/// Writes the current metrics document to `path` (atomic temp + rename).
///
/// # Errors
///
/// Returns any I/O error from writing or renaming the temp file.
pub fn write_metrics(path: &Path) -> io::Result<()> {
    let tmp = path.with_extension("json.tmp");
    fs::write(&tmp, metrics_json())?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_sorted_compact_json() {
        let mut reg = Registry::new();
        reg.counter_add("z/second", 2);
        reg.counter_add("a/first", 1);
        reg.observe("h", 0.1, &[0.5, 1.0]);
        let det = deterministic_json(&reg);
        assert_eq!(
            det,
            "{\"schema\":\"metrics/v1\",\"counters\":{\"a/first\":1,\"z/second\":2},\
             \"histograms\":{\"h\":{\"bounds\":[0.5,1],\"counts\":[1,0,0],\"rejected\":0}}}"
        );
    }

    #[test]
    fn timing_is_last_and_strippable() {
        let mut reg = Registry::new();
        reg.counter_add("c", 1);
        let mut timing = TimingSink::new();
        timing.gauges.insert("g".into(), 5);
        let full = render(&reg, &timing);
        assert!(full.ends_with("\"gauges\":{\"g\":5}}}"));
        let det = deterministic_json(&reg);
        assert_eq!(strip_timing(&full), &det[..det.len() - 1]);
        assert_eq!(strip_timing(&det), det.as_str());
    }

    #[test]
    fn escapes_metric_names() {
        let mut reg = Registry::new();
        reg.counter_add("weird\"name\\x", 1);
        let det = deterministic_json(&reg);
        assert!(det.contains("\"weird\\\"name\\\\x\":1"));
    }
}
