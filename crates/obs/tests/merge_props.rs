//! Property tests for the registry merge laws.
//!
//! The `--threads`-invariance contract rests on one algebraic fact: folding
//! per-thread shards into the global registry is a commutative, associative,
//! order-independent operation. These properties prove it over randomized
//! shards by comparing *serialized* registries (the same byte-comparison the
//! end-to-end determinism test uses), plus directed histogram boundary
//! cases.

use obs::{deterministic_json, Registry};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Metric names drawn from a small pool so shards collide on keys (merges
/// that never share a key would not exercise the interesting paths).
const NAMES: [&str; 4] = ["a/one", "b/two", "c/three", "d/four"];
const BOUNDS: [f64; 3] = [0.25, 0.5, 1.0];

/// One shard: counter bumps and histogram observations, as flat op lists.
#[derive(Debug, Clone)]
struct Shard {
    counts: Vec<(usize, u64)>,
    observations: Vec<(usize, f64)>,
}

fn build(shard: &Shard) -> Registry {
    let mut reg = Registry::new();
    for &(name, delta) in &shard.counts {
        reg.counter_add(NAMES[name % NAMES.len()], delta);
    }
    for &(name, value) in &shard.observations {
        reg.observe(NAMES[name % NAMES.len()], value, &BOUNDS);
    }
    reg
}

fn merged<'a>(shards: impl Iterator<Item = &'a Shard>) -> Registry {
    let mut acc = Registry::new();
    for s in shards {
        acc.merge(&build(s));
    }
    acc
}

fn shards_from(raw: &[(u64, u64, f64)]) -> Vec<Shard> {
    // Each raw tuple seeds one shard with a couple of ops derived from it.
    raw.iter()
        .map(|&(k, delta, value)| Shard {
            counts: vec![(k as usize, delta % 1000), ((k / 7) as usize, 1)],
            observations: vec![(k as usize, value), ((k / 3) as usize, value * 2.0)],
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// merge(A, B) == merge(B, A), compared on serialized bytes.
    #[test]
    fn merge_is_commutative(raw in proptest::collection::vec((0u64..32, 0u64..1000, 0.0f64..2.0), 2)) {
        let shards = shards_from(&raw);
        let (a, b) = (build(&shards[0]), build(&shards[1]));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(deterministic_json(&ab), deterministic_json(&ba));
    }

    /// (A ∪ B) ∪ C == A ∪ (B ∪ C).
    #[test]
    fn merge_is_associative(raw in proptest::collection::vec((0u64..32, 0u64..1000, 0.0f64..2.0), 3)) {
        let shards = shards_from(&raw);
        let (a, b, c) = (build(&shards[0]), build(&shards[1]), build(&shards[2]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(deterministic_json(&left), deterministic_json(&right));
    }

    /// Merging any shuffled permutation of the shards serializes to the same
    /// bytes as merging them in order — thread-exit order cannot matter.
    #[test]
    fn merge_is_order_independent(
        raw in proptest::collection::vec((0u64..32, 0u64..1000, 0.0f64..2.0), 6),
        seed in 0u64..u64::MAX,
    ) {
        let shards = shards_from(&raw);
        let in_order = deterministic_json(&merged(shards.iter()));
        let mut rng = StdRng::seed_from_u64(seed);
        let mut order: Vec<usize> = (0..shards.len()).collect();
        order.shuffle(&mut rng); // proptest supplies the seed

        let shuffled = deterministic_json(&merged(order.iter().map(|&i| &shards[i])));
        prop_assert_eq!(shuffled, in_order);
    }

    /// Sharding a stream of observations arbitrarily and merging the shards
    /// equals recording the whole stream into one registry.
    #[test]
    fn sharding_is_lossless(
        raw in proptest::collection::vec((0u64..32, 0u64..1000, 0.0f64..2.0), 8),
        split in 1usize..8,
    ) {
        let shards = shards_from(&raw);
        let whole = Shard {
            counts: shards.iter().flat_map(|s| s.counts.clone()).collect(),
            observations: shards.iter().flat_map(|s| s.observations.clone()).collect(),
        };
        let (left, right) = shards.split_at(split);
        let mut halves = merged(left.iter());
        halves.merge(&merged(right.iter()));
        prop_assert_eq!(deterministic_json(&halves), deterministic_json(&build(&whole)));
    }

    /// A value exactly on a bucket edge always lands in that bucket (upper
    /// edge inclusive), never the next one — for every edge.
    #[test]
    fn edge_values_land_in_their_bucket(edge in 0usize..BOUNDS.len()) {
        let mut reg = Registry::new();
        reg.observe("h", BOUNDS[edge], &BOUNDS);
        let hist = reg.histogram("h").unwrap();
        let mut expected = vec![0u64; BOUNDS.len() + 1];
        expected[edge] = 1;
        prop_assert_eq!(hist.counts(), expected.as_slice());
        prop_assert_eq!(hist.rejected(), 0);
    }

    /// Non-finite observations are rejected, leave every bucket untouched,
    /// and survive merges as rejection counts.
    #[test]
    fn non_finite_is_rejected_and_merge_preserves_it(n in 1u64..20) {
        let mut a = Registry::new();
        for _ in 0..n {
            a.observe("h", f64::NAN, &BOUNDS);
            a.observe("h", f64::INFINITY, &BOUNDS);
        }
        let mut b = Registry::new();
        b.observe("h", f64::NEG_INFINITY, &BOUNDS);
        a.merge(&b);
        let hist = a.histogram("h").unwrap();
        prop_assert_eq!(hist.total(), 0);
        prop_assert_eq!(hist.rejected(), 2 * n + 1);
    }
}
