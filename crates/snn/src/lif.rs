//! Leaky-integrate-and-fire dynamics and surrogate gradients.
//!
//! The discrete-time LIF update implemented here matches the one the paper
//! trains through (Norse's default cell, forward-Euler discretised):
//!
//! ```text
//! v[t+1]  = β · v[t] + I[t]                    (leaky integration)
//! s[t+1]  = Θ(v[t+1] − V_th)                   (Heaviside spike)
//! v[t+1] ← v[t+1] − s[t+1] · V_th              (reset by subtraction)
//!      or  v[t+1] · (1 − s[t+1])               (reset to zero)
//! ```
//!
//! The Heaviside step has zero derivative almost everywhere, so training
//! substitutes the *SuperSpike* fast-sigmoid surrogate
//! `Θ'(x) ≈ 1 / (1 + α·|x|)²` in the backward pass — the standard trick the
//! paper (and Norse) rely on, and the exact mechanism that makes white-box
//! gradient attacks on SNNs possible at all.

use ad::{CustomUnary, Var};
use serde::{Deserialize, Serialize};
use tensor::Tensor;

use crate::surrogate::{Surrogate, SurrogateShape};

/// What happens to the membrane potential when a neuron fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResetMode {
    /// Subtract `V_th` from the membrane (default; preserves residual
    /// charge, Norse's behaviour).
    Subtract,
    /// Clamp the membrane to zero (discards residual charge).
    Zero,
}

/// Hyperparameters of one LIF layer.
///
/// # Example
///
/// ```
/// use snn::LifParams;
///
/// let lif = LifParams::new(1.0);
/// assert_eq!(lif.v_th, 1.0);
/// assert!(lif.beta > 0.8 && lif.beta < 1.0); // leaky but persistent
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifParams {
    /// Firing threshold `V_th`.
    pub v_th: f32,
    /// Membrane decay per step `β = 1 − dt/τ_mem` (Norse default ≈ 0.9).
    pub beta: f32,
    /// Surrogate slope `α`; larger is closer to the true step.
    pub alpha: f32,
    /// Reset semantics after a spike.
    pub reset: ResetMode,
    /// Surrogate derivative shape (default: SuperSpike fast sigmoid).
    #[serde(default)]
    pub surrogate: SurrogateShape,
}

impl LifParams {
    /// Norse-flavoured defaults (`β = 0.9`, `α = 10`, reset-by-subtraction)
    /// with the given threshold.
    ///
    /// # Panics
    ///
    /// Panics if `v_th` is not finite and positive.
    pub fn new(v_th: f32) -> Self {
        assert!(
            v_th.is_finite() && v_th > 0.0,
            "v_th must be finite and positive, got {v_th}"
        );
        Self {
            v_th,
            beta: 0.9,
            alpha: 10.0,
            reset: ResetMode::Subtract,
            surrogate: SurrogateShape::FastSigmoid,
        }
    }

    /// Returns `self` with a different surrogate slope.
    pub fn with_alpha(mut self, alpha: f32) -> Self {
        assert!(alpha > 0.0, "surrogate slope must be positive, got {alpha}");
        self.alpha = alpha;
        self
    }

    /// Returns `self` with a different membrane decay.
    pub fn with_beta(mut self, beta: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "membrane decay must be in [0, 1], got {beta}"
        );
        self.beta = beta;
        self
    }

    /// Returns `self` with different reset semantics.
    pub fn with_reset(mut self, reset: ResetMode) -> Self {
        self.reset = reset;
        self
    }

    /// Returns `self` with a different surrogate derivative shape.
    pub fn with_surrogate(mut self, surrogate: SurrogateShape) -> Self {
        self.surrogate = surrogate;
        self
    }

    /// The scalar parameters of the fused membrane-update kernel
    /// ([`tensor::simd::lif_step`]) for these hyperparameters — the single
    /// spike/reset primitive every cell variant routes through.
    pub fn kernel_spec(&self) -> tensor::simd::LifKernelSpec {
        tensor::simd::LifKernelSpec {
            beta: self.beta,
            v_th: self.v_th,
            zero_reset: matches!(self.reset, ResetMode::Zero),
        }
    }

    /// First-order prediction of the steady-state firing rate (spikes per
    /// step) under a constant input current, for subtraction reset.
    ///
    /// Model: the membrane saturates at `I/(1−β)` without firing when that
    /// is below threshold; otherwise the sawtooth between reset and
    /// threshold loses `(1−β)·V_th/2` to leak per step on average, so
    /// `rate ≈ (I − (1−β)·V_th/2) / V_th`, clamped to `[0, 1]`.
    ///
    /// `β = 1` (which [`LifParams::with_beta`] accepts) is handled as the
    /// documented exact case, not through the leak formula: a perfect
    /// integrator loses nothing between spikes, so the rate is exactly
    /// `I / V_th` capped at one spike per step. The leak branch previously
    /// papered over this with a `max(1e-9)` epsilon, which also mis-gated
    /// tiny currents for every β.
    ///
    /// This is an *approximation* for `β < 1` (exact for `β = 1`); it
    /// exists to sanity-check simulations and to size `(V_th, T)` sweeps
    /// analytically.
    pub fn predicted_rate(&self, current: f32) -> f32 {
        if current <= 0.0 {
            return 0.0;
        }
        if self.beta >= 1.0 {
            return (current / self.v_th).clamp(0.0, 1.0);
        }
        let leak = 1.0 - self.beta;
        if current / leak < self.v_th {
            return 0.0;
        }
        ((current - leak * self.v_th * 0.5) / self.v_th).clamp(0.0, 1.0)
    }
}

impl Default for LifParams {
    fn default() -> Self {
        Self::new(1.0)
    }
}

/// The spike nonlinearity: Heaviside forward, SuperSpike backward.
///
/// Applied to the *centered* membrane `x = v − V_th`, it emits `1.0` where
/// `x ≥ 0` and propagates gradients through `1 / (1 + α·|x|)²`.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use snn::SuperSpike;
/// use tensor::Tensor;
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![-0.5, 0.5], &[2]));
/// let s = x.custom_unary(Box::new(SuperSpike::new(10.0)));
/// assert_eq!(s.value().data(), &[0.0, 1.0]);
/// let grads = tape.backward(s.sum());
/// // Surrogate derivative 1/(1+10·0.5)² = 1/36 on both sides.
/// let g = grads.wrt(x).unwrap();
/// assert!((g.data()[0] - 1.0 / 36.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SuperSpike {
    alpha: f32,
}

impl SuperSpike {
    /// Creates the surrogate with slope `alpha`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(alpha: f32) -> Self {
        assert!(alpha > 0.0, "surrogate slope must be positive, got {alpha}");
        Self { alpha }
    }

    /// The surrogate slope.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl CustomUnary for SuperSpike {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.map(|v| if v >= 0.0 { 1.0 } else { 0.0 })
    }

    fn backward(&self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        let alpha = self.alpha;
        x.zip_map(grad_out, move |v, g| {
            let denom = 1.0 + alpha * v.abs();
            g / (denom * denom)
        })
    }
}

/// Straight-through estimator: the forward value is a pre-computed tensor
/// (e.g. sampled Poisson spikes) while the backward pass treats the op as
/// identity. Used by [`Encoder::Poisson`](crate::Encoder::Poisson).
#[derive(Debug, Clone)]
pub struct StraightThrough {
    forward_value: Tensor,
}

impl StraightThrough {
    /// Wraps the externally computed forward value.
    pub fn new(forward_value: Tensor) -> Self {
        Self { forward_value }
    }
}

impl CustomUnary for StraightThrough {
    fn forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(
            x.dims(),
            self.forward_value.dims(),
            "straight-through value shape {:?} does not match input {:?}",
            self.forward_value.dims(),
            x.dims()
        );
        self.forward_value.clone()
    }

    fn backward(&self, _x: &Tensor, grad_out: &Tensor) -> Tensor {
        grad_out.clone()
    }
}

/// A layer of LIF neurons, stepped once per simulation timestep.
///
/// The cell is stateless; the caller threads the membrane potential [`Var`]
/// through successive [`LifCell::step`] calls so that BPTT sees the full
/// temporal unrolling.
#[derive(Debug, Clone, Copy)]
pub struct LifCell {
    params: LifParams,
}

impl LifCell {
    /// Creates a cell with the given parameters.
    pub fn new(params: LifParams) -> Self {
        Self { params }
    }

    /// The cell's parameters.
    pub fn params(&self) -> LifParams {
        self.params
    }

    /// Advances the membrane one step under input current `input`, returning
    /// `(spikes, next_membrane)`.
    ///
    /// Runs the fused kernel ([`ad::Var::lif_step`] →
    /// [`tensor::simd::lif_step`]): one sweep, three tape nodes, with an
    /// AVX2 fast path — bitwise identical (values and gradients) to the
    /// composed-op formulation it replaced.
    ///
    /// # Panics
    ///
    /// Panics if `input` and `v` have different shapes (propagated from the
    /// tensor ops).
    pub fn step<'t>(&self, input: Var<'t>, v: Var<'t>) -> (Var<'t>, Var<'t>) {
        let p = self.params;
        input.lif_step(
            v,
            None,
            p.kernel_spec(),
            Box::new(Surrogate::new(p.surrogate, p.alpha)),
        )
    }
}

/// A non-spiking leaky integrator, used as the output readout so that the
/// decoded logits are smooth functions of the last layer's spikes.
#[derive(Debug, Clone, Copy)]
pub struct LiCell {
    beta: f32,
}

impl LiCell {
    /// Creates a readout integrator with decay `beta`.
    ///
    /// # Panics
    ///
    /// Panics if `beta` is outside `[0, 1]`.
    pub fn new(beta: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&beta),
            "readout decay must be in [0, 1], got {beta}"
        );
        Self { beta }
    }

    /// The decay factor.
    pub fn beta(&self) -> f32 {
        self.beta
    }

    /// Advances the readout membrane one step.
    pub fn step<'t>(&self, input: Var<'t>, v: Var<'t>) -> Var<'t> {
        v.mul_scalar(self.beta) + input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad::Tape;

    fn single_step(params: LifParams, input: f32, v0: f32) -> (f32, f32) {
        let tape = Tape::new();
        let i = tape.leaf(Tensor::scalar(input));
        let v = tape.leaf(Tensor::scalar(v0));
        let (s, vn) = LifCell::new(params).step(i, v);
        (s.value().item(), vn.value().item())
    }

    #[test]
    fn subthreshold_input_never_spikes() {
        let (s, v) = single_step(LifParams::new(1.0), 0.5, 0.0);
        assert_eq!(s, 0.0);
        assert_eq!(v, 0.5);
    }

    #[test]
    fn suprathreshold_input_spikes_and_resets_by_subtraction() {
        let (s, v) = single_step(LifParams::new(1.0), 1.4, 0.0);
        assert_eq!(s, 1.0);
        assert!(
            (v - 0.4).abs() < 1e-6,
            "residual should be 1.4 − 1.0, got {v}"
        );
    }

    #[test]
    fn reset_to_zero_discards_residual() {
        let (s, v) = single_step(LifParams::new(1.0).with_reset(ResetMode::Zero), 1.4, 0.0);
        assert_eq!(s, 1.0);
        assert_eq!(v, 0.0);
    }

    #[test]
    fn membrane_decays_geometrically() {
        // No input: v follows β^t · v0.
        let params = LifParams::new(10.0).with_beta(0.5);
        let mut v = 1.0;
        for t in 1..=4 {
            let (s, vn) = single_step(params, 0.0, v);
            assert_eq!(s, 0.0);
            v = vn;
            assert!((v - 0.5f32.powi(t)).abs() < 1e-6);
        }
    }

    #[test]
    fn constant_current_firing_rate_decreases_with_threshold() {
        // Integrate a constant current for many steps and count spikes:
        // higher V_th must not fire more often.
        let spikes_for = |v_th: f32| {
            let params = LifParams::new(v_th);
            let cell = LifCell::new(params);
            let tape = Tape::new();
            let mut v = tape.leaf(Tensor::scalar(0.0));
            let i = tape.leaf(Tensor::scalar(0.3));
            let mut count = 0.0;
            for _ in 0..50 {
                let (s, vn) = cell.step(i, v);
                count += s.value().item();
                v = vn;
            }
            count
        };
        let low = spikes_for(0.5);
        let mid = spikes_for(1.0);
        let high = spikes_for(2.5);
        assert!(low >= mid && mid >= high, "rates {low} {mid} {high}");
        assert!(low > high, "thresholds must modulate the firing rate");
    }

    #[test]
    fn superspike_gradient_peaks_at_threshold() {
        let s = SuperSpike::new(10.0);
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        let g = s.backward(&x, &Tensor::ones(&[3]));
        assert!(g.data()[1] > g.data()[0]);
        assert!(g.data()[1] > g.data()[2]);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn superspike_sharpens_with_alpha() {
        let x = Tensor::from_vec(vec![0.5], &[1]);
        let soft = SuperSpike::new(1.0).backward(&x, &Tensor::ones(&[1]));
        let sharp = SuperSpike::new(100.0).backward(&x, &Tensor::ones(&[1]));
        assert!(sharp.data()[0] < soft.data()[0]);
    }

    #[test]
    fn bptt_delivers_input_gradient_through_spikes() {
        // Unroll 5 steps and check the input receives a usable gradient.
        let tape = Tape::new();
        let input = tape.leaf(Tensor::from_vec(vec![0.8, 1.2], &[2]));
        let cell = LifCell::new(LifParams::new(1.0));
        let mut v = tape.leaf(Tensor::zeros(&[2]));
        let mut spike_sum = None;
        for _ in 0..5 {
            let (s, vn) = cell.step(input, v);
            v = vn;
            spike_sum = Some(match spike_sum {
                None => s,
                Some(acc) => acc + s,
            });
        }
        let loss = spike_sum.unwrap().sum();
        let grads = tape.backward(loss);
        let g = grads.wrt(input).unwrap();
        assert!(g.max_abs() > 0.0, "surrogate must leak gradient to input");
        assert!(!g.has_non_finite());
    }

    #[test]
    fn straight_through_passes_gradient_unchanged() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.3, 0.7], &[2]));
        let sampled = Tensor::from_vec(vec![0.0, 1.0], &[2]);
        let s = x.custom_unary(Box::new(StraightThrough::new(sampled.clone())));
        assert_eq!(s.value(), sampled);
        let grads = tape.backward(s.mul_scalar(3.0).sum());
        assert_eq!(grads.wrt(x).unwrap().data(), &[3.0, 3.0]);
    }

    #[test]
    fn li_readout_integrates_without_spiking() {
        let tape = Tape::new();
        let li = LiCell::new(0.5);
        let i = tape.leaf(Tensor::scalar(1.0));
        let mut v = tape.leaf(Tensor::scalar(0.0));
        for _ in 0..20 {
            v = li.step(i, v);
        }
        // Geometric series → 1/(1−β) = 2.
        assert!((v.value().item() - 2.0).abs() < 1e-3);
    }
}
