//! Input encoding: turning a static image into per-timestep input currents
//! or spike trains.

use ad::Var;
use serde::{Deserialize, Serialize};
use tensor::Tensor;

use crate::lif::StraightThrough;

/// How a static input image is presented to the network at each timestep of
/// the time window.
///
/// The paper's experiments use rate-based presentation: the same image drives
/// the first LIF layer for `T` steps, and pixel intensity translates into
/// firing rate of the first spiking layer. Two faithful realisations are
/// provided:
///
/// * [`Encoder::ConstantCurrent`] injects the (scaled) pixel values as input
///   current every step. This is Norse's `ConstantCurrentLIFEncoder` and is
///   fully differentiable — the encoder the white-box PGD attack
///   differentiates through.
/// * [`Encoder::Poisson`] samples a Bernoulli spike per pixel per step with
///   probability proportional to intensity; gradients use a straight-through
///   estimator. Sampling is counter-based and fully deterministic in
///   `(seed, step, element)` so experiments are reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Encoder {
    /// Inject `gain · x` as input current at every step.
    ConstantCurrent {
        /// Multiplier applied to pixel intensities.
        gain: f32,
    },
    /// Bernoulli spike train with per-step probability `min(1, rate · x)`.
    Poisson {
        /// Multiplier applied to intensities before clamping to `[0, 1]`.
        rate: f32,
        /// Seed of the counter-based sampler.
        seed: u64,
    },
    /// Frame replay for genuinely *temporal* inputs: the input tensor's
    /// channel axis holds `frames` consecutive frames (`[N, frames, H, W]`)
    /// and each frame is presented as the input current for an equal share
    /// of the time window. The step→frame mapping is
    /// `frame = min(step · frames / time_window, frames − 1)`.
    /// Fully differentiable (channel slicing routes gradients per frame).
    Replay {
        /// Number of frames stacked in the channel axis.
        frames: usize,
        /// The time window the frames are spread over.
        time_window: usize,
    },
    /// Time-to-first-spike (latency) coding: each pixel emits exactly one
    /// spike, at the step `⌊(1 − x) · (T − 1)⌋` — brighter pixels fire
    /// earlier. Pixels at exactly `0` never fire. Gradients use the
    /// straight-through estimator. The time window `T` must be supplied
    /// because the spike schedule spans the whole window.
    Latency {
        /// The time window the schedule is spread over.
        time_window: usize,
    },
}

impl Encoder {
    /// The default differentiable encoder with unit gain.
    pub fn constant_current() -> Self {
        Encoder::ConstantCurrent { gain: 1.0 }
    }

    /// A Poisson encoder with unit rate and the given seed.
    pub fn poisson(seed: u64) -> Self {
        Encoder::Poisson { rate: 1.0, seed }
    }

    /// Produces the network input for timestep `step` from the image
    /// variable `x`.
    ///
    /// The returned variable has the shape of `x` and stays on `x`'s tape,
    /// so gradients flow back to the image in both modes (exactly for
    /// constant current, straight-through for Poisson).
    pub fn encode_step<'t>(&self, x: Var<'t>, step: usize) -> Var<'t> {
        match *self {
            Encoder::ConstantCurrent { gain } => {
                if gain == 1.0 {
                    x
                } else {
                    x.mul_scalar(gain)
                }
            }
            Encoder::Poisson { rate, seed } => {
                // Borrow the taped value instead of cloning it every step.
                let spikes = x.with_value(|value| {
                    let mut spikes = Tensor::zeros(value.dims());
                    for (i, (s, &v)) in spikes.data_mut().iter_mut().zip(value.data()).enumerate() {
                        let p = (v * rate).clamp(0.0, 1.0);
                        if counter_uniform(seed, step as u64, i as u64) < p {
                            *s = 1.0;
                        }
                    }
                    spikes
                });
                x.custom_unary(Box::new(StraightThrough::new(spikes)))
            }
            Encoder::Replay {
                frames,
                time_window,
            } => {
                assert!(frames > 0 && time_window > 0, "replay needs positive sizes");
                let idx = ((step * frames) / time_window).min(frames - 1);
                x.slice_channels(idx, idx + 1)
            }
            Encoder::Latency { time_window } => {
                assert!(time_window > 0, "latency encoder needs a positive window");
                let spikes = x.with_value(|value| {
                    let mut spikes = Tensor::zeros(value.dims());
                    let span = (time_window - 1).max(1) as f32;
                    for (s, &v) in spikes.data_mut().iter_mut().zip(value.data()) {
                        if v > 0.0 {
                            let fire_at = ((1.0 - v.clamp(0.0, 1.0)) * span).floor() as usize;
                            if fire_at == step {
                                *s = 1.0;
                            }
                        }
                    }
                    spikes
                });
                x.custom_unary(Box::new(StraightThrough::new(spikes)))
            }
        }
    }
}

impl Default for Encoder {
    fn default() -> Self {
        Self::constant_current()
    }
}

/// A deterministic uniform sample in `[0, 1)` from `(seed, step, index)`,
/// via SplitMix64. Counter-based so no mutable RNG state is threaded
/// through the forward pass.
fn counter_uniform(seed: u64, step: u64, index: u64) -> f32 {
    let mut z = seed
        .wrapping_add(step.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(index.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 24 high-quality bits → f32 in [0, 1).
    (z >> 40) as f32 / (1u64 << 24) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad::Tape;

    #[test]
    fn constant_current_is_identity_at_unit_gain() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.25, 0.75], &[2]));
        let i = Encoder::constant_current().encode_step(x, 0);
        assert_eq!(i.value().data(), &[0.25, 0.75]);
    }

    #[test]
    fn constant_current_gain_scales() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5], &[1]));
        let i = Encoder::ConstantCurrent { gain: 2.0 }.encode_step(x, 3);
        assert_eq!(i.value().data(), &[1.0]);
    }

    #[test]
    fn poisson_spikes_are_binary() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.0, 0.3, 0.7, 1.0], &[4]));
        let enc = Encoder::poisson(42);
        for step in 0..10 {
            let s = enc.encode_step(x, step).value();
            assert!(s.data().iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn poisson_rate_tracks_intensity() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.1, 0.9], &[2]));
        let enc = Encoder::poisson(7);
        let mut counts = [0.0f32; 2];
        for step in 0..500 {
            let s = enc.encode_step(x, step).value();
            counts[0] += s.data()[0];
            counts[1] += s.data()[1];
        }
        let (r0, r1) = (counts[0] / 500.0, counts[1] / 500.0);
        assert!((r0 - 0.1).abs() < 0.05, "rate {r0} for intensity 0.1");
        assert!((r1 - 0.9).abs() < 0.05, "rate {r1} for intensity 0.9");
    }

    #[test]
    fn poisson_is_deterministic_per_seed_and_step() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5; 8], &[8]));
        let enc = Encoder::poisson(1);
        let a = enc.encode_step(x, 4).value();
        let b = enc.encode_step(x, 4).value();
        let c = enc.encode_step(x, 5).value();
        assert_eq!(a, b);
        assert_ne!(a, c, "different steps should sample differently");
    }

    #[test]
    fn zero_pixels_never_spike_and_saturated_always_do() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.0, 1.0], &[2]));
        let enc = Encoder::poisson(99);
        for step in 0..100 {
            let s = enc.encode_step(x, step).value();
            assert_eq!(s.data()[0], 0.0);
            assert_eq!(s.data()[1], 1.0);
        }
    }

    #[test]
    fn replay_presents_frames_in_order_for_equal_shares() {
        let tape = Tape::new();
        // 1 sample, 3 frames of a single pixel: values 10, 20, 30.
        let x = tape.leaf(Tensor::from_vec(vec![10.0, 20.0, 30.0], &[1, 3, 1, 1]));
        let enc = Encoder::Replay {
            frames: 3,
            time_window: 6,
        };
        let seen: Vec<f32> = (0..6)
            .map(|t| enc.encode_step(x, t).value().item())
            .collect();
        assert_eq!(seen, vec![10.0, 10.0, 20.0, 20.0, 30.0, 30.0]);
    }

    #[test]
    fn replay_clamps_to_last_frame_and_routes_gradients() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]));
        let enc = Encoder::Replay {
            frames: 2,
            time_window: 3,
        };
        // Steps 0, 1 -> frame 0; step 2 -> frame 1 (exact division 2*2/3=1).
        assert_eq!(enc.encode_step(x, 2).value().item(), 2.0);
        // Gradient reaches only the presented frame.
        let grads = tape.backward(enc.encode_step(x, 0).sum());
        assert_eq!(grads.wrt(x).unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn latency_encoder_fires_exactly_once_brighter_earlier() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.0, 0.3, 0.6, 1.0], &[4]));
        let enc = Encoder::Latency { time_window: 10 };
        let mut first_spike = [None::<usize>; 4];
        let mut counts = [0u32; 4];
        for step in 0..10 {
            let s = enc.encode_step(x, step).value();
            for (i, &v) in s.data().iter().enumerate() {
                assert!(v == 0.0 || v == 1.0);
                if v == 1.0 {
                    counts[i] += 1;
                    first_spike[i].get_or_insert(step);
                }
            }
        }
        assert_eq!(counts[0], 0, "zero pixel must never fire");
        assert_eq!(&counts[1..], &[1, 1, 1], "each active pixel fires once");
        assert_eq!(first_spike[3], Some(0), "saturated pixel fires first");
        assert!(first_spike[2].unwrap() < first_spike[1].unwrap());
    }

    #[test]
    fn latency_gradient_is_straight_through() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5, 0.9], &[2]));
        let s = Encoder::Latency { time_window: 4 }.encode_step(x, 0);
        let grads = tape.backward(s.sum());
        assert_eq!(grads.wrt(x).unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn poisson_gradient_is_straight_through() {
        let tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(vec![0.5, 0.5], &[2]));
        let s = Encoder::poisson(3).encode_step(x, 0);
        let grads = tape.backward(s.sum());
        assert_eq!(grads.wrt(x).unwrap().data(), &[1.0, 1.0]);
    }
}
