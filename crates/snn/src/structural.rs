//! The structural parameters under study: threshold voltage and time window.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The pair of *inherent structural parameters* whose effect on robustness
/// the reproduced paper investigates (its §I, questions Q1–Q3):
///
/// * `v_th` — the LIF firing threshold: when a neuron's membrane potential
///   reaches `v_th` it emits a spike and resets;
/// * `time_window` — the number of simulation steps `T` during which the
///   network observes the same input before the output is decoded.
///
/// The paper's default operating point is `(V_th, T) = (1, 64)` (§VI-B).
///
/// # Example
///
/// ```
/// use snn::StructuralParams;
///
/// let sp = StructuralParams::new(1.0, 48);
/// assert_eq!(sp.v_th, 1.0);
/// assert_eq!(sp.time_window, 48);
/// assert_eq!(sp.to_string(), "(Vth=1, T=48)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StructuralParams {
    /// Firing threshold voltage `V_th` shared by every LIF layer.
    pub v_th: f32,
    /// Rate-encoding time window `T` (simulation steps per input).
    pub time_window: usize,
}

impl StructuralParams {
    /// Creates a parameter pair.
    ///
    /// # Panics
    ///
    /// Panics if `v_th` is not finite and positive, or `time_window` is zero
    /// — such combinations describe a network that can never spike or never
    /// observes its input.
    pub fn new(v_th: f32, time_window: usize) -> Self {
        assert!(
            v_th.is_finite() && v_th > 0.0,
            "v_th must be finite and positive, got {v_th}"
        );
        assert!(time_window > 0, "time_window must be positive");
        Self { v_th, time_window }
    }

    /// The paper's default operating point `(V_th, T) = (1, 64)`.
    pub fn paper_default() -> Self {
        Self::new(1.0, 64)
    }
}

impl Default for StructuralParams {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Display for StructuralParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(Vth={}, T={})", self.v_th, self.time_window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper() {
        let d = StructuralParams::default();
        assert_eq!(d.v_th, 1.0);
        assert_eq!(d.time_window, 64);
    }

    #[test]
    #[should_panic(expected = "v_th must be finite and positive")]
    fn rejects_non_positive_threshold() {
        StructuralParams::new(0.0, 8);
    }

    #[test]
    #[should_panic(expected = "time_window must be positive")]
    fn rejects_zero_window() {
        StructuralParams::new(1.0, 0);
    }

    #[test]
    fn serde_round_trip() {
        let sp = StructuralParams::new(0.75, 72);
        let json = serde_json::to_string(&sp).unwrap();
        let back: StructuralParams = serde_json::from_str(&json).unwrap();
        assert_eq!(sp, back);
    }
}

#[cfg(test)]
mod display_tests {
    use super::*;

    #[test]
    fn display_is_stable_for_fractional_thresholds() {
        assert_eq!(
            StructuralParams::new(0.25, 16).to_string(),
            "(Vth=0.25, T=16)"
        );
        assert_eq!(
            StructuralParams::new(2.5, 80).to_string(),
            "(Vth=2.5, T=80)"
        );
    }

    #[test]
    fn equality_is_exact_on_both_axes() {
        let a = StructuralParams::new(1.0, 8);
        assert_eq!(a, StructuralParams::new(1.0, 8));
        assert_ne!(a, StructuralParams::new(1.0, 9));
        assert_ne!(a, StructuralParams::new(1.25, 8));
    }
}
