//! Spike-train analysis: inter-spike-interval statistics and spike-train
//! distances.

/// A recorded spike train: sorted spike times within an observation window.
///
/// # Example
///
/// ```
/// use snn::trains::SpikeTrain;
///
/// let train = SpikeTrain::from_binary(&[0.0, 1.0, 0.0, 1.0, 1.0]);
/// assert_eq!(train.times(), &[1, 3, 4]);
/// assert_eq!(train.rate(), 0.6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpikeTrain {
    times: Vec<usize>,
    window: usize,
}

impl SpikeTrain {
    /// Builds a train from explicit spike times and window length.
    ///
    /// # Panics
    ///
    /// Panics if times are unsorted, duplicated, or outside the window.
    pub fn new(times: Vec<usize>, window: usize) -> Self {
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "spike times must be strictly increasing"
        );
        assert!(
            times.last().is_none_or(|&t| t < window),
            "spike time outside the window"
        );
        Self { times, window }
    }

    /// Builds a train from a binary (0/1) activation sequence.
    ///
    /// # Panics
    ///
    /// Panics if any value is neither 0 nor 1.
    pub fn from_binary(activations: &[f32]) -> Self {
        let times = activations
            .iter()
            .enumerate()
            .filter_map(|(t, &v)| {
                assert!(
                    v == 0.0 || v == 1.0,
                    "non-binary activation {v} at step {t}"
                );
                (v == 1.0).then_some(t)
            })
            .collect();
        Self {
            times,
            window: activations.len(),
        }
    }

    /// The spike times.
    pub fn times(&self) -> &[usize] {
        &self.times
    }

    /// The observation-window length in steps.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of spikes.
    pub fn count(&self) -> usize {
        self.times.len()
    }

    /// Mean firing rate in spikes per step.
    pub fn rate(&self) -> f32 {
        if self.window == 0 {
            0.0
        } else {
            self.count() as f32 / self.window as f32
        }
    }

    /// Inter-spike intervals (empty with fewer than two spikes).
    pub fn isi(&self) -> Vec<usize> {
        self.times.windows(2).map(|w| w[1] - w[0]).collect()
    }

    /// Coefficient of variation of the ISIs (`None` with fewer than two
    /// intervals). `0` for perfectly regular firing, ~`1` for Poisson.
    pub fn cv_isi(&self) -> Option<f32> {
        let isi = self.isi();
        if isi.len() < 2 {
            return None;
        }
        let mean = isi.iter().sum::<usize>() as f32 / isi.len() as f32;
        let var = isi
            .iter()
            .map(|&i| (i as f32 - mean) * (i as f32 - mean))
            .sum::<f32>()
            / isi.len() as f32;
        Some(var.sqrt() / mean)
    }

    /// Van Rossum distance to another train: the L2 distance between the
    /// trains convolved with a causal exponential kernel of time constant
    /// `tau` (in steps). Zero iff the trains are identical; grows with both
    /// missing spikes and timing jitter.
    ///
    /// # Panics
    ///
    /// Panics if the windows differ or `tau` is not positive.
    pub fn van_rossum_distance(&self, other: &SpikeTrain, tau: f32) -> f32 {
        assert_eq!(
            self.window, other.window,
            "van Rossum distance requires equal windows"
        );
        assert!(tau > 0.0, "kernel time constant must be positive");
        let decay = (-1.0 / tau).exp();
        let mut acc = 0.0f32;
        let mut fa = 0.0f32;
        let mut fb = 0.0f32;
        let mut ia = 0usize;
        let mut ib = 0usize;
        for t in 0..self.window {
            fa *= decay;
            fb *= decay;
            if ia < self.times.len() && self.times[ia] == t {
                fa += 1.0;
                ia += 1;
            }
            if ib < other.times.len() && other.times[ib] == t {
                fb += 1.0;
                ib += 1;
            }
            acc += (fa - fb) * (fa - fb);
        }
        (acc / tau).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_ordering() {
        let t = SpikeTrain::new(vec![1, 4, 7], 10);
        assert_eq!(t.count(), 3);
        assert_eq!(t.isi(), vec![3, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn rejects_unsorted_times() {
        SpikeTrain::new(vec![4, 1], 10);
    }

    #[test]
    #[should_panic(expected = "outside the window")]
    fn rejects_out_of_window() {
        SpikeTrain::new(vec![10], 10);
    }

    #[test]
    fn regular_train_has_zero_cv() {
        let t = SpikeTrain::new(vec![0, 5, 10, 15], 20);
        assert_eq!(t.cv_isi(), Some(0.0));
    }

    #[test]
    fn irregular_train_has_positive_cv() {
        let t = SpikeTrain::new(vec![0, 1, 9, 10, 30], 40);
        assert!(t.cv_isi().unwrap() > 0.5);
    }

    #[test]
    fn cv_undefined_for_sparse_trains() {
        assert_eq!(SpikeTrain::new(vec![3], 10).cv_isi(), None);
        assert_eq!(SpikeTrain::new(vec![3, 7], 10).cv_isi(), None);
    }

    #[test]
    fn van_rossum_is_a_metric_like_distance() {
        let a = SpikeTrain::new(vec![2, 8], 20);
        let b = SpikeTrain::new(vec![3, 8], 20);
        let c = SpikeTrain::new(vec![15], 20);
        // Identity of indiscernibles and symmetry.
        assert_eq!(a.van_rossum_distance(&a, 2.0), 0.0);
        let ab = a.van_rossum_distance(&b, 2.0);
        assert_eq!(ab, b.van_rossum_distance(&a, 2.0));
        // Small jitter < completely different train.
        let ac = a.van_rossum_distance(&c, 2.0);
        assert!(ab < ac, "jitter {ab} should be closer than {ac}");
        assert!(ab > 0.0);
    }

    #[test]
    fn distance_grows_with_missing_spikes() {
        let full = SpikeTrain::new(vec![2, 6, 10, 14], 20);
        let half = SpikeTrain::new(vec![2, 10], 20);
        let none = SpikeTrain::new(vec![], 20);
        let d_half = full.van_rossum_distance(&half, 3.0);
        let d_none = full.van_rossum_distance(&none, 3.0);
        assert!(d_none > d_half);
    }

    #[test]
    fn from_binary_round_trips_with_trace() {
        use crate::{trace, LifParams, NeuronModel};
        let t = trace::simulate(NeuronModel::Lif, LifParams::new(1.0), &[0.5; 30]);
        let binary: Vec<f32> = t
            .spikes
            .iter()
            .map(|&s| if s { 1.0 } else { 0.0 })
            .collect();
        let train = SpikeTrain::from_binary(&binary);
        assert_eq!(train.times(), t.spike_times().as_slice());
        assert_eq!(train.rate(), t.firing_rate());
    }
}
