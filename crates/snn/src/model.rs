//! Spiking network models: the spiking CNN twin (spiking LeNet-5) and a
//! lightweight spiking MLP.

use ad::{Tape, Var};
use rand::Rng;
use serde::{Deserialize, Serialize};
use tensor::conv::Conv2dSpec;
use tensor::Tensor;

use nn::{BoundParams, CnnConfig, Conv2d, Linear, Model, Params};

use crate::activity::ActivityReport;
use crate::cells::{CellState, NeuronModel};
use crate::decode::Decoder;
use crate::encode::Encoder;
use crate::lif::{LiCell, LifCell, LifParams, ResetMode};
use crate::structural::StructuralParams;
use crate::surrogate::SurrogateShape;

/// Obs-gated spike accounting for one forward pass: the hidden-layer sites
/// feed it per timestep, and it flushes once per call. The per-layer spike
/// sums are computed serially from the taped values (no extra clone), so the
/// recorded totals are identical at every `--threads` setting.
struct SpikeTally {
    sum: f64,
    units: u64,
    window: usize,
}

impl SpikeTally {
    fn new(window: usize) -> Self {
        Self {
            sum: 0.0,
            units: 0,
            window,
        }
    }

    fn observe_layer(&mut self, spikes: Var<'_>) {
        if !obs::enabled() {
            return;
        }
        spikes.with_value(|v| {
            self.sum += f64::from(v.sum());
            self.units += v.len() as u64;
        });
    }

    fn flush(&self) {
        if self.units == 0 {
            return;
        }
        // Spikes are exact 0.0/1.0 values, so the f64 sum is integral.
        obs::counter_add("snn/spikes_emitted", self.sum as u64);
        obs::counter_add("snn/forward_windows", self.window as u64);
        obs::observe(
            "snn/spike_rate",
            self.sum / self.units as f64,
            obs::RATE_BOUNDS,
        );
    }
}

/// Everything that defines the *spiking* behaviour of a network, independent
/// of its synaptic topology.
///
/// The [`StructuralParams`] inside are the paper's exploration axes; the
/// rest are held at Norse-flavoured defaults unless an ablation overrides
/// them.
///
/// # Example
///
/// ```
/// use snn::{SnnConfig, StructuralParams};
///
/// let cfg = SnnConfig::new(StructuralParams::new(0.75, 32));
/// assert_eq!(cfg.structural.time_window, 32);
/// assert_eq!(cfg.beta, 0.9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SnnConfig {
    /// Threshold voltage and time window — the exploration axes.
    pub structural: StructuralParams,
    /// Membrane decay of every LIF layer.
    pub beta: f32,
    /// SuperSpike surrogate slope.
    pub alpha: f32,
    /// Reset semantics of every LIF layer.
    pub reset: ResetMode,
    /// Input presentation.
    pub encoder: Encoder,
    /// Output readout.
    pub decoder: Decoder,
    /// Decay of the non-spiking readout integrator.
    pub readout_beta: f32,
    /// Surrogate derivative shape.
    #[serde(default)]
    pub surrogate: SurrogateShape,
    /// Neuron model of every spiking layer.
    #[serde(default)]
    pub neuron: NeuronModel,
}

impl SnnConfig {
    /// Defaults (`β = 0.9`, `α = 10`, subtraction reset, constant-current
    /// encoding, max-membrane decoding) around the given structural point.
    pub fn new(structural: StructuralParams) -> Self {
        Self {
            structural,
            beta: 0.9,
            alpha: 10.0,
            reset: ResetMode::Subtract,
            encoder: Encoder::constant_current(),
            decoder: Decoder::MaxMembrane,
            readout_beta: 0.9,
            surrogate: SurrogateShape::FastSigmoid,
            neuron: NeuronModel::Lif,
        }
    }

    /// The LIF parameters implied by this configuration.
    pub fn lif_params(&self) -> LifParams {
        LifParams::new(self.structural.v_th)
            .with_beta(self.beta)
            .with_alpha(self.alpha)
            .with_reset(self.reset)
            .with_surrogate(self.surrogate)
    }
}

impl Default for SnnConfig {
    fn default() -> Self {
        Self::new(StructuralParams::default())
    }
}

/// Tracks per-layer recurrent state across the time loop; states are
/// created lazily by [`NeuronModel::step`] once layer output shapes are
/// known.
struct StateStore<'t> {
    states: Vec<Option<CellState<'t>>>,
}

impl<'t> StateStore<'t> {
    fn new(layers: usize) -> Self {
        Self {
            states: vec![None; layers],
        }
    }

    fn take(&mut self, idx: usize) -> Option<CellState<'t>> {
        self.states[idx].take()
    }

    fn put(&mut self, idx: usize, state: CellState<'t>) {
        self.states[idx] = Some(state);
    }
}

/// The spiking twin of an [`nn::Cnn`]: same synaptic topology (conv blocks
/// and fully-connected widths from the shared [`CnnConfig`]), with every
/// activation replaced by a LIF layer and the input presented for
/// `T = time_window` steps.
///
/// Built from [`CnnConfig::lenet5`] this is the paper's "LeNet-5 adapted to
/// the spiking domain" (§VI-A). Implements [`nn::Model`], so training,
/// evaluation and white-box attacks reuse the non-spiking machinery
/// unchanged — see the [crate-level example](crate).
#[derive(Debug, Clone)]
pub struct SpikingCnn {
    convs: Vec<Conv2d>,
    fcs: Vec<Linear>,
    topology: CnnConfig,
    config: SnnConfig,
}

impl SpikingCnn {
    /// Builds the network, registering all weights into `params`.
    ///
    /// # Panics
    ///
    /// Panics if the topology is inconsistent (see
    /// [`CnnConfig::final_hw`]) or any layer size is zero.
    pub fn new<R: Rng>(
        params: &mut Params,
        rng: &mut R,
        topology: &CnnConfig,
        config: &SnnConfig,
    ) -> Self {
        let mut convs = Vec::new();
        let mut in_c = topology.in_channels;
        for (i, b) in topology.conv_blocks.iter().enumerate() {
            convs.push(Conv2d::new(
                params,
                rng,
                &format!("sconv{i}"),
                in_c,
                b.out_channels,
                b.kernel,
                Conv2dSpec {
                    stride: 1,
                    padding: b.padding,
                },
            ));
            in_c = b.out_channels;
        }
        let mut fcs = Vec::new();
        let mut in_f = topology.flattened_len();
        for (i, &h) in topology.fc_hidden.iter().enumerate() {
            fcs.push(Linear::new(params, rng, &format!("sfc{i}"), in_f, h));
            in_f = h;
        }
        fcs.push(Linear::new(params, rng, "shead", in_f, topology.classes));
        Self {
            convs,
            fcs,
            topology: topology.clone(),
            config: *config,
        }
    }

    /// The synaptic topology shared with the CNN baseline.
    pub fn topology(&self) -> &CnnConfig {
        &self.topology
    }

    /// The spiking configuration (structural parameters and neuron model).
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// Replaces the structural parameters without re-initialising weights.
    ///
    /// Mainly useful for studying *mismatched* inference (train at one
    /// `(V_th, T)`, run at another); the paper's exploration retrains per
    /// combination instead.
    pub fn set_structural(&mut self, structural: StructuralParams) {
        self.config.structural = structural;
    }
}

impl SpikingCnn {
    fn forward_impl<'t>(
        &self,
        tape: &'t Tape,
        bound: &BoundParams<'t>,
        x: Var<'t>,
        mut recorder: Option<&mut ActivityReport>,
    ) -> Var<'t> {
        let t_window = self.config.structural.time_window;
        let neuron = self.config.neuron;
        let lif_params = self.config.lif_params();
        let lif = LifCell::new(lif_params);
        let li = LiCell::new(self.config.readout_beta);
        let n = x.dims()[0];
        let flattened = self.topology.flattened_len();
        // One recurrent state per conv block, one per hidden FC, one for
        // the head.
        let mut conv_states = StateStore::new(self.convs.len());
        let mut fc_states = StateStore::new(self.fcs.len() - 1);
        let mut head_state: Option<Var<'t>> = None;
        let mut decoded: Option<Var<'t>> = None;
        let (head, hidden_fcs) = self
            .fcs
            .split_last()
            .expect("SpikingCnn always has a head layer");
        let mut tally = SpikeTally::new(t_window);

        // Every layer call below resolves its weights through the bind's
        // prepack cache (`nn::PrepackCache`): the panels packed on the
        // first timestep are reused for all `t_window` steps, so a warm
        // forward performs zero `pack_b` work inside this loop.
        for step in 0..t_window {
            let mut h = self.config.encoder.encode_step(x, step);
            for (i, (conv, block)) in self
                .convs
                .iter()
                .zip(&self.topology.conv_blocks)
                .enumerate()
            {
                let current = conv.forward(bound, h);
                let (spikes, next) = neuron.step(lif_params, current, conv_states.take(i));
                conv_states.put(i, next);
                if let Some(rec) = recorder.as_deref_mut() {
                    // Borrow the taped spikes; no per-step clone.
                    spikes.with_value(|v| rec.record(&format!("conv{i}"), v.sum(), v.len()));
                }
                tally.observe_layer(spikes);
                h = if block.pool > 1 {
                    spikes.avg_pool2d(block.pool)
                } else {
                    spikes
                };
            }
            // Post-conv activations are spike trains (or pooled spike
            // averages), so the fully-connected stack uses the
            // event-driven product: sparse timesteps take a gather over
            // the active units, dense ones fall back to the blocked GEMM,
            // bitwise-identically (see `tensor::event`).
            let mut h = h.reshape(&[n, flattened]);
            for (j, fc) in hidden_fcs.iter().enumerate() {
                let current = fc.forward_events(bound, h);
                let (spikes, next) = neuron.step(lif_params, current, fc_states.take(j));
                fc_states.put(j, next);
                if let Some(rec) = recorder.as_deref_mut() {
                    spikes.with_value(|v| rec.record(&format!("fc{j}"), v.sum(), v.len()));
                }
                tally.observe_layer(spikes);
                h = spikes;
            }
            let head_current = head.forward_events(bound, h);
            let v = head_state
                .take()
                .unwrap_or_else(|| tape.leaf(Tensor::zeros(&head_current.dims())));
            decoded = Some(match self.config.decoder {
                Decoder::MaxMembrane => {
                    let v_next = li.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => v_next,
                        Some(best) => best.maximum(v_next),
                    }
                }
                Decoder::MeanMembrane => {
                    let v_next = li.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => v_next,
                        Some(acc) => acc + v_next,
                    }
                }
                Decoder::SpikeCount => {
                    let (spikes, v_next) = lif.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => spikes,
                        Some(acc) => acc + spikes,
                    }
                }
            });
        }
        tally.flush();
        let out = decoded.expect("time_window is validated positive");
        match self.config.decoder {
            Decoder::MeanMembrane => out.mul_scalar(1.0 / t_window as f32),
            _ => out,
        }
    }

    /// Runs one inference pass while recording per-layer firing statistics.
    ///
    /// The report quantifies the mechanism behind the paper's findings:
    /// higher thresholds and shorter windows reduce spiking activity, which
    /// changes both accuracy and attackability.
    pub fn activity(&self, params: &Params, x: &Tensor) -> ActivityReport {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let input = tape.leaf(x.clone());
        let mut report = ActivityReport::default();
        let _ = self.forward_impl(&tape, &bound, input, Some(&mut report));
        report
    }
}

impl Model for SpikingCnn {
    fn forward<'t>(&self, tape: &'t Tape, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        self.forward_impl(tape, bound, x, None)
    }

    fn num_classes(&self) -> usize {
        self.topology.classes
    }
}

/// A spiking multi-layer perceptron: flatten → (Linear → LIF)* → head.
///
/// Much cheaper than [`SpikingCnn`]; used for fast unit tests and for the
/// workspace's smallest exploration presets.
#[derive(Debug, Clone)]
pub struct SpikingMlp {
    fcs: Vec<Linear>,
    recurrent: Option<Vec<Linear>>,
    in_features: usize,
    classes: usize,
    config: SnnConfig,
}

impl SpikingMlp {
    /// Builds an MLP with the given hidden widths.
    ///
    /// # Panics
    ///
    /// Panics if `in_features` or `classes` is zero.
    pub fn new<R: Rng>(
        params: &mut Params,
        rng: &mut R,
        in_features: usize,
        hidden: &[usize],
        classes: usize,
        config: &SnnConfig,
    ) -> Self {
        assert!(
            in_features > 0 && classes > 0,
            "layer sizes must be positive"
        );
        let mut fcs = Vec::new();
        let mut in_f = in_features;
        for (i, &h) in hidden.iter().enumerate() {
            fcs.push(Linear::new(params, rng, &format!("mfc{i}"), in_f, h));
            in_f = h;
        }
        fcs.push(Linear::new(params, rng, "mhead", in_f, classes));
        Self {
            fcs,
            recurrent: None,
            in_features,
            classes,
            config: *config,
        }
    }

    /// Builds a *recurrent* spiking MLP: each hidden layer additionally
    /// receives its own previous-step spikes through a trained square
    /// recurrent weight matrix (an RSNN). Recurrence gives the network
    /// memory beyond the membrane time constant.
    ///
    /// # Panics
    ///
    /// Same conditions as [`SpikingMlp::new`].
    pub fn new_recurrent<R: Rng>(
        params: &mut Params,
        rng: &mut R,
        in_features: usize,
        hidden: &[usize],
        classes: usize,
        config: &SnnConfig,
    ) -> Self {
        let mut model = Self::new(params, rng, in_features, hidden, classes, config);
        let recurrent = hidden
            .iter()
            .enumerate()
            .map(|(i, &h)| Linear::new(params, rng, &format!("mrec{i}"), h, h))
            .collect();
        model.recurrent = Some(recurrent);
        model
    }

    /// The spiking configuration.
    pub fn config(&self) -> &SnnConfig {
        &self.config
    }

    /// `true` if the hidden layers have recurrent synapses.
    pub fn is_recurrent(&self) -> bool {
        self.recurrent.is_some()
    }
}

impl SpikingMlp {
    fn forward_impl<'t>(
        &self,
        tape: &'t Tape,
        bound: &BoundParams<'t>,
        x: Var<'t>,
        mut recorder: Option<&mut ActivityReport>,
    ) -> Var<'t> {
        let t_window = self.config.structural.time_window;
        let neuron = self.config.neuron;
        let lif_params = self.config.lif_params();
        let lif = LifCell::new(lif_params);
        let li = LiCell::new(self.config.readout_beta);
        let n = x.dims()[0];
        let (head, hidden_fcs) = self
            .fcs
            .split_last()
            .expect("SpikingMlp always has a head layer");
        let mut fc_states = StateStore::new(hidden_fcs.len());
        let mut tally = SpikeTally::new(t_window);
        let mut prev_spikes: Vec<Option<Var<'t>>> = vec![None; hidden_fcs.len()];
        let mut head_state: Option<Var<'t>> = None;
        let mut decoded: Option<Var<'t>> = None;
        for step in 0..t_window {
            // Encode before flattening so frame-replay (which slices the
            // channel axis) sees the 4-D layout; `in_features` is the
            // per-step feature count after encoding.
            let mut h = self
                .config
                .encoder
                .encode_step(x, step)
                .reshape(&[n, self.in_features]);
            // Hidden layers consume spike trains (the first one consumes
            // the encoded frame, which the density scan routes to the
            // dense kernel when appropriate), so every synaptic matmul in
            // the time loop goes through the event-driven product.
            for (j, fc) in hidden_fcs.iter().enumerate() {
                let mut current = fc.forward_events(bound, h);
                if let Some(rec_fcs) = &self.recurrent {
                    if let Some(prev) = prev_spikes[j] {
                        current = current + rec_fcs[j].forward_events(bound, prev);
                    }
                }
                let (spikes, next) = neuron.step(lif_params, current, fc_states.take(j));
                fc_states.put(j, next);
                prev_spikes[j] = Some(spikes);
                if let Some(rec) = recorder.as_deref_mut() {
                    spikes.with_value(|v| rec.record(&format!("fc{j}"), v.sum(), v.len()));
                }
                tally.observe_layer(spikes);
                h = spikes;
            }
            let head_current = head.forward_events(bound, h);
            let v = head_state
                .take()
                .unwrap_or_else(|| tape.leaf(Tensor::zeros(&head_current.dims())));
            decoded = Some(match self.config.decoder {
                Decoder::MaxMembrane => {
                    let v_next = li.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => v_next,
                        Some(best) => best.maximum(v_next),
                    }
                }
                Decoder::MeanMembrane => {
                    let v_next = li.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => v_next,
                        Some(acc) => acc + v_next,
                    }
                }
                Decoder::SpikeCount => {
                    let (spikes, v_next) = lif.step(head_current, v);
                    head_state = Some(v_next);
                    match decoded {
                        None => spikes,
                        Some(acc) => acc + spikes,
                    }
                }
            });
        }
        tally.flush();
        let out = decoded.expect("time_window is validated positive");
        match self.config.decoder {
            Decoder::MeanMembrane => out.mul_scalar(1.0 / t_window as f32),
            _ => out,
        }
    }

    /// Runs one inference pass while recording per-layer firing statistics
    /// (see [`SpikingCnn::activity`]).
    pub fn activity(&self, params: &Params, x: &Tensor) -> ActivityReport {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let input = tape.leaf(x.clone());
        let mut report = ActivityReport::default();
        let _ = self.forward_impl(&tape, &bound, input, Some(&mut report));
        report
    }
}

impl Model for SpikingMlp {
    fn forward<'t>(&self, tape: &'t Tape, bound: &BoundParams<'t>, x: Var<'t>) -> Var<'t> {
        self.forward_impl(tape, bound, x, None)
    }

    fn num_classes(&self) -> usize {
        self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_cnn(seed: u64, snn_cfg: &SnnConfig) -> (SpikingCnn, Params) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut params = Params::new();
        let model = SpikingCnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4), snn_cfg);
        (model, params)
    }

    #[test]
    fn forward_shape_and_finiteness() {
        let cfg = SnnConfig::new(StructuralParams::new(1.0, 6));
        let (model, params) = build_cnn(0, &cfg);
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(1), &[2, 1, 8, 8], 0.0, 1.0);
        let logits = nn::logits(&model, &params, &x);
        assert_eq!(logits.dims(), &[2, 4]);
        assert!(!logits.has_non_finite());
    }

    #[test]
    fn all_decoders_produce_logits() {
        for decoder in [
            Decoder::MaxMembrane,
            Decoder::MeanMembrane,
            Decoder::SpikeCount,
        ] {
            let mut cfg = SnnConfig::new(StructuralParams::new(0.5, 5));
            cfg.decoder = decoder;
            let (model, params) = build_cnn(2, &cfg);
            let x = tensor::init::uniform(&mut StdRng::seed_from_u64(3), &[1, 1, 8, 8], 0.0, 1.0);
            let logits = nn::logits(&model, &params, &x);
            assert_eq!(logits.dims(), &[1, 4], "decoder {decoder:?}");
            assert!(!logits.has_non_finite(), "decoder {decoder:?}");
        }
    }

    #[test]
    fn input_gradient_flows_through_time_window() {
        let cfg = SnnConfig::new(StructuralParams::new(0.5, 6));
        let (model, params) = build_cnn(4, &cfg);
        let clf = nn::Classifier::new(model, params);
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(5), &[1, 1, 8, 8], 0.2, 0.9);
        let (loss, grad) = nn::AdversarialTarget::loss_and_input_grad(&clf, &x, &[1]);
        assert!(loss.is_finite());
        assert!(
            grad.max_abs() > 0.0,
            "white-box gradient through the SNN must be non-zero"
        );
    }

    #[test]
    fn longer_window_changes_logits() {
        // The time window is a real structural parameter: T=2 and T=12 must
        // decode different logits for the same weights.
        let mut rng = StdRng::seed_from_u64(6);
        let mut params = Params::new();
        let short = SpikingCnn::new(
            &mut params,
            &mut rng,
            &CnnConfig::tiny(8, 4),
            &SnnConfig::new(StructuralParams::new(1.0, 2)),
        );
        let mut long = short.clone();
        long.set_structural(StructuralParams::new(1.0, 12));
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(7), &[1, 1, 8, 8], 0.0, 1.0);
        let a = nn::logits(&short, &params, &x);
        let b = nn::logits(&long, &params, &x);
        assert!(!a.allclose(&b, 1e-6), "window length had no effect");
    }

    #[test]
    fn higher_threshold_reduces_spike_driven_logit_energy() {
        // With a very high threshold nothing spikes, so deeper layers see
        // zero input and the decoded logits collapse toward the bias-driven
        // readout; compare total logit magnitude against a low threshold.
        let mut rng = StdRng::seed_from_u64(8);
        let mut params = Params::new();
        let model = SpikingCnn::new(
            &mut params,
            &mut rng,
            &CnnConfig::tiny(8, 4),
            &SnnConfig::new(StructuralParams::new(0.25, 8)),
        );
        let mut quiet = model.clone();
        quiet.set_structural(StructuralParams::new(50.0, 8));
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(9), &[1, 1, 8, 8], 0.5, 1.0);
        let loud_logits = nn::logits(&model, &params, &x);
        let quiet_logits = nn::logits(&quiet, &params, &x);
        assert!(
            loud_logits.map(f32::abs).sum() > quiet_logits.map(f32::abs).sum(),
            "high threshold should silence the network"
        );
    }

    #[test]
    fn activity_rate_decreases_with_threshold() {
        // The mechanism behind the paper's exploration axes: raising V_th
        // lowers firing rates across the network.
        let mut rng = StdRng::seed_from_u64(21);
        let mut params = Params::new();
        let low = SpikingCnn::new(
            &mut params,
            &mut rng,
            &CnnConfig::tiny(8, 4),
            &SnnConfig::new(StructuralParams::new(0.25, 8)),
        );
        let mut high = low.clone();
        high.set_structural(StructuralParams::new(2.5, 8));
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(22), &[2, 1, 8, 8], 0.3, 1.0);
        let low_rate = low.activity(&params, &x).overall_rate();
        let high_rate = high.activity(&params, &x).overall_rate();
        assert!(
            low_rate > high_rate,
            "firing rate should fall with threshold: {low_rate} vs {high_rate}"
        );
        assert!((0.0..=1.0).contains(&low_rate));
    }

    #[test]
    fn activity_reports_every_spiking_layer() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut params = Params::new();
        let cfg = SnnConfig::new(StructuralParams::new(0.5, 4));
        let model = SpikingMlp::new(&mut params, &mut rng, 16, &[12, 8], 3, &cfg);
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(24), &[2, 1, 4, 4], 0.0, 1.0);
        let report = model.activity(&params, &x);
        // Two hidden layers recorded (the LI head does not spike).
        assert_eq!(report.layers().len(), 2);
        assert_eq!(report.layers()[0].timesteps, 4);
        assert_eq!(report.layers()[0].units, 2 * 12);
    }

    #[test]
    fn alternate_neuron_models_train_forward_and_attack() {
        for neuron in [
            NeuronModel::SynapticLif { gamma: 0.7 },
            NeuronModel::AdaptiveLif {
                rho: 0.9,
                kappa: 0.2,
            },
        ] {
            let mut cfg = SnnConfig::new(StructuralParams::new(0.5, 5));
            cfg.neuron = neuron;
            let mut rng = StdRng::seed_from_u64(25);
            let mut params = Params::new();
            let model = SpikingCnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4), &cfg);
            let clf = nn::Classifier::new(model, params);
            let x = tensor::init::uniform(&mut StdRng::seed_from_u64(26), &[1, 1, 8, 8], 0.2, 0.9);
            let (loss, grad) = nn::AdversarialTarget::loss_and_input_grad(&clf, &x, &[2]);
            assert!(loss.is_finite(), "{neuron:?}");
            assert!(grad.max_abs() > 0.0, "{neuron:?} gave no input gradient");
        }
    }

    #[test]
    fn surrogate_shape_changes_gradients_not_outputs() {
        let mut rng = StdRng::seed_from_u64(27);
        let mut params = Params::new();
        let cfg = SnnConfig::new(StructuralParams::new(1.0, 5));
        let model = SpikingCnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4), &cfg);
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(28), &[1, 1, 8, 8], 0.2, 0.9);

        let mut tri_model = model.clone();
        tri_model.config.surrogate = crate::SurrogateShape::Triangle;

        // Same weights, same forward (Heaviside), different backward.
        let a = nn::logits(&model, &params, &x);
        let b = nn::logits(&tri_model, &params, &x);
        assert_eq!(a, b, "surrogate shape must not affect the forward pass");

        let clf_a = nn::Classifier::new(model, params.clone());
        let clf_b = nn::Classifier::new(tri_model, params);
        let (_, ga) = nn::AdversarialTarget::loss_and_input_grad(&clf_a, &x, &[1]);
        let (_, gb) = nn::AdversarialTarget::loss_and_input_grad(&clf_b, &x, &[1]);
        assert_ne!(
            ga, gb,
            "different surrogates should give different gradients"
        );
    }

    #[test]
    fn recurrent_mlp_has_more_parameters_and_different_dynamics() {
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = SnnConfig::new(StructuralParams::new(0.5, 6));
        let mut p_ff = Params::new();
        let ff = SpikingMlp::new(&mut p_ff, &mut rng, 16, &[12], 3, &cfg);
        let mut rng = StdRng::seed_from_u64(31);
        let mut p_rec = Params::new();
        let rec = SpikingMlp::new_recurrent(&mut p_rec, &mut rng, 16, &[12], 3, &cfg);
        assert!(rec.is_recurrent() && !ff.is_recurrent());
        assert_eq!(
            p_rec.num_scalars(),
            p_ff.num_scalars() + 12 * 12 + 12,
            "one 12x12 recurrent matrix + bias"
        );
        // Same seed, same feed-forward weights, but the recurrent pathway
        // changes the logits (recurrent weights are non-zero at init).
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(32), &[1, 1, 4, 4], 0.3, 1.0);
        let a = nn::logits(&ff, &p_ff, &x);
        let b = nn::logits(&rec, &p_rec, &x);
        assert_ne!(a, b);
    }

    #[test]
    fn recurrent_mlp_trains_and_yields_input_gradients() {
        let mut rng = StdRng::seed_from_u64(33);
        let cfg = SnnConfig::new(StructuralParams::new(0.5, 5));
        let mut params = Params::new();
        let model = SpikingMlp::new_recurrent(&mut params, &mut rng, 16, &[10], 2, &cfg);
        let clf = nn::Classifier::new(model, params);
        let x = tensor::init::uniform(&mut StdRng::seed_from_u64(34), &[2, 1, 4, 4], 0.2, 0.9);
        let (loss, grad) = nn::AdversarialTarget::loss_and_input_grad(&clf, &x, &[0, 1]);
        assert!(loss.is_finite());
        assert!(grad.max_abs() > 0.0, "RSNN must be attackable white-box");
    }

    #[test]
    fn mlp_trains_on_separable_toy_problem() {
        let mut rng = StdRng::seed_from_u64(10);
        // Bright vs dark 4x4 images.
        let n = 24;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let class = i % 2;
            let base = if class == 0 { 0.1 } else { 0.9 };
            for _ in 0..16 {
                data.push(base + rng.gen_range(-0.05..0.05f32));
            }
            labels.push(class);
        }
        let images = Tensor::from_vec(data, &[n, 1, 4, 4]);
        let mut params = Params::new();
        let cfg = SnnConfig::new(StructuralParams::new(0.5, 6));
        let model = SpikingMlp::new(&mut params, &mut rng, 16, &[16], 2, &cfg);
        let mut opt = nn::Adam::new(1e-2);
        for _ in 0..12 {
            nn::train::train_epoch(&model, &mut params, &mut opt, &images, &labels, 8, &mut rng);
        }
        let acc = nn::train::evaluate(&model, &params, &images, &labels, 24);
        assert!(acc > 0.9, "spiking MLP failed to learn: accuracy {acc}");
    }

    use rand::Rng;
}
