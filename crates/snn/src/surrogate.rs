//! The surrogate-gradient family for spike nonlinearities.
//!
//! All shapes share the same forward pass (Heaviside on the centered
//! membrane `x = v − V_th`) and differ only in the smooth derivative used
//! during backpropagation. Every derivative is normalised to peak at `1` at
//! the threshold so the slope parameter `α` has the same meaning across
//! shapes: larger `α` → narrower surrogate → closer to the true step (and
//! weaker gradients for both training *and* white-box attackers).

use ad::CustomUnary;
use serde::{Deserialize, Serialize};
use tensor::Tensor;

/// The derivative shape substituted for the Heaviside step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SurrogateShape {
    /// SuperSpike fast sigmoid: `1 / (1 + α·|x|)²` (Norse's default and the
    /// shape used by the reproduced paper's training stack).
    #[default]
    FastSigmoid,
    /// Inverse-quadratic arctangent shape: `1 / (1 + (α·x)²)`.
    Atan,
    /// Triangular window: `max(0, 1 − α·|x|)`.
    Triangle,
    /// Rectangular window: `1` where `|α·x| ≤ 0.5`, else `0` (the
    /// straight-through-style estimator used by several SNN BPTT papers).
    Rectangular,
}

impl SurrogateShape {
    /// The derivative value at centered membrane `x` with slope `alpha`.
    pub fn derivative(self, x: f32, alpha: f32) -> f32 {
        match self {
            SurrogateShape::FastSigmoid => {
                let d = 1.0 + alpha * x.abs();
                1.0 / (d * d)
            }
            SurrogateShape::Atan => 1.0 / (1.0 + (alpha * x) * (alpha * x)),
            SurrogateShape::Triangle => (1.0 - alpha * x.abs()).max(0.0),
            SurrogateShape::Rectangular => {
                if (alpha * x).abs() <= 0.5 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }
}

/// A spike nonlinearity with a selectable surrogate derivative: Heaviside
/// forward, [`SurrogateShape::derivative`] backward.
///
/// # Example
///
/// ```
/// use ad::Tape;
/// use snn::{Surrogate, SurrogateShape};
/// use tensor::Tensor;
///
/// let tape = Tape::new();
/// let x = tape.leaf(Tensor::from_vec(vec![-0.2, 0.2], &[2]));
/// let s = x.custom_unary(Box::new(Surrogate::new(SurrogateShape::Triangle, 2.0)));
/// assert_eq!(s.value().data(), &[0.0, 1.0]);
/// let grads = tape.backward(s.sum());
/// // Triangle derivative at |x| = 0.2 with alpha 2: 1 − 0.4 = 0.6.
/// assert!((grads.wrt(x).unwrap().data()[0] - 0.6).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Surrogate {
    shape: SurrogateShape,
    alpha: f32,
}

impl Surrogate {
    /// Creates the nonlinearity.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not positive.
    pub fn new(shape: SurrogateShape, alpha: f32) -> Self {
        assert!(alpha > 0.0, "surrogate slope must be positive, got {alpha}");
        Self { shape, alpha }
    }

    /// The derivative shape.
    pub fn shape(&self) -> SurrogateShape {
        self.shape
    }

    /// The slope parameter.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }
}

impl CustomUnary for Surrogate {
    fn forward(&self, x: &Tensor) -> Tensor {
        x.map(|v| if v >= 0.0 { 1.0 } else { 0.0 })
    }

    fn backward(&self, x: &Tensor, grad_out: &Tensor) -> Tensor {
        let (shape, alpha) = (self.shape, self.alpha);
        x.zip_map(grad_out, move |v, g| g * shape.derivative(v, alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_shapes_peak_at_threshold() {
        for shape in [
            SurrogateShape::FastSigmoid,
            SurrogateShape::Atan,
            SurrogateShape::Triangle,
            SurrogateShape::Rectangular,
        ] {
            assert_eq!(shape.derivative(0.0, 10.0), 1.0, "{shape:?}");
        }
    }

    #[test]
    fn all_shapes_decay_away_from_threshold() {
        for shape in [
            SurrogateShape::FastSigmoid,
            SurrogateShape::Atan,
            SurrogateShape::Triangle,
            SurrogateShape::Rectangular,
        ] {
            let near = shape.derivative(0.01, 10.0);
            let far = shape.derivative(1.0, 10.0);
            assert!(far <= near, "{shape:?}: {far} > {near}");
            assert!(far < 0.5, "{shape:?} barely decays: {far}");
        }
    }

    #[test]
    fn shapes_are_symmetric() {
        for shape in [
            SurrogateShape::FastSigmoid,
            SurrogateShape::Atan,
            SurrogateShape::Triangle,
            SurrogateShape::Rectangular,
        ] {
            for x in [0.05f32, 0.3, 2.0] {
                assert_eq!(
                    shape.derivative(x, 7.0),
                    shape.derivative(-x, 7.0),
                    "{shape:?} asymmetric at {x}"
                );
            }
        }
    }

    #[test]
    fn triangle_and_rectangular_have_compact_support() {
        assert_eq!(SurrogateShape::Triangle.derivative(0.11, 10.0), 0.0);
        assert_eq!(SurrogateShape::Rectangular.derivative(0.051, 10.0), 0.0);
        assert!(SurrogateShape::FastSigmoid.derivative(0.11, 10.0) > 0.0);
    }

    #[test]
    fn forward_is_heaviside_regardless_of_shape() {
        let x = Tensor::from_vec(vec![-1.0, 0.0, 1.0], &[3]);
        for shape in [SurrogateShape::FastSigmoid, SurrogateShape::Rectangular] {
            let s = Surrogate::new(shape, 5.0);
            assert_eq!(s.forward(&x).data(), &[0.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn fast_sigmoid_matches_superspike() {
        let x = Tensor::from_vec(vec![0.5, -0.25], &[2]);
        let g = Tensor::ones(&[2]);
        let a = Surrogate::new(SurrogateShape::FastSigmoid, 10.0).backward(&x, &g);
        let b = crate::SuperSpike::new(10.0).backward(&x, &g);
        assert_eq!(a, b);
    }
}
