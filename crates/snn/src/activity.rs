//! Spike-activity statistics: how much a trained network actually fires.
//!
//! The paper's central mechanism is that `V_th` and `T` modulate spiking
//! activity, which in turn conditions both accuracy and attackability.
//! [`ActivityReport`] quantifies that directly: per spiking layer, the mean
//! firing rate (spikes per neuron per timestep) observed while classifying
//! a batch.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Firing statistics of one spiking layer over one forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerActivity {
    /// Layer label (e.g. `"conv0"`, `"fc1"`).
    pub layer: String,
    /// Total spikes emitted across the batch and the whole time window.
    pub total_spikes: f32,
    /// Number of neurons in the layer × batch size.
    pub units: usize,
    /// Number of simulation steps observed.
    pub timesteps: usize,
}

impl LayerActivity {
    /// Mean firing rate in spikes per unit per timestep (`0..=1` for
    /// binary spike trains).
    pub fn mean_rate(&self) -> f32 {
        if self.units == 0 || self.timesteps == 0 {
            0.0
        } else {
            self.total_spikes / (self.units * self.timesteps) as f32
        }
    }
}

/// Per-layer firing statistics for one batch, produced by
/// [`SpikingCnn::activity`](crate::SpikingCnn::activity) and
/// [`SpikingMlp::activity`](crate::SpikingMlp::activity).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ActivityReport {
    layers: Vec<LayerActivity>,
}

impl ActivityReport {
    /// The recorded layers, input-side first.
    pub fn layers(&self) -> &[LayerActivity] {
        &self.layers
    }

    /// Mean firing rate across all layers, weighted by unit-timesteps.
    pub fn overall_rate(&self) -> f32 {
        let spikes: f32 = self.layers.iter().map(|l| l.total_spikes).sum();
        let denom: usize = self.layers.iter().map(|l| l.units * l.timesteps).sum();
        if denom == 0 {
            0.0
        } else {
            spikes / denom as f32
        }
    }

    pub(crate) fn record(&mut self, layer: &str, spikes_sum: f32, units: usize) {
        match self.layers.iter_mut().find(|l| l.layer == layer) {
            Some(l) => {
                l.total_spikes += spikes_sum;
                l.timesteps += 1;
            }
            None => self.layers.push(LayerActivity {
                layer: layer.to_string(),
                total_spikes: spikes_sum,
                units,
                timesteps: 1,
            }),
        }
    }
}

impl fmt::Display for ActivityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "layer        rate [spikes/unit/step]")?;
        for l in &self.layers {
            writeln!(f, "{:<12} {:.4}", l.layer, l.mean_rate())?;
        }
        write!(f, "overall      {:.4}", self.overall_rate())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_accumulate_across_timesteps() {
        let mut r = ActivityReport::default();
        r.record("fc0", 5.0, 10);
        r.record("fc0", 3.0, 10);
        r.record("fc1", 1.0, 4);
        assert_eq!(r.layers().len(), 2);
        let fc0 = &r.layers()[0];
        assert_eq!(fc0.total_spikes, 8.0);
        assert_eq!(fc0.timesteps, 2);
        assert!((fc0.mean_rate() - 8.0 / 20.0).abs() < 1e-6);
        // Overall: (8 + 1) / (20 + 4)
        assert!((r.overall_rate() - 9.0 / 24.0).abs() < 1e-6);
    }

    #[test]
    fn empty_report_has_zero_rate() {
        let r = ActivityReport::default();
        assert_eq!(r.overall_rate(), 0.0);
    }

    #[test]
    fn display_lists_layers() {
        let mut r = ActivityReport::default();
        r.record("conv0", 2.0, 8);
        let text = r.to_string();
        assert!(text.contains("conv0"));
        assert!(text.contains("overall"));
    }
}
