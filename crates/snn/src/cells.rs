//! Richer neuron models and the unified cell dispatch used by the network
//! builders.
//!
//! Beyond the plain [`LifCell`](crate::LifCell), this module provides:
//!
//! * [`SynapticLifCell`] — a two-state LIF whose input first charges an
//!   exponentially-decaying synaptic current (Norse's full `LIF` cell is of
//!   this form; the paper's networks use the simplified single-state
//!   variant, which remains the default),
//! * [`AdaptiveLifCell`] — LIF with spike-triggered threshold adaptation
//!   (ALIF), a common extension the paper lists as future work,
//! * [`NeuronModel`] — a serialisable selector that lets experiment configs
//!   and ablations switch neuron models without changing network code.

use ad::Var;
use serde::{Deserialize, Serialize};
use tensor::Tensor;

use crate::lif::{LifCell, LifParams};
use crate::surrogate::Surrogate;

/// The recurrent state of one spiking layer, for any supported neuron model.
#[derive(Debug, Clone, Copy)]
pub enum CellState<'t> {
    /// Membrane potential only (plain LIF).
    Membrane(Var<'t>),
    /// Synaptic current + membrane potential.
    SynapticMembrane(Var<'t>, Var<'t>),
    /// Membrane potential + adaptation variable.
    MembraneAdaptation(Var<'t>, Var<'t>),
}

/// A LIF neuron with an explicit synaptic-current state:
///
/// ```text
/// i[t+1] = γ · i[t] + I[t]
/// v[t+1] = β · v[t] + i[t+1]
/// ```
///
/// followed by the usual threshold/reset. The synaptic low-pass makes the
/// membrane respond smoothly to input transients.
#[derive(Debug, Clone, Copy)]
pub struct SynapticLifCell {
    params: LifParams,
    gamma: f32,
}

impl SynapticLifCell {
    /// Creates the cell with synaptic decay `gamma` per step.
    ///
    /// # Panics
    ///
    /// Panics if `gamma` is outside `[0, 1]`.
    pub fn new(params: LifParams, gamma: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&gamma),
            "synaptic decay must be in [0, 1], got {gamma}"
        );
        Self { params, gamma }
    }

    /// The synaptic decay factor.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// Advances one step: returns `(spikes, (i_next, v_next))`.
    pub fn step<'t>(
        &self,
        input: Var<'t>,
        i: Var<'t>,
        v: Var<'t>,
    ) -> (Var<'t>, (Var<'t>, Var<'t>)) {
        let i_next = i.mul_scalar(self.gamma) + input;
        // Reuse the plain LIF threshold/reset dynamics on the filtered
        // current.
        let (spikes, v_next) = LifCell::new(self.params).step(i_next, v);
        (spikes, (i_next, v_next))
    }
}

/// A LIF neuron with spike-triggered threshold adaptation (ALIF):
///
/// ```text
/// v[t+1] = β · v[t] + I[t]
/// s[t+1] = Θ(v[t+1] − (V_th + κ · a[t]))
/// a[t+1] = ρ · a[t] + s[t+1]
/// ```
///
/// Each spike raises the effective threshold by `κ`, which then decays with
/// factor `ρ` — a homeostatic mechanism that suppresses sustained bursting.
#[derive(Debug, Clone, Copy)]
pub struct AdaptiveLifCell {
    params: LifParams,
    rho: f32,
    kappa: f32,
}

impl AdaptiveLifCell {
    /// Creates the cell with adaptation decay `rho` and increment `kappa`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is outside `[0, 1]` or `kappa` is negative.
    pub fn new(params: LifParams, rho: f32, kappa: f32) -> Self {
        assert!(
            (0.0..=1.0).contains(&rho),
            "adaptation decay must be in [0, 1], got {rho}"
        );
        assert!(
            kappa >= 0.0,
            "adaptation increment must be non-negative, got {kappa}"
        );
        Self { params, rho, kappa }
    }

    /// Advances one step: returns `(spikes, (v_next, a_next))`.
    ///
    /// The centered-threshold path (`v_int − κ·a − V_th`) routes through
    /// the same fused spike/reset primitive as [`LifCell::step`]
    /// ([`ad::Var::lif_step`] with the adaptation state attached), so the
    /// SIMD kernel and the ALIF variant cannot silently diverge — see the
    /// `adaptive_step_matches_composed_ops_bitwise` cross-check test.
    pub fn step<'t>(
        &self,
        input: Var<'t>,
        v: Var<'t>,
        a: Var<'t>,
    ) -> (Var<'t>, (Var<'t>, Var<'t>)) {
        let p = self.params;
        let (spikes, v_next) = input.lif_step(
            v,
            Some((a, self.kappa)),
            p.kernel_spec(),
            Box::new(Surrogate::new(p.surrogate, p.alpha)),
        );
        let a_next = a.mul_scalar(self.rho) + spikes;
        (spikes, (v_next, a_next))
    }
}

/// Selects the neuron model used by every spiking layer of a network.
///
/// # Example
///
/// ```
/// use snn::NeuronModel;
///
/// let model = NeuronModel::SynapticLif { gamma: 0.8 };
/// assert_ne!(model, NeuronModel::Lif);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum NeuronModel {
    /// Single-state leaky integrate-and-fire (the paper's model).
    #[default]
    Lif,
    /// LIF with an explicit synaptic-current state.
    SynapticLif {
        /// Synaptic decay per step.
        gamma: f32,
    },
    /// LIF with spike-triggered threshold adaptation.
    AdaptiveLif {
        /// Adaptation decay per step.
        rho: f32,
        /// Threshold increment per spike.
        kappa: f32,
    },
}

impl NeuronModel {
    /// Advances one layer by one timestep, creating the zero state on first
    /// use. Returns `(spikes, next_state)`.
    pub fn step<'t>(
        &self,
        params: LifParams,
        input: Var<'t>,
        state: Option<CellState<'t>>,
    ) -> (Var<'t>, CellState<'t>) {
        let tape = input.tape();
        let zeros = || tape.leaf(Tensor::zeros(&input.dims()));
        match *self {
            NeuronModel::Lif => {
                let v = match state {
                    Some(CellState::Membrane(v)) => v,
                    None => zeros(),
                    Some(other) => panic!("LIF layer resumed with foreign state {other:?}"),
                };
                let (s, v_next) = LifCell::new(params).step(input, v);
                (s, CellState::Membrane(v_next))
            }
            NeuronModel::SynapticLif { gamma } => {
                let (i, v) = match state {
                    Some(CellState::SynapticMembrane(i, v)) => (i, v),
                    None => (zeros(), zeros()),
                    Some(other) => {
                        panic!("synaptic LIF layer resumed with foreign state {other:?}")
                    }
                };
                let (s, (i_next, v_next)) = SynapticLifCell::new(params, gamma).step(input, i, v);
                (s, CellState::SynapticMembrane(i_next, v_next))
            }
            NeuronModel::AdaptiveLif { rho, kappa } => {
                let (v, a) = match state {
                    Some(CellState::MembraneAdaptation(v, a)) => (v, a),
                    None => (zeros(), zeros()),
                    Some(other) => {
                        panic!("adaptive LIF layer resumed with foreign state {other:?}")
                    }
                };
                let (s, (v_next, a_next)) =
                    AdaptiveLifCell::new(params, rho, kappa).step(input, v, a);
                (s, CellState::MembraneAdaptation(v_next, a_next))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ad::Tape;

    fn run_steps(model: NeuronModel, v_th: f32, input: f32, steps: usize) -> f32 {
        let tape = Tape::new();
        let i = tape.leaf(Tensor::scalar(input));
        let mut state = None;
        let mut count = 0.0;
        for _ in 0..steps {
            let (s, next) = model.step(LifParams::new(v_th), i, state);
            count += s.value().item();
            state = Some(next);
        }
        count
    }

    #[test]
    fn synaptic_filter_delays_first_spike() {
        // With a synaptic filter the membrane charges more slowly at the
        // start, so the first spike arrives no earlier than for plain LIF.
        let first_spike = |model: NeuronModel| -> usize {
            let tape = Tape::new();
            let i = tape.leaf(Tensor::scalar(0.6));
            let mut state = None;
            for t in 0..50 {
                let (s, next) = model.step(LifParams::new(1.0), i, state);
                if s.value().item() > 0.0 {
                    return t;
                }
                state = Some(next);
            }
            50
        };
        let plain = first_spike(NeuronModel::Lif);
        let filtered = first_spike(NeuronModel::SynapticLif { gamma: 0.5 });
        assert!(
            filtered >= plain,
            "synaptic filter fired earlier: {filtered} < {plain}"
        );
        assert!(plain < 50, "plain LIF must fire under this drive");
    }

    #[test]
    fn adaptation_reduces_firing_rate() {
        let no_adapt = run_steps(NeuronModel::Lif, 1.0, 0.8, 60);
        let adapted = run_steps(
            NeuronModel::AdaptiveLif {
                rho: 0.95,
                kappa: 0.5,
            },
            1.0,
            0.8,
            60,
        );
        assert!(
            adapted < no_adapt,
            "adaptation must suppress firing: {adapted} vs {no_adapt}"
        );
        assert!(adapted > 0.0, "adapted neuron should still fire sometimes");
    }

    #[test]
    fn all_models_propagate_gradients_to_input() {
        for model in [
            NeuronModel::Lif,
            NeuronModel::SynapticLif { gamma: 0.7 },
            NeuronModel::AdaptiveLif {
                rho: 0.9,
                kappa: 0.3,
            },
        ] {
            let tape = Tape::new();
            let input = tape.leaf(Tensor::from_vec(vec![0.9, 1.1], &[2]));
            let mut state = None;
            let mut acc: Option<Var> = None;
            for _ in 0..6 {
                let (s, next) = model.step(LifParams::new(1.0), input, state);
                state = Some(next);
                acc = Some(match acc {
                    None => s,
                    Some(a) => a + s,
                });
            }
            let grads = tape.backward(acc.unwrap().sum());
            let g = grads.wrt(input).unwrap();
            assert!(g.max_abs() > 0.0, "{model:?} leaked no gradient");
            assert!(!g.has_non_finite(), "{model:?} produced NaN gradient");
        }
    }

    #[test]
    #[should_panic(expected = "foreign state")]
    fn mixing_states_across_models_panics() {
        let tape = Tape::new();
        let input = tape.leaf(Tensor::scalar(0.5));
        let (_, state) = NeuronModel::Lif.step(LifParams::new(1.0), input, None);
        NeuronModel::SynapticLif { gamma: 0.5 }.step(LifParams::new(1.0), input, Some(state));
    }

    /// Satellite cross-check: the ALIF centered-threshold path (fused
    /// kernel) must be **bitwise** identical — spike trains, states, and
    /// input gradients — to the composed-op formulation it replaced, for
    /// both reset modes.
    #[test]
    fn adaptive_step_matches_composed_ops_bitwise() {
        use crate::ResetMode;
        let data: Vec<f32> = (0..12)
            .map(|i| 0.3 + 0.17 * i as f32 * if i % 2 == 0 { 1.0 } else { -0.4 })
            .collect();
        for reset in [ResetMode::Subtract, ResetMode::Zero] {
            let params = LifParams::new(1.0).with_reset(reset);
            let (rho, kappa) = (0.9f32, 0.5f32);
            let run = |fused: bool| -> (Vec<u32>, Vec<u32>, Vec<u32>) {
                let tape = ad::Tape::new();
                let input = tape.leaf(Tensor::from_vec(data.clone(), &[12]));
                let mut v = tape.leaf(Tensor::zeros(&[12]));
                let mut a = tape.leaf(Tensor::zeros(&[12]));
                let mut acc: Option<Var> = None;
                let mut spike_bits = Vec::new();
                for _ in 0..8 {
                    let (s, (v_next, a_next)) = if fused {
                        AdaptiveLifCell::new(params, rho, kappa).step(input, v, a)
                    } else {
                        // The pre-fusion op composition, kept inline as the
                        // semantic reference.
                        let p = params;
                        let v_int = v.mul_scalar(p.beta) + input;
                        let centered = (v_int - a.mul_scalar(kappa)).add_scalar(-p.v_th);
                        let spikes =
                            centered.custom_unary(Box::new(Surrogate::new(p.surrogate, p.alpha)));
                        let v_next = match p.reset {
                            ResetMode::Subtract => v_int - spikes.mul_scalar(p.v_th),
                            ResetMode::Zero => v_int - v_int * spikes,
                        };
                        (spikes, (v_next, a.mul_scalar(rho) + spikes))
                    };
                    spike_bits.extend(s.value().data().iter().map(|x| x.to_bits()));
                    v = v_next;
                    a = a_next;
                    acc = Some(match acc {
                        None => s,
                        Some(t) => t + s,
                    });
                }
                let grads = tape.backward(acc.unwrap().sum());
                let g: Vec<u32> = grads
                    .wrt(input)
                    .unwrap()
                    .data()
                    .iter()
                    .map(|x| x.to_bits())
                    .collect();
                let vf: Vec<u32> = v.value().data().iter().map(|x| x.to_bits()).collect();
                (spike_bits, vf, g)
            };
            assert_eq!(run(true), run(false), "{reset:?}");
        }
    }

    #[test]
    fn zero_kappa_adaptive_matches_plain_lif() {
        let plain = run_steps(NeuronModel::Lif, 1.0, 0.7, 40);
        let alif = run_steps(
            NeuronModel::AdaptiveLif {
                rho: 0.9,
                kappa: 0.0,
            },
            1.0,
            0.7,
            40,
        );
        assert_eq!(plain, alif);
    }
}
