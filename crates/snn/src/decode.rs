//! Output decoding: turning a time series of readout states into logits.

use serde::{Deserialize, Serialize};

/// How the `[N, classes]` logits are read out of the network after the time
/// window has elapsed.
///
/// * [`Decoder::MaxMembrane`] — the maximum membrane potential of the
///   non-spiking readout layer over the window (Norse's convention and the
///   default here). Smooth in the input, which matters for attack strength.
/// * [`Decoder::MeanMembrane`] — the time-averaged readout membrane.
/// * [`Decoder::SpikeCount`] — classic rate decoding: the head layer spikes
///   and the class with the most output spikes wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Decoder {
    /// Maximum readout membrane over the time window.
    #[default]
    MaxMembrane,
    /// Mean readout membrane over the time window.
    MeanMembrane,
    /// Total output spikes per class over the time window.
    SpikeCount,
}

impl Decoder {
    /// `true` if this decoder reads a non-spiking (LI) head; `false` if the
    /// head itself is a LIF layer whose spikes are counted.
    pub fn uses_li_head(&self) -> bool {
        !matches!(self, Decoder::SpikeCount)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_max_membrane() {
        assert_eq!(Decoder::default(), Decoder::MaxMembrane);
    }

    #[test]
    fn head_kind_follows_decoder() {
        assert!(Decoder::MaxMembrane.uses_li_head());
        assert!(Decoder::MeanMembrane.uses_li_head());
        assert!(!Decoder::SpikeCount.uses_li_head());
    }
}

#[cfg(test)]
mod serde_tests {
    use super::*;

    #[test]
    fn decoder_serde_round_trip() {
        for d in [
            Decoder::MaxMembrane,
            Decoder::MeanMembrane,
            Decoder::SpikeCount,
        ] {
            let json = serde_json::to_string(&d).unwrap();
            let back: Decoder = serde_json::from_str(&json).unwrap();
            assert_eq!(d, back);
        }
    }
}
