//! Spiking neural networks for the `spiking-armor` workspace.
//!
//! This crate is the from-scratch replacement for the paper's Norse
//! dependency. It provides:
//!
//! * [`LifParams`] / [`LifCell`] — leaky-integrate-and-fire dynamics with a
//!   SuperSpike surrogate gradient ([`SuperSpike`]), supporting both
//!   reset-by-subtraction and reset-to-zero ([`ResetMode`]),
//! * [`LiCell`] — the non-spiking leaky-integrator readout,
//! * [`Encoder`] — constant-current (differentiable, used by the white-box
//!   attacks) and Poisson rate encoding with a straight-through estimator,
//! * [`Decoder`] — max-membrane, mean-membrane and spike-count readouts,
//! * [`StructuralParams`] — the paper's `(V_th, T)` pair, the object of the
//!   whole robustness exploration,
//! * [`SpikingCnn`] — the spiking twin of an [`nn::CnnConfig`] topology
//!   (spiking LeNet-5 when built from [`nn::CnnConfig::lenet5`]), trained by
//!   backpropagation-through-time on the `ad` tape, plus a lighter
//!   [`SpikingMlp`].
//!
//! `SpikingCnn` implements [`nn::Model`], so the training loops, the
//! [`nn::Classifier`] wrapper and the white-box attack machinery all treat
//! spiking and non-spiking networks identically — which is precisely the
//! experimental setup of the reproduced paper.
//!
//! # Example
//!
//! ```
//! use nn::{CnnConfig, Params};
//! use rand::SeedableRng;
//! use snn::{SnnConfig, SpikingCnn, StructuralParams};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let cfg = SnnConfig::new(StructuralParams::new(1.0, 8));
//! let model = SpikingCnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 10), &cfg);
//! let x = tensor::Tensor::zeros(&[1, 1, 8, 8]);
//! let logits = nn::logits(&model, &params, &x);
//! assert_eq!(logits.dims(), &[1, 10]);
//! ```

#![forbid(unsafe_code)]

mod activity;
mod cells;
mod decode;
mod encode;
mod lif;
mod model;
mod structural;
mod surrogate;

pub mod trace;
pub mod trains;

pub use activity::{ActivityReport, LayerActivity};
pub use cells::{AdaptiveLifCell, CellState, NeuronModel, SynapticLifCell};
pub use decode::Decoder;
pub use encode::Encoder;
pub use lif::{LiCell, LifCell, LifParams, ResetMode, StraightThrough, SuperSpike};
pub use model::{SnnConfig, SpikingCnn, SpikingMlp};
pub use structural::StructuralParams;
pub use surrogate::{Surrogate, SurrogateShape};
