//! Single-neuron trajectory simulation.
//!
//! Traces run the *same* cell dynamics as the networks (through the tape),
//! so what you plot is exactly what trains — useful for picking `(V_th, β)`
//! regimes, for documentation, and for regression-testing the dynamics
//! against closed forms.

use ad::Tape;
use tensor::Tensor;

use crate::cells::{CellState, NeuronModel};
use crate::lif::LifParams;

/// The recorded trajectory of one neuron under a given input current
/// sequence.
#[derive(Debug, Clone, PartialEq)]
pub struct NeuronTrace {
    /// Membrane potential after every step (post-reset).
    pub membrane: Vec<f32>,
    /// Whether the neuron spiked at each step.
    pub spikes: Vec<bool>,
    /// The auxiliary state (synaptic current or adaptation), when the
    /// neuron model has one.
    pub auxiliary: Option<Vec<f32>>,
}

impl NeuronTrace {
    /// Total number of spikes in the trace.
    pub fn spike_count(&self) -> usize {
        self.spikes.iter().filter(|&&s| s).count()
    }

    /// Mean firing rate in spikes per step.
    pub fn firing_rate(&self) -> f32 {
        if self.spikes.is_empty() {
            0.0
        } else {
            self.spike_count() as f32 / self.spikes.len() as f32
        }
    }

    /// The step indices at which the neuron spiked.
    pub fn spike_times(&self) -> Vec<usize> {
        self.spikes
            .iter()
            .enumerate()
            .filter_map(|(t, &s)| s.then_some(t))
            .collect()
    }
}

/// Simulates one neuron of the given model under an input current sequence.
///
/// # Example
///
/// ```
/// use snn::{trace, LifParams, NeuronModel};
///
/// // Constant supra-threshold drive fires periodically.
/// let inputs = vec![0.6; 20];
/// let t = trace::simulate(NeuronModel::Lif, LifParams::new(1.0), &inputs);
/// assert!(t.spike_count() > 1);
/// assert!(t.membrane.iter().all(|v| v.is_finite()));
/// ```
pub fn simulate(model: NeuronModel, params: LifParams, inputs: &[f32]) -> NeuronTrace {
    let tape = Tape::new();
    let mut state: Option<CellState<'_>> = None;
    let mut membrane = Vec::with_capacity(inputs.len());
    let mut spikes = Vec::with_capacity(inputs.len());
    let mut auxiliary: Option<Vec<f32>> = None;
    for &current in inputs {
        let input = tape.leaf(Tensor::scalar(current));
        let (s, next) = model.step(params, input, state);
        spikes.push(s.value().item() > 0.0);
        match next {
            CellState::Membrane(v) => membrane.push(v.value().item()),
            CellState::SynapticMembrane(i, v) => {
                membrane.push(v.value().item());
                auxiliary
                    .get_or_insert_with(Vec::new)
                    .push(i.value().item());
            }
            CellState::MembraneAdaptation(v, a) => {
                membrane.push(v.value().item());
                auxiliary
                    .get_or_insert_with(Vec::new)
                    .push(a.value().item());
            }
        }
        state = Some(next);
    }
    NeuronTrace {
        membrane,
        spikes,
        auxiliary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lif_under_constant_drive_matches_closed_form_until_first_spike() {
        // v[t] = I · (1 − β^t)/(1 − β) while below threshold.
        let params = LifParams::new(10.0).with_beta(0.5);
        let trace = simulate(NeuronModel::Lif, params, &[1.0; 8]);
        for (t, &v) in trace.membrane.iter().enumerate() {
            let expected = (1.0 - 0.5f32.powi(t as i32 + 1)) / 0.5;
            assert!((v - expected).abs() < 1e-5, "step {t}: {v} vs {expected}");
        }
        assert_eq!(trace.spike_count(), 0);
    }

    #[test]
    fn firing_is_periodic_under_constant_supra_threshold_drive() {
        let trace = simulate(NeuronModel::Lif, LifParams::new(1.0), &[0.5; 40]);
        let times = trace.spike_times();
        assert!(times.len() >= 3, "expected several spikes, got {times:?}");
        // After the transient, inter-spike intervals are constant.
        let isis: Vec<usize> = times.windows(2).map(|w| w[1] - w[0]).collect();
        let last = *isis.last().unwrap();
        assert!(
            isis.iter().rev().take(2).all(|&i| i == last),
            "steady-state ISIs should be periodic: {isis:?}"
        );
    }

    #[test]
    fn adaptive_neuron_lengthens_intervals() {
        let inputs = vec![0.8; 60];
        let plain = simulate(NeuronModel::Lif, LifParams::new(1.0), &inputs);
        let alif = simulate(
            NeuronModel::AdaptiveLif {
                rho: 0.97,
                kappa: 0.8,
            },
            LifParams::new(1.0),
            &inputs,
        );
        assert!(alif.spike_count() < plain.spike_count());
        let aux = alif.auxiliary.expect("ALIF records its adaptation state");
        assert_eq!(aux.len(), 60);
        assert!(aux.iter().any(|&a| a > 0.0), "adaptation must accumulate");
    }

    #[test]
    fn synaptic_neuron_records_current_trace() {
        let trace = simulate(
            NeuronModel::SynapticLif { gamma: 0.5 },
            LifParams::new(5.0),
            &[1.0; 10],
        );
        let aux = trace.auxiliary.expect("synaptic LIF records its current");
        // i converges to 1/(1−γ) = 2 under unit drive.
        assert!((aux.last().unwrap() - 2.0).abs() < 1e-2);
    }

    #[test]
    fn predicted_rate_tracks_simulation() {
        for (v_th, current) in [(1.0f32, 0.5f32), (1.0, 0.8), (0.5, 0.4), (2.0, 1.5)] {
            let params = LifParams::new(v_th);
            let predicted = params.predicted_rate(current);
            let inputs = vec![current; 400];
            let simulated = simulate(NeuronModel::Lif, params, &inputs).firing_rate();
            assert!(
                (predicted - simulated).abs() < 0.12,
                "Vth={v_th} I={current}: predicted {predicted} vs simulated {simulated}"
            );
        }
        // Sub-threshold saturation: no firing, predicted and simulated.
        let quiet = LifParams::new(10.0);
        assert_eq!(quiet.predicted_rate(0.5), 0.0);
        assert_eq!(
            simulate(NeuronModel::Lif, quiet, &[0.5; 200]).spike_count(),
            0
        );
    }

    #[test]
    fn predicted_rate_is_finite_and_tracks_simulation_at_beta_one() {
        // β = 1.0 (a perfect integrator) used to be served by the leaky
        // formula with an epsilon-clamped divisor, which predicted a rate
        // of ~1.0 for any positive current. The integrator accumulates
        // `I` per step and fires every ⌈V_th/I⌉ steps, so the rate is
        // exactly I/V_th (capped at one spike per step).
        for (v_th, current, exact) in [
            (1.0f32, 0.25f32, 0.25f32),
            (1.0, 0.5, 0.5),
            (2.0, 0.5, 0.25),
            (1.0, 2.0, 1.0), // supra-threshold: one spike every step
        ] {
            let params = LifParams::new(v_th).with_beta(1.0);
            let predicted = params.predicted_rate(current);
            assert!(predicted.is_finite(), "β=1 must not produce inf/NaN");
            assert!(
                (predicted - exact).abs() < 1e-6,
                "Vth={v_th} I={current}: predicted {predicted}, exact {exact}"
            );
            let simulated = simulate(NeuronModel::Lif, params, &vec![current; 400]).firing_rate();
            assert!(
                (predicted - simulated).abs() < 0.01,
                "Vth={v_th} I={current}: predicted {predicted} vs simulated {simulated}"
            );
        }
        // Zero and negative drive never fire, even without leak.
        let params = LifParams::new(1.0).with_beta(1.0);
        assert_eq!(params.predicted_rate(0.0), 0.0);
        assert_eq!(params.predicted_rate(-0.3), 0.0);
    }

    #[test]
    fn empty_input_gives_empty_trace() {
        let trace = simulate(NeuronModel::Lif, LifParams::new(1.0), &[]);
        assert!(trace.membrane.is_empty());
        assert_eq!(trace.firing_rate(), 0.0);
    }
}
