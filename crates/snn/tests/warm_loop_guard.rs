//! Steady-state guard for the SNN hot path: once a model is warm, a full
//! timestep-loop forward performs **zero** thread spawns and **zero**
//! `pack_b` panel packing. The worker pool is persistent and the prepack
//! cache serves every bind, so all setup cost is paid exactly once.
//!
//! Lives in its own integration binary with a single `#[test]` because the
//! spawn and pack counters are process-global — unrelated tests running in
//! parallel in the same binary would make the deltas here meaningless.

use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{SnnConfig, SpikingMlp, StructuralParams};

#[test]
fn warm_timestep_loop_spawns_nothing_and_packs_nothing() {
    let mut rng = StdRng::seed_from_u64(23);
    let mut params = nn::Params::new();
    let cfg = SnnConfig::new(StructuralParams::new(1.0, 6));
    let model = SpikingMlp::new(&mut params, &mut rng, 36, &[24, 16], 4, &cfg);
    let x = tensor::init::uniform(&mut rng, &[3, 36], 0.0, 1.0);

    // Run at a multi-thread setting so a pooled dispatch is *allowed*:
    // the assertion below is that a warm loop never needs to spawn for
    // one, not that dispatch is avoided.
    let before_threads = tensor::parallel::max_threads();
    tensor::parallel::set_max_threads(2);

    // Cold forward: binds pack the weight panels (one miss per Linear)
    // and any first dispatch spawns the pool's workers.
    let cold = nn::logits(&model, &params, &x);

    let spawns = tensor::runtime::spawn_count();
    let packs = tensor::pack_b_calls();
    for _ in 0..4 {
        let warm = nn::logits(&model, &params, &x);
        // The cache must be invisible in values: warm forwards match the
        // cold one bitwise.
        for (a, b) in warm.data().iter().zip(cold.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
    let spawn_delta = tensor::runtime::spawn_count() - spawns;
    let pack_delta = tensor::pack_b_calls() - packs;
    tensor::parallel::set_max_threads(before_threads);

    assert_eq!(spawn_delta, 0, "warm forwards must not spawn threads");
    assert_eq!(
        pack_delta, 0,
        "warm forwards must not re-pack weight panels (4 forwards x {} timesteps ran)",
        6
    );
}
