//! The SNN timestep loop must run allocation-free against the tensor
//! workspace in steady state: the first forward pass grows the calling
//! thread's arena (im2col buffers, GEMM packing panels, conv scratch),
//! and every later pass — all `T` timesteps of it — reuses that memory.

use nn::{CnnConfig, Params};
use rand::rngs::StdRng;
use rand::SeedableRng;
use snn::{SnnConfig, SpikingCnn, SpikingMlp, StructuralParams};
use tensor::workspace::{alloc_count, Workspace};
use tensor::Tensor;

#[test]
fn spiking_cnn_forward_is_workspace_allocation_free_once_warm() {
    let mut rng = StdRng::seed_from_u64(0);
    let mut params = Params::new();
    let cfg = SnnConfig::new(StructuralParams::new(1.0, 6));
    let model = SpikingCnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4), &cfg);
    let x = tensor::init::uniform(&mut StdRng::seed_from_u64(1), &[2, 1, 8, 8], 0.0, 1.0);

    let warm = nn::logits(&model, &params, &x);
    let baseline = alloc_count();
    let steady = nn::logits(&model, &params, &x);
    assert_eq!(
        alloc_count(),
        baseline,
        "steady-state SNN forward grew the workspace arena"
    );
    assert_eq!(warm, steady, "reused workspace changed the logits");
}

#[test]
fn spiking_mlp_forward_is_workspace_allocation_free_once_warm() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = Params::new();
    let cfg = SnnConfig::new(StructuralParams::new(1.0, 4));
    let model = SpikingMlp::new(&mut params, &mut rng, 16, &[12], 4, &cfg);
    let x = tensor::init::uniform(&mut StdRng::seed_from_u64(4), &[3, 1, 4, 4], 0.0, 1.0);

    let warm = nn::logits(&model, &params, &x);
    let baseline = alloc_count();
    let steady = nn::logits(&model, &params, &x);
    assert_eq!(
        alloc_count(),
        baseline,
        "steady-state MLP forward grew the workspace arena"
    );
    assert_eq!(warm, steady);
}

/// The event-driven product's index/value buffers live in the same
/// per-shard arena as the GEMM packing panels: after one warm call at a
/// given `k`, repeated sparse products (and density-induced switches to
/// the dense path and back) must not grow the workspace.
#[test]
fn event_product_buffers_reuse_the_arena_once_warm() {
    let k = 300usize;
    let sparse = Tensor::from_vec(
        (0..4 * k)
            .map(|i| if i % 37 == 0 { 1.0 } else { 0.0 })
            .collect(),
        &[4, k],
    );
    let dense = Tensor::from_vec((0..4 * k).map(|i| 0.5 + (i % 3) as f32).collect(), &[4, k]);
    let w = Tensor::from_vec(
        (0..k * 8).map(|i| (i % 7) as f32 * 0.25 - 0.75).collect(),
        &[k, 8],
    );
    let mut out = Tensor::zeros(&[4, 8]);
    let mut ws = Workspace::new();

    // Warm-up: one sparse call sizes the event buffers, one dense call
    // sizes the packing panels.
    assert!(sparse.matmul_events_into(&w, &mut out, &mut ws));
    assert!(!dense.matmul_events_into(&w, &mut out, &mut ws));

    let baseline = alloc_count();
    for _ in 0..8 {
        assert!(sparse.matmul_events_into(&w, &mut out, &mut ws));
        assert!(!dense.matmul_events_into(&w, &mut out, &mut ws));
    }
    assert_eq!(
        alloc_count(),
        baseline,
        "steady-state event products grew the workspace arena"
    );
}
