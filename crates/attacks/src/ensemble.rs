//! Worst-case attack ensembles.
//!
//! Robustness numbers from a single attack over-estimate true robustness
//! whenever that attack happens to fail (e.g. surrogate-gradient masking on
//! SNNs). [`WorstCase`] runs several attacks — typically PGD with multiple
//! restarts plus momentum PGD — and keeps, *per sample*, the perturbation
//! that actually fools the victim (or maximises its loss when none does).

use tensor::Tensor;

use nn::AdversarialTarget;

use crate::Attack;

/// Runs every inner attack and keeps the strongest perturbation per sample.
///
/// Sample selection rule: a perturbation that flips the victim's prediction
/// beats one that does not; among equals, the one with the higher victim
/// loss wins.
///
/// # Example
///
/// ```
/// use attacks::{Attack, Fgsm, Pgd, WorstCase};
///
/// let ensemble = WorstCase::new(vec![
///     Box::new(Fgsm::new(0.2)),
///     Box::new(Pgd::standard(0.2)),
///     Box::new(Pgd::standard(0.2).with_seed(1)),
/// ]);
/// assert_eq!(ensemble.epsilon(), 0.2);
/// assert_eq!(ensemble.name(), "WorstCase");
/// ```
pub struct WorstCase {
    attacks: Vec<Box<dyn Attack + Send + Sync>>,
}

impl WorstCase {
    /// Builds the ensemble.
    ///
    /// Members are `Send + Sync` so [`WorstCase::perturb_parallel`] can run
    /// them on worker threads; every attack in this crate qualifies.
    ///
    /// # Panics
    ///
    /// Panics if `attacks` is empty or the inner budgets differ (the
    /// ensemble must have one well-defined ε).
    pub fn new(attacks: Vec<Box<dyn Attack + Send + Sync>>) -> Self {
        assert!(!attacks.is_empty(), "ensemble needs at least one attack");
        let eps = attacks[0].epsilon();
        assert!(
            attacks.iter().all(|a| (a.epsilon() - eps).abs() < 1e-6),
            "all ensemble members must share one noise budget"
        );
        Self { attacks }
    }

    /// The canonical strong ensemble at budget `epsilon`: PGD with three
    /// random restarts plus momentum PGD plus FGSM.
    pub fn standard(epsilon: f32) -> Self {
        Self::new(vec![
            Box::new(crate::Pgd::standard(epsilon)),
            Box::new(crate::Pgd::standard(epsilon).with_seed(1)),
            Box::new(crate::Pgd::standard(epsilon).with_seed(2)),
            Box::new(crate::MomentumPgd::standard(epsilon)),
            Box::new(crate::Fgsm::new(epsilon)),
        ])
    }

    /// Number of member attacks.
    pub fn len(&self) -> usize {
        self.attacks.len()
    }

    /// `true` if the ensemble has no members (never constructible).
    pub fn is_empty(&self) -> bool {
        self.attacks.is_empty()
    }

    /// [`Attack::perturb`] with the member attacks run on up to `threads`
    /// worker threads (`0` = all available cores).
    ///
    /// Each member derives its randomness from the batch content, so the
    /// per-member perturbations — and the member-order best-of selection
    /// applied afterwards — are bitwise-identical to the serial
    /// [`Attack::perturb`] for every thread count.
    pub fn perturb_parallel(
        &self,
        target: &(dyn AdversarialTarget + Sync),
        x: &Tensor,
        labels: &[usize],
        threads: usize,
    ) -> Tensor {
        let advs = tensor::parallel::par_map_collect(self.attacks.len(), threads, |i| {
            self.attacks[i].perturb(target, x, labels)
        });
        self.select_best(target, x, labels, &advs)
    }

    /// Keeps, per sample, the strongest of the member perturbations,
    /// scanning members in declaration order (fooling the victim beats not
    /// fooling it; ties break toward the higher victim loss).
    fn select_best(
        &self,
        target: &dyn AdversarialTarget,
        x: &Tensor,
        labels: &[usize],
        advs: &[Tensor],
    ) -> Tensor {
        let dims = x.dims();
        let n = dims[0];
        let sample_len: usize = dims[1..].iter().product();
        let mut best = x.clone();
        // Track, per sample, (fooled?, loss) of the current best candidate.
        let mut best_score: Vec<(bool, f32)> = vec![(false, f32::NEG_INFINITY); n];
        for adv in advs {
            let preds = target.predict(adv);
            for (i, (&pred, &label)) in preds.iter().zip(labels).enumerate() {
                let sample = Tensor::from_vec(
                    adv.data()[i * sample_len..(i + 1) * sample_len].to_vec(),
                    &[1, dims[1], dims[2], dims[3]],
                );
                let (loss, _) = target.loss_and_input_grad(&sample, &[label]);
                let fooled = pred != label;
                let better = match (fooled, best_score[i].0) {
                    (true, false) => true,
                    (false, true) => false,
                    _ => loss > best_score[i].1,
                };
                if better {
                    best_score[i] = (fooled, loss);
                    best.data_mut()[i * sample_len..(i + 1) * sample_len]
                        .copy_from_slice(sample.data());
                }
            }
        }
        best
    }
}

impl std::fmt::Debug for WorstCase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorstCase")
            .field(
                "members",
                &self.attacks.iter().map(|a| a.name()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl Attack for WorstCase {
    fn name(&self) -> &'static str {
        "WorstCase"
    }

    fn epsilon(&self) -> f32 {
        self.attacks[0].epsilon()
    }

    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor {
        let advs: Vec<Tensor> = self
            .attacks
            .iter()
            .map(|attack| attack.perturb(target, x, labels))
            .collect();
        self.select_best(target, x, labels, &advs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fgsm, Pgd, UniformNoise};

    /// A victim only fooled by pushing the first pixel above 0.9.
    struct FirstPixelVictim;
    impl AdversarialTarget for FirstPixelVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let v = s[0];
                out.push(0.9 - v);
                out.push(v - 0.9);
            }
            Tensor::from_vec(out, &[n, 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            let logits = self.logits(x);
            let p = logits.log_softmax_rows();
            let n = x.dims()[0];
            let mut loss = 0.0;
            for (i, &l) in labels.iter().enumerate() {
                loss -= p.data()[i * 2 + l];
            }
            let mut grad = Tensor::zeros(x.dims());
            let per = x.len() / n;
            for (i, &l) in labels.iter().enumerate() {
                grad.data_mut()[i * per] = if l == 0 { 0.1 } else { -0.1 };
            }
            (loss / n as f32, grad)
        }
    }

    #[test]
    #[should_panic(expected = "share one noise budget")]
    fn rejects_mixed_budgets() {
        WorstCase::new(vec![Box::new(Fgsm::new(0.1)), Box::new(Fgsm::new(0.2))]);
    }

    #[test]
    fn ensemble_is_at_least_as_strong_as_each_member() {
        let x = Tensor::full(&[2, 1, 2, 2], 0.8);
        let labels = [0usize, 0];
        let members: Vec<Box<dyn Attack + Send + Sync>> = vec![
            Box::new(UniformNoise::new(0.15, 7)), // weak
            Box::new(Pgd::standard(0.15)),        // strong
        ];
        let ensemble = WorstCase::new(members);
        let adv = ensemble.perturb(&FirstPixelVictim, &x, &labels);
        let fooled_by_ensemble = FirstPixelVictim
            .predict(&adv)
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p != l)
            .count();
        let pgd_adv = Pgd::standard(0.15).perturb(&FirstPixelVictim, &x, &labels);
        let fooled_by_pgd = FirstPixelVictim
            .predict(&pgd_adv)
            .iter()
            .zip(&labels)
            .filter(|(p, l)| p != l)
            .count();
        assert!(fooled_by_ensemble >= fooled_by_pgd);
    }

    #[test]
    fn ensemble_respects_shared_budget() {
        let x = Tensor::full(&[1, 1, 3, 3], 0.5);
        let adv = WorstCase::standard(0.2).perturb(&FirstPixelVictim, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.2 + 1e-5);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    #[test]
    fn standard_ensemble_has_five_members() {
        let e = WorstCase::standard(0.1);
        assert_eq!(e.len(), 5);
        assert!(!e.is_empty());
    }

    #[test]
    fn perturb_parallel_is_bitwise_identical_to_serial() {
        let x = Tensor::from_vec(
            (0..2 * 9).map(|i| (i as f32) / 18.0).collect(),
            &[2, 1, 3, 3],
        );
        let labels = [0usize, 1];
        let ensemble = WorstCase::standard(0.2);
        let serial = ensemble.perturb(&FirstPixelVictim, &x, &labels);
        for threads in [1, 2, 4] {
            let par = ensemble.perturb_parallel(&FirstPixelVictim, &x, &labels, threads);
            assert_eq!(
                par.data(),
                serial.data(),
                "ensemble output differs at {threads} threads"
            );
        }
    }
}
