//! Transfer-attack evaluation: craft on one model, test on another.
//!
//! This reproduces the protocol of Sharmin et al. (the paper's reference
//! [15]): adversarial examples generated against a non-spiking DNN are
//! replayed against an SNN (and vice versa), separating *gradient access*
//! from *decision-boundary overlap* as sources of SNN robustness.

use tensor::Tensor;

use nn::AdversarialTarget;

use crate::Attack;

/// The result of a transfer evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferOutcome {
    /// Victim accuracy on the clean samples.
    pub clean_accuracy: f32,
    /// Source-model accuracy on the adversarial samples (white-box damage).
    pub source_accuracy: f32,
    /// Victim accuracy on adversarial samples crafted against the source.
    pub transfer_accuracy: f32,
    /// Number of evaluated samples.
    pub samples: usize,
}

impl TransferOutcome {
    /// How much of the white-box damage carried over, in `[0, 1]`:
    /// `0` = nothing transferred, `1` = the victim lost as much accuracy as
    /// the source. `None` when the attack did not hurt the source at all.
    pub fn transfer_ratio(&self) -> Option<f32> {
        let source_drop = self.clean_accuracy - self.source_accuracy;
        if source_drop <= 0.0 {
            return None;
        }
        let victim_drop = (self.clean_accuracy - self.transfer_accuracy).max(0.0);
        Some((victim_drop / source_drop).clamp(0.0, 1.0))
    }
}

/// Crafts adversarial examples against `source` and measures how well they
/// fool `victim`.
///
/// # Panics
///
/// Panics if `batch_size` is zero, the label count mismatches the images,
/// or `images` is not rank 4.
pub fn evaluate_transfer(
    source: &dyn AdversarialTarget,
    victim: &dyn AdversarialTarget,
    attack: &dyn Attack,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> TransferOutcome {
    assert!(batch_size > 0, "batch_size must be positive");
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "images must be [N, C, H, W], got {dims:?}");
    let n = dims[0];
    assert_eq!(labels.len(), n, "{} labels for {n} images", labels.len());
    let sample_len: usize = dims[1..].iter().product();

    let mut clean_correct = 0usize;
    let mut source_correct = 0usize;
    let mut transfer_correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let batch = Tensor::from_vec(
            images.data()[start * sample_len..end * sample_len].to_vec(),
            &[end - start, dims[1], dims[2], dims[3]],
        );
        let batch_labels = &labels[start..end];
        let adv = attack.perturb(source, &batch, batch_labels);
        clean_correct += count_correct(&victim.predict(&batch), batch_labels);
        source_correct += count_correct(&source.predict(&adv), batch_labels);
        transfer_correct += count_correct(&victim.predict(&adv), batch_labels);
        start = end;
    }
    TransferOutcome {
        clean_accuracy: clean_correct as f32 / n as f32,
        source_accuracy: source_correct as f32 / n as f32,
        transfer_accuracy: transfer_correct as f32 / n as f32,
        samples: n,
    }
}

fn count_correct(predictions: &[usize], labels: &[usize]) -> usize {
    predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Pgd, UniformNoise};

    /// Thresholds the mean pixel at `cut`.
    struct MeanVictim {
        cut: f32,
    }
    impl AdversarialTarget for MeanVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let m = s.iter().sum::<f32>() / per as f32;
                out.push(self.cut - m);
                out.push(m - self.cut);
            }
            Tensor::from_vec(out, &[n, 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            let g = if labels[0] == 0 { 1.0 } else { -1.0 };
            (0.0, Tensor::full(x.dims(), g * 0.01))
        }
    }

    #[test]
    fn identical_models_transfer_fully() {
        // Dark images labelled 0; PGD pushes them bright; both "models" are
        // the same decision rule, so the damage transfers 1:1.
        let images = Tensor::full(&[4, 1, 2, 2], 0.3);
        let labels = vec![0; 4];
        let out = evaluate_transfer(
            &MeanVictim { cut: 0.5 },
            &MeanVictim { cut: 0.5 },
            &Pgd::standard(0.4).without_random_start(),
            &images,
            &labels,
            2,
        );
        assert_eq!(out.clean_accuracy, 1.0);
        assert_eq!(out.source_accuracy, 0.0);
        assert_eq!(out.transfer_accuracy, 0.0);
        assert_eq!(out.transfer_ratio(), Some(1.0));
    }

    #[test]
    fn distant_decision_boundary_blocks_transfer() {
        // The victim's cut is far higher, so the same perturbation that
        // crosses the source boundary does not cross the victim's.
        let images = Tensor::full(&[4, 1, 2, 2], 0.3);
        let labels = vec![0; 4];
        let out = evaluate_transfer(
            &MeanVictim { cut: 0.5 },
            &MeanVictim { cut: 0.9 },
            &Pgd::standard(0.25).without_random_start(),
            &images,
            &labels,
            4,
        );
        assert_eq!(out.source_accuracy, 0.0, "white-box attack succeeds");
        assert_eq!(out.transfer_accuracy, 1.0, "victim unaffected");
        assert_eq!(out.transfer_ratio(), Some(0.0));
    }

    #[test]
    fn harmless_attack_has_no_transfer_ratio() {
        let images = Tensor::full(&[2, 1, 2, 2], 0.1);
        let labels = vec![0; 2];
        let out = evaluate_transfer(
            &MeanVictim { cut: 0.5 },
            &MeanVictim { cut: 0.5 },
            &UniformNoise::new(0.01, 1),
            &images,
            &labels,
            2,
        );
        assert_eq!(out.source_accuracy, 1.0);
        assert_eq!(out.transfer_ratio(), None);
    }
}
