//! Projected gradient descent — the paper's attack (§IV-B, Eq. 3).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use nn::AdversarialTarget;

use crate::{project, Attack};

/// L∞ PGD (Madry et al., 2018):
///
/// ```text
/// x⁰     = x (+ uniform noise in the ε-ball when random_start)
/// xᵗ⁺¹   = Π_{ε-ball ∩ [0,1]} ( xᵗ + α · sign(∇ₓ L(xᵗ, y)) )
/// ```
///
/// The default constructor [`Pgd::standard`] follows the common
/// `α = 2.5·ε/steps` schedule with 10 iterations and a random start;
/// [`Pgd::thorough`] runs 40 iterations for publication-grade numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pgd {
    epsilon: f32,
    alpha: f32,
    steps: usize,
    random_start: bool,
    seed: u64,
}

impl Pgd {
    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite, `alpha` is non-positive
    /// while `epsilon > 0`, or `steps` is zero.
    pub fn new(epsilon: f32, alpha: f32, steps: usize, random_start: bool, seed: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        assert!(steps > 0, "PGD needs at least one step");
        assert!(
            epsilon == 0.0 || alpha > 0.0,
            "step size must be positive, got {alpha}"
        );
        Self {
            epsilon,
            alpha,
            steps,
            random_start,
            seed,
        }
    }

    /// The standard configuration: 10 steps, `α = 2.5·ε/steps`, random
    /// start, fixed seed 0.
    pub fn standard(epsilon: f32) -> Self {
        Self::new(epsilon, 2.5 * epsilon / 10.0, 10, true, 0)
    }

    /// A stronger 40-step configuration (4× the default attack compute).
    pub fn thorough(epsilon: f32) -> Self {
        Self::new(epsilon, 2.5 * epsilon / 40.0, 40, true, 0)
    }

    /// Number of gradient iterations.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Per-iteration step size α.
    pub fn alpha(&self) -> f32 {
        self.alpha
    }

    /// Returns `self` with a different random-start seed (for averaging
    /// over restarts).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns `self` with the random start disabled (deterministic PGD,
    /// i.e. iterated FGSM, a.k.a. BIM).
    pub fn without_random_start(mut self) -> Self {
        self.random_start = false;
        self
    }
}

impl Attack for Pgd {
    fn name(&self) -> &'static str {
        "PGD"
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor {
        if self.epsilon == 0.0 {
            return x.clone();
        }
        let mut adv = if self.random_start {
            // Seed per call from (base seed, batch content): reusing the base
            // seed alone would hand every mini-batch the identical noise
            // pattern. See `crate::per_call_seed`.
            let mut rng = StdRng::seed_from_u64(crate::per_call_seed(self.seed, x));
            let eps = self.epsilon;
            let mut noisy = x.clone();
            for v in noisy.data_mut() {
                *v += rng.gen_range(-eps..=eps);
            }
            project(&noisy, x, self.epsilon)
        } else {
            x.clone()
        };
        for _ in 0..self.steps {
            let _span = obs::span("attack/pgd_iter");
            let (_, grad) = target.loss_and_input_grad(&adv, labels);
            // In-place, allocation-free step: bitwise identical to
            // `project(&adv.add(&grad.sign().mul_scalar(alpha)), x, eps)`.
            crate::step_project_inplace(&mut adv, &grad, x, self.alpha, self.epsilon);
        }
        obs::counter_add("attack/pgd_iters", self.steps as u64);
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A linear, fully predictable victim: logits = [Σx, −Σx].
    struct LinearVictim;

    impl AdversarialTarget for LinearVictim {
        fn num_classes(&self) -> usize {
            2
        }

        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per: usize = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let sum: f32 = s.iter().sum();
                out.push(sum);
                out.push(-sum);
            }
            Tensor::from_vec(out, &[n, 2])
        }

        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            // Cross-entropy of a 2-class linear model; the gradient's sign
            // w.r.t. each pixel is −(1−p) for label 0 and +(p) for label 1…
            // for the attack's purpose only the sign matters: pushing pixels
            // up hurts label 1, pushing them down hurts label 0.
            let logits = self.logits(x);
            let p = logits.log_softmax_rows().exp();
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut grad = Tensor::zeros(x.dims());
            let mut loss = 0.0;
            for (i, &l) in labels.iter().enumerate() {
                let pl = p.data()[i * 2 + l];
                loss -= pl.max(1e-12).ln();
                // d loss / d sum = p(wrong) with sign depending on label.
                let g = if l == 0 { -(1.0 - pl) } else { 1.0 - pl };
                for e in 0..per {
                    grad.data_mut()[i * per + e] = g / n as f32;
                }
            }
            (loss / n as f32, grad)
        }
    }

    #[test]
    fn pgd_respects_epsilon_ball_and_box() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.9);
        let adv = Pgd::standard(0.3).perturb(&LinearVictim, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.3 + 1e-6);
        assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn pgd_moves_against_true_class() {
        // Label 0 scores Σx: the attack must push pixels *down*. Keep Σx
        // small enough that the softmax is not saturated in f32 (a saturated
        // softmax has an exactly-zero gradient and PGD cannot move).
        let x = Tensor::full(&[1, 1, 4, 4], 0.3);
        let adv = Pgd::standard(0.2)
            .without_random_start()
            .perturb(&LinearVictim, &x, &[0]);
        assert!(
            adv.sum() < x.sum(),
            "attack should reduce Σx to hurt class 0"
        );
        // And saturate the budget in this linear case.
        assert!((adv.sub(&x).max_abs() - 0.2).abs() < 1e-5);
    }

    #[test]
    fn pgd_is_at_least_as_strong_as_fgsm_on_linear_victim() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let labels = [0usize];
        let pgd = Pgd::standard(0.2)
            .without_random_start()
            .perturb(&LinearVictim, &x, &labels);
        let fgsm = crate::Fgsm::new(0.2).perturb(&LinearVictim, &x, &labels);
        let vic = LinearVictim;
        let (pgd_loss, _) = vic.loss_and_input_grad(&pgd, &labels);
        let (fgsm_loss, _) = vic.loss_and_input_grad(&fgsm, &labels);
        assert!(pgd_loss >= fgsm_loss - 1e-6);
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let x = Tensor::full(&[1, 1, 2, 2], 0.4);
        assert_eq!(
            Pgd::new(0.0, 0.0, 3, true, 0).perturb(&LinearVictim, &x, &[1]),
            x
        );
    }

    #[test]
    fn random_start_is_seed_deterministic() {
        let x = Tensor::full(&[1, 1, 3, 3], 0.5);
        let a = Pgd::standard(0.1)
            .with_seed(7)
            .perturb(&LinearVictim, &x, &[1]);
        let b = Pgd::standard(0.1)
            .with_seed(7)
            .perturb(&LinearVictim, &x, &[1]);
        assert_eq!(a, b);
    }

    #[test]
    fn random_start_differs_across_consecutive_batches() {
        // Regression: `perturb` used to reseed from the attack's base seed
        // on every call, so every mini-batch of an evaluation received the
        // same start noise. Two batches with different content must now draw
        // different starts (compare the raw noise via the perturbation
        // deltas of a zero-gradient victim).
        struct Inert;
        impl AdversarialTarget for Inert {
            fn num_classes(&self) -> usize {
                2
            }
            fn logits(&self, x: &Tensor) -> Tensor {
                Tensor::zeros(&[x.dims()[0], 2])
            }
            fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
                (0.0, Tensor::zeros(x.dims()))
            }
        }
        let attack = Pgd::standard(0.1).with_seed(7);
        let batch1 = Tensor::full(&[2, 1, 3, 3], 0.4);
        let batch2 = Tensor::full(&[2, 1, 3, 3], 0.6);
        let noise1 = attack.perturb(&Inert, &batch1, &[0, 1]).sub(&batch1);
        let noise2 = attack.perturb(&Inert, &batch2, &[0, 1]).sub(&batch2);
        assert_ne!(
            noise1.data(),
            noise2.data(),
            "consecutive batches drew identical random starts"
        );
    }

    #[test]
    fn restart_seeds_decorrelate_on_the_same_batch() {
        // Restart averaging relies on different base seeds producing
        // different starts for one batch. A zero-gradient victim exposes the
        // raw start (gradient steps cannot move it and would otherwise
        // converge restarts to the same ε-corner).
        struct Inert;
        impl AdversarialTarget for Inert {
            fn num_classes(&self) -> usize {
                2
            }
            fn logits(&self, x: &Tensor) -> Tensor {
                Tensor::zeros(&[x.dims()[0], 2])
            }
            fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
                (0.0, Tensor::zeros(x.dims()))
            }
        }
        let x = Tensor::full(&[1, 1, 3, 3], 0.5);
        let a = Pgd::standard(0.1).with_seed(1).perturb(&Inert, &x, &[1]);
        let b = Pgd::standard(0.1).with_seed(2).perturb(&Inert, &x, &[1]);
        assert_ne!(a, b);
    }
}
