//! White-box adversarial attacks for the `spiking-armor` workspace.
//!
//! This crate replaces the paper's Foolbox dependency. All attacks operate
//! on any [`nn::AdversarialTarget`] — i.e. any classifier that exposes the
//! gradient of its loss with respect to the input — which covers both the
//! CNN baseline and every spiking network (whose input gradients flow
//! through BPTT and the SuperSpike surrogate).
//!
//! Provided attacks:
//!
//! * [`Fgsm`] — single-step fast gradient sign method,
//! * [`Pgd`] — projected gradient descent (the paper's attack, §IV-B):
//!   iterated FGSM steps with projection onto the L∞ ε-ball and the valid
//!   pixel box,
//! * [`MomentumPgd`] — the momentum iterative method (MI-FGSM),
//! * [`PgdL2`] — PGD under an L2 budget,
//! * [`TargetedPgd`] — targeted descent toward an attacker-chosen class,
//! * [`UniformNoise`] — a gradient-free random baseline for sanity checks
//!   (previously misnamed `GaussianNoise`; the old name remains as a
//!   deprecated alias),
//!
//! plus [`evaluate_transfer`] for craft-on-A / test-on-B transfer studies
//! (the DNN→SNN protocol of the paper's reference \[15\]).
//!
//! [`evaluate_attack`] implements the measurement loop of the paper's
//! Algorithm 1: perturb every test sample and report the fraction the victim
//! still classifies correctly (`Robustness(ε) = 1 − Adv/|D|`).
//!
//! # Example
//!
//! ```
//! use attacks::{Attack, Pgd};
//! use nn::{Classifier, Cnn, CnnConfig, Params};
//! use rand::SeedableRng;
//! use tensor::Tensor;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut params = Params::new();
//! let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
//! let victim = Classifier::new(cnn, params);
//!
//! let x = Tensor::full(&[1, 1, 8, 8], 0.5);
//! let adv = Pgd::standard(0.1).perturb(&victim, &x, &[2]);
//! // The perturbation respects the noise budget and the pixel box.
//! assert!(adv.sub(&x).max_abs() <= 0.1 + 1e-6);
//! assert!(adv.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
//! ```

#![forbid(unsafe_code)]

mod ensemble;
mod eval;
mod fgsm;
mod mim;
mod noise;
mod pgd;
mod pgd_l2;
mod targeted;
mod transfer;

pub use ensemble::WorstCase;
pub use eval::{evaluate_attack, evaluate_attack_parallel, AttackOutcome};
pub use fgsm::Fgsm;
pub use mim::MomentumPgd;
#[allow(deprecated)]
pub use noise::GaussianNoise;
pub use noise::UniformNoise;
pub use pgd::Pgd;
pub use pgd_l2::PgdL2;
pub use targeted::TargetedPgd;
pub use transfer::{evaluate_transfer, TransferOutcome};

use nn::AdversarialTarget;
use tensor::Tensor;

/// Pixel-value bounds images are clamped into after perturbation.
///
/// Digit images in this workspace live in `[0, 1]`.
pub const PIXEL_BOUNDS: (f32, f32) = (0.0, 1.0);

/// An adversarial example generator.
///
/// Implementations must guarantee two invariants on the returned tensor:
/// the L∞ distance to `x` never exceeds the attack's noise budget ε, and
/// every pixel stays inside [`PIXEL_BOUNDS`].
pub trait Attack {
    /// Human-readable attack name for reports (e.g. `"PGD"`).
    fn name(&self) -> &'static str;

    /// The L∞ noise budget ε of this attack instance.
    fn epsilon(&self) -> f32;

    /// Produces adversarial examples for a `[N, C, H, W]` batch with true
    /// `labels`.
    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor;
}

/// Derives the RNG seed for one `perturb` call from the attack's base seed
/// and the batch content.
///
/// Seeding a fresh generator from the base seed alone inside `perturb` is a
/// correctness bug for batched evaluation: every mini-batch then receives
/// the *same* noise pattern, so "random" starts are perfectly correlated
/// across batches and restart averaging under-explores the ε-ball. Mixing a
/// hash of the input (shape and pixels) keeps attacks deterministic — the
/// same batch always draws the same noise, independent of batch order or
/// sharding — while decorrelating distinct batches. Attacks differing only
/// in their base seed (e.g. PGD restarts) stay decorrelated on the *same*
/// batch through `base`.
pub(crate) fn per_call_seed(base: u64, x: &Tensor) -> u64 {
    // FNV-1a over dims and raw pixel bits.
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash = OFFSET;
    let mut mix = |word: u64| {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
    };
    for &d in x.dims() {
        mix(d as u64);
    }
    for &v in x.data() {
        mix(u64::from(v.to_bits()));
    }
    // A final avalanche so base seeds differing in one bit give unrelated
    // streams (SplitMix64 finalizer).
    let mut z = hash ^ base.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Projects `adv` back into the ε-ball around `x` (L∞) and the pixel box.
///
/// Shared by all attack implementations; public so downstream code can build
/// custom attacks with the same guarantees.
///
/// # Panics
///
/// Panics if the shapes differ or `epsilon` is negative.
pub fn project(adv: &Tensor, x: &Tensor, epsilon: f32) -> Tensor {
    assert!(
        epsilon >= 0.0,
        "epsilon must be non-negative, got {epsilon}"
    );
    let clipped = adv.zip_map(x, move |a, orig| a.clamp(orig - epsilon, orig + epsilon));
    clipped.clamp(PIXEL_BOUNDS.0, PIXEL_BOUNDS.1)
}

/// One signed-gradient ascent step followed by the ε-ball/pixel-box
/// projection, applied to `adv` in place.
///
/// Per element this performs exactly the float operations, in exactly the
/// order, of the allocating composition
/// `project(&adv.add(&grad.sign().mul_scalar(alpha)), x, epsilon)`, so the
/// result is bitwise identical to it — but without materialising the four
/// intermediate tensors that composition builds on every PGD iteration.
///
/// Public for the same reason as [`project`]: downstream code building
/// custom iterative attacks gets the allocation-free hot loop with the same
/// guarantees.
///
/// # Panics
///
/// Panics if the shapes differ or `epsilon` is negative.
pub fn step_project_inplace(adv: &mut Tensor, grad: &Tensor, x: &Tensor, alpha: f32, epsilon: f32) {
    assert!(
        epsilon >= 0.0,
        "epsilon must be non-negative, got {epsilon}"
    );
    assert_eq!(adv.dims(), grad.dims(), "adv/grad shapes differ");
    assert_eq!(adv.dims(), x.dims(), "adv/x shapes differ");
    for ((a, &g), &orig) in adv.data_mut().iter_mut().zip(grad.data()).zip(x.data()) {
        // Same -1/0/+1 convention as `Tensor::sign` (NaN gradients step 0).
        let sign = if g > 0.0 {
            1.0
        } else if g < 0.0 {
            -1.0
        } else {
            0.0
        };
        let stepped = *a + sign * alpha;
        let balled = stepped.clamp(orig - epsilon, orig + epsilon);
        *a = balled.clamp(PIXEL_BOUNDS.0, PIXEL_BOUNDS.1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_enforces_ball_and_box() {
        let x = Tensor::from_vec(vec![0.5, 0.0, 1.0], &[3]);
        let adv = Tensor::from_vec(vec![0.9, -0.5, 1.5], &[3]);
        let p = project(&adv, &x, 0.2);
        assert_eq!(p.data(), &[0.7, 0.0, 1.0]);
    }

    #[test]
    fn project_with_zero_epsilon_returns_original_inside_box() {
        let x = Tensor::from_vec(vec![0.3, 0.6], &[2]);
        let adv = Tensor::from_vec(vec![0.9, 0.1], &[2]);
        assert_eq!(project(&adv, &x, 0.0), x);
    }

    #[test]
    fn inplace_step_matches_allocating_composition_bitwise() {
        // Gradients covering every sign case, including ±0.0 and NaN, plus
        // awkward magnitudes that stress the clamp boundaries.
        let grad = Tensor::from_vec(
            vec![3.7, -0.001, 0.0, -0.0, f32::NAN, 1e-30, -42.0, 0.25],
            &[8],
        );
        let x = Tensor::from_vec(vec![0.0, 0.1, 0.5, 0.9, 1.0, 0.3, 0.05, 0.95], &[8]);
        let adv0 = Tensor::from_vec(vec![0.02, 0.12, 0.48, 0.88, 0.99, 0.31, 0.0, 1.0], &[8]);
        for &(alpha, eps) in &[(0.01f32, 0.03f32), (0.3, 0.1), (0.07, 0.0)] {
            let reference = project(&adv0.add(&grad.sign().mul_scalar(alpha)), &x, eps);
            let mut inplace = adv0.clone();
            step_project_inplace(&mut inplace, &grad, &x, alpha, eps);
            let bits_ref: Vec<u32> = reference.data().iter().map(|v| v.to_bits()).collect();
            let bits_in: Vec<u32> = inplace.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits_in, bits_ref, "alpha={alpha} eps={eps}");
        }
    }
}
