//! Targeted PGD: push the victim toward a chosen class instead of merely
//! away from the true one.

use tensor::Tensor;

use nn::AdversarialTarget;

use crate::project;

/// L∞ targeted PGD: gradient *descent* on the loss of the target labels,
/// projected onto the ε-ball and the pixel box.
///
/// Unlike the untargeted [`Attack`](crate::Attack) implementations, success
/// means the victim predicts the attacker-chosen class — the bank-cheque
/// scenario from the paper's introduction (force "7" to read as "1").
///
/// # Example
///
/// ```no_run
/// # use attacks::TargetedPgd;
/// # use nn::{Classifier, Cnn, CnnConfig, Params};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let mut params = Params::new();
/// # let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 10));
/// # let victim = Classifier::new(cnn, params);
/// # let x = tensor::Tensor::zeros(&[1, 1, 8, 8]);
/// let attack = TargetedPgd::standard(0.3);
/// let adv = attack.perturb_towards(&victim, &x, &[7]); // make it read "7"
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedPgd {
    epsilon: f32,
    alpha: f32,
    steps: usize,
}

impl TargetedPgd {
    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite, `alpha` is non-positive
    /// while `epsilon > 0`, or `steps` is zero.
    pub fn new(epsilon: f32, alpha: f32, steps: usize) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        assert!(steps > 0, "targeted PGD needs at least one step");
        assert!(
            epsilon == 0.0 || alpha > 0.0,
            "step size must be positive, got {alpha}"
        );
        Self {
            epsilon,
            alpha,
            steps,
        }
    }

    /// The standard configuration: 10 steps, `α = 2.5·ε/steps`.
    pub fn standard(epsilon: f32) -> Self {
        Self::new(epsilon, 2.5 * epsilon / 10.0, 10)
    }

    /// The noise budget ε.
    pub fn epsilon(&self) -> f32 {
        self.epsilon
    }

    /// Crafts examples the victim should classify as `target_labels`.
    ///
    /// # Panics
    ///
    /// Panics if `target_labels.len()` does not match the batch size
    /// (propagated from the victim's loss).
    pub fn perturb_towards(
        &self,
        target: &dyn AdversarialTarget,
        x: &Tensor,
        target_labels: &[usize],
    ) -> Tensor {
        if self.epsilon == 0.0 {
            return x.clone();
        }
        let mut adv = x.clone();
        for _ in 0..self.steps {
            let (_, grad) = target.loss_and_input_grad(&adv, target_labels);
            // Descend the target-class loss.
            let stepped = adv.add(&grad.sign().mul_scalar(-self.alpha));
            adv = project(&stepped, x, self.epsilon);
        }
        adv
    }

    /// Fraction of samples the victim classifies as the attacker's target
    /// after perturbation.
    pub fn success_rate(
        &self,
        target: &dyn AdversarialTarget,
        x: &Tensor,
        target_labels: &[usize],
    ) -> f32 {
        let adv = self.perturb_towards(target, x, target_labels);
        let preds = target.predict(&adv);
        let hits = preds
            .iter()
            .zip(target_labels)
            .filter(|(p, t)| p == t)
            .count();
        hits as f32 / target_labels.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// logits = [Σx, −Σx]: class 0 wins for bright inputs.
    struct SumVictim;
    impl AdversarialTarget for SumVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let s: f32 = x.sum() - 0.5 * x.len() as f32; // centred at gray
            Tensor::from_vec(vec![s, -s], &[x.dims()[0], 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            // Cross-entropy gradient sign for this linear model: pushing
            // pixels up always helps class 0, hurts class 1.
            let g = if labels[0] == 0 { -1.0 } else { 1.0 };
            (1.0, Tensor::full(x.dims(), g * 0.01))
        }
    }

    #[test]
    fn drives_prediction_to_target() {
        // Start gray (logits ~0); target class 0 needs brighter pixels.
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let attack = TargetedPgd::standard(0.3);
        let adv = attack.perturb_towards(&SumVictim, &x, &[0]);
        assert!(adv.sum() > x.sum(), "targeting class 0 should brighten");
        assert_eq!(SumVictim.predict(&adv), vec![0]);
        assert_eq!(attack.success_rate(&SumVictim, &x, &[0]), 1.0);
        // And the other direction.
        let adv = attack.perturb_towards(&SumVictim, &x, &[1]);
        assert_eq!(SumVictim.predict(&adv), vec![1]);
    }

    #[test]
    fn respects_ball_and_box() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.9);
        let adv = TargetedPgd::standard(0.25).perturb_towards(&SumVictim, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.25 + 1e-6);
        assert!(adv.max() <= 1.0);
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let x = Tensor::full(&[1, 1, 2, 2], 0.4);
        assert_eq!(
            TargetedPgd::new(0.0, 0.0, 4).perturb_towards(&SumVictim, &x, &[1]),
            x
        );
    }
}
