//! Gradient-free random-noise baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use nn::AdversarialTarget;

use crate::{project, Attack};

/// Uniform random noise in the ε-ball — not an adversary, but the control
/// condition that separates "the model is brittle to *any* perturbation"
/// from "the model is brittle to *adversarial* perturbations".
///
/// Each pixel receives an independent draw from `U(−ε, ε)`; the result is
/// then projected into the pixel box. The noise is deterministic in the
/// seed *and* the input batch (see `crate::per_call_seed`), so repeated
/// evaluations reproduce exactly while distinct batches get distinct noise.
///
/// # Example
///
/// ```
/// use attacks::{Attack, UniformNoise};
///
/// let baseline = UniformNoise::new(0.1, 42);
/// assert_eq!(baseline.name(), "UniformNoise");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformNoise {
    epsilon: f32,
    seed: u64,
}

/// The old name of [`UniformNoise`], kept for downstream code.
///
/// The baseline has always sampled *uniform* noise; it was merely misnamed.
#[deprecated(
    since = "0.1.0",
    note = "the baseline samples uniform, not Gaussian, noise; use `UniformNoise`"
)]
pub type GaussianNoise = UniformNoise;

impl UniformNoise {
    /// Creates the baseline with budget `epsilon` and a sampling seed.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32, seed: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        Self { epsilon, seed }
    }
}

impl Attack for UniformNoise {
    fn name(&self) -> &'static str {
        "UniformNoise"
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, _target: &dyn AdversarialTarget, x: &Tensor, _labels: &[usize]) -> Tensor {
        let eps = self.epsilon();
        if eps == 0.0 {
            return x.clone();
        }
        let mut rng = StdRng::seed_from_u64(crate::per_call_seed(self.seed, x));
        let mut noisy = x.clone();
        for v in noisy.data_mut() {
            *v += rng.gen_range(-eps..=eps);
        }
        project(&noisy, x, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl AdversarialTarget for Dummy {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            Tensor::zeros(&[x.dims()[0], 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (0.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn stays_in_ball_and_box() {
        let x = Tensor::full(&[1, 1, 8, 8], 0.05);
        let adv = UniformNoise::new(0.2, 1).perturb(&Dummy, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.2 + 1e-6);
        assert!(adv.min() >= 0.0);
    }

    #[test]
    fn is_seed_deterministic_and_actually_noisy() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let a = UniformNoise::new(0.1, 3).perturb(&Dummy, &x, &[0]);
        let b = UniformNoise::new(0.1, 3).perturb(&Dummy, &x, &[0]);
        let c = UniformNoise::new(0.1, 4).perturb(&Dummy, &x, &[0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.sub(&x).max_abs() > 0.0);
    }

    #[test]
    fn distinct_batches_draw_distinct_noise() {
        // Same per-call-seed regression guarded for PGD in `pgd.rs`.
        let attack = UniformNoise::new(0.1, 3);
        let b1 = Tensor::full(&[1, 1, 4, 4], 0.4);
        let b2 = Tensor::full(&[1, 1, 4, 4], 0.6);
        let n1 = attack.perturb(&Dummy, &b1, &[0]).sub(&b1);
        let n2 = attack.perturb(&Dummy, &b2, &[0]).sub(&b2);
        assert_ne!(n1.data(), n2.data());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_alias_still_constructs() {
        let old: GaussianNoise = GaussianNoise::new(0.1, 1);
        assert_eq!(old, UniformNoise::new(0.1, 1));
    }
}
