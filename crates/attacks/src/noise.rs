//! Gradient-free random-noise baseline.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Tensor;

use nn::AdversarialTarget;

use crate::{project, Attack};

/// Uniform random noise in the ε-ball — not an adversary, but the control
/// condition that separates "the model is brittle to *any* perturbation"
/// from "the model is brittle to *adversarial* perturbations".
///
/// # Example
///
/// ```
/// use attacks::{Attack, GaussianNoise};
///
/// let baseline = GaussianNoise::new(0.1, 42);
/// assert_eq!(baseline.name(), "RandomNoise");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaussianNoise {
    epsilon: f32,
    seed: u64,
}

impl GaussianNoise {
    /// Creates the baseline with budget `epsilon` and a sampling seed.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32, seed: u64) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        Self { epsilon, seed }
    }
}

impl Attack for GaussianNoise {
    fn name(&self) -> &'static str {
        "RandomNoise"
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, _target: &dyn AdversarialTarget, x: &Tensor, _labels: &[usize]) -> Tensor {
        let eps = self.epsilon();
        if eps == 0.0 {
            return x.clone();
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut noisy = x.clone();
        for v in noisy.data_mut() {
            *v += rng.gen_range(-eps..=eps);
        }
        project(&noisy, x, eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy;
    impl AdversarialTarget for Dummy {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            Tensor::zeros(&[x.dims()[0], 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (0.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn stays_in_ball_and_box() {
        let x = Tensor::full(&[1, 1, 8, 8], 0.05);
        let adv = GaussianNoise::new(0.2, 1).perturb(&Dummy, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.2 + 1e-6);
        assert!(adv.min() >= 0.0);
    }

    #[test]
    fn is_seed_deterministic_and_actually_noisy() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let a = GaussianNoise::new(0.1, 3).perturb(&Dummy, &x, &[0]);
        let b = GaussianNoise::new(0.1, 3).perturb(&Dummy, &x, &[0]);
        let c = GaussianNoise::new(0.1, 4).perturb(&Dummy, &x, &[0]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.sub(&x).max_abs() > 0.0);
    }
}
