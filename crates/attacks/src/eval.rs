//! Attack evaluation: the measurement loop of the paper's Algorithm 1.

use nn::AdversarialTarget;
use tensor::Tensor;

use crate::Attack;

/// The result of attacking a model on a test set.
///
/// `adversarial_accuracy` is exactly the paper's robustness metric
/// `Robustness(ε) = 1 − Adv/|D|` (Algorithm 1, line 15): the fraction of
/// samples the victim still labels correctly *after* perturbation, counting
/// samples it already got wrong as adversarial successes, as the paper does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Accuracy on the unperturbed samples.
    pub clean_accuracy: f32,
    /// Accuracy on the perturbed samples (= robustness).
    pub adversarial_accuracy: f32,
    /// `1 − adversarial_accuracy`, the attacker's success rate.
    pub success_rate: f32,
    /// Number of evaluated samples.
    pub samples: usize,
}

/// Attacks every sample of `(images, labels)` in mini-batches and measures
/// the outcome.
///
/// # Panics
///
/// Panics if `batch_size` is zero, the label count does not match the image
/// count, or `images` is not rank 4.
///
/// # Example
///
/// See the [crate-level example](crate) for constructing a victim; then:
///
/// ```no_run
/// # use attacks::{evaluate_attack, Pgd};
/// # use nn::{Classifier, Cnn, CnnConfig, Params};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let mut params = Params::new();
/// # let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
/// # let victim = Classifier::new(cnn, params);
/// # let images = tensor::Tensor::zeros(&[4, 1, 8, 8]);
/// # let labels = vec![0, 1, 2, 3];
/// let outcome = evaluate_attack(&victim, &Pgd::standard(1.0), &images, &labels, 16);
/// println!("robustness at ε=1: {}", outcome.adversarial_accuracy);
/// ```
pub fn evaluate_attack(
    target: &dyn AdversarialTarget,
    attack: &dyn Attack,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> AttackOutcome {
    let n = validate_eval_inputs(images, labels, batch_size);
    // One slicing buffer reused (grow-only) across every mini-batch.
    let mut batch = Tensor::zeros(&[1]);
    let counts: Vec<BatchCounts> = (0..batch_count(n, batch_size))
        .map(|bi| eval_one_batch(target, attack, images, labels, batch_size, bi, &mut batch))
        .collect();
    reduce_counts(&counts, n, attack.epsilon())
}

/// [`evaluate_attack`] with independent mini-batches sharded over up to
/// `threads` worker threads.
///
/// Every attack in this crate seeds its randomness from the batch *content*
/// (see `crate::per_call_seed`), so each mini-batch's perturbation — and
/// therefore its correct-prediction counts — is independent of which thread
/// processes it. The integer counts are reduced in batch order, making the
/// returned [`AttackOutcome`] bitwise-identical to the serial
/// [`evaluate_attack`] for every thread count.
///
/// `threads == 0` means "use all available cores".
///
/// # Panics
///
/// As [`evaluate_attack`]; also propagates worker-thread panics.
pub fn evaluate_attack_parallel(
    target: &(dyn AdversarialTarget + Sync),
    attack: &(dyn Attack + Sync),
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    threads: usize,
) -> AttackOutcome {
    let n = validate_eval_inputs(images, labels, batch_size);
    let counts = tensor::parallel::par_map_collect(batch_count(n, batch_size), threads, |bi| {
        // Each unit of parallel work brings its own slicing buffer; the
        // batch-order reduction below keeps the outcome bitwise equal to
        // the serial path regardless of which thread ran which batch.
        let mut batch = Tensor::zeros(&[1]);
        eval_one_batch(target, attack, images, labels, batch_size, bi, &mut batch)
    });
    reduce_counts(&counts, n, attack.epsilon())
}

/// Validates the shared preconditions and returns the sample count.
fn validate_eval_inputs(images: &Tensor, labels: &[usize], batch_size: usize) -> usize {
    assert!(batch_size > 0, "batch_size must be positive");
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "images must be [N, C, H, W], got {dims:?}");
    let n = dims[0];
    assert_eq!(labels.len(), n, "{} labels for {n} images", labels.len());
    n
}

/// Number of mini-batches covering `n` samples (the last may be ragged).
fn batch_count(n: usize, batch_size: usize) -> usize {
    n.div_ceil(batch_size)
}

/// Per-batch accounting: how many samples the batch held, and how many of
/// them the victim predicted correctly before and after perturbation.
/// Carrying the example count through the reduction lets
/// [`reduce_counts`] assert the sharding covered every sample exactly once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchCounts {
    examples: usize,
    clean: usize,
    adversarial: usize,
}

/// Evaluates mini-batch `bi`, returning its [`BatchCounts`]. One batch is
/// one unit of parallel work.
///
/// `batch` is a caller-owned scratch tensor the mini-batch is sliced into
/// (grow-only, so a reused buffer stops allocating once it has seen the
/// largest batch shape).
#[allow(clippy::too_many_arguments)]
fn eval_one_batch(
    target: &dyn AdversarialTarget,
    attack: &dyn Attack,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
    bi: usize,
    batch: &mut Tensor,
) -> BatchCounts {
    let dims = images.dims();
    let n = dims[0];
    let sample_len: usize = dims[1..].iter().product();
    let start = bi * batch_size;
    let end = (start + batch_size).min(n);
    batch.resize_reusing(&[end - start, dims[1], dims[2], dims[3]]);
    batch
        .data_mut()
        .copy_from_slice(&images.data()[start * sample_len..end * sample_len]);
    let batch_labels = &labels[start..end];
    let clean = count_correct(&target.predict(batch), batch_labels);
    let adv = attack.perturb(target, batch, batch_labels);
    debug_assert!(
        adv.sub(batch).max_abs() <= attack.epsilon() + 1e-5,
        "attack {} exceeded its budget",
        attack.name()
    );
    BatchCounts {
        examples: end - start,
        clean,
        adversarial: count_correct(&target.predict(&adv), batch_labels),
    }
}

/// Sums per-batch counts (in batch order) into the final outcome.
///
/// The robustness metric divides by `|D|`, so a sharding bug that dropped
/// or double-counted a batch would silently skew `Robustness(ε) = 1 −
/// Adv/|D|`; the debug check makes such a regression fail loudly instead.
fn reduce_counts(counts: &[BatchCounts], n: usize, epsilon: f32) -> AttackOutcome {
    let examples: usize = counts.iter().map(|c| c.examples).sum();
    debug_assert_eq!(
        examples, n,
        "per-shard example counts must sum to |D| exactly"
    );
    let clean_correct: usize = counts.iter().map(|c| c.clean).sum();
    let adv_correct: usize = counts.iter().map(|c| c.adversarial).sum();
    if obs::enabled() {
        let bits = epsilon.to_bits();
        obs::counter_add("attack/evaluations", 1);
        obs::counter_add(&format!("attack/examples/e{bits:08x}"), n as u64);
        obs::counter_add(
            &format!("attack/adv_success/e{bits:08x}"),
            (n - adv_correct) as u64,
        );
    }
    let clean_accuracy = clean_correct as f32 / n as f32;
    let adversarial_accuracy = adv_correct as f32 / n as f32;
    AttackOutcome {
        clean_accuracy,
        adversarial_accuracy,
        success_rate: 1.0 - adversarial_accuracy,
        samples: n,
    }
}

fn count_correct(predictions: &[usize], labels: &[usize]) -> usize {
    predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformNoise;

    /// Predicts class 0 for dark images, 1 for bright images.
    struct BrightnessVictim;

    impl AdversarialTarget for BrightnessVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let mean = s.iter().sum::<f32>() / per as f32;
                out.push(0.5 - mean);
                out.push(mean - 0.5);
            }
            Tensor::from_vec(out, &[n, 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (0.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn outcome_accounts_every_sample() {
        // Two dark (class 0), two bright (class 1); one dark sample is
        // mislabelled so clean accuracy is 0.75.
        let mut data = vec![0.1f32; 8];
        data.extend(vec![0.9f32; 8]);
        let images = Tensor::from_vec(data, &[4, 1, 2, 2]);
        let labels = vec![0, 1, 1, 1];
        let outcome = evaluate_attack(
            &BrightnessVictim,
            &UniformNoise::new(0.0, 0),
            &images,
            &labels,
            3, // deliberately not dividing 4
        );
        assert_eq!(outcome.samples, 4);
        assert_eq!(outcome.clean_accuracy, 0.75);
        // Zero-budget "attack": adversarial accuracy equals clean accuracy.
        assert_eq!(outcome.adversarial_accuracy, 0.75);
        assert_eq!(outcome.success_rate, 0.25);
    }

    #[test]
    fn small_noise_cannot_flip_well_separated_samples() {
        let mut data = vec![0.0f32; 8];
        data.extend(vec![1.0f32; 8]);
        let images = Tensor::from_vec(data, &[4, 1, 2, 2]);
        let labels = vec![0, 0, 1, 1];
        let outcome = evaluate_attack(
            &BrightnessVictim,
            &UniformNoise::new(0.1, 7),
            &images,
            &labels,
            4,
        );
        assert_eq!(outcome.adversarial_accuracy, 1.0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::Fgsm;

    struct Flat;
    impl AdversarialTarget for Flat {
        fn num_classes(&self) -> usize {
            3
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            // Constant preference for class 1.
            let n = x.dims()[0];
            Tensor::from_vec([0.0f32, 1.0, 0.0].repeat(n), &[n, 3])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (1.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn zero_gradient_victim_keeps_clean_accuracy_under_fgsm() {
        // FGSM with sign(0) = 0 perturbs nothing; adversarial accuracy must
        // equal clean accuracy exactly.
        let images = Tensor::full(&[5, 1, 2, 2], 0.5);
        let labels = vec![1, 1, 0, 1, 2];
        let out = evaluate_attack(&Flat, &Fgsm::new(0.3), &images, &labels, 2);
        assert_eq!(out.clean_accuracy, out.adversarial_accuracy);
        assert_eq!(out.clean_accuracy, 3.0 / 5.0);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_rejected() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        evaluate_attack(&Flat, &Fgsm::new(0.1), &images, &[0], 0);
    }
}

#[cfg(test)]
mod accounting_tests {
    use super::*;

    fn counts(parts: &[(usize, usize, usize)]) -> Vec<BatchCounts> {
        parts
            .iter()
            .map(|&(examples, clean, adversarial)| BatchCounts {
                examples,
                clean,
                adversarial,
            })
            .collect()
    }

    #[test]
    fn reduction_accepts_counts_that_cover_every_sample() {
        let out = reduce_counts(&counts(&[(3, 2, 1), (2, 2, 2)]), 5, 0.1);
        assert_eq!(out.samples, 5);
        assert_eq!(out.clean_accuracy, 4.0 / 5.0);
        assert_eq!(out.adversarial_accuracy, 3.0 / 5.0);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "per-shard example counts must sum to |D|")]
    fn reduction_rejects_dropped_shards() {
        // A lost batch (3 + 2 != 6) must fail loudly, not skew robustness.
        reduce_counts(&counts(&[(3, 2, 1), (2, 2, 2)]), 6, 0.1);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "per-shard example counts must sum to |D|")]
    fn reduction_rejects_double_counted_shards() {
        reduce_counts(&counts(&[(4, 2, 1), (4, 2, 1), (2, 2, 2)]), 6, 0.1);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::{Pgd, UniformNoise};
    use proptest::prelude::*;

    /// Brightness classifier *with* a usable input gradient, so PGD and
    /// FGSM actually move samples during these tests.
    struct GradientBrightnessVictim;

    impl AdversarialTarget for GradientBrightnessVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let mean = s.iter().sum::<f32>() / per as f32;
                out.push(0.5 - mean);
                out.push(mean - 0.5);
            }
            Tensor::from_vec(out, &[n, 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            // Raising the mean hurts class 0 and helps class 1; the exact
            // magnitude is irrelevant for sign-based attacks.
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut grad = Tensor::zeros(x.dims());
            for (i, &l) in labels.iter().enumerate() {
                let g = if l == 0 { 1.0 } else { -1.0 };
                for e in 0..per {
                    grad.data_mut()[i * per + e] = g;
                }
            }
            (1.0, grad)
        }
    }

    /// Images whose content varies per sample, so the content-seeded attacks
    /// draw different noise in every mini-batch.
    fn ramp_images(n: usize) -> (Tensor, Vec<usize>) {
        let per = 2 * 2;
        let data: Vec<f32> = (0..n * per)
            .map(|i| ((i * 37 % 101) as f32) / 101.0)
            .collect();
        let labels = (0..n).map(|i| i % 2).collect();
        (Tensor::from_vec(data, &[n, 1, 2, 2]), labels)
    }

    #[test]
    fn parallel_outcome_is_bitwise_identical_to_serial() {
        let (images, labels) = ramp_images(23);
        let attack = Pgd::standard(0.1);
        // Batch size 4 leaves a ragged final batch of 3.
        let serial = evaluate_attack(&GradientBrightnessVictim, &attack, &images, &labels, 4);
        for threads in [1, 2, 4] {
            let parallel = evaluate_attack_parallel(
                &GradientBrightnessVictim,
                &attack,
                &images,
                &labels,
                4,
                threads,
            );
            assert_eq!(parallel, serial, "outcome differs at {threads} threads");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// Sharded batch accounting must cover every sample exactly once —
        /// including when `batch_size` does not divide `n` — and match the
        /// serial evaluation bitwise at any thread count.
        #[test]
        fn sharded_accounting_sums_to_n(
            n in 1usize..40,
            batch_size in 1usize..17,
            threads in 1usize..5,
        ) {
            let (images, labels) = ramp_images(n);
            let attack = UniformNoise::new(0.05, 9);
            let parallel = evaluate_attack_parallel(
                &GradientBrightnessVictim, &attack, &images, &labels, batch_size, threads,
            );
            let serial =
                evaluate_attack(&GradientBrightnessVictim, &attack, &images, &labels, batch_size);
            prop_assert_eq!(parallel.samples, n);
            prop_assert!(
                (parallel.success_rate + parallel.adversarial_accuracy - 1.0).abs() < 1e-6
            );
            prop_assert_eq!(parallel, serial);
        }
    }
}
