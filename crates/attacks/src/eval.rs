//! Attack evaluation: the measurement loop of the paper's Algorithm 1.

use nn::AdversarialTarget;
use tensor::Tensor;

use crate::Attack;

/// The result of attacking a model on a test set.
///
/// `adversarial_accuracy` is exactly the paper's robustness metric
/// `Robustness(ε) = 1 − Adv/|D|` (Algorithm 1, line 15): the fraction of
/// samples the victim still labels correctly *after* perturbation, counting
/// samples it already got wrong as adversarial successes, as the paper does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttackOutcome {
    /// Accuracy on the unperturbed samples.
    pub clean_accuracy: f32,
    /// Accuracy on the perturbed samples (= robustness).
    pub adversarial_accuracy: f32,
    /// `1 − adversarial_accuracy`, the attacker's success rate.
    pub success_rate: f32,
    /// Number of evaluated samples.
    pub samples: usize,
}

/// Attacks every sample of `(images, labels)` in mini-batches and measures
/// the outcome.
///
/// # Panics
///
/// Panics if `batch_size` is zero, the label count does not match the image
/// count, or `images` is not rank 4.
///
/// # Example
///
/// See the [crate-level example](crate) for constructing a victim; then:
///
/// ```no_run
/// # use attacks::{evaluate_attack, Pgd};
/// # use nn::{Classifier, Cnn, CnnConfig, Params};
/// # use rand::SeedableRng;
/// # let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// # let mut params = Params::new();
/// # let cnn = Cnn::new(&mut params, &mut rng, &CnnConfig::tiny(8, 4));
/// # let victim = Classifier::new(cnn, params);
/// # let images = tensor::Tensor::zeros(&[4, 1, 8, 8]);
/// # let labels = vec![0, 1, 2, 3];
/// let outcome = evaluate_attack(&victim, &Pgd::standard(1.0), &images, &labels, 16);
/// println!("robustness at ε=1: {}", outcome.adversarial_accuracy);
/// ```
pub fn evaluate_attack(
    target: &dyn AdversarialTarget,
    attack: &dyn Attack,
    images: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> AttackOutcome {
    assert!(batch_size > 0, "batch_size must be positive");
    let dims = images.dims();
    assert_eq!(dims.len(), 4, "images must be [N, C, H, W], got {dims:?}");
    let n = dims[0];
    assert_eq!(labels.len(), n, "{} labels for {n} images", labels.len());
    let sample_len: usize = dims[1..].iter().product();

    let mut clean_correct = 0usize;
    let mut adv_correct = 0usize;
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let batch = Tensor::from_vec(
            images.data()[start * sample_len..end * sample_len].to_vec(),
            &[end - start, dims[1], dims[2], dims[3]],
        );
        let batch_labels = &labels[start..end];
        clean_correct += count_correct(&target.predict(&batch), batch_labels);
        let adv = attack.perturb(target, &batch, batch_labels);
        debug_assert!(
            adv.sub(&batch).max_abs() <= attack.epsilon() + 1e-5,
            "attack {} exceeded its budget",
            attack.name()
        );
        adv_correct += count_correct(&target.predict(&adv), batch_labels);
        start = end;
    }

    let clean_accuracy = clean_correct as f32 / n as f32;
    let adversarial_accuracy = adv_correct as f32 / n as f32;
    AttackOutcome {
        clean_accuracy,
        adversarial_accuracy,
        success_rate: 1.0 - adversarial_accuracy,
        samples: n,
    }
}

fn count_correct(predictions: &[usize], labels: &[usize]) -> usize {
    predictions
        .iter()
        .zip(labels)
        .filter(|(p, l)| p == l)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GaussianNoise;

    /// Predicts class 0 for dark images, 1 for bright images.
    struct BrightnessVictim;

    impl AdversarialTarget for BrightnessVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let n = x.dims()[0];
            let per = x.len() / n;
            let mut out = Vec::with_capacity(n * 2);
            for s in x.data().chunks(per) {
                let mean = s.iter().sum::<f32>() / per as f32;
                out.push(0.5 - mean);
                out.push(mean - 0.5);
            }
            Tensor::from_vec(out, &[n, 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (0.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn outcome_accounts_every_sample() {
        // Two dark (class 0), two bright (class 1); one dark sample is
        // mislabelled so clean accuracy is 0.75.
        let mut data = vec![0.1f32; 8];
        data.extend(vec![0.9f32; 8]);
        let images = Tensor::from_vec(data, &[4, 1, 2, 2]);
        let labels = vec![0, 1, 1, 1];
        let outcome = evaluate_attack(
            &BrightnessVictim,
            &GaussianNoise::new(0.0, 0),
            &images,
            &labels,
            3, // deliberately not dividing 4
        );
        assert_eq!(outcome.samples, 4);
        assert_eq!(outcome.clean_accuracy, 0.75);
        // Zero-budget "attack": adversarial accuracy equals clean accuracy.
        assert_eq!(outcome.adversarial_accuracy, 0.75);
        assert_eq!(outcome.success_rate, 0.25);
    }

    #[test]
    fn small_noise_cannot_flip_well_separated_samples() {
        let mut data = vec![0.0f32; 8];
        data.extend(vec![1.0f32; 8]);
        let images = Tensor::from_vec(data, &[4, 1, 2, 2]);
        let labels = vec![0, 0, 1, 1];
        let outcome = evaluate_attack(
            &BrightnessVictim,
            &GaussianNoise::new(0.1, 7),
            &images,
            &labels,
            4,
        );
        assert_eq!(outcome.adversarial_accuracy, 1.0);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::Fgsm;

    struct Flat;
    impl AdversarialTarget for Flat {
        fn num_classes(&self) -> usize {
            3
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            // Constant preference for class 1.
            let n = x.dims()[0];
            Tensor::from_vec([0.0f32, 1.0, 0.0].repeat(n), &[n, 3])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            (1.0, Tensor::zeros(x.dims()))
        }
    }

    #[test]
    fn zero_gradient_victim_keeps_clean_accuracy_under_fgsm() {
        // FGSM with sign(0) = 0 perturbs nothing; adversarial accuracy must
        // equal clean accuracy exactly.
        let images = Tensor::full(&[5, 1, 2, 2], 0.5);
        let labels = vec![1, 1, 0, 1, 2];
        let out = evaluate_attack(&Flat, &Fgsm::new(0.3), &images, &labels, 2);
        assert_eq!(out.clean_accuracy, out.adversarial_accuracy);
        assert_eq!(out.clean_accuracy, 3.0 / 5.0);
    }

    #[test]
    #[should_panic(expected = "batch_size must be positive")]
    fn zero_batch_size_rejected() {
        let images = Tensor::zeros(&[1, 1, 2, 2]);
        evaluate_attack(&Flat, &Fgsm::new(0.1), &images, &[0], 0);
    }
}
