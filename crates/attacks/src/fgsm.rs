//! The fast gradient sign method (Goodfellow et al., 2015).

use nn::AdversarialTarget;
use tensor::Tensor;

use crate::{project, Attack};

/// Single-step FGSM: `x* = clip(x + ε · sign(∇ₓ L))`.
///
/// # Example
///
/// ```
/// use attacks::Fgsm;
/// use attacks::Attack;
///
/// let attack = Fgsm::new(0.25);
/// assert_eq!(attack.name(), "FGSM");
/// assert_eq!(attack.epsilon(), 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fgsm {
    epsilon: f32,
}

impl Fgsm {
    /// Creates an FGSM attack with noise budget `epsilon`.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative or not finite.
    pub fn new(epsilon: f32) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        Self { epsilon }
    }
}

impl Attack for Fgsm {
    fn name(&self) -> &'static str {
        "FGSM"
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor {
        if self.epsilon == 0.0 {
            return x.clone();
        }
        let (_, grad) = target.loss_and_input_grad(x, labels);
        let adv = x.add(&grad.sign().mul_scalar(self.epsilon));
        project(&adv, x, self.epsilon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "epsilon must be finite")]
    fn rejects_negative_epsilon() {
        Fgsm::new(-0.1);
    }

    #[test]
    fn zero_epsilon_is_identity() {
        // A zero-budget FGSM must return the input unchanged without even
        // querying the model; use a panicking dummy target to prove it.
        struct NeverCalled;
        impl AdversarialTarget for NeverCalled {
            fn num_classes(&self) -> usize {
                2
            }
            fn logits(&self, _x: &Tensor) -> Tensor {
                panic!("must not be called")
            }
            fn loss_and_input_grad(&self, _x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
                panic!("must not be called")
            }
        }
        let x = Tensor::full(&[1, 1, 2, 2], 0.5);
        let adv = Fgsm::new(0.0).perturb(&NeverCalled, &x, &[0]);
        assert_eq!(adv, x);
    }
}
