//! Momentum iterative method (MI-FGSM, Dong et al. 2018).

use tensor::Tensor;

use nn::AdversarialTarget;

use crate::{project, Attack};

/// L∞ momentum iterative attack: like PGD but the step direction is the
/// sign of an exponentially accumulated, L1-normalised gradient, which
/// stabilises the direction across iterations and transfers better between
/// models.
///
/// ```text
/// g[t+1] = μ · g[t] + ∇ₓL / ‖∇ₓL‖₁
/// x[t+1] = Π( x[t] + α · sign(g[t+1]) )
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MomentumPgd {
    epsilon: f32,
    alpha: f32,
    steps: usize,
    mu: f32,
}

impl MomentumPgd {
    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite, `alpha` is non-positive
    /// while `epsilon > 0`, `steps` is zero, or `mu` is negative.
    pub fn new(epsilon: f32, alpha: f32, steps: usize, mu: f32) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        assert!(steps > 0, "momentum PGD needs at least one step");
        assert!(
            epsilon == 0.0 || alpha > 0.0,
            "step size must be positive, got {alpha}"
        );
        assert!(mu >= 0.0, "momentum must be non-negative, got {mu}");
        Self {
            epsilon,
            alpha,
            steps,
            mu,
        }
    }

    /// The canonical configuration: 10 steps, `α = ε/steps`, `μ = 1.0`.
    pub fn standard(epsilon: f32) -> Self {
        Self::new(epsilon, epsilon / 10.0, 10, 1.0)
    }

    /// The momentum factor μ.
    pub fn mu(&self) -> f32 {
        self.mu
    }
}

impl Attack for MomentumPgd {
    fn name(&self) -> &'static str {
        "MomentumPGD"
    }

    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor {
        if self.epsilon == 0.0 {
            return x.clone();
        }
        let mut adv = x.clone();
        let mut momentum = Tensor::zeros(x.dims());
        for _ in 0..self.steps {
            let (_, grad) = target.loss_and_input_grad(&adv, labels);
            let l1 = grad.map(f32::abs).sum().max(1e-12);
            momentum = momentum.mul_scalar(self.mu).add(&grad.mul_scalar(1.0 / l1));
            let stepped = adv.add(&momentum.sign().mul_scalar(self.alpha));
            adv = project(&stepped, x, self.epsilon);
        }
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SumVictim;
    impl AdversarialTarget for SumVictim {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            let s: f32 = x.sum();
            Tensor::from_vec(vec![s, -s], &[x.dims()[0], 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, labels: &[usize]) -> (f32, Tensor) {
            // Loss increases when Σx moves against the label.
            let sign = if labels[0] == 0 { -1.0 } else { 1.0 };
            (0.0, Tensor::full(x.dims(), sign * 0.1))
        }
    }

    #[test]
    fn stays_within_budget_and_box() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let adv = MomentumPgd::standard(0.2).perturb(&SumVictim, &x, &[1]);
        assert!(adv.sub(&x).max_abs() <= 0.2 + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    #[test]
    fn accumulated_direction_saturates_budget() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let adv = MomentumPgd::standard(0.2).perturb(&SumVictim, &x, &[1]);
        // Constant gradient direction: momentum surely saturates the ball.
        assert!((adv.sub(&x).max_abs() - 0.2).abs() < 1e-5);
        assert!(adv.sum() > x.sum());
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let x = Tensor::full(&[1, 1, 2, 2], 0.3);
        assert_eq!(
            MomentumPgd::new(0.0, 0.0, 5, 1.0).perturb(&SumVictim, &x, &[0]),
            x
        );
    }

    #[test]
    fn zero_gradient_produces_no_movement() {
        struct Flat;
        impl AdversarialTarget for Flat {
            fn num_classes(&self) -> usize {
                2
            }
            fn logits(&self, x: &Tensor) -> Tensor {
                Tensor::zeros(&[x.dims()[0], 2])
            }
            fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
                (0.0, Tensor::zeros(x.dims()))
            }
        }
        let x = Tensor::full(&[1, 1, 2, 2], 0.5);
        let adv = MomentumPgd::standard(0.3).perturb(&Flat, &x, &[0]);
        assert_eq!(adv, x, "sign(0) must not move the input");
    }
}
