//! L2-norm projected gradient descent.

use tensor::Tensor;

use nn::AdversarialTarget;

use crate::{Attack, PIXEL_BOUNDS};

/// PGD under an L2 perturbation budget: steps follow the *normalised*
/// gradient and the accumulated perturbation is projected back onto the L2
/// ε-ball (and the pixel box) after every step.
///
/// The L∞ variant ([`Pgd`](crate::Pgd)) is the paper's attack; this one is
/// provided for budget-geometry comparisons.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PgdL2 {
    epsilon: f32,
    alpha: f32,
    steps: usize,
}

impl PgdL2 {
    /// Fully explicit constructor.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon` is negative/non-finite, `alpha` is non-positive
    /// while `epsilon > 0`, or `steps` is zero.
    pub fn new(epsilon: f32, alpha: f32, steps: usize) -> Self {
        assert!(
            epsilon.is_finite() && epsilon >= 0.0,
            "epsilon must be finite and non-negative, got {epsilon}"
        );
        assert!(steps > 0, "PGD needs at least one step");
        assert!(
            epsilon == 0.0 || alpha > 0.0,
            "step size must be positive, got {alpha}"
        );
        Self {
            epsilon,
            alpha,
            steps,
        }
    }

    /// The standard configuration: 10 steps, `α = 2.5·ε/steps`.
    pub fn standard(epsilon: f32) -> Self {
        Self::new(epsilon, 2.5 * epsilon / 10.0, 10)
    }

    /// Projects `adv` onto the L2 ε-ball around `x`, then the pixel box.
    fn project_l2(&self, adv: &Tensor, x: &Tensor) -> Tensor {
        let delta = adv.sub(x);
        let norm = delta.norm();
        let scaled = if norm > self.epsilon && norm > 0.0 {
            x.add(&delta.mul_scalar(self.epsilon / norm))
        } else {
            adv.clone()
        };
        scaled.clamp(PIXEL_BOUNDS.0, PIXEL_BOUNDS.1)
    }
}

impl Attack for PgdL2 {
    fn name(&self) -> &'static str {
        "PGD-L2"
    }

    /// Reported as the equivalent *L∞* bound of the L2 ball: an L2 budget
    /// also caps every single pixel's change by ε, which is the invariant
    /// the shared evaluation harness checks.
    fn epsilon(&self) -> f32 {
        self.epsilon
    }

    fn perturb(&self, target: &dyn AdversarialTarget, x: &Tensor, labels: &[usize]) -> Tensor {
        if self.epsilon == 0.0 {
            return x.clone();
        }
        let mut adv = x.clone();
        for _ in 0..self.steps {
            let (_, grad) = target.loss_and_input_grad(&adv, labels);
            let norm = grad.norm().max(1e-12);
            let stepped = adv.add(&grad.mul_scalar(self.alpha / norm));
            adv = self.project_l2(&stepped, x);
        }
        adv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct GradientOnly;
    impl AdversarialTarget for GradientOnly {
        fn num_classes(&self) -> usize {
            2
        }
        fn logits(&self, x: &Tensor) -> Tensor {
            Tensor::zeros(&[x.dims()[0], 2])
        }
        fn loss_and_input_grad(&self, x: &Tensor, _l: &[usize]) -> (f32, Tensor) {
            // Constant uphill direction.
            (0.0, Tensor::full(x.dims(), 1.0))
        }
    }

    #[test]
    fn l2_norm_of_perturbation_is_bounded() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let adv = PgdL2::standard(0.5).perturb(&GradientOnly, &x, &[0]);
        let delta_norm = adv.sub(&x).norm();
        assert!(
            delta_norm <= 0.5 + 1e-5,
            "L2 norm {delta_norm} exceeds budget"
        );
        assert!(delta_norm > 0.4, "the attack should use most of its budget");
    }

    #[test]
    fn per_pixel_change_is_within_linf_envelope() {
        let x = Tensor::full(&[1, 1, 4, 4], 0.5);
        let adv = PgdL2::standard(0.3).perturb(&GradientOnly, &x, &[0]);
        assert!(adv.sub(&x).max_abs() <= 0.3 + 1e-6);
        assert!(adv.min() >= 0.0 && adv.max() <= 1.0);
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let x = Tensor::full(&[1, 1, 2, 2], 0.7);
        assert_eq!(PgdL2::new(0.0, 0.0, 3).perturb(&GradientOnly, &x, &[0]), x);
    }
}
