//! Concurrent-journal acceptance test: several writers append to one
//! `events.jsonl` under contention through *independent* journal handles
//! (modelling the distributed grid's N processes, each with its own
//! `O_APPEND` file descriptor), and the reader gets every record back
//! whole — no torn or interleaved lines.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use store::journal::{read_events, Journal};
use store::Event;

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("store_journal_concurrent");
    fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let _ = fs::remove_file(&path);
    path
}

/// The multiset of cell keys in an event list (the payloads below make the
/// key unique per record, so multiset equality is record equality).
fn key_counts(events: &[Event]) -> BTreeMap<String, usize> {
    let mut counts = BTreeMap::new();
    for e in events {
        let key = e
            .cell()
            .expect("every test event carries a cell")
            .to_string();
        *counts.entry(key).or_insert(0) += 1;
    }
    counts
}

#[test]
fn concurrent_writers_never_tear_or_lose_records() {
    const WRITERS: usize = 8;
    const EVENTS_PER_WRITER: usize = 200;
    let path = tmp("contended.jsonl");

    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let path = &path;
            scope.spawn(move || {
                // One handle per writer: separate fds, exactly like
                // separate worker processes appending to a shared journal.
                let journal = Journal::open_append(path).unwrap();
                for i in 0..EVENTS_PER_WRITER {
                    let event = match i % 3 {
                        0 => Event::LeaseAcquired {
                            cell: format!("w{w}-e{i}"),
                            pid: w as u32,
                            deadline_millis: i as u64,
                        },
                        1 => Event::LeaseHeartbeat {
                            cell: format!("w{w}-e{i}"),
                            pid: w as u32,
                            deadline_millis: i as u64,
                        },
                        _ => Event::CellCompleted {
                            cell: format!("w{w}-e{i}"),
                            pid: w as u32,
                        },
                    };
                    journal.log(&event).unwrap();
                }
            });
        }
    });

    // Raw-file invariant first: every line is complete, parseable JSON.
    // A torn interleave would concatenate two half-records into garbage.
    let text = fs::read_to_string(&path).unwrap();
    assert!(
        text.ends_with('\n'),
        "the journal ends on a record boundary"
    );
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), WRITERS * EVENTS_PER_WRITER);
    for line in &lines {
        serde_json::from_str::<Event>(line)
            .unwrap_or_else(|e| panic!("torn or interleaved record {line:?}: {e}"));
    }

    // Reader-level invariant: the event multiset matches what was written.
    let events = read_events(&path).unwrap();
    assert_eq!(events.len(), WRITERS * EVENTS_PER_WRITER);
    let counts = key_counts(&events);
    assert_eq!(counts.len(), WRITERS * EVENTS_PER_WRITER, "no duplicates");
    for w in 0..WRITERS {
        for i in 0..EVENTS_PER_WRITER {
            assert_eq!(
                counts.get(&format!("w{w}-e{i}")).copied(),
                Some(1),
                "writer {w} event {i} must appear exactly once"
            );
        }
    }
}

/// Reopen-and-heal under contention: a journal whose tail was torn by a
/// kill is healed by the next `open_append`, and concurrent writers then
/// append cleanly after the healed tail.
#[test]
fn reopen_heals_a_torn_tail_before_concurrent_appends() {
    let path = tmp("healed.jsonl");
    let journal = Journal::open_append(&path).unwrap();
    journal
        .log(&Event::CellCompleted {
            cell: "whole".into(),
            pid: 1,
        })
        .unwrap();
    drop(journal);
    // A SIGKILL mid-append leaves a half line without a terminator.
    let mut bytes = fs::read(&path).unwrap();
    bytes.extend_from_slice(b"{\"CellCompleted\":{\"cell\":\"to");
    fs::write(&path, &bytes).unwrap();

    std::thread::scope(|scope| {
        for w in 0..4 {
            let path = &path;
            scope.spawn(move || {
                let journal = Journal::open_append(path).unwrap();
                for i in 0..50 {
                    journal
                        .log(&Event::CellCompleted {
                            cell: format!("h{w}-e{i}"),
                            pid: w as u32,
                        })
                        .unwrap();
                }
            });
        }
    });

    let events = read_events(&path).unwrap();
    // The torn half-record is skipped; everything else survives whole.
    assert_eq!(events.len(), 1 + 4 * 50);
    let counts = key_counts(&events);
    assert_eq!(counts.get("whole").copied(), Some(1));
    assert!(
        counts.keys().all(|k| !k.starts_with("to")),
        "no torn remnant"
    );
    for w in 0..4 {
        for i in 0..50 {
            assert_eq!(counts.get(&format!("h{w}-e{i}")).copied(), Some(1));
        }
    }
}
