//! Lease-protocol acceptance tests: stale reclaim through the store API
//! (with journal evidence), double-claim exclusion under real thread
//! contention, and a property test interleaving several in-process workers
//! over randomized claim/heartbeat/crash schedules.
//!
//! The invariant under test everywhere: **every cell is completed exactly
//! once**, no matter how workers crash, stall past their deadlines, or
//! race each other's reclaims.

use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use store::journal::read_events;
use store::lease::{self, CellLease};
use store::{Event, Fingerprint, RunStore, StoreError};

fn tmp_root(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("store_lease_protocol_{name}"));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn open_shared(root: &Path, tag: &str) -> RunStore {
    let fp = Fingerprint::builder()
        .section("lease-protocol", tag.as_bytes())
        .finish();
    RunStore::open_shared(root, &fp, "{}").unwrap().store
}

/// Stale leases of all three kinds — dead pid, expired deadline, torn
/// payload — are reclaimed through [`RunStore::claim_cell`], and each
/// reclaim is journaled with its reason.
#[test]
fn claim_cell_reclaims_and_journals_every_stale_kind() {
    let root = tmp_root("stale_kinds");
    let store = open_shared(&root, "stale");

    // Dead pid: a fixture lease of a pid that cannot exist.
    if Path::new("/proc").is_dir() {
        let path = lease::lease_path(store.dir(), "dead");
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(
            &path,
            format!(
                "{{\"pid\": 4294967295, \"nonce\": 1, \"cell\": \"dead\", \"deadline_millis\": {}}}\n",
                lease::now_millis() + 3_600_000
            ),
        )
        .unwrap();
        let lease = store
            .claim_cell("dead", 60_000)
            .unwrap()
            .expect("reclaimable");
        store.release_cell(lease);
    }

    // Expired deadline: our own pid, but the holder stalled past its TTL.
    let stale = store.claim_cell("expired", 0).unwrap().unwrap();
    std::mem::forget(stale); // crash: no Drop, the file stays behind
    std::thread::sleep(std::time::Duration::from_millis(5));
    let lease = store
        .claim_cell("expired", 60_000)
        .unwrap()
        .expect("reclaimable");
    store.release_cell(lease);

    // Torn payload: the holder died inside its first write.
    let path = lease::lease_path(store.dir(), "torn");
    fs::create_dir_all(path.parent().unwrap()).unwrap();
    fs::write(&path, "{\"pi").unwrap();
    let lease = store
        .claim_cell("torn", 60_000)
        .unwrap()
        .expect("reclaimable");
    store.release_cell(lease);

    let events = read_events(store.journal_path()).unwrap();
    let reasons: HashMap<String, String> = events
        .iter()
        .filter_map(|e| match e {
            Event::LeaseReclaimed { cell, reason, .. } => Some((cell.clone(), reason.clone())),
            _ => None,
        })
        .collect();
    if Path::new("/proc").is_dir() {
        assert_eq!(reasons.get("dead").map(String::as_str), Some("dead pid"));
    }
    assert_eq!(
        reasons.get("expired").map(String::as_str),
        Some("expired deadline")
    );
    assert_eq!(
        reasons.get("torn").map(String::as_str),
        Some("torn payload")
    );
}

/// Double-claim exclusion under real contention: several threads hammer the
/// same small grid through shared store handles; each cell's outcome is
/// published exactly once.
#[test]
fn contending_workers_complete_every_cell_exactly_once() {
    let root = tmp_root("contention");
    const CELLS: usize = 6;
    const WORKERS: usize = 4;
    let cells: Vec<String> = (0..CELLS).map(|i| format!("cell-{i}")).collect();
    let publishes: Vec<AtomicUsize> = (0..CELLS).map(|_| AtomicUsize::new(0)).collect();

    std::thread::scope(|scope| {
        for _ in 0..WORKERS {
            let root = &root;
            let cells = &cells;
            let publishes = &publishes;
            scope.spawn(move || {
                // Each worker holds its own shared handle, like a process.
                let store = open_shared(root, "contention");
                loop {
                    let mut all_done = true;
                    for (i, cell) in cells.iter().enumerate() {
                        if store.cell_completed(cell) {
                            continue;
                        }
                        all_done = false;
                        let Some(lease) = store.claim_cell(cell, 60_000).unwrap() else {
                            continue;
                        };
                        // Re-check under the lease, then publish: the same
                        // commit discipline as the real worker loop.
                        if !store.cell_completed(cell) {
                            publishes[i].fetch_add(1, Ordering::SeqCst);
                            store.save_cell_outcome(cell, "{}\n").unwrap();
                        }
                        store.release_cell(lease);
                    }
                    if all_done {
                        break;
                    }
                }
            });
        }
    });

    for (i, p) in publishes.iter().enumerate() {
        assert_eq!(
            p.load(Ordering::SeqCst),
            1,
            "cell-{i} must be published exactly once"
        );
    }
    // No lease survives an orderly shutdown.
    let store = open_shared(&root, "contention");
    assert!(lease::held_leases(store.dir()).unwrap().is_empty());
}

/// One scripted action of the property test's schedule.
#[derive(Debug, Clone, Copy)]
enum Action {
    /// Try to claim the next incomplete cell.
    Claim,
    /// Renew the held lease (abandoning the cell if it was reclaimed).
    Heartbeat,
    /// Crash while holding the lease: the file stays behind, expired.
    Crash,
    /// Finish the held cell: heartbeat once more, publish, release.
    Complete,
}

/// Maps a raw draw onto a weighted action: claims and completions dominate,
/// crashes and stalls stay frequent enough to exercise every reclaim path.
fn action_from(raw: u8) -> Action {
    match raw % 7 {
        0 | 1 => Action::Claim,
        2 => Action::Heartbeat,
        3 => Action::Crash,
        _ => Action::Complete,
    }
}

/// Simulates a crashed holder: forget the guard (no Drop) and rewrite the
/// lease file with an already-expired deadline, so the next claimant
/// reclaims it without the test having to sleep.
fn crash_holding(lease: CellLease) {
    let path = lease.path().to_path_buf();
    let payload = lease.payload().clone();
    std::mem::forget(lease);
    fs::write(
        &path,
        format!(
            "{{\"pid\": {}, \"nonce\": {}, \"cell\": \"{}\", \"deadline_millis\": 0}}\n",
            payload.pid, payload.nonce, payload.cell
        ),
    )
    .unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// 2–4 in-process workers interleaved over a randomized schedule of
    /// claims, heartbeats, crashes, and completions. However the schedule
    /// falls, every cell ends up completed exactly once, and a worker that
    /// lost its lease to a reclaim never publishes over the winner.
    #[test]
    fn randomized_schedules_complete_every_cell_exactly_once(
        workers in 2usize..=4,
        schedule in proptest::collection::vec((0usize..4, 0u8..=u8::MAX), 96),
        case in 0u64..u64::MAX,
    ) {
        let root = tmp_root(&format!("prop_{case}"));
        let store = open_shared(&root, "prop");
        let cells: Vec<String> = (0..3).map(|i| format!("c{i}")).collect();
        let mut held: Vec<Option<CellLease>> = (0..workers).map(|_| None).collect();
        let mut publishes: HashMap<String, usize> = HashMap::new();

        let mut drive = |held: &mut Vec<Option<CellLease>>, w: usize, action: Action| {
            let Some(mut lease) = held[w].take() else {
                // Idle worker: only a Claim does anything.
                if matches!(action, Action::Claim) {
                    for cell in &cells {
                        if store.cell_completed(cell) {
                            continue;
                        }
                        if let Some(lease) = store.claim_cell(cell, 3_600_000).unwrap() {
                            held[w] = Some(lease);
                            break;
                        }
                    }
                }
                return Ok(());
            };
            match action {
                // Already mid-cell: a claim turn is a no-op.
                Action::Claim => held[w] = Some(lease),
                Action::Crash => crash_holding(lease),
                Action::Heartbeat | Action::Complete => {
                    match store.heartbeat_cell(&mut lease, 3_600_000) {
                        Ok(()) => {
                            if matches!(action, Action::Complete) {
                                let cell = lease.cell().to_string();
                                prop_assert!(
                                    !store.cell_completed(&cell),
                                    "a held lease guards an incomplete cell"
                                );
                                *publishes.entry(cell.clone()).or_insert(0) += 1;
                                store.save_cell_outcome(&cell, "{}\n").unwrap();
                                store.release_cell(lease);
                            } else {
                                held[w] = Some(lease);
                            }
                        }
                        // Reclaimed out from under us: abandon the cell.
                        Err(StoreError::LeaseLost { .. }) => drop(lease),
                        Err(e) => return Err(TestCaseError::fail(format!("heartbeat: {e}"))),
                    }
                }
            }
            Ok(())
        };

        for &(w, raw) in &schedule {
            drive(&mut held, w % workers, action_from(raw))?;
        }
        // Drain: give every worker claim+complete turns until the grid is
        // done (the real loop polls exactly like this).
        for _round in 0..64 {
            if cells.iter().all(|c| store.cell_completed(c)) {
                break;
            }
            for w in 0..workers {
                drive(&mut held, w, Action::Claim)?;
                drive(&mut held, w, Action::Complete)?;
            }
        }

        for cell in &cells {
            prop_assert!(store.cell_completed(cell), "{cell} must complete");
            prop_assert_eq!(
                publishes.get(cell).copied().unwrap_or(0),
                1,
                "{} must be published exactly once",
                cell
            );
        }
        let _ = fs::remove_dir_all(&root);
    }
}
