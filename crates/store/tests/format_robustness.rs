//! Property-based robustness of the checkpoint format: arbitrary tensors
//! and parameter sets round-trip bitwise, and every class of damage —
//! truncation, bit flips, wrong magic, future versions — yields a typed
//! error, never a panic or a silently wrong value.

use nn::Params;
use proptest::prelude::*;
use store::{format, StoreError};
use tensor::Tensor;

/// Builds a tensor whose shape and contents are derived from the drawn
/// values: `dims_raw` picks up to 3 dimensions of size 1..=4, `bits` seeds
/// the element bit patterns (so subnormals, negatives, and extreme
/// exponents all occur).
fn tensor_from(dims_raw: &[usize], bits: u64) -> Tensor {
    let dims: Vec<usize> = dims_raw.iter().map(|d| 1 + d % 4).collect();
    let len = dims.iter().product();
    let mut state = bits | 1;
    let data: Vec<f32> = (0..len)
        .map(|_| {
            // SplitMix64-style scramble; every u32 pattern is reachable.
            state = state
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xBF58_476D_1CE4_E5B9);
            let word = (state >> 16) as u32;
            let v = f32::from_bits(word);
            // Keep values comparable with `==` (the round-trip equality
            // below); NaN payload preservation is covered by a unit test.
            if v.is_nan() {
                f32::from_bits(word & 0x7F7F_FFFF)
            } else {
                v
            }
        })
        .collect();
    Tensor::from_vec(data, &dims)
}

fn params_from(dims_raw: &[usize], bits: u64, count: usize) -> Params {
    let mut params = Params::new();
    for i in 0..count {
        params.register(
            format!("layer{i}.w"),
            tensor_from(&dims_raw[i..i + 2], bits.wrapping_add(i as u64)),
        );
    }
    params
}

fn bits_of(t: &Tensor) -> Vec<u32> {
    t.data().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encoding then decoding an arbitrary tensor reproduces shape and
    /// every element's exact bit pattern.
    #[test]
    fn tensor_round_trip_is_bitwise(
        dims_raw in proptest::collection::vec(0usize..4, 3),
        bits in 0u64..u64::MAX,
    ) {
        let t = tensor_from(&dims_raw, bits);
        let back = format::decode_tensor(&format::encode_tensor(&t))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.dims(), t.dims());
        prop_assert_eq!(bits_of(&back), bits_of(&t));
    }

    /// Parameter sets round-trip with names, order, shapes and bits intact.
    #[test]
    fn params_round_trip_is_bitwise(
        dims_raw in proptest::collection::vec(0usize..4, 6),
        bits in 0u64..u64::MAX,
        count in 1usize..5,
    ) {
        let p = params_from(&dims_raw, bits, count);
        let back = format::decode_params(&format::encode_params(&p))
            .map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert_eq!(back.len(), p.len());
        for ((id_a, t_a), (id_b, t_b)) in p.iter().zip(back.iter()) {
            prop_assert_eq!(p.name(id_a), back.name(id_b));
            prop_assert_eq!(t_a.dims(), t_b.dims());
            prop_assert_eq!(bits_of(t_a), bits_of(t_b));
        }
    }

    /// Truncating an encoded block at any point yields a typed error.
    #[test]
    fn truncation_never_decodes(
        dims_raw in proptest::collection::vec(0usize..4, 3),
        bits in 0u64..u64::MAX,
        cut_seed in 0usize..10_000,
    ) {
        let encoded = format::encode_tensor(&tensor_from(&dims_raw, bits));
        let keep = cut_seed % encoded.len(); // strictly shorter than full
        let err = format::decode_tensor(&encoded[..keep]).unwrap_err();
        prop_assert!(
            matches!(
                err,
                StoreError::Truncated { .. }
                    | StoreError::ChecksumMismatch { .. }
                    | StoreError::BadMagic { .. }
            ),
            "truncation at {keep}/{} gave unexpected error: {err}",
            encoded.len()
        );
    }

    /// Flipping any single bit of an encoded block is always detected; a
    /// decode can never silently return altered data.
    #[test]
    fn single_bit_flip_never_decodes_silently(
        dims_raw in proptest::collection::vec(0usize..4, 3),
        bits in 0u64..u64::MAX,
        flip_seed in 0usize..100_000,
    ) {
        let t = tensor_from(&dims_raw, bits);
        let mut encoded = format::encode_tensor(&t);
        let bit = flip_seed % (encoded.len() * 8);
        encoded[bit / 8] ^= 1 << (bit % 8);
        match format::decode_tensor(&encoded) {
            Err(_) => {} // typed rejection: the expected outcome
            Ok(back) => {
                // The only way a flip may decode is if it cancelled out —
                // impossible for a single bit, so data must be unchanged
                // (this arm documents the property; it should not happen).
                prop_assert_eq!(bits_of(&back), bits_of(&t));
            }
        }
    }

    /// Any corrupted magic prefix is rejected as `BadMagic`.
    #[test]
    fn wrong_magic_is_always_bad_magic(
        dims_raw in proptest::collection::vec(0usize..4, 3),
        byte in 0usize..4,
        xor in 1u8..=255,
    ) {
        let mut encoded = format::encode_tensor(&tensor_from(&dims_raw, 7));
        encoded[byte] ^= xor;
        prop_assert!(matches!(
            format::decode_tensor(&encoded),
            Err(StoreError::BadMagic { .. })
        ));
    }

    /// Every version other than the supported one is rejected as
    /// `UnsupportedVersion`, with the found version reported faithfully.
    #[test]
    fn future_versions_are_always_rejected(version in 0u32..=u16::MAX as u32) {
        let version = version as u16;
        if version == format::FORMAT_VERSION {
            return Ok(());
        }
        let mut encoded = format::encode_tensor(&tensor_from(&[1, 1, 1], 7));
        encoded[4..6].copy_from_slice(&version.to_le_bytes());
        // Re-seal so the version field is the *only* discrepancy.
        let n = encoded.len();
        let checksum = format::fnv1a(&encoded[..n - 8]);
        encoded[n - 8..].copy_from_slice(&checksum.to_le_bytes());
        match format::decode_tensor(&encoded) {
            Err(StoreError::UnsupportedVersion { found, supported }) => {
                prop_assert_eq!(found, version);
                prop_assert_eq!(supported, format::FORMAT_VERSION);
            }
            other => prop_assert!(false, "expected UnsupportedVersion, got {other:?}"),
        }
    }
}
