//! The append-only JSONL event journal (`events.jsonl`).
//!
//! Every run directory carries a journal with one JSON object per line,
//! recording what actually happened — cells trained, cells served from
//! cache, attack evaluations and their durations. The journal is pure
//! observability: results never flow through it, so it can grow across
//! resumed runs without affecting determinism, and `tail -f events.jsonl`
//! is the progress view for a long `--full` grid.

use std::fs::{File, OpenOptions};
use std::io::{self, BufRead, BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use serde::{Deserialize, Serialize};

/// One journal entry. Durations are wall-clock milliseconds; they describe
/// the run that *produced* the artefact, never influence results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// The run directory's single-writer lock was taken (always the first
    /// event a store handle appends).
    LockAcquired {
        /// Pid of the acquiring process.
        pid: u32,
    },
    /// The single-writer lock was released (the store handle was dropped).
    LockReleased {
        /// Pid of the releasing process.
        pid: u32,
    },
    /// A store was opened over this run directory.
    RunStarted {
        /// `true` when prior state in the directory is being reused.
        resumed: bool,
    },
    /// Work on a grid cell began.
    CellStarted {
        /// The cell's directory key.
        cell: String,
    },
    /// A cell's model was trained (cache miss) and checkpointed.
    CellTrained {
        /// The cell's directory key.
        cell: String,
        /// Clean test accuracy after training.
        clean_accuracy: f32,
        /// Whether the accuracy met the learnability threshold.
        learnable: bool,
        /// Training duration in milliseconds.
        millis: u64,
    },
    /// A cell's trained model was loaded from the store instead of
    /// retrained (cache hit).
    CellCached {
        /// The cell's directory key.
        cell: String,
        /// The checkpointed clean accuracy.
        clean_accuracy: f32,
    },
    /// One `(cell, ε)` attack evaluation ran (cache miss) and was cached.
    AttackEvaluated {
        /// The cell's directory key.
        cell: String,
        /// The attacked noise budget.
        eps: f32,
        /// Measured robustness at that budget.
        robustness: f32,
        /// Evaluation duration in milliseconds.
        millis: u64,
    },
    /// One `(cell, ε)` attack outcome was served from the cache.
    AttackCached {
        /// The cell's directory key.
        cell: String,
        /// The attacked noise budget.
        eps: f32,
        /// The cached robustness.
        robustness: f32,
    },
    /// A cache entry could not be used (damaged or mismatched); the work
    /// was redone from scratch.
    CacheError {
        /// The cell's directory key.
        cell: String,
        /// Why the entry was rejected.
        error: String,
    },
    /// A grid worker joined the run directory (shared, lease-coordinated
    /// open — no single-writer lock is taken).
    WorkerStarted {
        /// Pid of the worker process.
        pid: u32,
    },
    /// A worker claimed a cell's lease.
    LeaseAcquired {
        /// The leased cell key.
        cell: String,
        /// Pid of the claiming worker.
        pid: u32,
        /// Lease expiry, milliseconds since the Unix epoch.
        deadline_millis: u64,
    },
    /// A worker renewed its lease on a cell it is still computing.
    LeaseHeartbeat {
        /// The leased cell key.
        cell: String,
        /// Pid of the heartbeating worker.
        pid: u32,
        /// The pushed-out expiry, milliseconds since the Unix epoch.
        deadline_millis: u64,
    },
    /// A worker released a cell's lease (work done or abandoned).
    LeaseReleased {
        /// The released cell key.
        cell: String,
        /// Pid of the releasing worker.
        pid: u32,
    },
    /// A stale lease (dead pid, expired deadline, or torn payload) was
    /// reclaimed by another worker.
    LeaseReclaimed {
        /// The reclaimed cell key.
        cell: String,
        /// Pid recorded in the stale lease (0 when the payload was torn).
        old_pid: u32,
        /// Pid of the reclaiming worker.
        pid: u32,
        /// Why the lease counted as stale.
        reason: String,
    },
    /// A cell's outcome artifact was durably written — the cell will never
    /// be computed again by any worker of this run.
    CellCompleted {
        /// The completed cell key.
        cell: String,
        /// Pid of the completing worker.
        pid: u32,
    },
    /// A reducer merged the completed cells into the grid artifact.
    GridReduced {
        /// Number of cells merged.
        cells: usize,
        /// Pid of the reducing process.
        pid: u32,
    },
}

impl Event {
    /// The cell key this event concerns, if any.
    pub fn cell(&self) -> Option<&str> {
        match self {
            Event::RunStarted { .. }
            | Event::LockAcquired { .. }
            | Event::LockReleased { .. }
            | Event::WorkerStarted { .. }
            | Event::GridReduced { .. } => None,
            Event::CellStarted { cell }
            | Event::CellTrained { cell, .. }
            | Event::CellCached { cell, .. }
            | Event::AttackEvaluated { cell, .. }
            | Event::AttackCached { cell, .. }
            | Event::CacheError { cell, .. }
            | Event::LeaseAcquired { cell, .. }
            | Event::LeaseHeartbeat { cell, .. }
            | Event::LeaseReleased { cell, .. }
            | Event::LeaseReclaimed { cell, .. }
            | Event::CellCompleted { cell, .. } => Some(cell),
        }
    }
}

/// A thread-safe, append-only journal writer.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    file: Mutex<File>,
}

impl Journal {
    /// Opens (creating if needed) the journal at `path` for appending.
    ///
    /// A killed run can leave a torn final line; without a terminator the
    /// next append would continue *on* that line and the reader would drop
    /// both halves. Opening therefore heals the tail: a non-empty file not
    /// ending in `\n` gets one before any new event is written.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the file cannot be opened.
    pub fn open_append(path: &Path) -> io::Result<Self> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let len = file.seek(SeekFrom::End(0))?;
        if len > 0 {
            file.seek(SeekFrom::End(-1))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last)?;
            if last != [b'\n'] {
                file.write_all(b"\n")?;
            }
        }
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(file),
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one event as a single JSON line and flushes it.
    ///
    /// The line and its terminator go to the file in **one** `write_all`
    /// call. The Mutex only serialises writers *within* this process; a
    /// distributed grid run has several processes appending to the same
    /// journal, and `O_APPEND` makes each individual `write(2)` atomic —
    /// but a line split across two syscalls (as `writeln!` may do) could
    /// interleave with another process's line. One buffer, one syscall,
    /// no torn records.
    ///
    /// # Errors
    ///
    /// Returns an [`io::Error`] if the line cannot be written.
    pub fn log(&self, event: &Event) -> io::Result<()> {
        let mut line = serde_json::to_string(event)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        line.push('\n');
        // A writer that panicked mid-append cannot have torn the line (it
        // goes down in one write), so a poisoned lock is still usable.
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        // armor-lint: allow(lock-order) -- the Mutex<File> IS the journal's in-process serialization point: appends are one short O_APPEND write and concurrent writers must queue behind it so lines never tear
        file.write_all(line.as_bytes())?;
        // armor-lint: allow(lock-order) -- flushing under the same lock keeps append+flush atomic; releasing between them could interleave another writer's line before this event reaches disk
        file.flush()
    }
}

/// Reads every event in a journal file, in order. Unparseable lines (e.g.
/// a torn trailing line from a killed run) are skipped, not fatal.
///
/// # Errors
///
/// Returns an [`io::Error`] if the file cannot be opened or read.
pub fn read_events(path: &Path) -> io::Result<Vec<Event>> {
    let reader = BufReader::new(File::open(path)?);
    let mut events = Vec::new();
    for line in reader.lines() {
        let line = line?;
        if let Ok(event) = serde_json::from_str::<Event>(&line) {
            events.push(event);
        }
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("store_journal_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let path = tmp("roundtrip.jsonl");
        let _ = std::fs::remove_file(&path);
        let journal = Journal::open_append(&path).unwrap();
        let events = [
            Event::RunStarted { resumed: false },
            Event::CellTrained {
                cell: "v-t".into(),
                clean_accuracy: 0.75,
                learnable: true,
                millis: 12,
            },
            Event::AttackCached {
                cell: "v-t".into(),
                eps: 0.5,
                robustness: 0.25,
            },
        ];
        for e in &events {
            journal.log(e).unwrap();
        }
        let back = read_events(&path).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn torn_trailing_line_is_skipped() {
        let path = tmp("torn.jsonl");
        let journal_line = serde_json::to_string(&Event::RunStarted { resumed: true }).unwrap();
        std::fs::write(&path, format!("{journal_line}\n{{\"CellTra")).unwrap();
        let events = read_events(&path).unwrap();
        assert_eq!(events, [Event::RunStarted { resumed: true }]);
    }

    #[test]
    fn reopening_heals_a_torn_tail() {
        let path = tmp("heal.jsonl");
        let first = serde_json::to_string(&Event::RunStarted { resumed: false }).unwrap();
        // A killed run left the last line torn (no trailing newline).
        std::fs::write(&path, format!("{first}\n{{\"CellTra")).unwrap();
        let journal = Journal::open_append(&path).unwrap();
        let appended = Event::RunStarted { resumed: true };
        journal.log(&appended).unwrap();
        // The torn line is skipped; the appended event is NOT lost to it.
        let events = read_events(&path).unwrap();
        assert_eq!(events, [Event::RunStarted { resumed: false }, appended]);
    }

    #[test]
    fn cell_accessor_extracts_keys() {
        assert_eq!(Event::RunStarted { resumed: false }.cell(), None);
        assert_eq!(Event::CellStarted { cell: "a".into() }.cell(), Some("a"));
    }
}
