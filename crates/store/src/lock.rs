//! Single-writer run-directory lock files.
//!
//! A run directory has exactly one writer at a time: either a batch command
//! (`run_grid` and friends) or a long-lived `spiking-armor serve` process.
//! Two concurrent writers would race the journal's append stream and could
//! interleave half-written checkpoints, so [`RunStore::open`](crate::RunStore::open)
//! takes a [`RunLock`] before touching the directory.
//!
//! The lock is a *sibling* file of the run directory
//! (`run-<fingerprint>.lock` next to `run-<fingerprint>/`), created with
//! `create_new` (O_EXCL) so acquisition is atomic on every platform. It
//! lives outside the directory it guards on purpose: a non-resume open
//! clears the run directory with `remove_dir_all`, which must never delete
//! the very file that proves someone else is still writing.
//!
//! The payload is one JSON object recording the holder's pid and the run
//! fingerprint, so `cat runs/run-*.lock` answers "who has this?" during an
//! incident. A lock whose pid no longer runs is *stale* — the holder was
//! killed before its `Drop` ran — and is reclaimed automatically on the
//! next acquisition attempt.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use crate::error::StoreError;

/// Extension appended to the run-directory name to form its lock file.
pub const LOCK_EXTENSION: &str = "lock";

/// The JSON payload written into a lock file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LockPayload {
    /// Pid of the process holding the lock.
    pub pid: u32,
    /// Hex fingerprint of the run the directory belongs to.
    pub fingerprint: String,
}

/// An exclusive hold on one run directory. Dropping the guard releases the
/// lock (removes the file); a process killed before `Drop` leaves a stale
/// file that the next acquirer reclaims.
#[derive(Debug)]
pub struct RunLock {
    path: PathBuf,
    payload: LockPayload,
}

/// The lock-file path guarding `run_dir` (a sibling, never inside it).
pub fn lock_path(run_dir: &Path) -> PathBuf {
    let mut name = run_dir
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "run".to_string());
    name.push('.');
    name.push_str(LOCK_EXTENSION);
    match run_dir.parent() {
        Some(parent) => parent.join(name),
        None => PathBuf::from(name),
    }
}

/// `true` when `pid` refers to a process that is (as far as we can tell)
/// still running. Our own pid is always alive. On systems with a `/proc`
/// filesystem the check is exact; elsewhere liveness cannot be probed
/// without spawning, so a foreign pid is conservatively considered alive —
/// a stale lock then needs manual removal rather than risking a
/// double-writer.
pub fn pid_alive(pid: u32) -> bool {
    if pid == std::process::id() {
        return true;
    }
    let proc_root = Path::new("/proc");
    if proc_root.is_dir() {
        proc_root.join(pid.to_string()).is_dir()
    } else {
        true
    }
}

impl RunLock {
    /// Acquires the single-writer lock for `run_dir`.
    ///
    /// A present lock file whose recorded pid is dead (or whose payload is
    /// unreadable — a torn write from a killed holder) counts as stale and
    /// is reclaimed. Acquisition retries a few times so reclaiming a stale
    /// file and losing the re-create race to another process degrades into
    /// a normal "locked" answer, never a panic or a double-writer.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Locked`] when another live process holds the
    /// lock, and [`StoreError::Io`] on filesystem failures.
    pub fn acquire(run_dir: &Path, fingerprint_hex: &str) -> Result<Self, StoreError> {
        let path = lock_path(run_dir);
        let payload = LockPayload {
            pid: std::process::id(),
            fingerprint: fingerprint_hex.to_string(),
        };
        let mut last_holder: u32 = 0;
        for _attempt in 0..3 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut file) => {
                    let text = serde_json::to_string(&payload)
                        .map_err(|e| StoreError::Corrupt(format!("cannot serialise lock: {e}")))?;
                    file.write_all(text.as_bytes())?;
                    file.write_all(b"\n")?;
                    return Ok(Self { path, payload });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    match read_holder(&path) {
                        Some(pid) if pid_alive(pid) => {
                            return Err(StoreError::Locked {
                                dir: run_dir.to_path_buf(),
                                pid,
                            });
                        }
                        holder => {
                            // Stale (dead pid) or torn (unreadable payload):
                            // reclaim and retry. A second process may win the
                            // re-create race; the loop then reads *its* pid.
                            last_holder = holder.unwrap_or(0);
                            match fs::remove_file(&path) {
                                Ok(()) => {}
                                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                                Err(e) => return Err(e.into()),
                            }
                        }
                    }
                }
                Err(e) => return Err(e.into()),
            }
        }
        Err(StoreError::Locked {
            dir: run_dir.to_path_buf(),
            pid: last_holder,
        })
    }

    /// The payload this lock wrote (own pid + fingerprint).
    pub fn payload(&self) -> &LockPayload {
        &self.payload
    }

    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for RunLock {
    fn drop(&mut self) {
        // Best-effort: a failed removal leaves a stale file that the next
        // acquirer reclaims via the dead-pid path.
        let _ = fs::remove_file(&self.path);
    }
}

/// The pid of a *live* process currently holding `run_dir`'s single-writer
/// lock, or `None` when the lock is absent, stale (dead pid), or torn.
/// Shared (lease-coordinated) opens use this probe: grid workers must not
/// join a run directory an exclusive writer is still mutating.
pub fn live_holder(run_dir: &Path) -> Option<u32> {
    let pid = read_holder(&lock_path(run_dir))?;
    pid_alive(pid).then_some(pid)
}

/// The pid recorded in an existing lock file, or `None` when the payload is
/// unreadable/torn (which callers treat as stale).
fn read_holder(path: &Path) -> Option<u32> {
    let text = fs::read_to_string(path).ok()?;
    let payload: LockPayload = serde_json::from_str(text.trim()).ok()?;
    Some(payload.pid)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_dir(name: &str) -> PathBuf {
        let root = std::env::temp_dir().join(format!("store_lock_tests_{name}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        root.join("run-abc")
    }

    #[test]
    fn acquire_release_round_trip() {
        let dir = fresh_dir("roundtrip");
        let lock = RunLock::acquire(&dir, "abc").unwrap();
        assert!(lock.path().exists());
        assert_eq!(lock.payload().pid, std::process::id());
        assert_eq!(lock.payload().fingerprint, "abc");
        let path = lock.path().to_path_buf();
        drop(lock);
        assert!(!path.exists(), "drop must remove the lock file");
    }

    #[test]
    fn second_acquire_by_live_holder_is_refused() {
        let dir = fresh_dir("refused");
        let _held = RunLock::acquire(&dir, "abc").unwrap();
        let err = RunLock::acquire(&dir, "abc").unwrap_err();
        match err {
            StoreError::Locked { pid, .. } => assert_eq!(pid, std::process::id()),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    #[test]
    fn stale_lock_of_dead_pid_is_reclaimed() {
        let dir = fresh_dir("stale");
        // No live process has this pid (Linux pid_max is far below u32::MAX;
        // on systems without /proc the conservative branch keeps it "alive"
        // and this test would be vacuous, so skip there).
        if !Path::new("/proc").is_dir() {
            return;
        }
        let path = lock_path(&dir);
        fs::write(&path, "{\"pid\": 4294967295, \"fingerprint\": \"old\"}\n").unwrap();
        let lock = RunLock::acquire(&dir, "new").unwrap();
        assert_eq!(read_holder(lock.path()), Some(std::process::id()));
    }

    #[test]
    fn torn_lock_payload_counts_as_stale() {
        let dir = fresh_dir("torn");
        fs::write(lock_path(&dir), "{\"pi").unwrap();
        let lock = RunLock::acquire(&dir, "new");
        assert!(lock.is_ok(), "torn payload must be reclaimed: {lock:?}");
    }

    #[test]
    fn lock_lives_next_to_the_directory_it_guards() {
        let dir = PathBuf::from("/x/runs/run-12ab");
        assert_eq!(lock_path(&dir), PathBuf::from("/x/runs/run-12ab.lock"));
    }

    #[test]
    fn own_pid_is_always_alive() {
        assert!(pid_alive(std::process::id()));
    }

    #[test]
    fn live_holder_sees_through_stale_and_torn_locks() {
        let dir = fresh_dir("live_holder");
        assert_eq!(live_holder(&dir), None, "no lock file at all");
        fs::write(lock_path(&dir), "{\"pi").unwrap();
        assert_eq!(live_holder(&dir), None, "torn payload is not a holder");
        let lock = RunLock::acquire(&dir, "abc").unwrap();
        assert_eq!(live_holder(&dir), Some(std::process::id()));
        drop(lock);
        assert_eq!(live_holder(&dir), None);
    }
}
